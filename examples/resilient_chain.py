#!/usr/bin/env python3
"""Failure and repair: a chain survives a link failure via re-mapping.

The orchestrator's "automated, dynamic" promise includes day-2 events:
a substrate link dies, the domain view shrinks, and `heal()` re-embeds
every service whose routes crossed the failed link — without touching
healthy services.

Run:  python examples/resilient_chain.py
"""

from repro.emu import EmulatedDomain
from repro.netem import Network
from repro.netem.packet import tcp_packet
from repro.nffg import NFFGBuilder
from repro.orchestration import EmuDomainAdapter, EscapeOrchestrator


def probe(net, emu, label):
    h1, h2 = emu.sap_hosts["sap1"], emu.sap_hosts["sap2"]
    before = len(h2.received)
    h1.send(tcp_packet(h1.ip, h2.ip, tp_dst=80))
    net.run()
    delivered = len(h2.received) - before
    path = " -> ".join(h2.received[-1].trace) if delivered else "(lost)"
    print(f"{label}: {delivered}/1 delivered  {path}")
    return delivered


def main() -> None:
    net = Network()
    # a ring of four BiS-BiS nodes: every pair has two disjoint paths
    emu = EmulatedDomain(
        "emu", net, node_ids=["bb0", "bb1", "bb2", "bb3"],
        links=[("bb0", "bb1"), ("bb1", "bb2"), ("bb2", "bb3"),
               ("bb3", "bb0")])
    emu.add_sap("sap1", "bb0")
    emu.add_sap("sap2", "bb2")
    escape = EscapeOrchestrator("escape", simulator=net.simulator)
    escape.add_domain(EmuDomainAdapter("emu", emu))

    service = (NFFGBuilder("resilient").sap("sap1").sap("sap2")
               .nf("r-fw", "firewall")
               .chain("sap1", "r-fw", "sap2", bandwidth=5.0).build())
    report = escape.deploy(service)
    print("deploy:", report.summary_line())
    print("routes:", {hop: route.infra_path
                      for hop, route in report.mapping.hop_routes.items()})
    probe(net, emu, "\nbefore failure")

    # kill a link on the active path
    active_links = {node for route in report.mapping.hop_routes.values()
                    for node in route.infra_path}
    print(f"\n*** failing link bb0 <-> bb1 "
          f"(active path touches {sorted(active_links)}) ***")
    net.fail_link("bb0", "bb1")
    probe(net, emu, "after failure, before heal")

    healed = escape.heal()
    for service_id, heal_report in healed.items():
        status = "re-mapped" if heal_report.success else \
            f"FAILED: {heal_report.error}"
        print(f"heal({service_id}): {status}")
        if heal_report.success:
            print("new routes:",
                  {hop: route.infra_path
                   for hop, route in heal_report.mapping.hop_routes.items()})
    probe(net, emu, "after heal")

    # the link comes back; nothing needs to move (heal is a no-op)
    net.restore_link("bb0", "bb1")
    assert escape.heal() == {}
    print("\nlink restored — heal() correctly reports nothing to do")
    probe(net, emu, "steady state")


if __name__ == "__main__":
    main()
