#!/usr/bin/env python3
"""Quickstart: deploy one service chain over the Fig. 1 multi-domain
testbed and verify it with live (simulated) packets.

Run:  python examples/quickstart.py
"""

from repro.cli import ScenarioRunner, render_deploy_report, render_nffg
from repro.service import ServiceRequestBuilder
from repro.topo import build_reference_multidomain


def main() -> None:
    # 1. Stand up the paper's proof-of-concept infrastructure: an
    #    emulated Mininet-like domain, a POX-controlled legacy SDN
    #    network, an OpenStack+ODL cloud and a Universal Node, all
    #    under one ESCAPE orchestrator.
    testbed = build_reference_multidomain()
    print("Global resource view (merged domain virtualizers):")
    print(render_nffg(testbed.escape.resource_view()))

    # 2. Describe the service like a user drawing in the demo GUI:
    #    sap1 --> firewall --> NAT --> sap2, 10 Mbit/s, <= 80 ms.
    request = (ServiceRequestBuilder("quickstart")
               .sap("sap1").sap("sap2")
               .nf("q-fw", "firewall")
               .nf("q-nat", "nat")
               .chain("sap1", "q-fw", "q-nat", "sap2", bandwidth=10.0)
               .delay_requirement("sap1", "sap2", max_delay=80.0)
               .build())
    print("\nService request SLA:", request.sla_summary())

    # 3. Deploy and verify with traffic.
    runner = ScenarioRunner(testbed)
    report, traffic = runner.deploy_and_probe(request, "sap1", "sap2",
                                              count=5)
    print("\n" + render_deploy_report(report))
    print(f"\nProbe traffic: {traffic.delivered}/{traffic.sent} delivered, "
          f"mean latency {traffic.mean_latency_ms:.2f} ms")
    print("Path taken by the first packet:")
    print("  " + " -> ".join(traffic.traces[0]))

    # 4. The firewall NF really filters: ssh is dropped.
    blocked = runner.probe("sap1", "sap2", count=3, tp_dst=22)
    print(f"\nSSH probes delivered (firewall at work): "
          f"{blocked.delivered}/{blocked.sent}")

    # 5. Tear down and confirm resources return.
    testbed.escape.teardown("quickstart")
    view = testbed.escape.resource_view()
    print("\nAfter teardown, deployed services:",
          testbed.escape.deployed_services())
    print("Free CPU in the emulated domain:",
          sum(i.resources.cpu for i in view.infras
              if i.id.startswith("emu")), "cores")


if __name__ == "__main__":
    main()
