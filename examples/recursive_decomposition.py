#!/usr/bin/env python3
"""Demo showcase (iii): recursive orchestration + NF decomposition.

Builds a three-level Unify hierarchy:

    top ESCAPE  --Unify-->  mid ESCAPE  --Unify-->  bottom ESCAPE
                                                        |
                                                  emulated domain

then deploys an abstract vCPE through the *top*.  The top only sees a
single BiS-BiS; the request trickles down the recursive interfaces, the
decomposition engine rewrites vCPE into firewall+NAT (or the combo
image), and the chain is verified by packets at the bottom.

Run:  python examples/recursive_decomposition.py
"""

from repro.emu import EmulatedDomain
from repro.mapping.decomposition import default_decomposition_library
from repro.netem import Network
from repro.netem.packet import tcp_packet
from repro.orchestration import (
    EmuDomainAdapter,
    EscapeOrchestrator,
    UnifyAgent,
    UnifyDomainAdapter,
)
from repro.cli import render_nffg
from repro.service import ServiceRequestBuilder


def main() -> None:
    net = Network()

    # Level 0: the physical domain + its ESCAPE instance, with the
    # decomposition library plugged in ("plug and play components").
    domain = EmulatedDomain("emu", net,
                            node_ids=["emu-bb0", "emu-bb1", "emu-bb2"],
                            links=[("emu-bb0", "emu-bb1"),
                                   ("emu-bb1", "emu-bb2")])
    domain.add_sap("sap1", "emu-bb0")
    domain.add_sap("sap2", "emu-bb2")
    bottom = EscapeOrchestrator(
        "bottom", simulator=net.simulator,
        decomposition_library=default_decomposition_library())
    bottom.add_domain(EmuDomainAdapter("emu", domain))

    # Levels 1 and 2: each upper ESCAPE sees the one below as a single
    # Unify domain — "the recursive interface is the Unify interface".
    mid = EscapeOrchestrator("mid", simulator=net.simulator)
    mid.add_domain(UnifyDomainAdapter("bottom-dom", UnifyAgent(bottom)))
    top = EscapeOrchestrator("top", simulator=net.simulator)
    top.add_domain(UnifyDomainAdapter("mid-dom", UnifyAgent(mid)))

    print("What the TOP level sees (one BiS-BiS, all details hidden):")
    print(render_nffg(top.resource_view()))

    # The user asks for an abstract vCPE — not directly deployable;
    # the bottom level's decomposition engine must expand it.
    request = (ServiceRequestBuilder("vcpe-recursive")
               .sap("sap1").sap("sap2")
               .nf("cpe", "vCPE", cpu=2.0, mem=256.0, storage=2.0)
               .chain("sap1", "cpe", "sap2", bandwidth=5.0)
               .build())
    report = top.deploy(request.sg)
    print("\nTop-level deploy:", report.summary_line())

    # What actually runs at the bottom?
    attached = {switch_id: switch.attached_nfs()
                for switch_id, switch in domain.switches.items()
                if switch.attached_nfs()}
    print("NFs physically running in the emulated domain:", attached)
    bottom_report = list(bottom.reports.values())[-1]
    print("Decomposition chosen at the bottom:",
          bottom_report.mapping.decompositions)

    # Verify end to end: NAT must rewrite, firewall must filter.
    h1, h2 = domain.sap_hosts["sap1"], domain.sap_hosts["sap2"]
    h1.send(tcp_packet(h1.ip, h2.ip, tp_dst=80))
    net.run()
    print(f"\nHTTP through the decomposed vCPE: {len(h2.received)}/1, "
          f"src rewritten to {h2.received[0].ip_src}")
    print("path:", " -> ".join(h2.received[0].trace))
    h1.send(tcp_packet(h1.ip, h2.ip, tp_dst=22))
    net.run()
    print(f"SSH (firewalled): {len(h2.received) - 1}/1 delivered")

    # Teardown through the hierarchy.
    top.teardown("vcpe-recursive")
    print("\nAfter top-level teardown, bottom-level services:",
          bottom.deployed_services())


if __name__ == "__main__":
    main()
