#!/usr/bin/env python3
"""The complete SIGCOMM'15 demo storyline, end to end.

Replays the paper's three showcases in one session:

  (i)   joint domain abstraction for networks and clouds,
  (ii)  orchestrate/optimize resource allocation and deploy service
        chains over these unified resources,
  (iii) recursive orchestration and NF decomposition,

plus the day-2 epilogue (failure healing and a scaling cycle) this
reproduction adds on top.

Run:  python examples/full_demo.py
"""

from repro.cli import ScenarioRunner, render_deploy_report, render_nffg
from repro.netem.packet import tcp_packet
from repro.orchestration import (
    EscapeOrchestrator,
    UnifyAgent,
    UnifyDomainAdapter,
)
from repro.service import ServiceRequestBuilder
from repro.topo import build_reference_multidomain
from repro.virtualizer.views import PerDomainBiSBiSView


def banner(text: str) -> None:
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


def main() -> None:
    # ------------------------------------------------------------------
    banner("(i) Joint domain abstraction for networks and clouds")
    testbed = build_reference_multidomain()
    escape = testbed.escape
    print("Four technology domains under one orchestrator:")
    for adapter in escape.cal.adapters.values():
        view = adapter.get_view()
        cpu = sum(i.resources.cpu for i in view.infras)
        print(f"  {adapter.name:6s} ({adapter.domain_type.value:14s}) "
              f"{len(view.infras)} infra node(s), {cpu:g} CPU")
    print("\nMerged into one BiS-BiS resource view:")
    print(render_nffg(escape.resource_view()))
    print("\nThe same resources through the per-domain view policy:")
    per_domain = PerDomainBiSBiSView().build_view(escape.cal.dov, "pd")
    print(render_nffg(per_domain))

    # ------------------------------------------------------------------
    banner("(ii) Orchestrate, optimize and deploy over unified resources")
    runner = ScenarioRunner(testbed)
    request = (ServiceRequestBuilder("showcase")
               .sap("sap1").sap("sap2")
               .nf("sc-fw", "firewall")
               .nf("sc-dpi", "dpi", domain="OPENSTACK")  # pin to the cloud
               .nf("sc-nat", "nat")
               .chain("sap1", "sc-fw", "sc-dpi", "sc-nat", "sap2",
                      bandwidth=10.0)
               .delay_requirement("sap1", "sap2", max_delay=120.0)
               .build())
    report, traffic = runner.deploy_and_probe(request, "sap1", "sap2",
                                              count=4, payload="GET /")
    print(render_deploy_report(report))
    print(f"\nDPI placed in the cloud (constraint honoured): "
          f"{report.mapping.nf_placement['sc-dpi']}")
    print(f"VM boot dominated activation: "
          f"{report.activation_virtual_ms:.0f} virtual ms")
    print(f"probe: {traffic.delivered}/4 delivered, "
          f"mean {traffic.mean_latency_ms:.2f} vms")
    print("path: " + " -> ".join(traffic.traces[0]))
    malware = runner.probe("sap1", "sap2", count=2,
                           payload="malware payload")
    print(f"malware payloads delivered (DPI in-line): {malware.delivered}/2")
    print("\nper-hop counters:", escape.service_flow_stats("showcase"))
    escape.teardown("showcase")

    # ------------------------------------------------------------------
    banner("(iii) Recursive orchestration and NF decomposition")
    parent = EscapeOrchestrator("parent",
                                simulator=testbed.network.simulator)
    parent.add_domain(UnifyDomainAdapter("lower", UnifyAgent(escape)))
    print("What the parent sees of the entire 4-domain infrastructure:")
    print(render_nffg(parent.resource_view()))
    abstract = (ServiceRequestBuilder("vcpe")
                .sap("sap1").sap("sap2")
                .nf("vcpe-cpe", "vCPE", cpu=1.5, mem=192.0, storage=2.0)
                .chain("sap1", "vcpe-cpe", "sap2", bandwidth=5.0)
                .build())
    report = parent.deploy(abstract.sg)
    print(f"\nparent deploy of abstract vCPE: {report.summary_line()}")
    lower_report = list(escape.reports.values())[-1]
    print("decomposition chosen one level down:",
          lower_report.mapping.decompositions)
    h1, h2 = testbed.host("sap1"), testbed.host("sap2")
    h1.send(tcp_packet(h1.ip, h2.ip, tp_dst=80))
    testbed.run()
    print(f"traffic through the decomposed chain: {len(h2.received)} "
          f"delivered, src rewritten to {h2.received[-1].ip_src}")
    parent.teardown("vcpe")

    # ------------------------------------------------------------------
    banner("Epilogue: failure healing")
    chain = (ServiceRequestBuilder("epi")
             .sap("sap1").sap("sap2")
             .nf("epi-fw", "firewall")
             .chain("sap1", "epi-fw", "sap2", bandwidth=5.0).build())
    report = escape.deploy(chain.sg)
    routes = {hop: route.infra_path
              for hop, route in report.mapping.hop_routes.items()}
    print("routes:", routes)
    testbed.network.fail_link("sdn-sw0", "sdn-sw1")
    print("\n*** failed the sdn-sw0 <-> sdn-sw1 transit link ***")
    healed = escape.heal()
    for service_id, heal_report in healed.items():
        outcome = ("re-mapped: " + str(
            {hop: route.infra_path
             for hop, route in heal_report.mapping.hop_routes.items()})
            if heal_report.success else f"FAILED ({heal_report.error})")
        print(f"heal({service_id}): {outcome}")
    print("\n(the reference testbed has a single transit path — a real "
          "operator would run redundant peering, see "
          "examples/resilient_chain.py for the redundant case)")


if __name__ == "__main__":
    main()
