#!/usr/bin/env python3
"""Elastic service lifecycle: manual resize + closed-loop auto-scaling.

The paper motivates "automated, dynamic service creation"; UNIFY's
companion demo scaled an elastic router with load.  This scenario:

1. deploys a small web service and resizes it with
   ``EscapeOrchestrator.update`` (failed updates keep the old version);
2. hands the service to the :class:`ElasticityController`, blasts
   traffic, and watches it scale out and back in on its own.

Run:  python examples/elastic_service.py
"""

from repro.cli import ScenarioRunner
from repro.elastic import ElasticityController, ScalingRule
from repro.netem.packet import tcp_packet
from repro.service import ServiceRequestBuilder
from repro.topo import build_reference_multidomain


def web_version(level: int):
    """Level N = load balancer + N worker stages."""
    builder = (ServiceRequestBuilder("web")
               .sap("sap1").sap("sap2")
               .nf("web-lb", "loadbalancer"))
    previous = "web-lb"
    builder.hop("sap1", previous, bandwidth=10.0, flowclass="tp_dst=80")
    for index in range(level):
        worker = f"web-w{index}"
        builder.nf(worker, "webserver", cpu=2.0, mem=1024.0)
        builder.hop(previous, worker, bandwidth=10.0)
        previous = worker
    builder.hop(previous, "sap2", bandwidth=10.0)
    return builder.build().sg


def free_cpu(testbed) -> float:
    return sum(infra.resources.cpu
               for infra in testbed.escape.resource_view().infras)


def main() -> None:
    testbed = build_reference_multidomain()
    runner = ScenarioRunner(testbed)

    # -- manual lifecycle ------------------------------------------------
    report = testbed.escape.deploy(web_version(1))
    print(f"v1 deployed: {report.summary_line()}")
    print(f"  free CPU: {free_cpu(testbed):.1f}")

    report = testbed.escape.update(web_version(3))
    print(f"\nscaled to 3 workers via update(): success={report.success}")
    print(f"  free CPU: {free_cpu(testbed):.1f}")
    traffic = runner.probe("sap1", "sap2", count=3, tp_dst=80)
    workers_hit = sum(1 for node in traffic.traces[0]
                      if node.startswith("nf:web-w"))
    print(f"  traffic {traffic.delivered}/3 through {workers_hit} workers")

    bad = web_version(2)
    for nf in bad.nfs:
        nf.functional_type = "nonexistent-type"
    report = testbed.escape.update(bad)
    print(f"\nbroken update rejected: success={report.success}")
    print("  previous version still running:",
          testbed.escape.deployed_services())

    # -- closed-loop auto-scaling -------------------------------------------
    testbed.escape.update(web_version(1))
    controller = ElasticityController(testbed.escape)
    rule = ScalingRule(metric_hop="web-hop1", scale_out_pps=100.0,
                       scale_in_pps=5.0, min_level=1, max_level=3)
    controller.manage("web", rule, web_version)
    print(f"\nauto-scaler engaged at level "
          f"{controller.managed_level('web')}")

    # load phase: 300 HTTP packets in ~0.3 virtual seconds
    src, dst = testbed.host("sap1"), testbed.host("sap2")
    src.send_burst([tcp_packet(src.ip, dst.ip, tp_dst=80,
                               tp_src=50000 + i) for i in range(300)],
                   interval=1.0)
    testbed.run()
    for event in controller.poll():
        print(f"  {event.action.value}: level {event.level_before} -> "
              f"{event.level_after} at {event.observed_pps:.0f} pps")

    # idle phase: let the virtual clock advance quietly, then poll
    testbed.network.simulator.schedule(30_000.0, lambda: None)
    testbed.run()
    for event in controller.poll():
        print(f"  {event.action.value}: level {event.level_before} -> "
              f"{event.level_after} at {event.observed_pps:.1f} pps")
    print(f"final level: {controller.managed_level('web')}, "
          f"free CPU {free_cpu(testbed):.1f}")

    testbed.escape.teardown("web")
    print(f"\nall torn down, free CPU {free_cpu(testbed):.1f}")


if __name__ == "__main__":
    main()
