#!/usr/bin/env python3
"""Multi-domain chaining: steer one tenant's web traffic through a DPI
pipeline in the cloud while another tenant's traffic takes a fast path
through the Universal Node — both entering at the same SAP.

Demonstrates: flowclass-based steering, per-domain placement, VM boot
vs container start, and the per-domain control-plane accounting.

Run:  python examples/multidomain_chain.py
"""

from repro.cli import ScenarioRunner, render_deploy_report
from repro.service import ServiceRequestBuilder
from repro.topo import build_reference_multidomain


def main() -> None:
    testbed = build_reference_multidomain()
    runner = ScenarioRunner(testbed)

    # Tenant A: HTTP (tp_dst=80) from sap1 to the cloud SAP, inspected
    # by a DPI NF that must land in the OpenStack domain (we steer it
    # there by making the DPI demand too big for the emu nodes and
    # disabling the UN for this walk-through).
    testbed.emu.supported_types = ["forwarder", "firewall", "nat"]
    testbed.un.runtime.cpu_capacity = 4.0

    tenant_a = (ServiceRequestBuilder("tenant-a")
                .sap("sap1").sap("sap3")
                .nf("a-dpi", "dpi", cpu=6.0, mem=2048.0)
                .chain("sap1", "a-dpi", "sap3", bandwidth=20.0,
                       flowclass="tp_dst=80")
                .build())
    report_a = runner.deploy(tenant_a)
    print(render_deploy_report(report_a))
    print("tenant-a placement:", report_a.mapping.nf_placement)
    print(f"tenant-a activation (VM boot): "
          f"{report_a.activation_virtual_ms:.0f} virtual ms\n")

    # Tenant B: DNS-ish traffic (tp_dst=5353) from sap1 to sap2 through
    # a firewall that fits on the Universal Node (container start).
    tenant_b = (ServiceRequestBuilder("tenant-b")
                .sap("sap1").sap("sap2")
                .nf("b-fw", "firewall", cpu=1.0)
                .chain("sap1", "b-fw", "sap2", bandwidth=5.0,
                       flowclass="tp_dst=5353")
                .build())
    report_b = runner.deploy(tenant_b)
    print(render_deploy_report(report_b))
    print("tenant-b placement:", report_b.mapping.nf_placement)
    print(f"tenant-b activation: "
          f"{report_b.activation_virtual_ms:.0f} virtual ms\n")

    # Drive both tenants' traffic and show isolation.
    http = runner.probe("sap1", "sap3", count=4, tp_dst=80,
                        payload="GET /index.html")
    dns = runner.probe("sap1", "sap2", count=4, tp_dst=5353)
    print(f"tenant-a HTTP delivered: {http.delivered}/4 "
          f"(mean {http.mean_latency_ms:.2f} ms)")
    print("  path:", " -> ".join(http.traces[0]))
    print(f"tenant-b DNS delivered:  {dns.delivered}/4 "
          f"(mean {dns.mean_latency_ms:.2f} ms)")
    print("  path:", " -> ".join(dns.traces[0]))

    # DPI semantics: malware in tenant A's traffic is dropped in-line.
    dirty = runner.probe("sap1", "sap3", count=2, tp_dst=80,
                         payload="malware payload")
    print(f"\ntenant-a malware payloads delivered (DPI at work): "
          f"{dirty.delivered}/2")

    # Who carried what on the control plane?
    print("\nControl-plane bytes per domain (tenant-a deploy):")
    for adapter_report in report_a.adapters:
        print(f"  {adapter_report.domain:8s} "
              f"{adapter_report.control_messages:4d} msgs  "
              f"{adapter_report.control_bytes:7d} B")


if __name__ == "__main__":
    main()
