"""EXT-2 — control-channel overhead.

What the narrow waist costs on the wire: NETCONF vs OpenFlow message
counts and bytes per deployment, and the payoff of the Unify diff-based
config exchange versus shipping full virtualizer trees.
"""

import time

import pytest

from benchmarks.conftest import SMOKE, emit
from repro import perf
from repro.nffg import NFFGBuilder
from repro.nffg.builder import mesh_substrate
from repro.mapping import GreedyEmbedder
from repro.orchestration.adapters import DirectDomainAdapter
from repro.orchestration.escape import EscapeOrchestrator
from repro.service import ServiceRequestBuilder
from repro.topo import build_reference_multidomain
from repro.virtualizer import nffg_to_virtualizer
from repro.yang import diff_trees
from repro.yang.diff import patch_size_bytes


def _request(request_id="ctl"):
    return (ServiceRequestBuilder(request_id)
            .sap("sap1").sap("sap2")
            .nf(f"{request_id}-fw", "firewall").nf(f"{request_id}-nat", "nat")
            .chain("sap1", f"{request_id}-fw", f"{request_id}-nat", "sap2",
                   bandwidth=5.0).build())


def test_bench_per_domain_control_cost(benchmark):
    """The EXT-2 table: control messages/bytes per domain per deploy."""
    testbed = build_reference_multidomain()
    report = testbed.service_layer.submit(_request())
    assert report.success, report.error
    rows = [{
        "domain": adapter_report.domain,
        "messages": adapter_report.control_messages,
        "bytes": adapter_report.control_bytes,
        "nfs": adapter_report.nfs_requested,
        "flowrules": adapter_report.flowrules_requested,
    } for adapter_report in report.adapters]
    emit("EXT-2: control-plane cost per domain (one 2-NF deploy)", rows,
         group="control_plane")
    assert sum(row["messages"] for row in rows) == report.control_messages
    benchmark(lambda: build_reference_multidomain()
              .service_layer.submit(_request("timed")))


def test_bench_full_vs_delta_push(benchmark):
    """EXT-2 extension: per-domain config messages/bytes, full-config
    replace vs edit-config delta mode, on the steady-state (second and
    later) deploy.

    The first deploy is first contact — both modes ship the full
    config.  From the second deploy on, delta mode diffs against the
    acknowledged config and ships a patch; full mode keeps today's
    replace behavior, byte-identical to the pre-delta code path (the
    acked-config digests of both runs must agree).  The table reports
    the deploy of one more service with ``WARM_SERVICES`` already
    installed: full mode re-ships every installed service's state plus
    the substrate, the delta stays proportional to the one new service.
    """
    WARM_SERVICES = 4 if SMOKE else 6

    def run(force_full: bool):
        testbed = build_reference_multidomain()
        for adapter in testbed.escape.cal.adapters.values():
            adapter.force_full_push = force_full
        for index in range(WARM_SERVICES):
            warm = testbed.service_layer.submit(_request(f"warm{index}"))
            assert warm.success, warm.error
        steady = testbed.service_layer.submit(_request("steady"))
        assert steady.success, steady.error
        return testbed, steady

    full_bed, full_report = run(force_full=True)
    delta_bed, delta_report = run(force_full=False)
    full_by_domain = {r.domain: r for r in full_report.adapters}
    rows = []
    for report in delta_report.adapters:
        full = full_by_domain[report.domain]
        rows.append({
            "domain": report.domain,
            "full_messages": full.messages,
            "full_bytes": full.bytes,
            "delta_messages": report.messages,
            "delta_bytes": report.bytes,
            "delta": report.delta,
        })
    emit("EXT-2: full vs delta config push (steady-state deploy)", rows,
         group="control_plane")
    # hard gate (also in CI smoke): the delta path must never cost more
    # bytes than the full path it replaces — per domain, not just in sum
    for row in rows:
        assert row["delta_bytes"] <= row["full_bytes"], row
    # steady-state payoff: the patches add up to a fraction of the
    # full-config traffic
    full_total = sum(row["full_bytes"] for row in rows)
    delta_total = sum(row["delta_bytes"] for row in rows)
    assert full_total > 0
    assert delta_total <= 0.40 * full_total, (delta_total, full_total)
    # full mode stayed full; and both modes acknowledged byte-identical
    # configs (canonical digests agree per NETCONF domain)
    assert not any(r.delta for r in full_report.adapters)
    for name, full_adapter in full_bed.escape.cal.adapters.items():
        digest = getattr(full_adapter, "_acked_digest", None)
        if digest is not None:
            delta_adapter = delta_bed.escape.cal.adapters[name]
            assert delta_adapter._acked_digest == digest, name
    benchmark(lambda: run(force_full=False))


def test_bench_parallel_vs_serial_push(benchmark):
    """CP-2: parallel vs serial push fan-out under 5 ms injected
    per-domain delay.

    Every domain's push is delayed by a real 5 ms sleep (the fault
    plan's sleep hook fires *outside* the plan lock).  The serial
    dispatcher pays the sum of the delays, the parallel dispatcher the
    max — the wall-clock ratio is the whole point of the fan-out.
    """
    from repro.nffg import NFFG
    from repro.orchestration.cal import ControllerAdaptationLayer
    from repro.resilience.faults import FaultKind, FaultPlan, FaultyAdapter

    domains = 4 if SMOKE else 6
    delay_s = 0.005

    def build(workers: int):
        cal = ControllerAdaptationLayer(push_workers=workers)
        plan = FaultPlan()
        plan.sleep = time.sleep
        for index in range(domains):
            name = f"d{index}"
            view = NFFG(id=name)
            view.add_infra(f"{name}-bb0", num_ports=1)
            plan.add(name, "push", kind=FaultKind.DELAY,
                     count=1_000_000, delay_s=delay_s)
            cal.register(FaultyAdapter(DirectDomainAdapter(name, view),
                                       plan))
        return cal

    serial_cal = build(workers=1)
    parallel_cal = build(workers=8)
    # warm up: builds the DoV and (for the parallel CAL) the pool
    serial_cal.push_all()
    parallel_cal.push_all()

    def timed(cal):
        best = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            reports = cal.push_all()
            best = min(best, time.perf_counter() - started)
            assert all(r.success for r in reports)
        return best * 1e3

    serial_ms = timed(serial_cal)
    parallel_ms = timed(parallel_cal)
    emit("CP-2: parallel vs serial push under 5 ms injected per-domain "
         "delay", [{
             "domains": domains,
             "delay_ms": delay_s * 1e3,
             "serial_ms": serial_ms,
             "parallel_ms": parallel_ms,
             "speedup_x": serial_ms / parallel_ms,
         }], group="control_plane")
    # serial pays the sum: N domains x 5 ms
    assert serial_ms >= domains * delay_s * 1e3
    # parallel pays the max, not the sum
    assert parallel_ms <= 0.5 * serial_ms, (parallel_ms, serial_ms)
    benchmark(parallel_cal.push_all)


def _mesh_chain(index: int, length: int = 3):
    builder = (ServiceRequestBuilder(f"svc{index}")
               .sap("sap1").sap("sap2"))
    names = [f"s{index}nf{j}" for j in range(length)]
    for name in names:
        builder.nf(name, "firewall", cpu=0.5, mem=64.0)
    builder.chain("sap1", *names, "sap2", bandwidth=2.0)
    return builder.build()


def test_bench_repeated_deploys(benchmark):
    """The control-plane hot loop: N service deploys against one
    unchanged substrate.

    With incremental DoV maintenance and the shared path cache the DoV
    is never re-merged between deploys (``dov.rebuild`` stays at its
    initial value) and most hop routes replay from the memo.
    """
    size = 20 if SMOKE else 60
    deploys = 5 if SMOKE else 20
    mesh = mesh_substrate(size, degree=4, seed=7,
                          supported_types=["firewall"])
    escape = EscapeOrchestrator(embedder=GreedyEmbedder())
    escape.add_domain(DirectDomainAdapter("dom", view=mesh))
    warmup = escape.deploy(_mesh_chain(0).sg, wait_activation=False)
    assert warmup.success, warmup.error

    perf.reset()
    started = time.perf_counter()
    for index in range(1, deploys + 1):
        report = escape.deploy(_mesh_chain(index).sg, wait_activation=False)
        assert report.success, report.error
    elapsed_ms = (time.perf_counter() - started) * 1e3
    snapshot = perf.snapshot()
    latency = perf.metrics.histogram("deploy.latency_s")

    emit("CP-1: repeated deploys on an unchanged substrate", [{
        "substrate_nodes": size,
        "deploys": deploys,
        "ms_per_deploy": elapsed_ms / deploys,
        "p50_ms": latency.percentile(50) * 1e3,
        "p95_ms": latency.percentile(95) * 1e3,
        "p99_ms": latency.percentile(99) * 1e3,
        "dov_rebuilds": snapshot.get("dov.rebuild", 0),
        "dov_inplace": snapshot.get("dov.apply_inplace", 0),
        "path_hits": snapshot.get("pathcache.hit", 0),
        "path_misses": snapshot.get("pathcache.miss", 0),
    }], group="control_plane")
    # the latency histogram saw exactly the timed deploys (perf.reset
    # above cleared the warmup's observation)
    assert latency.count == deploys
    # incremental maintenance: every deploy applied in place, no rebuild
    assert snapshot.get("dov.rebuild", 0) == 0
    assert snapshot.get("dov.apply_inplace", 0) == deploys
    # the resilience layer is pay-per-fault: a fault-free run schedules
    # no retries, trips no breakers, queues nothing for reconciliation
    assert perf.snapshot("resilience.") == {}

    def _deploy_teardown():
        report = escape.deploy(_mesh_chain(999).sg, wait_activation=False)
        assert report.success, report.error
        escape.teardown("svc999")

    benchmark(_deploy_teardown)


def test_bench_recovery_vs_cold_redeploy(benchmark):
    """RC-1: journal recovery of N committed services vs redeploying
    them cold.

    Recovery replays placements and routes verbatim from the journal's
    checkpoint + commit records — no mapping — and its anti-entropy
    push collapses to a no-op/delta on the surviving adapters thanks to
    the acked-config digest guard.  A cold redeploy pays full mapping
    and full pushes for every service.  Gate: recovery completes in at
    most 0.3x the cold redeploy time.
    """
    from repro.recovery import IntentJournal, recover

    services = 10 if SMOKE else 50
    size = 40 if SMOKE else 120

    def substrate():
        return mesh_substrate(size, degree=4, seed=7,
                              supported_types=["firewall"])

    # checkpoint_every=16 forces mid-run checkpoints, so the timed
    # recovery exercises the checkpoint + tail-replay path, not a pure
    # full-log walk
    journal = IntentJournal(checkpoint_every=16)
    escape = EscapeOrchestrator("rc", embedder=GreedyEmbedder(),
                                journal=journal)
    escape.add_domain(DirectDomainAdapter("dom", view=substrate()))
    for index in range(services):
        report = escape.deploy(_mesh_chain(index).sg, wait_activation=False)
        assert report.success, report.error

    adapters = list(escape.cal.adapters.values())
    recover_s = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        result = recover(journal, adapters, name="rc-successor")
        recover_s = min(recover_s, time.perf_counter() - started)
        assert result.ok()
        assert sorted(result.orchestrator.deployed_services()) \
            == sorted(escape.deployed_services())

    redeploy_s = float("inf")
    for _ in range(3 if SMOKE else 1):
        started = time.perf_counter()
        cold = EscapeOrchestrator("rc-cold", embedder=GreedyEmbedder())
        cold.add_domain(DirectDomainAdapter("dom", view=substrate()))
        for index in range(services):
            report = cold.deploy(_mesh_chain(index).sg,
                                 wait_activation=False)
            assert report.success, report.error
        redeploy_s = min(redeploy_s, time.perf_counter() - started)

    emit("RC-1: journal recovery vs cold redeploy", [{
        "services": services,
        "substrate_nodes": size,
        "recover_ms": recover_s * 1e3,
        "cold_redeploy_ms": redeploy_s * 1e3,
        "speedup_x": redeploy_s / recover_s,
        "journal_records": len(journal),
        "checkpoint_used": journal.replay().checkpoint_used,
    }], group="control_plane")
    # hard gate (also in CI): recovery must beat 0.3x the cold path at
    # the full 50-service scale; the 10-service smoke run gets a looser
    # 0.5x bound because both sides sit in timer-noise territory there
    gate = 0.5 if SMOKE else 0.3
    assert recover_s <= gate * redeploy_s, (recover_s, redeploy_s)
    benchmark(lambda: recover(journal, adapters, dry_run=True))


@pytest.mark.parametrize("size", [10, 40, 160])
def test_bench_diff_vs_full_config(benchmark, size):
    """Unify diff exchange vs full virtualizer tree, growing domains."""
    domain = mesh_substrate(size, degree=3, seed=4,
                            supported_types=["firewall", "nat"])
    service = (NFFGBuilder("svc").sap("sap1").sap("sap2")
               .nf("fw", "firewall").chain("sap1", "fw", "sap2",
                                           bandwidth=1.0).build())
    result = GreedyEmbedder().map(service, domain)
    assert result.success
    before = nffg_to_virtualizer(domain, virtualizer_id="dom")
    after = nffg_to_virtualizer(result.mapped, virtualizer_id="dom")
    entries = benchmark(diff_trees, before.tree, after.tree)
    assert entries  # the deploy changed the tree


def test_bench_diff_compression_table(benchmark):
    rows = []
    for size in (10, 40, 160):
        domain = mesh_substrate(size, degree=3, seed=4,
                                supported_types=["firewall", "nat"])
        service = (NFFGBuilder("svc").sap("sap1").sap("sap2")
                   .nf("fw", "firewall")
                   .chain("sap1", "fw", "sap2", bandwidth=1.0).build())
        result = GreedyEmbedder().map(service, domain)
        assert result.success
        before = nffg_to_virtualizer(domain, virtualizer_id="dom")
        after = nffg_to_virtualizer(result.mapped, virtualizer_id="dom")
        full_bytes = len(after.tree.to_json().encode())
        entries = diff_trees(before.tree, after.tree)
        diff_bytes = patch_size_bytes(entries)
        rows.append({
            "domain_nodes": size,
            "full_tree_bytes": full_bytes,
            "diff_bytes": diff_bytes,
            "diff_entries": len(entries),
            "compression_x": full_bytes / diff_bytes,
        })
    emit("EXT-2: Unify diff vs full-config exchange", rows)
    # the diff stays roughly constant while the tree grows with the
    # domain: compression improves with domain size
    assert rows[-1]["compression_x"] > rows[0]["compression_x"]
    assert rows[-1]["compression_x"] > 10
    domain = mesh_substrate(40, degree=3, seed=4)
    benchmark(nffg_to_virtualizer, domain)


def test_bench_netconf_vs_openflow_split(benchmark):
    """Management (NETCONF) vs flow programming (OpenFlow) byte split
    in the emulated domain."""
    from repro.topo import build_emulated_testbed
    testbed = build_emulated_testbed(switches=3)
    adapter = testbed.escape.cal.adapters["emu"]
    report = testbed.service_layer.submit(_request("split"))
    assert report.success
    netconf_bytes = adapter.channel.stats.bytes
    of_stats = adapter.orchestrator.controller.total_stats()
    rows = [{
        "channel": "NETCONF (config)",
        "messages": adapter.channel.stats.messages,
        "bytes": netconf_bytes,
    }, {
        "channel": "OpenFlow (flow programming)",
        "messages": of_stats.messages,
        "bytes": of_stats.bytes,
    }]
    emit("EXT-2: NETCONF vs OpenFlow share (emu domain)", rows)
    assert netconf_bytes > 0 and of_stats.bytes > 0
    benchmark(adapter.get_view)
