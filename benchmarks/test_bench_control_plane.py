"""EXT-2 — control-channel overhead.

What the narrow waist costs on the wire: NETCONF vs OpenFlow message
counts and bytes per deployment, and the payoff of the Unify diff-based
config exchange versus shipping full virtualizer trees.
"""

import time

import pytest

from benchmarks.conftest import SMOKE, emit
from repro import perf
from repro.nffg import NFFGBuilder
from repro.nffg.builder import mesh_substrate
from repro.mapping import GreedyEmbedder
from repro.orchestration.adapters import DirectDomainAdapter
from repro.orchestration.escape import EscapeOrchestrator
from repro.service import ServiceRequestBuilder
from repro.topo import build_reference_multidomain
from repro.virtualizer import nffg_to_virtualizer
from repro.yang import diff_trees
from repro.yang.diff import patch_size_bytes


def _request(request_id="ctl"):
    return (ServiceRequestBuilder(request_id)
            .sap("sap1").sap("sap2")
            .nf(f"{request_id}-fw", "firewall").nf(f"{request_id}-nat", "nat")
            .chain("sap1", f"{request_id}-fw", f"{request_id}-nat", "sap2",
                   bandwidth=5.0).build())


def test_bench_per_domain_control_cost(benchmark):
    """The EXT-2 table: control messages/bytes per domain per deploy."""
    testbed = build_reference_multidomain()
    report = testbed.service_layer.submit(_request())
    assert report.success, report.error
    rows = [{
        "domain": adapter_report.domain,
        "messages": adapter_report.control_messages,
        "bytes": adapter_report.control_bytes,
        "nfs": adapter_report.nfs_requested,
        "flowrules": adapter_report.flowrules_requested,
    } for adapter_report in report.adapters]
    emit("EXT-2: control-plane cost per domain (one 2-NF deploy)", rows,
         group="control_plane")
    assert sum(row["messages"] for row in rows) == report.control_messages
    benchmark(lambda: build_reference_multidomain()
              .service_layer.submit(_request("timed")))


def _mesh_chain(index: int, length: int = 3):
    builder = (ServiceRequestBuilder(f"svc{index}")
               .sap("sap1").sap("sap2"))
    names = [f"s{index}nf{j}" for j in range(length)]
    for name in names:
        builder.nf(name, "firewall", cpu=0.5, mem=64.0)
    builder.chain("sap1", *names, "sap2", bandwidth=2.0)
    return builder.build()


def test_bench_repeated_deploys(benchmark):
    """The control-plane hot loop: N service deploys against one
    unchanged substrate.

    With incremental DoV maintenance and the shared path cache the DoV
    is never re-merged between deploys (``dov.rebuild`` stays at its
    initial value) and most hop routes replay from the memo.
    """
    size = 20 if SMOKE else 60
    deploys = 5 if SMOKE else 20
    mesh = mesh_substrate(size, degree=4, seed=7,
                          supported_types=["firewall"])
    escape = EscapeOrchestrator(embedder=GreedyEmbedder())
    escape.add_domain(DirectDomainAdapter("dom", view=mesh))
    warmup = escape.deploy(_mesh_chain(0).sg, wait_activation=False)
    assert warmup.success, warmup.error

    perf.reset()
    started = time.perf_counter()
    for index in range(1, deploys + 1):
        report = escape.deploy(_mesh_chain(index).sg, wait_activation=False)
        assert report.success, report.error
    elapsed_ms = (time.perf_counter() - started) * 1e3
    snapshot = perf.snapshot()

    emit("CP-1: repeated deploys on an unchanged substrate", [{
        "substrate_nodes": size,
        "deploys": deploys,
        "ms_per_deploy": elapsed_ms / deploys,
        "dov_rebuilds": snapshot.get("dov.rebuild", 0),
        "dov_inplace": snapshot.get("dov.apply_inplace", 0),
        "path_hits": snapshot.get("pathcache.hit", 0),
        "path_misses": snapshot.get("pathcache.miss", 0),
    }], group="control_plane")
    # incremental maintenance: every deploy applied in place, no rebuild
    assert snapshot.get("dov.rebuild", 0) == 0
    assert snapshot.get("dov.apply_inplace", 0) == deploys
    # the resilience layer is pay-per-fault: a fault-free run schedules
    # no retries, trips no breakers, queues nothing for reconciliation
    assert perf.snapshot("resilience.") == {}

    def _deploy_teardown():
        report = escape.deploy(_mesh_chain(999).sg, wait_activation=False)
        assert report.success, report.error
        escape.teardown("svc999")

    benchmark(_deploy_teardown)


@pytest.mark.parametrize("size", [10, 40, 160])
def test_bench_diff_vs_full_config(benchmark, size):
    """Unify diff exchange vs full virtualizer tree, growing domains."""
    domain = mesh_substrate(size, degree=3, seed=4,
                            supported_types=["firewall", "nat"])
    service = (NFFGBuilder("svc").sap("sap1").sap("sap2")
               .nf("fw", "firewall").chain("sap1", "fw", "sap2",
                                           bandwidth=1.0).build())
    result = GreedyEmbedder().map(service, domain)
    assert result.success
    before = nffg_to_virtualizer(domain, virtualizer_id="dom")
    after = nffg_to_virtualizer(result.mapped, virtualizer_id="dom")
    entries = benchmark(diff_trees, before.tree, after.tree)
    assert entries  # the deploy changed the tree


def test_bench_diff_compression_table(benchmark):
    rows = []
    for size in (10, 40, 160):
        domain = mesh_substrate(size, degree=3, seed=4,
                                supported_types=["firewall", "nat"])
        service = (NFFGBuilder("svc").sap("sap1").sap("sap2")
                   .nf("fw", "firewall")
                   .chain("sap1", "fw", "sap2", bandwidth=1.0).build())
        result = GreedyEmbedder().map(service, domain)
        assert result.success
        before = nffg_to_virtualizer(domain, virtualizer_id="dom")
        after = nffg_to_virtualizer(result.mapped, virtualizer_id="dom")
        full_bytes = len(after.tree.to_json().encode())
        entries = diff_trees(before.tree, after.tree)
        diff_bytes = patch_size_bytes(entries)
        rows.append({
            "domain_nodes": size,
            "full_tree_bytes": full_bytes,
            "diff_bytes": diff_bytes,
            "diff_entries": len(entries),
            "compression_x": full_bytes / diff_bytes,
        })
    emit("EXT-2: Unify diff vs full-config exchange", rows)
    # the diff stays roughly constant while the tree grows with the
    # domain: compression improves with domain size
    assert rows[-1]["compression_x"] > rows[0]["compression_x"]
    assert rows[-1]["compression_x"] > 10
    domain = mesh_substrate(40, degree=3, seed=4)
    benchmark(nffg_to_virtualizer, domain)


def test_bench_netconf_vs_openflow_split(benchmark):
    """Management (NETCONF) vs flow programming (OpenFlow) byte split
    in the emulated domain."""
    from repro.topo import build_emulated_testbed
    testbed = build_emulated_testbed(switches=3)
    adapter = testbed.escape.cal.adapters["emu"]
    report = testbed.service_layer.submit(_request("split"))
    assert report.success
    netconf_bytes = adapter.channel.stats.bytes
    of_stats = adapter.orchestrator.controller.total_stats()
    rows = [{
        "channel": "NETCONF (config)",
        "messages": adapter.channel.stats.messages,
        "bytes": netconf_bytes,
    }, {
        "channel": "OpenFlow (flow programming)",
        "messages": of_stats.messages,
        "bytes": of_stats.bytes,
    }]
    emit("EXT-2: NETCONF vs OpenFlow share (emu domain)", rows)
    assert netconf_bytes > 0 and of_stats.bytes > 0
    benchmark(adapter.get_view)
