"""DEMO-iii(a) — recursive orchestration.

"Unify domains can be stacked into a multi-level control hierarchy."
The harness stacks 1..4 ESCAPE levels above one physical emulated
domain, deploys the same chain through the top of each stack and
reports per-level overhead (deploy latency, Unify control bytes),
verifying the chain end to end at the bottom every time.
"""

import time

import pytest

from benchmarks.conftest import emit
from repro.emu import EmulatedDomain
from repro.netem import Network
from repro.netem.packet import tcp_packet
from repro.nffg import NFFGBuilder
from repro.orchestration import (
    EmuDomainAdapter,
    EscapeOrchestrator,
    UnifyAgent,
    UnifyDomainAdapter,
)

LEVELS = [1, 2, 3, 4]


def _stack(levels: int):
    """A physical emu domain under a tower of `levels` orchestrators."""
    net = Network()
    domain = EmulatedDomain("emu", net, node_ids=["emu-bb0", "emu-bb1"],
                            links=[("emu-bb0", "emu-bb1")])
    domain.add_sap("sap1", "emu-bb0")
    domain.add_sap("sap2", "emu-bb1")
    bottom = EscapeOrchestrator("level0", simulator=net.simulator)
    bottom.add_domain(EmuDomainAdapter("emu", domain))
    top = bottom
    adapters = []
    for level in range(1, levels):
        agent = UnifyAgent(top)
        parent = EscapeOrchestrator(f"level{level}",
                                    simulator=net.simulator)
        adapter = UnifyDomainAdapter(f"level{level - 1}-dom", agent)
        parent.add_domain(adapter)
        adapters.append(adapter)
        top = parent
    return net, domain, top, adapters


def _service(service_id: str):
    return (NFFGBuilder(service_id).sap("sap1").sap("sap2")
            .nf(f"{service_id}-fw", "firewall")
            .chain("sap1", f"{service_id}-fw", "sap2", bandwidth=5.0)
            .build())


@pytest.mark.parametrize("levels", LEVELS)
def test_bench_deploy_through_n_levels(benchmark, levels):
    def setup():
        return _stack(levels), {}

    def run(net, domain, top, adapters):
        report = top.deploy(_service("rsvc"))
        assert report.success, report.error
        return net, domain

    net, domain = benchmark.pedantic(run, setup=setup, rounds=3,
                                     iterations=1)
    # verify the dataplane at the very bottom
    h1, h2 = domain.sap_hosts["sap1"], domain.sap_hosts["sap2"]
    h1.send(tcp_packet(h1.ip, h2.ip, tp_dst=80))
    net.run()
    assert len(h2.received) == 1


def test_bench_recursion_overhead_table(benchmark):
    """The DEMO-iii(a) table: cost per added orchestration level."""
    rows = []
    for levels in LEVELS:
        net, domain, top, adapters = _stack(levels)
        started = time.perf_counter()
        report = top.deploy(_service("rsvc"))
        elapsed_ms = (time.perf_counter() - started) * 1e3
        assert report.success, report.error
        unify_bytes = sum(adapter.channel.stats.bytes
                          for adapter in adapters)
        h1, h2 = domain.sap_hosts["sap1"], domain.sap_hosts["sap2"]
        h1.send(tcp_packet(h1.ip, h2.ip, tp_dst=80))
        net.run()
        rows.append({
            "levels": levels,
            "deploy_ms": elapsed_ms,
            "unify_ctrl_bytes": unify_bytes,
            "delivered": len(h2.received),
        })
    emit("DEMO-iii(a): recursive orchestration overhead per level", rows)
    assert all(row["delivered"] == 1 for row in rows)
    # Unify control bytes grow with stacking depth (one interface per
    # added level), while a single level costs none
    assert rows[0]["unify_ctrl_bytes"] == 0
    assert all(a["unify_ctrl_bytes"] < b["unify_ctrl_bytes"]
               for a, b in zip(rows, rows[1:]))
    net, domain, top, _ = _stack(2)
    benchmark(top.resource_view)


def test_bench_view_propagation_depth(benchmark):
    """Cost of pulling the virtual view through N levels."""
    net, domain, top, _ = _stack(4)
    view = benchmark(top.resource_view)
    assert len(view.infras) == 1  # single BiS-BiS after 4 aggregations
    # capacity survives every aggregation unchanged
    assert view.infras[0].resources.cpu == 16.0
