"""EXT-3 — mapping quality x speed matrix on large substrates.

The substrate index (PR 10) exists to keep the mapping layer usable at
thousands of nodes: instead of scanning every infra per NF, embedders
ask ``ctx.candidates(nf, k)`` and get a pruned, capacity-bucketed set.
This matrix measures both axes of that trade on meshes up to 5k nodes:

- **speed** — median map time, full-scan vs index-backed; the gate
  demands the indexed greedy run at the largest size is at least
  ``SPEEDUP_FLOOR`` x faster than the full scan.
- **quality** — mapping cost; the gate demands the indexed run stays
  within ``COST_TOLERANCE`` of the full scan, i.e. pruning must not
  buy speed with materially worse placements.
- **work** — ``nodes_examined`` must grow sub-linearly with substrate
  size when the index is attached (that is the whole point).

The three AccaSim-derived allocators (balanced / weighted / hybrid)
ride along in the matrix so their overhead vs plain greedy is on
record at every size.
"""

import statistics
import time

from benchmarks.conftest import SMOKE, bench_sizes, emit
from repro.mapping import SubstrateIndex, make_embedder

from repro.nffg import NFFGBuilder
from repro.nffg.builder import mesh_substrate

NF_TYPES = ["firewall", "nat", "dpi", "monitor"]
SIZES = bench_sizes([1000, 2500, 5000], smoke=[150, 400])
EMBEDDER_NAMES = ["greedy", "balanced", "weighted", "hybrid"]
CHAIN_LENGTH = 6
REPEATS = 2 if SMOKE else 3
#: indexed cost must stay within this factor of the full-scan cost
COST_TOLERANCE = 1.10
#: full-scan / indexed map-time ratio required at the largest size
SPEEDUP_FLOOR = 5.0


def _chain(length: int, bandwidth: float = 2.0):
    builder = NFFGBuilder(f"chain{length}").sap("sap1").sap("sap2")
    names = []
    for index in range(length):
        name = f"nf{index}"
        builder.nf(name, NF_TYPES[index % len(NF_TYPES)], cpu=1.0)
        names.append(name)
    builder.chain("sap1", *names, "sap2", bandwidth=bandwidth)
    return builder.build()


def _measure(name, service, substrate, index):
    """Median map time over REPEATS runs with a fresh embedder each."""
    times = []
    result = None
    for _ in range(REPEATS):
        embedder = make_embedder(name)
        started = time.perf_counter()
        result = embedder.map(service, substrate, index=index)
        times.append((time.perf_counter() - started) * 1e3)
        assert result.success, (name, result.failure_reason)
    return statistics.median(times), result


def test_bench_mapping_matrix(benchmark):
    """The EXT-3 table: embedder x substrate size, full-scan vs indexed."""
    rows = []
    summary = []
    examined = {}
    for size in SIZES:
        substrate = mesh_substrate(size, degree=3, seed=7,
                                   supported_types=NF_TYPES)
        service = _chain(CHAIN_LENGTH)
        index = SubstrateIndex()
        index.sync(substrate, epoch=1)
        # One warm-up run so the indexed columns measure steady state —
        # in production the CAL keeps one index (and its delay memo) hot
        # across every request on the same topology epoch.
        make_embedder("greedy").map(service, substrate, index=index)

        full_ms, full_result = _measure("greedy", service, substrate, None)
        rows.append({
            "substrate_nodes": size, "embedder": "greedy", "indexed": False,
            "map_ms": full_ms, "cost": full_result.cost,
            "nodes_examined": full_result.nodes_examined,
        })
        for name in EMBEDDER_NAMES:
            indexed_ms, result = _measure(name, service, substrate, index)
            rows.append({
                "substrate_nodes": size, "embedder": name, "indexed": True,
                "map_ms": indexed_ms, "cost": result.cost,
                "nodes_examined": result.nodes_examined,
            })
            if name == "greedy":
                examined[size] = result.nodes_examined
                summary.append({
                    "substrate_nodes": size,
                    "full_scan_ms": full_ms,
                    "indexed_ms": indexed_ms,
                    "speedup_x": full_ms / indexed_ms
                    if indexed_ms else float("inf"),
                    "full_cost": full_result.cost,
                    "indexed_cost": result.cost,
                    "full_examined": full_result.nodes_examined,
                    "indexed_examined": result.nodes_examined,
                })

    emit("EXT-3: mapping quality x speed matrix (embedder x substrate)",
         rows, group="mapping")
    emit("EXT-3: substrate index speedup (greedy, full-scan vs indexed)",
         summary, group="mapping")

    # quality gate: pruning never trades more than COST_TOLERANCE of cost
    for entry in summary:
        assert entry["indexed_cost"] <= COST_TOLERANCE * entry["full_cost"], (
            "indexed greedy cost regressed past tolerance", entry)

    # work gate: nodes_examined grows sub-linearly with substrate size
    small, large = SIZES[0], SIZES[-1]
    size_ratio = large / small
    examined_ratio = examined[large] / max(1, examined[small])
    assert examined_ratio < size_ratio, (
        "indexed nodes_examined is not sub-linear",
        examined, size_ratio)

    # speed gate (full sizes only; smoke substrates are too small for a
    # stable timing ratio and are gated on work + cost instead)
    if not SMOKE:
        top = summary[-1]
        assert top["speedup_x"] >= SPEEDUP_FLOOR, (
            "indexed greedy speedup below floor at largest size", top)

    warm = SubstrateIndex()
    small_substrate = mesh_substrate(SIZES[0], degree=3, seed=7,
                                     supported_types=NF_TYPES)
    warm.sync(small_substrate, epoch=1)
    benchmark(make_embedder("greedy").map, _chain(CHAIN_LENGTH),
              small_substrate, index=warm)
