"""EXT-3 — dataplane behaviour of deployed chains.

Packet-level sanity of the emulated substrates: per-chain latency as
chains lengthen, throughput ceiling at a bottleneck link, and the UN's
fast path vs the emulated software switches.
"""

import pytest

from benchmarks.conftest import emit
from repro.cli import ScenarioRunner
from repro.netem.packet import tcp_packet
from repro.service import ServiceRequestBuilder
from repro.topo import build_emulated_testbed, build_reference_multidomain


def _chain(request_id: str, length: int, flowclass: str = ""):
    builder = ServiceRequestBuilder(request_id).sap("sap1").sap("sap2")
    names = []
    for index in range(length):
        name = f"{request_id}-f{index}"
        builder.nf(name, "forwarder")
        names.append(name)
    builder.chain("sap1", *names, "sap2", bandwidth=1.0,
                  flowclass=flowclass)
    return builder.build()


@pytest.mark.parametrize("length", [1, 3, 5])
def test_bench_latency_vs_chain_length(benchmark, length):
    testbed = build_emulated_testbed(switches=3)
    runner = ScenarioRunner(testbed)
    report = runner.deploy(_chain(f"lat{length}", length))
    assert report.success

    def probe():
        return runner.probe("sap1", "sap2", count=5)

    traffic = benchmark.pedantic(probe, rounds=3, iterations=1)
    assert traffic.delivered == 5


def test_bench_latency_table(benchmark):
    rows = []
    for length in (1, 3, 5):
        testbed = build_emulated_testbed(switches=3)
        runner = ScenarioRunner(testbed)
        report = runner.deploy(_chain(f"lat{length}", length))
        assert report.success, report.error
        traffic = runner.probe("sap1", "sap2", count=10)
        rows.append({
            "chain_nfs": length,
            "delivered": traffic.delivered,
            "mean_latency_ms": traffic.mean_latency_ms,
        })
    emit("EXT-3: end-to-end latency vs chain length", rows)
    latencies = [row["mean_latency_ms"] for row in rows]
    assert latencies == sorted(latencies)  # monotone in NF count
    testbed = build_emulated_testbed(switches=2)
    benchmark(testbed.escape.resource_view)


def test_bench_un_fast_path_vs_emulated(benchmark):
    """DPDK-class LSI forwarding vs the emulated software switch."""
    rows = []
    testbed = build_reference_multidomain()
    runner = ScenarioRunner(testbed)
    # one NF on the UN: sap2-adjacent
    request = (ServiceRequestBuilder("fast")
               .sap("sap1").sap("sap2")
               .nf("fast-f", "forwarder")
               .chain("sap1", "fast-f", "sap2", bandwidth=1.0).build())
    report = runner.deploy(request)
    assert report.success
    traffic = runner.probe("sap1", "sap2", count=10)
    lsi = testbed.un.lsi
    emu_switch = testbed.emu.switches["emu-bb0"]
    rows.append({
        "element": "UN LSI forwarding delay (ms)",
        "value": lsi.forwarding_delay_ms,
    })
    rows.append({
        "element": "emulated switch forwarding delay (ms)",
        "value": emu_switch.forwarding_delay_ms,
    })
    rows.append({
        "element": "chain mean latency (ms)",
        "value": traffic.mean_latency_ms,
    })
    emit("EXT-3: Universal Node fast path", rows)
    assert lsi.forwarding_delay_ms < emu_switch.forwarding_delay_ms
    benchmark(lambda: runner.probe("sap1", "sap2", count=2))


def test_bench_throughput_bottleneck(benchmark):
    """Delivered share collapses to the bottleneck link's capacity."""
    testbed = build_emulated_testbed(switches=2)
    # shrink the inter-switch link to 2 Mbit/s and keep short queues
    for link in testbed.network.links:
        if "emu-bb0" in (link.node_a.id, link.node_b.id) \
                and "emu-bb1" in (link.node_a.id, link.node_b.id):
            link.bandwidth_mbps = 2.0
            link.queue_packets = 8
    runner = ScenarioRunner(testbed)
    report = runner.deploy(_chain("bneck", 1))
    assert report.success

    def blast():
        src = testbed.host("sap1")
        dst = testbed.host("sap2")
        dst.clear()
        packets = [tcp_packet(src.ip, dst.ip, size=1500,
                              tp_src=30000 + i) for i in range(60)]
        src.send_burst(packets, interval=0.05)  # 240 Mbit/s offered
        testbed.run()
        return len(dst.received)

    delivered = benchmark.pedantic(blast, rounds=2, iterations=1)
    emit("EXT-3: bottleneck behaviour",
         [{"offered_packets": 60, "delivered": delivered,
           "delivery_ratio": delivered / 60}])
    assert delivered < 60  # the 2 Mbit/s link cannot carry the burst
    assert delivered > 0
