"""EXT-1 — embedding algorithm scalability.

Mapping time vs substrate size and chain length for the three pluggable
embedders ("can be extended easily with ... network embedding
algorithms").  The shapes to expect: polynomial growth in substrate
size, near-linear in chain length, greedy < delay-aware < backtracking
in cost-of-search.
"""

import statistics
import time

import pytest

from benchmarks.conftest import SMOKE, bench_sizes, emit
from repro.mapping import (
    BacktrackingEmbedder,
    DelayAwareEmbedder,
    GreedyEmbedder,
)
from repro.mapping.pathcache import PathCache
from repro.nffg import NFFGBuilder
from repro.nffg.builder import mesh_substrate

NF_TYPES = ["firewall", "nat", "dpi", "monitor"]
SIZES = bench_sizes([10, 50, 150], smoke=[10, 30])
EMBEDDERS = {
    "greedy": GreedyEmbedder,
    "backtrack": BacktrackingEmbedder,
    "delay-aware": DelayAwareEmbedder,
}


def _chain(length: int, bandwidth: float = 2.0):
    builder = NFFGBuilder(f"chain{length}").sap("sap1").sap("sap2")
    names = []
    for index in range(length):
        name = f"nf{index}"
        builder.nf(name, NF_TYPES[index % len(NF_TYPES)], cpu=1.0)
        names.append(name)
    builder.chain("sap1", *names, "sap2", bandwidth=bandwidth)
    return builder.build()


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("name", list(EMBEDDERS))
def test_bench_mapping_vs_substrate_size(benchmark, name, size):
    substrate = mesh_substrate(size, degree=3, seed=2,
                               supported_types=NF_TYPES)
    service = _chain(4)
    embedder = EMBEDDERS[name]()
    result = benchmark(embedder.map, service, substrate)
    assert result.success, result.failure_reason


@pytest.mark.parametrize("length", [2, 6, 10])
def test_bench_mapping_vs_chain_length(benchmark, length):
    substrate = mesh_substrate(40, degree=3, seed=2,
                               supported_types=NF_TYPES)
    service = _chain(length)
    result = benchmark(GreedyEmbedder().map, service, substrate)
    assert result.success, result.failure_reason


def test_bench_scalability_table(benchmark):
    """The EXT-1 table: embedder x substrate size -> time and cost."""
    rows = []
    for size in SIZES:
        substrate = mesh_substrate(size, degree=3, seed=2,
                                   supported_types=NF_TYPES)
        service = _chain(4)
        for name, embedder_cls in EMBEDDERS.items():
            embedder = embedder_cls()
            started = time.perf_counter()
            result = embedder.map(service, substrate)
            elapsed_ms = (time.perf_counter() - started) * 1e3
            assert result.success, (name, size, result.failure_reason)
            rows.append({
                "substrate_nodes": size,
                "embedder": name,
                "map_ms": elapsed_ms,
                "cost": result.cost,
                "nodes_examined": result.nodes_examined,
            })
    emit("EXT-1: mapping time vs substrate size", rows, group="mapping")
    # polynomial growth: biggest substrate is slower than smallest for
    # every embedder, but still sub-second
    for name in EMBEDDERS:
        times = [row["map_ms"] for row in rows if row["embedder"] == name]
        assert times[-1] < 2000.0
    benchmark(GreedyEmbedder().map, _chain(4),
              mesh_substrate(SIZES[0], degree=3, seed=2,
                             supported_types=NF_TYPES))


def test_bench_path_cache_repeat(benchmark):
    """Shared path cache across repeated requests on one substrate.

    The second and later requests should route mostly from the memo —
    the table shows uncached vs cached mean mapping time and the
    cache's hit counters.
    """
    size = SIZES[-1]
    substrate = mesh_substrate(size, degree=3, seed=2,
                               supported_types=NF_TYPES)
    service = _chain(4)
    repeats = 3 if SMOKE else 10
    embedder = GreedyEmbedder()

    def _median_ms(cache):
        times = []
        for _ in range(repeats):
            started = time.perf_counter()
            if cache is None:
                result = embedder.map(service, substrate)
            else:
                result = embedder.map(service, substrate, path_cache=cache)
            times.append((time.perf_counter() - started) * 1e3)
            assert result.success, result.failure_reason
        return statistics.median(times)

    uncached_ms = _median_ms(None)
    cache = PathCache()
    cached_ms = _median_ms(cache)

    emit("EXT-1: shared path cache on repeated requests", [{
        "substrate_nodes": size,
        "repeats": repeats,
        "uncached_ms": uncached_ms,
        "cached_ms": cached_ms,
        "speedup_x": uncached_ms / cached_ms if cached_ms else float("inf"),
        "cache_hits": cache.hits,
        "cache_misses": cache.misses,
    }], group="mapping")
    assert cache.hits > 0
    benchmark(embedder.map, service, substrate, path_cache=cache)
