"""EXT-1 — embedding algorithm scalability.

Mapping time vs substrate size and chain length for the three pluggable
embedders ("can be extended easily with ... network embedding
algorithms").  The shapes to expect: polynomial growth in substrate
size, near-linear in chain length, greedy < delay-aware < backtracking
in cost-of-search.
"""

import time

import pytest

from benchmarks.conftest import emit
from repro.mapping import (
    BacktrackingEmbedder,
    DelayAwareEmbedder,
    GreedyEmbedder,
)
from repro.nffg import NFFGBuilder
from repro.nffg.builder import mesh_substrate

NF_TYPES = ["firewall", "nat", "dpi", "monitor"]
SIZES = [10, 50, 150]
EMBEDDERS = {
    "greedy": GreedyEmbedder,
    "backtrack": BacktrackingEmbedder,
    "delay-aware": DelayAwareEmbedder,
}


def _chain(length: int, bandwidth: float = 2.0):
    builder = NFFGBuilder(f"chain{length}").sap("sap1").sap("sap2")
    names = []
    for index in range(length):
        name = f"nf{index}"
        builder.nf(name, NF_TYPES[index % len(NF_TYPES)], cpu=1.0)
        names.append(name)
    builder.chain("sap1", *names, "sap2", bandwidth=bandwidth)
    return builder.build()


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("name", list(EMBEDDERS))
def test_bench_mapping_vs_substrate_size(benchmark, name, size):
    substrate = mesh_substrate(size, degree=3, seed=2,
                               supported_types=NF_TYPES)
    service = _chain(4)
    embedder = EMBEDDERS[name]()
    result = benchmark(embedder.map, service, substrate)
    assert result.success, result.failure_reason


@pytest.mark.parametrize("length", [2, 6, 10])
def test_bench_mapping_vs_chain_length(benchmark, length):
    substrate = mesh_substrate(40, degree=3, seed=2,
                               supported_types=NF_TYPES)
    service = _chain(length)
    result = benchmark(GreedyEmbedder().map, service, substrate)
    assert result.success, result.failure_reason


def test_bench_scalability_table(benchmark):
    """The EXT-1 table: embedder x substrate size -> time and cost."""
    rows = []
    for size in SIZES:
        substrate = mesh_substrate(size, degree=3, seed=2,
                                   supported_types=NF_TYPES)
        service = _chain(4)
        for name, embedder_cls in EMBEDDERS.items():
            embedder = embedder_cls()
            started = time.perf_counter()
            result = embedder.map(service, substrate)
            elapsed_ms = (time.perf_counter() - started) * 1e3
            assert result.success, (name, size, result.failure_reason)
            rows.append({
                "substrate_nodes": size,
                "embedder": name,
                "map_ms": elapsed_ms,
                "cost": result.cost,
                "nodes_examined": result.nodes_examined,
            })
    emit("EXT-1: mapping time vs substrate size", rows)
    # polynomial growth: biggest substrate is slower than smallest for
    # every embedder, but still sub-second
    for name in EMBEDDERS:
        times = [row["map_ms"] for row in rows if row["embedder"] == name]
        assert times[-1] < 2000.0
    benchmark(GreedyEmbedder().map, _chain(4),
              mesh_substrate(SIZES[0], degree=3, seed=2,
                             supported_types=NF_TYPES))
