"""DEMO-iii(b) — NF decomposition.

Reproduces the shape of ref [2] (Sahhaf et al., NetSoft'15): selecting
among alternative NF decompositions during mapping improves the request
acceptance ratio and lowers resource cost compared to fixed single-
implementation mapping.  Workload: a stream of vCPE/dpi/lb-web tenants
over a substrate whose domains support different component images.
"""

import pytest

from benchmarks.conftest import emit
from repro.mapping import (
    GreedyEmbedder,
    default_decomposition_library,
)
from repro.mapping.decomposition import map_with_decomposition
from repro.nffg import NFFGBuilder
from repro.nffg.builder import mesh_substrate
from repro.orchestration import ResourceOrchestrator
from repro.sim import SeededRandom

ABSTRACT_TYPES = ["vCPE", "dpi", "lb-web"]
#: per-node supported component images: intentionally heterogeneous so
#: no single decomposition option fits everywhere
IMAGE_SETS = [
    ["firewall", "nat", "classifier", "analyzer"],
    ["fw-nat-combo", "loadbalancer", "webserver"],
    ["firewall", "nat", "dpi", "loadbalancer", "webserver"],
]


def _substrate(num_nodes=12, seed=3, cpu=6.0):
    substrate = mesh_substrate(num_nodes, degree=3, seed=seed, cpu=cpu,
                               supported_types=["firewall"])
    rng = SeededRandom(seed)
    for infra in substrate.infras:
        infra.supported_types = set(rng.choice(IMAGE_SETS))
    return substrate


def _tenant(index: int, rng: SeededRandom):
    abstract = rng.choice(ABSTRACT_TYPES)
    request_id = f"tenant{index}"
    return (NFFGBuilder(request_id).sap("sap1").sap("sap2")
            .nf(f"{request_id}-nf", abstract, num_ports=2)
            .chain("sap1", f"{request_id}-nf", "sap2", bandwidth=2.0)
            .build())


def _run_workload(decomposition: bool, tenants: int = 30, seed: int = 7):
    substrate = _substrate()
    library = default_decomposition_library() if decomposition else None
    ro = ResourceOrchestrator(GreedyEmbedder(),
                              decomposition_library=library)
    rng = SeededRandom(seed)
    accepted = 0
    total_cost = 0.0
    from repro.mapping.base import MappingContext
    view = substrate
    for index in range(tenants):
        service = _tenant(index, rng)
        result = ro.orchestrate(service, view)
        if result.success:
            accepted += 1
            total_cost += result.cost
            # consume resources for subsequent tenants
            effective = result.service or service
            ctx = MappingContext(effective, view)
            for nf_id, infra_id in result.nf_placement.items():
                ctx.place(nf_id, infra_id)
            for route in result.hop_routes.values():
                ctx.record_route(route)
            view = ctx.commit()
    return accepted, total_cost, tenants


def test_bench_decomposition_acceptance(benchmark):
    """The DEMO-iii(b) table: acceptance and cost, decomposition on/off."""
    rows = []
    for enabled in (False, True):
        accepted, cost, tenants = _run_workload(enabled)
        rows.append({
            "decomposition": "on" if enabled else "off",
            "tenants": tenants,
            "accepted": accepted,
            "acceptance_ratio": accepted / tenants,
            "mean_cost_per_accepted": (cost / accepted) if accepted else 0.0,
        })
    emit("DEMO-iii(b): NF decomposition improves acceptance (ref [2] shape)",
         rows)
    off_row = next(r for r in rows if r["decomposition"] == "off")
    on_row = next(r for r in rows if r["decomposition"] == "on")
    # without decomposition only the directly-deployable tenants embed
    # (dpi where a dpi image happens to exist); with it most of the
    # workload does — the acceptance-ratio shape of ref [2]
    assert off_row["acceptance_ratio"] <= 0.5
    assert on_row["acceptance_ratio"] >= 0.8
    assert on_row["accepted"] > 2 * off_row["accepted"]
    benchmark.pedantic(lambda: _run_workload(True, tenants=10),
                       rounds=2, iterations=1)


@pytest.mark.parametrize("option_count", [1, 2])
def test_bench_decomposition_option_search(benchmark, option_count):
    """Cost of trying up to N decomposition options per request."""
    substrate = _substrate()
    library = default_decomposition_library()
    service = (NFFGBuilder("probe").sap("sap1").sap("sap2")
               .nf("probe-nf", "vCPE")
               .chain("sap1", "probe-nf", "sap2", bandwidth=2.0).build())
    embedder = GreedyEmbedder()
    result = benchmark(map_with_decomposition, embedder, service,
                       substrate, library, option_count)
    if option_count >= 2:
        assert result.success


def test_bench_alternative_choice_under_pressure(benchmark):
    """When nodes with the cheap option fill up, mapping falls back to
    the alternative decomposition — choice is exercised, not just
    configured."""
    accepted_options: dict[str, int] = {}
    substrate = _substrate(num_nodes=8, cpu=4.0)
    library = default_decomposition_library()
    view = substrate
    from repro.mapping.base import MappingContext
    rng = SeededRandom(11)
    for index in range(20):
        request_id = f"vcpe{index}"
        service = (NFFGBuilder(request_id).sap("sap1").sap("sap2")
                   .nf(f"{request_id}-nf", "vCPE")
                   .chain("sap1", f"{request_id}-nf", "sap2",
                          bandwidth=1.0).build())
        result = map_with_decomposition(GreedyEmbedder(), service, view,
                                        library)
        if not result.success:
            continue
        option = list(result.decompositions.values())[0]
        accepted_options[option] = accepted_options.get(option, 0) + 1
        effective = result.service or service
        ctx = MappingContext(effective, view)
        for nf_id, infra_id in result.nf_placement.items():
            ctx.place(nf_id, infra_id)
        for route in result.hop_routes.values():
            ctx.record_route(route)
        view = ctx.commit()
    emit("DEMO-iii(b): decomposition options chosen under load",
         [{"option": option, "times_chosen": count}
          for option, count in sorted(accepted_options.items())])
    assert len(accepted_options) >= 2  # both options actually used
    benchmark(lambda: default_decomposition_library().options_for("vCPE"))
