"""DEMO-i — joint domain abstraction for networks and clouds.

The paper's first showcased capability: heterogeneous domains (compute
clusters, SDN networks, packet processors) are all presented as
interconnected BiS-BiS nodes.  Measured here:

- view-construction cost for single-BiS-BiS vs full-topology policies
  as the underlying domain grows;
- the *compression* the abstraction buys (nodes/links exposed to the
  client vs nodes/links that exist) — the reason the single-BiS-BiS
  client's "orchestration task is trivial";
- virtualizer-tree encoding cost (the YANG narrow waist).
"""

import pytest

from benchmarks.conftest import emit
from repro.nffg.builder import mesh_substrate
from repro.virtualizer import (
    FullTopologyView,
    SingleBiSBiSView,
    nffg_to_virtualizer,
    virtualizer_to_nffg,
)

SIZES = [10, 40, 160]


@pytest.mark.parametrize("size", SIZES)
def test_bench_single_bisbis_view(benchmark, size):
    domain = mesh_substrate(size, degree=3, seed=1,
                            supported_types=["firewall", "nat"])
    policy = SingleBiSBiSView()
    view = benchmark(policy.build_view, domain, "client")
    assert len(view.infras) == 1


@pytest.mark.parametrize("size", SIZES)
def test_bench_full_topology_view(benchmark, size):
    domain = mesh_substrate(size, degree=3, seed=1,
                            supported_types=["firewall", "nat"])
    policy = FullTopologyView()
    view = benchmark(policy.build_view, domain, "client")
    assert len(view.infras) == size


@pytest.mark.parametrize("size", SIZES)
def test_bench_virtualizer_encoding(benchmark, size):
    domain = mesh_substrate(size, degree=3, seed=1,
                            supported_types=["firewall"])
    virt = benchmark(nffg_to_virtualizer, domain)
    back = virtualizer_to_nffg(virt)
    assert len(back.infras) == size


def test_bench_abstraction_compression(benchmark):
    """The DEMO-i table: what each client sees vs what exists."""
    rows = []
    for size in SIZES:
        domain = mesh_substrate(size, degree=3, seed=1,
                                supported_types=["firewall", "nat"])
        single = SingleBiSBiSView().build_view(domain, "c1")
        full = FullTopologyView().build_view(domain, "c2")
        real_nodes = len(domain.infras)
        real_links = len(domain.links)
        rows.append({
            "domain_nodes": real_nodes,
            "domain_links": real_links,
            "single_bisbis_nodes": len(single.infras),
            "single_bisbis_compression": real_nodes / len(single.infras),
            "full_view_nodes": len(full.infras),
            "cpu_preserved": (single.infras[0].resources.cpu
                              == sum(i.resources.cpu
                                     for i in domain.infras)),
        })
    emit("DEMO-i: BiS-BiS abstraction compression", rows)
    assert all(row["cpu_preserved"] for row in rows)
    assert all(row["single_bisbis_nodes"] == 1 for row in rows)
    # keep a timed section so the harness reports something comparable
    domain = mesh_substrate(SIZES[-1], degree=3, seed=1)
    benchmark(SingleBiSBiSView().build_view, domain, "timed")
