"""CP-3 — deploy latency vs domain count under the sharded CAL.

The scaling claim behind the sharded registry and the touched-set push
planner: per-deploy control-plane work is proportional to the domains a
service *touches*, not to the domains the orchestrator *manages*.  We
sweep the domain count with a fixed single-domain service shape; every
deploy touches exactly one domain, so a flat CAL's full fan-out (and
full per-domain re-slice) would grow linearly while the planned push
stays O(1) in pushes — only the DoV copy inside the embedder scales
with the substrate.

Gate (full run): deploy latency at 100 domains must come in at or
under 0.4x the linear extrapolation from the 10-domain point.  The
smoke sweep (10/30) applies the analogous bound at its largest size.
"""

import time

from benchmarks.conftest import SMOKE, bench_sizes, emit
from repro import perf
from repro.nffg import NFFG, ResourceVector
from repro.orchestration.adapters import DirectDomainAdapter
from repro.orchestration.escape import EscapeOrchestrator
from repro.service import ServiceRequestBuilder

DOMAIN_COUNTS = bench_sizes([10, 30, 100, 300], [10, 30])
TIMED_DEPLOYS = 6 if SMOKE else 12


def _domain_view(name: str) -> NFFG:
    """One BiSBiS + two SAPs, every id prefixed by the domain name so
    hundreds of these merge into one DoV without collisions."""
    view = NFFG(id=name)
    infra = view.add_infra(
        f"{name}-bb0",
        resources=ResourceVector(cpu=64.0, mem=65536.0, storage=512.0,
                                 bandwidth=40_000.0, delay=0.1),
        supported_types=["firewall"])
    for sap_id in (f"{name}-sap1", f"{name}-sap2"):
        sap = view.add_sap(sap_id)
        port = infra.add_port(f"to-{sap_id}", sap_tag=sap_id)
        view.add_link(sap_id, next(iter(sap.ports)), infra.id, port.id,
                      bandwidth=10_000.0, delay=0.0)
    return view


def _service(index: int, domain: str) -> NFFG:
    """A sap-nf-sap chain pinned inside one domain — the deploy's
    touched-set is exactly ``{domain}`` regardless of fleet size."""
    return (ServiceRequestBuilder(f"svc{index}")
            .sap(f"{domain}-sap1").sap(f"{domain}-sap2")
            .nf(f"svc{index}-fw", "firewall", cpu=0.5, mem=64.0,
                pin_to=f"{domain}-bb0")
            .chain(f"{domain}-sap1", f"svc{index}-fw", f"{domain}-sap2",
                   bandwidth=1.0)
            .build().sg)


def _measure(domains: int) -> dict:
    escape = EscapeOrchestrator(f"scale{domains}",
                                cal_shards=max(1, domains // 8))
    names = [f"d{index}" for index in range(domains)]
    for name in names:
        escape.add_domain(DirectDomainAdapter(name, _domain_view(name)))

    # warmup: first deploy pays the full merge + path-cache build +
    # worker-pool spin-up, and (riding the rebuild) a full fan-out
    warmup = escape.deploy(_service(0, names[0]), wait_activation=False)
    assert warmup.success, warmup.error

    perf.reset()
    started = time.perf_counter()
    for index in range(1, TIMED_DEPLOYS + 1):
        domain = names[index % domains]
        report = escape.deploy(_service(index, domain),
                               wait_activation=False)
        assert report.success, report.error
        assert [r.domain for r in report.adapters] == [domain]
    elapsed_ms = (time.perf_counter() - started) * 1e3
    snapshot = perf.snapshot()

    # planner effectiveness: one push per deploy, everything else
    # skipped; steady state never re-merges a shard
    assert snapshot.get("cal.push.planned", 0) == TIMED_DEPLOYS
    assert snapshot.get("cal.push.skipped", 0) \
        == TIMED_DEPLOYS * (domains - 1)
    assert snapshot.get("cal.shard.refresh", 0) == 0
    assert snapshot.get("dov.rebuild", 0) == 0

    return {
        "domains": domains,
        "shards": len(escape.cal.shards),
        "deploys": TIMED_DEPLOYS,
        "ms_per_deploy": elapsed_ms / TIMED_DEPLOYS,
        "pushes": snapshot.get("cal.push.planned", 0),
        "skipped": snapshot.get("cal.push.skipped", 0),
        "shard_refreshes": snapshot.get("cal.shard.refresh", 0),
    }


def test_bench_deploy_latency_vs_domain_count():
    """The CP-3 table, plus the sub-linear scaling gate."""
    rows = [_measure(domains) for domains in DOMAIN_COUNTS]
    base = rows[0]
    for row in rows[1:]:
        linear = base["ms_per_deploy"] * row["domains"] / base["domains"]
        row["linear_ms"] = linear
        row["vs_linear"] = row["ms_per_deploy"] / linear
    emit("CP-3: deploy latency vs managed domain count (single-domain "
         "service, planned push)", rows, group="control_plane")

    # the 0.4x factor is calibrated for the 100-domain point; the
    # reduced smoke sweep tops out at 30 domains, where the fixed
    # per-deploy cost dominates both sides — gate it at sub-linear
    # instead of a factor tuned for a 10x extrapolation
    gated = next((row for row in rows if row["domains"] == 100), rows[-1])
    factor = 0.4 if gated["domains"] >= 100 else 0.8
    assert gated["ms_per_deploy"] <= factor * gated["linear_ms"], (
        f"{gated['domains']}-domain deploy "
        f"{gated['ms_per_deploy']:.2f} ms exceeds {factor}x the linear "
        f"extrapolation {gated['linear_ms']:.2f} ms from "
        f"{base['domains']} domains")
