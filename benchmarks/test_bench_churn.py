"""EXT-4 — service churn: arrivals and departures over time.

The "automated, dynamic service creation" claim under sustained load:
tenants arrive (Poisson), hold their chains, and leave; the harness
tracks acceptance ratio and resource utilization as offered load grows.
Expected shape: acceptance degrades gracefully past the knee, resources
are fully returned after every departure (no leakage)."""


from benchmarks.conftest import emit
from repro.topo import build_reference_multidomain
from repro.workload import WorkloadGenerator


from repro.workload import ChainTemplate

#: heavier mix so concurrency actually contends on the 10 Gbit/s-scale
#: inter-domain links and the hosting CPUs
HEAVY_TEMPLATES = (
    ChainTemplate("access", ("firewall", "nat"), (300.0, 900.0),
                  (40.0, 120.0), weight=3.0),
    ChainTemplate("inspection", ("firewall", "dpi"), (200.0, 600.0),
                  (60.0, 200.0), weight=2.0),
    ChainTemplate("media", ("transcoder",), (500.0, 1500.0), None,
                  weight=2.0),
)


def _run_churn(rate_per_s: float, tenants: int = 30, seed: int = 5):
    testbed = build_reference_multidomain()
    generator = WorkloadGenerator(
        seed=seed, sap_ids=("sap1", "sap2", "sap3"),
        templates=HEAVY_TEMPLATES)
    requests = generator.poisson_arrivals(tenants, rate_per_s=rate_per_s,
                                          mean_holding_s=30.0)
    escape = testbed.escape
    accepted = rejected = 0
    departures: list[tuple[float, str]] = []
    for request in requests:
        # process departures scheduled before this arrival
        for departure_ms, service_id in list(departures):
            if departure_ms <= request.arrival_ms:
                escape.teardown(service_id)
                departures.remove((departure_ms, service_id))
        report = escape.deploy(request.service, wait_activation=False)
        if report.success:
            accepted += 1
            departures.append(
                (request.arrival_ms + request.holding_ms,
                 request.service.id))
        else:
            rejected += 1
    # drain everything
    for _, service_id in departures:
        escape.teardown(service_id)
    leftover = escape.deployed_services()
    view = escape.resource_view()
    free_cpu = sum(infra.resources.cpu for infra in view.infras)
    return accepted, rejected, leftover, free_cpu


def test_bench_churn_acceptance_curve(benchmark):
    rows = []
    pristine_cpu = None
    for rate in (0.2, 1.0, 5.0):
        accepted, rejected, leftover, free_cpu = _run_churn(rate)
        if pristine_cpu is None:
            pristine = build_reference_multidomain().escape.resource_view()
            pristine_cpu = sum(i.resources.cpu for i in pristine.infras)
        rows.append({
            "arrival_rate_per_s": rate,
            "accepted": accepted,
            "rejected": rejected,
            "acceptance_ratio": accepted / (accepted + rejected),
            "free_cpu_after_drain": free_cpu,
            "leaked_services": len(leftover),
        })
    emit("EXT-4: acceptance under churn (30 tenants, Poisson arrivals)",
         rows)
    # graceful degradation: higher arrival rate (more concurrency) never
    # improves acceptance
    ratios = [row["acceptance_ratio"] for row in rows]
    assert ratios == sorted(ratios, reverse=True)
    # zero leakage at every load point
    assert all(row["leaked_services"] == 0 for row in rows)
    assert all(row["free_cpu_after_drain"] == pristine_cpu for row in rows)
    benchmark.pedantic(lambda: _run_churn(1.0, tenants=10), rounds=2,
                       iterations=1)


def test_bench_churn_with_decomposition(benchmark):
    """Abstract tenants in the mix require the decomposition engine."""
    testbed = build_reference_multidomain()
    assert testbed.escape.ro.decomposition_library is not None
    generator = WorkloadGenerator(seed=9, sap_ids=("sap1", "sap2", "sap3"))
    accepted_by_template: dict[str, int] = {}
    for request in generator.batch(20):
        report = testbed.escape.deploy(request.service,
                                       wait_activation=False)
        if report.success:
            accepted_by_template[request.template] = \
                accepted_by_template.get(request.template, 0) + 1
    emit("EXT-4: accepted tenants by template",
         [{"template": template, "accepted": count}
          for template, count in sorted(accepted_by_template.items())])
    assert "abstract-cpe" in accepted_by_template  # decomposition worked
    benchmark(lambda: WorkloadGenerator(seed=1).batch(20))
