"""ABL-1 — view-policy ablation (design choice called out in DESIGN.md).

How much virtual view should a virtualizer expose?  The paper's
architecture permits "arbitrary interconnection of BiS-BiS nodes"; this
ablation quantifies the trade-off across the three policies:

- single BiS-BiS: tiny view, client mapping trivial, all placement
  freedom delegated;
- per-domain BiS-BiS: domain boundaries visible, placement can pin
  domains;
- full topology: complete control, biggest view and mapping problem.
"""

import time

import pytest

from benchmarks.conftest import emit
from repro.mapping import GreedyEmbedder
from repro.nffg import NFFGBuilder
from repro.topo import build_reference_multidomain
from repro.virtualizer import nffg_to_virtualizer
from repro.virtualizer.views import (
    FullTopologyView,
    PerDomainBiSBiSView,
    SingleBiSBiSView,
)

POLICIES = {
    "single-bisbis": SingleBiSBiSView,
    "per-domain": PerDomainBiSBiSView,
    "full-topology": FullTopologyView,
}


def _service():
    return (NFFGBuilder("abl").sap("sap1").sap("sap2")
            .nf("abl-fw", "firewall").nf("abl-nat", "nat")
            .chain("sap1", "abl-fw", "abl-nat", "sap2",
                   bandwidth=5.0).build())


@pytest.mark.parametrize("name", list(POLICIES))
def test_bench_view_generation(benchmark, name):
    dov = build_reference_multidomain(
        emu_switches=6, sdn_switches=4).escape.cal.dov
    policy = POLICIES[name]()
    view = benchmark(policy.build_view, dov, "client")
    assert view.infras


@pytest.mark.parametrize("name", list(POLICIES))
def test_bench_client_mapping_per_policy(benchmark, name):
    dov = build_reference_multidomain().escape.cal.dov
    view = POLICIES[name]().build_view(dov, "client")
    result = benchmark(GreedyEmbedder().map, _service(), view)
    assert result.success, result.failure_reason


def test_bench_view_ablation_table(benchmark):
    rows = []
    dov = build_reference_multidomain(
        emu_switches=6, sdn_switches=4).escape.cal.dov
    for name, policy_cls in POLICIES.items():
        policy = policy_cls()
        started = time.perf_counter()
        view = policy.build_view(dov, "client")
        build_ms = (time.perf_counter() - started) * 1e3
        wire_bytes = len(nffg_to_virtualizer(view).tree.to_json().encode())
        started = time.perf_counter()
        result = GreedyEmbedder().map(_service(), view)
        map_ms = (time.perf_counter() - started) * 1e3
        assert result.success, (name, result.failure_reason)
        rows.append({
            "policy": name,
            "view_nodes": len(view.infras),
            "view_wire_bytes": wire_bytes,
            "view_build_ms": build_ms,
            "client_map_ms": map_ms,
            "client_examined": result.nodes_examined,
        })
    emit("ABL-1: virtual view policy trade-off", rows)
    by_name = {row["policy"]: row for row in rows}
    # the delegation claim: the single-BiS-BiS client's mapping problem
    # is the smallest, the full-topology client's the largest
    assert by_name["single-bisbis"]["client_examined"] <= \
        by_name["per-domain"]["client_examined"] <= \
        by_name["full-topology"]["client_examined"]
    assert by_name["single-bisbis"]["view_wire_bytes"] < \
        by_name["full-topology"]["view_wire_bytes"]
    benchmark(SingleBiSBiSView().build_view, dov, "timed")
