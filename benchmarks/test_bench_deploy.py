"""DEMO-ii — orchestrate, optimize and deploy service chains over
unified resources.

The paper's second showcased capability.  The harness deploys chains of
growing length over the Fig. 1 testbed and decomposes where the time
goes (view build / mapping / per-domain config push) plus the virtual-
time activation latency (container starts vs VM boots), and verifies
every deployment by delivering packets.
"""

import pytest

from benchmarks.conftest import emit
from repro.cli import ScenarioRunner
from repro.service import ServiceRequestBuilder
from repro.topo import build_reference_multidomain

CHAIN_NF_TYPES = ["firewall", "nat", "monitor", "classifier", "forwarder",
                  "dpi"]


def _chain_request(request_id: str, length: int):
    builder = (ServiceRequestBuilder(request_id)
               .sap("sap1").sap("sap2"))
    names = []
    for index in range(length):
        name = f"{request_id}-nf{index}"
        builder.nf(name, CHAIN_NF_TYPES[index % len(CHAIN_NF_TYPES)])
        names.append(name)
    builder.chain("sap1", *names, "sap2", bandwidth=5.0)
    return builder.build()


@pytest.mark.parametrize("length", [1, 2, 4, 6])
def test_bench_deploy_chain(benchmark, length):
    """End-to-end deployment latency for an N-NF chain."""

    def setup():
        return (build_reference_multidomain(),), {}

    def run(testbed):
        report = testbed.service_layer.submit(
            _chain_request(f"chain{length}", length))
        assert report.success, report.error
        return report

    report = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    assert len(report.mapping.nf_placement) == length


def test_bench_deploy_phase_breakdown(benchmark):
    """The DEMO-ii table: where deployment time goes, by chain length."""
    rows = []
    for length in (1, 2, 4, 6):
        testbed = build_reference_multidomain()
        runner = ScenarioRunner(testbed)
        report, traffic = runner.deploy_and_probe(
            _chain_request(f"pb{length}", length), "sap1", "sap2", count=2)
        assert report.success, report.error
        rows.append({
            "chain_nfs": length,
            "map_ms": report.mapping_time_s * 1e3,
            "push_ms": report.push_time_s * 1e3,
            "ctrl_msgs": report.control_messages,
            "ctrl_bytes": report.control_bytes,
            "activation_vms": report.activation_virtual_ms,
            "delivered": traffic.delivered,
        })
    emit("DEMO-ii: deployment phase breakdown", rows)
    # mapping stays a small share; push (domain config) dominates
    assert all(row["delivered"] == 2 for row in rows)
    # control cost grows with chain length
    assert rows[-1]["ctrl_bytes"] > rows[0]["ctrl_bytes"]
    testbed = build_reference_multidomain()
    benchmark(testbed.service_layer.submit, _chain_request("timed", 2))


def test_bench_activation_container_vs_vm(benchmark):
    """Universal Node containers activate an order of magnitude faster
    than cloud VM boots — the UN's raison d'etre in the demo."""
    rows = []
    for target, expected in (("un", "container"), ("cloud", "vm")):
        testbed = build_reference_multidomain()
        # NB: an *empty* supported-types set means "anything" in the
        # NFFG model, so restrictions use a harmless concrete type
        testbed.emu.supported_types = ["forwarder"]
        if target == "un":
            # forbid the cloud by exhausting its compute inventory
            for host in testbed.cloud.nova.hosts.values():
                host.vcpus_used = host.vcpus
        else:
            testbed.un.runtime.cpu_capacity = 0.0
        request = (ServiceRequestBuilder(f"act-{target}")
                   .sap("sap1").sap("sap2")
                   .nf(f"act-{target}-fw", "firewall")
                   .chain("sap1", f"act-{target}-fw", "sap2",
                          bandwidth=1.0).build())
        report = testbed.service_layer.submit(request)
        assert report.success, report.error
        placement = list(report.mapping.nf_placement.values())[0]
        rows.append({
            "execution_env": expected,
            "placed_on": placement,
            "activation_virtual_ms": report.activation_virtual_ms,
        })
    emit("DEMO-ii: NF activation latency by execution environment", rows)
    container_ms = next(r["activation_virtual_ms"] for r in rows
                        if r["execution_env"] == "container")
    vm_ms = next(r["activation_virtual_ms"] for r in rows
                 if r["execution_env"] == "vm")
    assert vm_ms >= 4 * container_ms
    benchmark(lambda: build_reference_multidomain().escape.resource_view())


def test_bench_sequential_tenant_load(benchmark):
    """Acceptance under load: submit tenants until capacity runs out."""

    def run():
        testbed = build_reference_multidomain()
        accepted = 0
        for index in range(40):
            request = (ServiceRequestBuilder(f"tenant{index}")
                       .sap("sap1").sap("sap2")
                       .nf(f"t{index}-fw", "firewall",
                           cpu=2.0, mem=512.0)
                       .chain("sap1", f"t{index}-fw", "sap2",
                              bandwidth=200.0,
                              flowclass=f"tp_dst={8000 + index}")
                       .build())
            if testbed.service_layer.submit(request).success:
                accepted += 1
            else:
                break
        return accepted

    accepted = benchmark.pedantic(run, rounds=2, iterations=1)
    emit("DEMO-ii: tenants accepted before exhaustion",
         [{"accepted_tenants": accepted}])
    assert accepted >= 4
