"""FIG1 — the joint SFC control plane over four technology domains.

Reproduces the paper's Fig. 1 claim: one narrow-waist API drives an
emulated Mininet-like domain, a legacy POX-controlled OpenFlow network,
an OpenStack+ODL cloud and a Universal Node.  The benchmark measures
the cost of standing up the whole stack and of driving one service
chain end to end across all of it, and prints the per-domain
architecture inventory the figure depicts.
"""


from benchmarks.conftest import emit
from repro.cli import ScenarioRunner
from repro.nffg.model import DomainType
from repro.service import ServiceRequestBuilder
from repro.topo import build_reference_multidomain


def _demo_request(request_id="fig1"):
    return (ServiceRequestBuilder(request_id)
            .sap("sap1").sap("sap2")
            .nf(f"{request_id}-fw", "firewall")
            .nf(f"{request_id}-nat", "nat")
            .chain("sap1", f"{request_id}-fw", f"{request_id}-nat", "sap2",
                   bandwidth=10.0)
            .delay_requirement("sap1", "sap2", max_delay=100.0)
            .build())


def test_bench_stack_construction(benchmark):
    """Time to build the complete Fig. 1 infrastructure."""
    testbed = benchmark(build_reference_multidomain)
    view = testbed.escape.resource_view()
    domains = {infra.domain for infra in view.infras}
    assert domains == {DomainType.INTERNAL, DomainType.SDN,
                       DomainType.OPENSTACK, DomainType.UN}


def test_bench_full_stack_deploy_and_traffic(benchmark):
    """One chain deployed over the unified view + verified by packets."""

    def setup():
        testbed = build_reference_multidomain()
        return (testbed,), {}

    def run(testbed):
        runner = ScenarioRunner(testbed)
        report, traffic = runner.deploy_and_probe(
            _demo_request(), "sap1", "sap2", count=3)
        assert report.success, report.error
        assert traffic.delivered == 3
        return report, traffic

    report, traffic = benchmark.pedantic(run, setup=setup, rounds=3,
                                         iterations=1)
    rows = [{
        "experiment": "FIG1",
        "domains_in_view": 4,
        "nfs_deployed": len(report.mapping.nf_placement),
        "ctrl_messages": report.control_messages,
        "ctrl_bytes": report.control_bytes,
        "packets_delivered": traffic.delivered,
        "e2e_latency_ms": traffic.mean_latency_ms,
    }]
    emit("FIG1: joint control plane over 4 domains", rows)


def test_bench_fig1_architecture_inventory(benchmark):
    """Print the Fig. 1 inventory: every green/red box of the figure.
    The timed section is global-view (DoV) generation from the four
    domain virtualizers."""
    testbed = build_reference_multidomain()
    view = benchmark(testbed.escape.resource_view)
    rows = []
    for adapter in testbed.escape.cal.adapters.values():
        adapter_view = adapter.get_view()
        rows.append({
            "domain": adapter.name,
            "technology": adapter.domain_type.value,
            "infra_nodes": len(adapter_view.infras),
            "nf_capable": sum(1 for i in adapter_view.infras
                              if i.infra_type.value != "SDN-SWITCH"),
            "total_cpu": sum(i.resources.cpu for i in adapter_view.infras),
        })
    emit("FIG1: domain inventory (virtualizers under one orchestrator)",
         rows)
    assert len(rows) == 4
    interdomain = [l for l in view.links if l.id.startswith("interdomain-")]
    assert len(interdomain) == 6  # 3 hand-offs x 2 directions
