"""EXT-5 — elastic scaling control loop.

UNIFY's companion demo (elastic router) scaled NFs with load; this
harness measures the full loop on this stack: load ramps up, the
controller scales the service out via ``update()``, load stops, it
scales back in — reporting reaction characteristics and the update
costs the loop pays.
"""


from benchmarks.conftest import emit
from repro.elastic import ElasticityController, ScalingAction, ScalingRule
from repro.netem.packet import tcp_packet
from repro.service import ServiceRequestBuilder
from repro.topo import build_emulated_testbed


def _version(level: int):
    builder = (ServiceRequestBuilder("el").sap("sap1").sap("sap2"))
    names = []
    for index in range(level):
        name = f"el-w{index}"
        builder.nf(name, "forwarder")
        names.append(name)
    builder.chain("sap1", *names, "sap2", bandwidth=1.0)
    return builder.build().sg


RULE = ScalingRule(metric_hop="el-hop1", scale_out_pps=100.0,
                   scale_in_pps=10.0, min_level=1, max_level=4)


def _loaded_stack():
    testbed = build_emulated_testbed(switches=2)
    assert testbed.escape.deploy(_version(1)).success
    controller = ElasticityController(testbed.escape)
    controller.manage("el", RULE, _version)
    return testbed, controller


def _blast(testbed, count, spacing_ms=1.0):
    src, dst = testbed.host("sap1"), testbed.host("sap2")
    src.send_burst([tcp_packet(src.ip, dst.ip, tp_src=41000 + i)
                    for i in range(count)], interval=spacing_ms)
    testbed.run()


def test_bench_scaling_cycle_table(benchmark):
    """The EXT-5 table: one load/idle cycle end to end."""
    testbed, controller = _loaded_stack()
    rows = []
    # three load rounds: should scale 1 -> 2 -> 3 -> 4 then clamp
    for round_index in range(4):
        _blast(testbed, 250)
        events = controller.poll()
        rows.append({
            "phase": f"load-round-{round_index + 1}",
            "observed_pps": events[0].observed_pps if events else 0.0,
            "action": events[0].action.value if events else "none",
            "level": controller.managed_level("el"),
        })
    # idle rounds: scale back down
    for round_index in range(4):
        testbed.network.simulator.schedule(20_000.0, lambda: None)
        testbed.run()
        events = controller.poll()
        rows.append({
            "phase": f"idle-round-{round_index + 1}",
            "observed_pps": events[0].observed_pps if events else 0.0,
            "action": events[0].action.value if events else "none",
            "level": controller.managed_level("el"),
        })
    emit("EXT-5: elastic scaling cycle", rows)
    levels = [row["level"] for row in rows]
    assert max(levels) == RULE.max_level   # ramped all the way up
    assert levels[-1] == RULE.min_level    # and all the way back down
    out_actions = [row["action"] for row in rows[:4]]
    assert out_actions.count("scale-out") == 3  # 1->2->3->4
    benchmark.pedantic(lambda: _loaded_stack()[1].poll(), rounds=2,
                       iterations=1)


def test_bench_scale_out_update_cost(benchmark):
    """Cost of one scale-out update (the loop's actuation latency)."""

    def setup():
        testbed, controller = _loaded_stack()
        _blast(testbed, 250)
        return (controller,), {}

    def actuate(controller):
        events = controller.poll()
        assert events and events[0].action == ScalingAction.OUT
        return events

    benchmark.pedantic(actuate, setup=setup, rounds=3, iterations=1)


def test_bench_traffic_survives_scaling(benchmark):
    """Packets sent during a scaling action: quantify the disruption
    of replace-based updates (make-before-break is future work here as
    in the prototype)."""
    testbed, controller = _loaded_stack()
    _blast(testbed, 250)
    delivered_before = len(testbed.host("sap2").received)
    controller.poll()  # scales out (replace-based)
    _blast(testbed, 50)
    delivered_after = len(testbed.host("sap2").received)
    emit("EXT-5: post-scaling delivery",
         [{"delivered_during_load": delivered_before,
           "delivered_after_scaling": delivered_after - delivered_before}])
    assert delivered_after - delivered_before == 50  # converged cleanly
    benchmark(lambda: controller.poll())
