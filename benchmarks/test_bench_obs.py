"""OBS-1 — observability overhead.

The whole point of gating the tracer behind ``obs.enabled()`` is that
instrumented code costs (nearly) nothing when nobody is looking, and an
acceptable, bounded amount when someone is.  This harness times the
same deploy/teardown loop with tracing off and on and gates the traced
run at < 10% overhead (plus a small epsilon for timer noise on the
sub-millisecond loop).  Both measurements are best-of-3, which filters
scheduler hiccups the same way the other harnesses do.
"""

import time

from benchmarks.conftest import SMOKE, emit
from repro import obs, perf
from repro.mapping import GreedyEmbedder
from repro.nffg.builder import mesh_substrate
from repro.orchestration.adapters import DirectDomainAdapter
from repro.orchestration.escape import EscapeOrchestrator
from repro.service import ServiceRequestBuilder

#: traced must stay within 10% of untraced, with an absolute floor
#: that keeps sub-ms timer jitter from flaking the gate
OVERHEAD_RATIO = 1.10
EPSILON_MS = 2.0


def _chain(index: int):
    return (ServiceRequestBuilder(f"obs{index}")
            .sap("sap1").sap("sap2")
            .nf(f"obs{index}-fw", "firewall", cpu=0.5, mem=64.0)
            .chain("sap1", f"obs{index}-fw", "sap2", bandwidth=1.0)
            .build().sg)


def _escape():
    escape = EscapeOrchestrator(embedder=GreedyEmbedder())
    escape.add_domain(DirectDomainAdapter(
        "dom", view=mesh_substrate(20, degree=4, seed=7,
                                   supported_types=["firewall"])))
    return escape


def _deploy_loop_ms(deploys: int) -> float:
    """Best-of-3 wall-clock for a deploy+teardown loop."""
    escape = _escape()
    warmup = escape.deploy(_chain(0), wait_activation=False)
    assert warmup.success, warmup.error
    escape.teardown("obs0")
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        for index in range(1, deploys + 1):
            report = escape.deploy(_chain(index), wait_activation=False)
            assert report.success, report.error
        for index in range(1, deploys + 1):
            escape.teardown(f"obs{index}")
        best = min(best, (time.perf_counter() - started) * 1e3)
    return best


def test_bench_tracing_overhead():
    """A traced control-plane loop stays within 10% of the untraced
    one — the gate behind shipping the instrumentation always-on."""
    deploys = 5 if SMOKE else 20

    previous = obs.disable()
    try:
        off_ms = _deploy_loop_ms(deploys)
        state = obs.enable(fresh=True)
        on_ms = _deploy_loop_ms(deploys)
        spans = len(state.tracer.spans()) + state.tracer.dropped
    finally:
        obs.disable()
        obs.restore(previous)

    emit("OBS-1: tracing overhead on the deploy loop", [{
        "deploys": deploys,
        "off_ms": off_ms,
        "on_ms": on_ms,
        "overhead_pct": (on_ms / off_ms - 1.0) * 100.0,
        "spans": spans,
    }], group="obs")
    assert spans > 0  # the traced run actually traced
    assert on_ms <= off_ms * OVERHEAD_RATIO + EPSILON_MS, (
        f"tracing overhead too high: off={off_ms:.3f} ms "
        f"on={on_ms:.3f} ms")


def test_bench_disabled_instrumentation_records_nothing():
    """With tracing off the instrumented paths must not touch the
    trace/event counters at all — the no-op span really is a no-op."""
    previous = obs.disable()
    perf.reset("trace.")
    perf.reset("obs.")
    try:
        escape = _escape()
        report = escape.deploy(_chain(0), wait_activation=False)
        assert report.success, report.error
    finally:
        obs.restore(previous)
    assert perf.snapshot("trace.") == {}
    assert perf.snapshot("obs.") == {}
