"""Shared helpers for the experiment harnesses.

Every benchmark prints the table rows it reproduces (run with ``-s`` to
see them inline; they are also summarized in EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest


def emit(title: str, rows: list[dict]) -> None:
    """Print an experiment's result table."""
    if not rows:
        return
    columns = list(rows[0])
    widths = {c: max(len(c), *(len(_fmt(row[c])) for row in rows))
              for c in columns}
    print(f"\n== {title} ==")
    print("  " + " | ".join(c.ljust(widths[c]) for c in columns))
    print("  " + "-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        print("  " + " | ".join(_fmt(row[c]).ljust(widths[c])
                                for c in columns))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


@pytest.fixture
def table_printer():
    return emit
