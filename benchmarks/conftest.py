"""Shared helpers for the experiment harnesses.

Every benchmark prints the table rows it reproduces (run with ``-s`` to
see them inline; they are also summarized in EXPERIMENTS.md).  When a
``group`` is given, the rows are also appended to
``benchmarks/BENCH_<group>.json`` so runs can be diffed across commits.

Set ``REPRO_BENCH_SMOKE=1`` to shrink problem sizes (CI smoke job).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

#: CI smoke mode: small sizes, same code paths
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

_BENCH_DIR = Path(__file__).resolve().parent


def bench_sizes(full: list[int], smoke: list[int]) -> list[int]:
    """Problem sizes for this run: ``smoke`` under REPRO_BENCH_SMOKE."""
    return smoke if SMOKE else full


def emit(title: str, rows: list[dict], group: str | None = None) -> None:
    """Print an experiment's result table; with ``group``, also append
    it to ``benchmarks/BENCH_<group>.json``."""
    if not rows:
        return
    columns = list(rows[0])
    widths = {c: max(len(c), *(len(_fmt(row[c])) for row in rows))
              for c in columns}
    print(f"\n== {title} ==")
    print("  " + " | ".join(c.ljust(widths[c]) for c in columns))
    print("  " + "-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        print("  " + " | ".join(_fmt(row[c]).ljust(widths[c])
                                for c in columns))
    if group is not None:
        _append_json(group, title, rows)


def _append_json(group: str, title: str, rows: list[dict]) -> None:
    path = _BENCH_DIR / f"BENCH_{group}.json"
    entries: list[dict] = []
    if path.exists():
        try:
            entries = json.loads(path.read_text())
        except (ValueError, OSError):
            entries = []
    entries.append({
        "title": title,
        "utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "smoke": SMOKE,
        "rows": rows,
    })
    path.write_text(json.dumps(entries, indent=2) + "\n")


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


@pytest.fixture
def table_printer():
    return emit
