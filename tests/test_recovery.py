"""Unit tests for the crash-recovery subsystem (repro.recovery).

Covers the write-ahead intent journal (record shapes, two-phase
semantics, checkpoint truncation, file round-trip), seeded crash
injection, the recovery reconciliation pass over a direct domain, the
resilience-state persistence satellites (breaker export/import, pending
replay restore, ``import_state(reconcile=True)``), and the ``repro
recover`` CLI entry point.
"""

import json

import pytest

from repro import obs
from repro.nffg.builder import mesh_substrate
from repro.orchestration import DirectDomainAdapter, EscapeOrchestrator
from repro.recovery import (
    CrashPlan,
    IntentJournal,
    JournalError,
    OrchestratorCrash,
    recover,
)
from repro.recovery.journal import fold_records
from repro.resilience import BreakerState
from repro.resilience.breaker import CircuitBreaker
from repro.service import ServiceRequestBuilder


def _chain_service(index: int, length: int = 1):
    builder = (ServiceRequestBuilder(f"r{index}")
               .sap("sap1").sap("sap2"))
    names = [f"r{index}n{j}" for j in range(length)]
    for name in names:
        builder.nf(name, "firewall", cpu=0.5, mem=32.0)
    builder.chain("sap1", *names, "sap2", bandwidth=1.0)
    return builder.build().sg


def _direct_escape(journal=None, **kwargs):
    escape = EscapeOrchestrator("rec", journal=journal, **kwargs)
    inner = DirectDomainAdapter(
        "dom", view=mesh_substrate(12, degree=3, seed=5,
                                   supported_types=["firewall"]))
    escape.add_domain(inner)
    return escape, inner


class TestJournalRecords:
    def test_intent_commit_cycle_record_shapes(self):
        journal = IntentJournal()
        with journal.intent("deploy", "svc", payload={"k": 1}) as intent:
            intent.outcome("dom", True)
            intent.commit({"svc": {"service": {}}})
        kinds = [r["kind"] for r in journal.records()]
        assert kinds == ["intent", "outcome", "commit"]
        first = journal.records()[0]
        assert first["seq"] == 0
        assert first["op"] == "deploy"
        assert first["service_id"] == "svc"
        assert first["intent_id"] == 1
        assert first["payload"] == {"k": 1}
        outcome = journal.records()[1]
        assert outcome["payload"] == {"domain": "dom", "success": True,
                                      "stage": "push", "error": ""}

    def test_scope_exit_without_commit_auto_aborts(self):
        journal = IntentJournal()
        with pytest.raises(ValueError):
            with journal.intent("deploy", "svc"):
                raise ValueError("mapping exploded")
        kinds = [r["kind"] for r in journal.records()]
        assert kinds == ["intent", "abort"]
        assert "mapping exploded" in journal.records()[-1]["payload"]["reason"]

    def test_scope_does_not_abort_on_crash(self):
        # a crashed process writes nothing: the dangling intent IS the
        # crash marker replay uses to roll the operation back
        journal = IntentJournal()
        with pytest.raises(OrchestratorCrash):
            with journal.intent("deploy", "svc"):
                raise OrchestratorCrash("injected")
        kinds = [r["kind"] for r in journal.records()]
        assert kinds == ["intent"]

    def test_unknown_kind_rejected(self):
        journal = IntentJournal()
        with pytest.raises(JournalError):
            journal.append("mystery")

    def test_records_carry_trace_ids_when_observing(self):
        previous = obs.disable()
        obs.enable(fresh=True)
        try:
            journal = IntentJournal()
            with obs.span("test-span"):
                journal.append("intent", intent_id=1, op="deploy")
            record = journal.records()[0]
            assert record["trace_id"]
            assert record["span_id"]
        finally:
            obs.disable()
            obs.restore(previous)


class TestFold:
    def test_commit_applies_and_none_deletes(self):
        journal = IntentJournal()
        with journal.intent("deploy", "a") as intent:
            intent.commit({"a": {"x": 1}})
        with journal.intent("deploy", "b") as intent:
            intent.commit({"b": {"y": 2}})
        with journal.intent("teardown", "a") as intent:
            intent.commit({"a": None})
        replay = journal.replay()
        assert replay.state["services"] == {"b": {"y": 2}}
        assert replay.committed == 3
        assert replay.aborted == 0
        assert replay.in_flight == []

    def test_in_flight_intent_contributes_nothing(self):
        journal = IntentJournal()
        with journal.intent("deploy", "a") as intent:
            intent.commit({"a": {"x": 1}})
        # crash mid-deploy of "b": intent + one outcome, no terminal
        scope = journal.intent("deploy", "b")
        scope.outcome("dom", True)
        replay = journal.replay()
        assert replay.state["services"] == {"a": {"x": 1}}
        assert len(replay.in_flight) == 1
        assert replay.in_flight[0]["service_id"] == "b"
        assert replay.in_flight[0]["outcomes"]["dom"]["success"] is True

    def test_aborted_intent_contributes_nothing(self):
        journal = IntentJournal()
        scope = journal.intent("deploy", "a")
        scope.abort("mapping failed")
        replay = journal.replay()
        assert replay.state["services"] == {}
        assert replay.aborted == 1

    def test_fold_rejects_unknown_kind(self):
        with pytest.raises(JournalError):
            fold_records([{"kind": "garbage"}])

    def test_checkpoint_resets_base(self):
        records = [
            {"kind": "checkpoint",
             "payload": {"state": {"services": {"old": {"v": 0}}}}},
            {"kind": "intent", "intent_id": 9, "op": "teardown",
             "service_id": "old"},
            {"kind": "commit", "intent_id": 9,
             "payload": {"services": {"old": None, "new": {"v": 1}}}},
        ]
        replay = fold_records(records)
        assert replay.state["services"] == {"new": {"v": 1}}
        assert replay.checkpoint_used is True


class TestCheckpoint:
    def test_checkpoint_truncates_but_keeps_total(self):
        journal = IntentJournal()
        for index in range(3):
            with journal.intent("deploy", f"s{index}") as intent:
                intent.commit({f"s{index}": {"v": index}})
        before = journal.total_appends
        journal.checkpoint({"services": {"s0": {"v": 0}}})
        assert len(journal) == 1
        assert journal.records()[0]["kind"] == "checkpoint"
        assert journal.total_appends == before + 1
        replay = journal.replay()
        assert replay.state["services"] == {"s0": {"v": 0}}
        assert replay.checkpoint_used

    def test_maybe_checkpoint_uses_bound_provider(self):
        journal = IntentJournal(checkpoint_every=2)
        journal.state_provider = lambda: {"services": {"snap": {}}}
        with journal.intent("deploy", "a") as intent:
            intent.commit({"a": {}})
        assert journal.records()[-1]["kind"] == "commit"
        with journal.intent("deploy", "b") as intent:
            intent.commit({"b": {}})  # second commit triggers checkpoint
        assert [r["kind"] for r in journal.records()] == ["checkpoint"]
        assert journal.replay().state["services"] == {"snap": {}}

    def test_checkpoint_file_truncation_is_atomic(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = IntentJournal(path)
        for index in range(4):
            with journal.intent("deploy", f"s{index}") as intent:
                intent.commit({f"s{index}": {}})
        journal.checkpoint({"services": {"kept": {}}})
        with journal.intent("deploy", "after") as intent:
            intent.commit({"after": {}})
        journal.close()
        lines = [json.loads(line)
                 for line in path.read_text().splitlines() if line]
        assert lines[0]["kind"] == "checkpoint"
        assert len(lines) == 3  # checkpoint + intent + outcome-less commit
        assert not list(tmp_path.glob("*.tmp"))


class TestFileJournal:
    def test_constructor_truncates_load_resumes(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = IntentJournal(path)
        with journal.intent("deploy", "svc") as intent:
            intent.outcome("dom", True)
            intent.commit({"svc": {"v": 1}})
        journal.close()

        loaded = IntentJournal.load(path)
        assert [r["kind"] for r in loaded.records()] \
            == ["intent", "outcome", "commit"]
        assert loaded.total_appends == 3
        # appends continue the same file with resumed sequence numbers
        with loaded.intent("teardown", "svc") as intent:
            intent.commit({"svc": None})
        loaded.close()
        lines = [json.loads(line)
                 for line in path.read_text().splitlines() if line]
        assert [r["seq"] for r in lines] == list(range(5))
        assert lines[3]["intent_id"] == 2  # intent counter resumed too

        # a fresh constructor starts over (stale logs never leak in)
        fresh = IntentJournal(path)
        fresh.close()
        assert path.read_text() == ""

    def test_load_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "intent", "seq": 0}\nnot json\n')
        with pytest.raises(JournalError, match="bad.jsonl:2"):
            IntentJournal.load(path)

    def test_load_rejects_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "garbage", "seq": 0}\n')
        with pytest.raises(JournalError, match="garbage"):
            IntentJournal.load(path)


class TestCrashPlan:
    def test_crash_at_k_leaves_exactly_k_records(self):
        journal = IntentJournal()
        journal.crash_plan = CrashPlan(at=2)
        journal.append("intent", intent_id=1, op="deploy")
        journal.append("outcome", intent_id=1, op="deploy",
                       payload={"domain": "dom", "success": True})
        with pytest.raises(OrchestratorCrash):
            journal.append("commit", intent_id=1, op="deploy")
        assert len(journal) == 2

    def test_plan_fires_once(self):
        plan = CrashPlan(at=0)
        with pytest.raises(OrchestratorCrash):
            plan.on_append()
        plan.on_append()  # the successor process does not re-crash
        assert plan.fired

    def test_random_plan_is_deterministic(self):
        a = CrashPlan.random_plan(42, horizon=10)
        b = CrashPlan.random_plan(42, horizon=10)
        assert a.at == b.at
        assert 0 <= a.at <= 10

    def test_crash_is_not_swallowed_by_except_exception(self):
        # OrchestratorCrash derives from BaseException precisely so the
        # orchestrator's own error handling cannot catch it
        assert not issubclass(OrchestratorCrash, Exception)


class TestRecoverEndToEnd:
    def test_clean_journal_recovers_committed_services(self):
        escape, inner = _direct_escape()
        assert escape.deploy(_chain_service(0), wait_activation=False).success
        assert escape.deploy(_chain_service(1), wait_activation=False).success
        assert escape.teardown("r0").success

        report = recover(escape.journal,
                         list(escape.cal.adapters.values()))
        successor = report.orchestrator
        assert report.restored == ["r1"]
        assert successor.deployed_services() == ["r1"]
        assert report.ok()
        assert report.in_flight == []
        # the domain holds exactly the recovered service's NFs
        booked = set(successor.cal.snapshot_service("r1")[1].nf_placement)
        assert {nf.id for nf in inner.installed[-1].nfs} == booked

    def test_crash_mid_deploy_is_rolled_back_and_swept(self):
        escape, inner = _direct_escape()
        assert escape.deploy(_chain_service(0), wait_activation=False).success
        # crash right before the second deploy's commit record (the
        # plan counts appends from when it is armed: intent=0,
        # outcome=1, commit=2) — the push has already landed on the
        # domain, a classic half-done op
        escape.journal.crash_plan = CrashPlan(at=2)
        with pytest.raises(OrchestratorCrash):
            escape.deploy(_chain_service(1), wait_activation=False)
        assert any(nf.id.startswith("r1") for nf in inner.installed[-1].nfs)

        report = recover(escape.journal,
                         list(escape.cal.adapters.values()))
        successor = report.orchestrator
        assert successor.deployed_services() == ["r0"]
        assert len(report.in_flight) == 1
        assert report.in_flight[0]["service_id"] == "r1"
        assert report.diffs["dom"].touched_by_inflight
        # anti-entropy swept the half-landed NFs off the domain
        booked = set(successor.cal.snapshot_service("r0")[1].nf_placement)
        assert {nf.id for nf in inner.installed[-1].nfs} == booked

    def test_crash_mid_teardown_finishes_on_recovery(self):
        escape, inner = _direct_escape()
        assert escape.deploy(_chain_service(0), wait_activation=False).success
        escape.journal.crash_plan = CrashPlan(at=0)  # before the intent
        with pytest.raises(OrchestratorCrash):
            escape.teardown("r0")

        report = recover(escape.journal,
                         list(escape.cal.adapters.values()))
        # the teardown never journaled its intent, so the service is
        # still desired state — recovery restores it, not removes it
        assert report.orchestrator.deployed_services() == ["r0"]
        booked = set(
            report.orchestrator.cal.snapshot_service("r0")[1].nf_placement)
        assert {nf.id for nf in inner.installed[-1].nfs} == booked

    def test_dry_run_pushes_nothing_and_keeps_journal(self):
        escape, inner = _direct_escape()
        assert escape.deploy(_chain_service(0), wait_activation=False).success
        installs = len(inner.installed)
        records = journal_len = len(escape.journal)

        report = recover(escape.journal,
                         list(escape.cal.adapters.values()), dry_run=True)
        assert report.dry_run
        assert report.restored == ["r0"]
        assert report.pushes == []
        assert len(inner.installed) == installs
        assert len(escape.journal) == journal_len == records
        text = report.render_text()
        assert "dry run" in text

    def test_recovery_checkpoints_the_new_epoch(self):
        escape, _ = _direct_escape()
        assert escape.deploy(_chain_service(0), wait_activation=False).success
        report = recover(escape.journal,
                         list(escape.cal.adapters.values()))
        assert report.orchestrator is not escape
        # post-recovery the journal holds the recovered epoch's
        # checkpoint (+ whatever import intent preceded it)
        assert journal_kinds(escape.journal)[-1] == "checkpoint"
        replay = escape.journal.replay()
        assert sorted(replay.state["services"]) == ["r0"]

    def test_recovered_dov_matches_rebuild(self):
        from tests.property.test_incremental_dov import canonical

        escape, _ = _direct_escape()
        for index in range(3):
            assert escape.deploy(_chain_service(index),
                                 wait_activation=False).success
        escape.teardown("r1")
        report = recover(escape.journal,
                         list(escape.cal.adapters.values()))
        cal = report.orchestrator.cal
        assert canonical(cal.dov) == canonical(cal.rebuild())


def journal_kinds(journal):
    return [record["kind"] for record in journal.records()]


class TestBreakerPersistence:
    def test_closed_round_trip(self):
        breaker = CircuitBreaker("b", failure_threshold=3)
        breaker.record_failure()
        state = breaker.export_state()
        other = CircuitBreaker("b2", failure_threshold=3)
        other.import_state(state)
        assert other.state is BreakerState.CLOSED
        assert other.consecutive_failures == 1

    def test_open_round_trip_reanchors_window(self):
        clock = [100.0]
        breaker = CircuitBreaker("b", failure_threshold=1,
                                 recovery_time_s=30.0,
                                 clock=lambda: clock[0])
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        clock[0] = 110.0  # 10s into the 30s window
        state = breaker.export_state()
        assert state["open_remaining_s"] == pytest.approx(20.0)

        # the successor's clock starts from a completely different epoch
        clock2 = [5000.0]
        other = CircuitBreaker("b2", failure_threshold=1,
                               recovery_time_s=30.0,
                               clock=lambda: clock2[0])
        other.import_state(state)
        assert other.state is BreakerState.OPEN
        clock2[0] += 19.0
        assert other.state is BreakerState.OPEN
        clock2[0] += 2.0  # window elapsed: probe allowed
        assert other.state is BreakerState.HALF_OPEN

    def test_trip_count_survives(self):
        breaker = CircuitBreaker("b", failure_threshold=1)
        breaker.record_failure()
        breaker.record_success()
        other = CircuitBreaker("b2")
        other.import_state(breaker.export_state())
        assert other.trips == 1


class TestResilienceStateRoundTrip:
    def test_export_state_carries_resilience(self):
        escape, _ = _direct_escape()
        assert escape.deploy(_chain_service(0), wait_activation=False).success
        state = escape.export_state()
        assert "resilience" in state
        assert "dom" in state["resilience"]["breakers"]
        assert state["resilience"]["pending"] == []
        json.dumps(state)  # still fully serializable

    def test_pending_replay_restored_on_import(self):
        escape, _ = _direct_escape()
        assert escape.deploy(_chain_service(0), wait_activation=False).success
        state = escape.export_state()
        state["resilience"]["pending"] = ["dom"]
        state["resilience"]["breakers"]["dom"]["state"] = "open"
        state["resilience"]["breakers"]["dom"]["open_remaining_s"] = 30.0

        successor, _ = _direct_escape()
        successor.import_state(state, push=False)
        assert successor.cal.pending_reconciliation() == {"dom"}
        assert successor.cal.breakers["dom"].state is BreakerState.OPEN

    def test_unknown_breaker_names_are_skipped(self):
        # failover controllers may re-register adapters under new names
        escape, _ = _direct_escape()
        assert escape.deploy(_chain_service(0), wait_activation=False).success
        state = escape.export_state()
        state["resilience"]["breakers"]["ghost"] = {"state": "open"}
        state["resilience"]["pending"] = ["ghost"]
        successor, _ = _direct_escape()
        successor.import_state(state, push=False)  # must not raise
        assert "ghost" not in successor.cal.breakers


class TestImportReconcile:
    def test_nonempty_import_still_rejected_by_default(self):
        escape, _ = _direct_escape()
        assert escape.deploy(_chain_service(0), wait_activation=False).success
        state = escape.export_state()
        with pytest.raises(RuntimeError, match="reconcile=True"):
            escape.import_state(state)

    def test_reconcile_diffs_against_running_state(self):
        escape, inner = _direct_escape()
        assert escape.deploy(_chain_service(0), wait_activation=False).success
        assert escape.deploy(_chain_service(1), wait_activation=False).success
        state = json.loads(json.dumps(escape.export_state()))
        # incoming state: r0 gone, r1 kept verbatim, r2 new
        del state["services"]["r0"]
        assert escape.deploy(_chain_service(2), wait_activation=False).success
        state["services"]["r2"] = escape.export_state()["services"]["r2"]
        escape.teardown("r2")

        restored = escape.import_state(state, reconcile=True)
        assert sorted(escape.deployed_services()) == ["r1", "r2"]
        assert "r2" in restored
        booked = {nf_id
                  for service_id in escape.deployed_services()
                  for nf_id in escape.cal.snapshot_service(
                      service_id)[1].nf_placement}
        assert {nf.id for nf in inner.installed[-1].nfs} == booked

    def test_reconcile_into_empty_equals_plain_import(self):
        escape, _ = _direct_escape()
        assert escape.deploy(_chain_service(0), wait_activation=False).success
        state = escape.export_state()
        successor, _ = _direct_escape()
        restored = successor.import_state(state, reconcile=True)
        assert restored == ["r0"]
        assert successor.export_state()["services"] == state["services"]


class TestRecoverCli:
    def test_crash_storm_then_recover_exits_zero(self, tmp_path, capsys):
        from repro.cli.main import main

        journal_path = tmp_path / "crash-journal.jsonl"
        code = main(["recover", "--deploys", "2", "--seed", "7",
                     "--journal", str(journal_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "recovered" in out
        assert journal_path.exists()

    def test_dry_run_exits_zero_without_pushes(self, tmp_path, capsys):
        from repro.cli.main import main

        code = main(["recover", "--deploys", "2", "--crash-at", "5",
                     "--dry-run"])
        assert code == 0
        out = capsys.readouterr().out
        assert "dry run" in out
