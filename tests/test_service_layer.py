"""Tests for the service layer (requests, SLAs, lifecycle)."""

import pytest

from repro.service import (
    ServiceRequestBuilder,
    ServiceState,
)
from repro.topo import build_emulated_testbed


def _request(request_id="req1", max_delay=None):
    builder = (ServiceRequestBuilder(request_id)
               .sap("sap1").sap("sap2")
               .nf(f"{request_id}-fw", "firewall")
               .chain("sap1", f"{request_id}-fw", "sap2", bandwidth=5.0))
    if max_delay is not None:
        builder.delay_requirement("sap1", "sap2", max_delay=max_delay)
    return builder.meta("tenant", "alice").build()


class TestRequestBuilder:
    def test_build_produces_requested_state(self):
        request = _request()
        assert request.state == ServiceState.REQUESTED
        assert request.metadata["tenant"] == "alice"

    def test_nf_resources_default_from_catalog(self):
        request = (ServiceRequestBuilder("r").sap("a").sap("b")
                   .nf("d", "dpi").chain("a", "d", "b").build())
        nf = request.sg.nf("d")
        assert nf.resources.cpu == 2.0  # dpi catalog footprint

    def test_explicit_resources_override(self):
        request = (ServiceRequestBuilder("r").sap("a").sap("b")
                   .nf("d", "dpi", cpu=8.0).chain("a", "d", "b").build())
        assert request.sg.nf("d").resources.cpu == 8.0

    def test_unknown_type_gets_generic_defaults(self):
        request = (ServiceRequestBuilder("r").sap("a").sap("b")
                   .nf("x", "mystery").chain("a", "x", "b").build())
        assert request.sg.nf("x").resources.cpu == 1.0

    def test_sla_summary(self):
        request = _request(max_delay=40.0)
        summary = request.sla_summary()
        assert summary["chains"] == 2
        assert summary["delay_constraints"][0]["max_delay_ms"] == 40.0
        assert summary["bandwidth_demands"] == [5.0]

    def test_bandwidth_requirement(self):
        request = (ServiceRequestBuilder("r").sap("a").sap("b")
                   .nf("f", "firewall").chain("a", "f", "b")
                   .bandwidth_requirement("a", "b", bandwidth=20.0).build())
        assert request.sg.requirements[0].bandwidth == 20.0


class TestServiceLayerLifecycle:
    @pytest.fixture
    def layer(self):
        return build_emulated_testbed(switches=3).service_layer

    def test_submit_deploys(self, layer):
        report = layer.submit(_request())
        assert report.success
        assert layer.status("req1") == ServiceState.DEPLOYED
        assert len(layer.active_requests()) == 1

    def test_submit_failure_marks_failed(self, layer):
        request = _request("bad")
        request.sg.nf("bad-fw").functional_type = "warpdrive"
        report = layer.submit(request)
        assert not report.success
        assert layer.status("bad") == ServiceState.FAILED
        assert layer.requests["bad"].error

    def test_duplicate_submit_rejected(self, layer):
        layer.submit(_request())
        report = layer.submit(_request())
        assert not report.success
        assert "already deployed" in report.error

    def test_terminate(self, layer):
        layer.submit(_request())
        assert layer.terminate("req1")
        assert layer.status("req1") == ServiceState.TERMINATED
        assert layer.active_requests() == []
        assert not layer.terminate("req1")

    def test_terminate_unknown(self, layer):
        assert not layer.terminate("ghost")

    def test_resubmit_after_terminate(self, layer):
        layer.submit(_request())
        layer.terminate("req1")
        report = layer.submit(_request())
        assert report.success

    def test_topology_view_visible(self, layer):
        view = layer.topology_view()
        assert len(view.infras) == 3

    def test_invalid_sg_rejected_before_mapping(self, layer):
        request = _request("broken")
        # corrupt: requirement referencing missing hop
        request.sg.requirements.clear()
        hop = request.sg.sg_hops[0]
        request.sg.add_requirement(
            hop.src_node, hop.src_port, hop.dst_node, hop.dst_port,
            sg_path=[hop.id])
        request.sg.remove_edge(hop.id)
        report = layer.submit(request)
        assert not report.success
        assert layer.status("broken") == ServiceState.FAILED
