"""Tests for NFFG element classes (resources, ports, flow rules, nodes)."""

import pytest

from repro.nffg.model import (
    DomainType,
    EdgeLink,
    EdgeReq,
    EdgeSGHop,
    Flowrule,
    InfraType,
    LinkType,
    NodeInfra,
    NodeNF,
    NodeSAP,
    Port,
    ResourceVector,
)


class TestResourceVector:
    def test_addition(self):
        a = ResourceVector(cpu=1, mem=100, storage=10, bandwidth=5, delay=1)
        b = ResourceVector(cpu=2, mem=200, storage=20, bandwidth=5, delay=2)
        total = a + b
        assert total.cpu == 3 and total.mem == 300 and total.delay == 3

    def test_subtraction(self):
        a = ResourceVector(cpu=4, mem=400)
        b = ResourceVector(cpu=1, mem=100)
        diff = a - b
        assert diff.cpu == 3 and diff.mem == 300

    def test_scaled(self):
        assert ResourceVector(cpu=2).scaled(2.5).cpu == 5.0

    def test_fits_within(self):
        demand = ResourceVector(cpu=2, mem=128, storage=1, bandwidth=10)
        capacity = ResourceVector(cpu=4, mem=256, storage=8, bandwidth=100)
        assert demand.fits_within(capacity)
        assert not capacity.fits_within(demand)

    def test_fits_within_ignores_delay(self):
        demand = ResourceVector(cpu=1, delay=100.0)
        capacity = ResourceVector(cpu=2, delay=0.1)
        assert demand.fits_within(capacity)

    def test_fits_within_boundary(self):
        demand = ResourceVector(cpu=4.0)
        capacity = ResourceVector(cpu=4.0)
        assert demand.fits_within(capacity)

    def test_non_negative(self):
        assert ResourceVector().non_negative()
        assert not ResourceVector(cpu=-1).non_negative()

    def test_dict_roundtrip(self):
        vector = ResourceVector(cpu=1.5, mem=64, storage=2, bandwidth=10,
                                delay=0.5)
        assert ResourceVector.from_dict(vector.to_dict()) == vector

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ResourceVector().cpu = 5


class TestPortAndFlowrule:
    def test_add_flowrule(self):
        port = Port(id="1", node_id="bb")
        rule = port.add_flowrule("in_port=1", "output=2", bandwidth=5.0,
                                 hop_id="h1")
        assert port.flowrules == [rule]
        assert rule.bandwidth == 5.0

    def test_clear_flowrules(self):
        port = Port(id="1")
        port.add_flowrule("in_port=1", "output=2")
        port.clear_flowrules()
        assert port.flowrules == []

    def test_match_field_parsing(self):
        rule = Flowrule(match="in_port=1;flowclass=tp_dst=80;tag=h1",
                        action="output=2;untag")
        fields = rule.match_fields()
        assert fields["in_port"] == "1"
        assert fields["flowclass"] == "tp_dst=80"
        assert fields["tag"] == "h1"
        actions = rule.action_fields()
        assert actions["output"] == "2"
        assert "untag" in actions

    def test_flowrule_dict_roundtrip(self):
        rule = Flowrule(match="in_port=1", action="output=2",
                        bandwidth=3.0, delay=1.0, hop_id="h9")
        assert Flowrule.from_dict(rule.to_dict()) == rule

    def test_port_dict_roundtrip_with_rules(self):
        port = Port(id="p1", name="eth0", sap_tag="sap1")
        port.add_flowrule("in_port=p1", "output=p2")
        clone = Port.from_dict(port.to_dict(), node_id="bb")
        assert clone.id == "p1" and clone.sap_tag == "sap1"
        assert len(clone.flowrules) == 1


class TestNodes:
    def test_nf_defaults(self):
        nf = NodeNF("fw1", "firewall")
        assert nf.functional_type == "firewall"
        assert nf.status == "initialized"
        assert nf.resources.cpu == 1.0

    def test_add_port_auto_ids(self):
        nf = NodeNF("fw1", "firewall")
        assert nf.add_port().id == "1"
        assert nf.add_port().id == "2"

    def test_duplicate_port_rejected(self):
        nf = NodeNF("fw1", "firewall")
        nf.add_port("p")
        with pytest.raises(ValueError):
            nf.add_port("p")

    def test_infra_supports(self):
        infra = NodeInfra("bb", supported_types=["firewall"])
        assert infra.supports("firewall")
        assert not infra.supports("nat")

    def test_infra_empty_supported_means_any(self):
        infra = NodeInfra("bb")
        assert infra.supports("anything")

    def test_sdn_switch_supports_nothing(self):
        infra = NodeInfra("sw", infra_type=InfraType.SDN_SWITCH)
        assert not infra.supports("firewall")

    def test_nf_dict_roundtrip(self):
        nf = NodeNF("fw1", "firewall", deployment_type="click",
                    resources=ResourceVector(cpu=2, mem=256, storage=4))
        nf.add_port()
        nf.status = "deployed"
        clone = NodeNF.from_dict(nf.to_dict())
        assert clone.functional_type == "firewall"
        assert clone.status == "deployed"
        assert clone.resources.cpu == 2
        assert "1" in clone.ports

    def test_sap_dict_roundtrip(self):
        sap = NodeSAP("sap1", binding="emu:bb0:sap-sap1")
        sap.add_port()
        clone = NodeSAP.from_dict(sap.to_dict())
        assert clone.binding == "emu:bb0:sap-sap1"

    def test_infra_dict_roundtrip(self):
        infra = NodeInfra("bb", infra_type=InfraType.BISBIS,
                          domain=DomainType.UN,
                          resources=ResourceVector(cpu=16),
                          supported_types=["nat"], cost_per_cpu=0.5)
        infra.add_port("sap-x", sap_tag="x")
        clone = NodeInfra.from_dict(infra.to_dict())
        assert clone.domain == DomainType.UN
        assert clone.cost_per_cpu == 0.5
        assert clone.port("sap-x").sap_tag == "x"

    def test_iter_flowrules(self):
        infra = NodeInfra("bb")
        port_a = infra.add_port("a")
        port_b = infra.add_port("b")
        port_a.add_flowrule("in_port=a", "output=b")
        port_b.add_flowrule("in_port=b", "output=a")
        assert len(list(infra.iter_flowrules())) == 2


class TestEdges:
    def test_link_available_bandwidth(self):
        link = EdgeLink(id="l", src_node="a", src_port="1", dst_node="b",
                        dst_port="1", bandwidth=100.0, reserved=30.0)
        assert link.available_bandwidth == 70.0

    def test_link_dict_roundtrip(self):
        link = EdgeLink(id="l", src_node="a", src_port="1", dst_node="b",
                        dst_port="2", link_type=LinkType.DYNAMIC,
                        delay=2.0, bandwidth=10.0, reserved=1.0)
        assert EdgeLink.from_dict(link.to_dict()) == link

    def test_sg_hop_dict_roundtrip(self):
        hop = EdgeSGHop(id="h", src_node="sap1", src_port="1",
                        dst_node="fw", dst_port="1",
                        flowclass="tp_dst=80", bandwidth=5.0, delay=10.0)
        assert EdgeSGHop.from_dict(hop.to_dict()) == hop

    def test_requirement_infinite_delay_roundtrip(self):
        req = EdgeReq(id="r", src_node="a", src_port="1", dst_node="b",
                      dst_port="1", sg_path=["h1", "h2"])
        clone = EdgeReq.from_dict(req.to_dict())
        assert clone.max_delay == float("inf")
        assert clone.sg_path == ["h1", "h2"]

    def test_requirement_finite_delay_roundtrip(self):
        req = EdgeReq(id="r", src_node="a", src_port="1", dst_node="b",
                      dst_port="1", sg_path=["h1"], max_delay=25.0)
        assert EdgeReq.from_dict(req.to_dict()).max_delay == 25.0
