"""Tests for the reference testbeds."""


from repro.mapping import DelayAwareEmbedder
from repro.nffg.model import DomainType
from repro.topo import build_emulated_testbed, build_reference_multidomain


class TestReferenceMultidomain:
    def test_builds_all_four_domains(self):
        testbed = build_reference_multidomain()
        assert testbed.emu and testbed.sdn and testbed.cloud and testbed.un
        assert len(testbed.escape.cal.adapters) == 4

    def test_sap_hosts_reachable(self):
        testbed = build_reference_multidomain()
        assert set(testbed.sap_hosts) == {"sap1", "sap2", "sap3"}
        for sap_id in testbed.sap_hosts:
            assert testbed.host(sap_id).ports()

    def test_scalable_parameters(self):
        testbed = build_reference_multidomain(emu_switches=4,
                                              sdn_switches=3,
                                              cloud_leaves=3,
                                              cloud_hosts_per_leaf=1)
        view = testbed.escape.resource_view()
        emu_nodes = [i for i in view.infras
                     if i.domain == DomainType.INTERNAL]
        sdn_nodes = [i for i in view.infras if i.domain == DomainType.SDN]
        assert len(emu_nodes) == 4
        assert len(sdn_nodes) == 3

    def test_custom_embedder(self):
        testbed = build_reference_multidomain(embedder=DelayAwareEmbedder())
        assert testbed.escape.ro.embedder.name == "delay-aware"

    def test_decompositions_default_on(self):
        testbed = build_reference_multidomain()
        assert testbed.escape.ro.decomposition_library is not None
        plain = build_reference_multidomain(use_default_decompositions=False)
        assert plain.escape.ro.decomposition_library is None

    def test_boot_delays_configurable(self):
        testbed = build_reference_multidomain(vm_boot_delay_ms=10.0,
                                              container_start_delay_ms=1.0)
        assert testbed.cloud.nova.boot_delay_ms == 10.0
        assert testbed.un.runtime.start_delay_ms == 1.0


class TestEmulatedTestbed:
    def test_shape(self):
        testbed = build_emulated_testbed(switches=5)
        view = testbed.escape.resource_view()
        assert len(view.infras) == 5
        assert set(testbed.sap_hosts) == {"sap1", "sap2"}
