"""Tests for the independent mapping validator."""

import pytest

from repro.lint import Severity
from repro.mapping import GreedyEmbedder, validate_mapping
from repro.mapping.base import MappingResult
from repro.nffg import NFFGBuilder
from repro.nffg.builder import linear_substrate


@pytest.fixture
def scenario():
    substrate = linear_substrate(3, id="s",
                                 supported_types=["firewall", "nat"])
    service = (NFFGBuilder("svc").sap("sap1").sap("sap2")
               .nf("fw", "firewall")
               .chain("sap1", "fw", "sap2", bandwidth=10.0)
               .requirement("sap1", "sap2", max_delay=30.0).build())
    result = GreedyEmbedder().map(service, substrate)
    assert result.success
    return substrate, service, result


def test_clean_mapping_validates(scenario):
    substrate, service, result = scenario
    assert validate_mapping(service, substrate, result) == []


def test_failed_mapping_reports_reason():
    substrate = linear_substrate(1)
    result = MappingResult(success=False, failure_reason="nope")
    problems = validate_mapping(NFFGBuilder("x").sap("sap1").build(),
                                substrate, result)
    assert problems.as_strings() == ["mapping failed: nope"]
    assert problems[0].rule_id == "MP001"
    assert problems[0].severity is Severity.ERROR


def test_detects_unplaced_nf(scenario):
    substrate, service, result = scenario
    del result.nf_placement["fw"]
    assert any("unplaced" in p for p in
               validate_mapping(service, substrate, result).as_strings())


def test_detects_unknown_host(scenario):
    substrate, service, result = scenario
    result.nf_placement["fw"] = "ghost"
    assert any("unknown infra" in p for p in
               validate_mapping(service, substrate, result).as_strings())


def test_detects_unsupporting_host(scenario):
    substrate, service, result = scenario
    substrate.infra(result.nf_placement["fw"]).supported_types = {"nat"}
    assert any("unsupporting" in p for p in
               validate_mapping(service, substrate, result).as_strings())


def test_detects_overcommit(scenario):
    substrate, service, result = scenario
    host = result.nf_placement["fw"]
    substrate.infra(host).resources = \
        substrate.infra(host).resources.scaled(0.0)
    assert any("over-committed" in p for p in
               validate_mapping(service, substrate, result).as_strings())


def test_detects_unrouted_hop(scenario):
    substrate, service, result = scenario
    first_hop = service.sg_hops[0].id
    del result.hop_routes[first_hop]
    assert any("unrouted" in p for p in
               validate_mapping(service, substrate, result).as_strings())


def test_detects_wrong_endpoint(scenario):
    substrate, service, result = scenario
    hop = service.sg_hops[0]
    route = result.hop_routes[hop.id]
    route.infra_path[0] = "s-bb2"
    problems = validate_mapping(service, substrate, result)
    strings = problems.as_strings()
    assert any("starts at" in p or "does not connect" in p for p in strings)
    assert all(d.rule_id == "MP030" for d in problems)


def test_detects_disconnected_link_chain(scenario):
    substrate, service, result = scenario
    multi = [r for r in result.hop_routes.values() if r.link_ids]
    assert multi, "expected at least one multi-node route"
    # point the first link somewhere that does not connect the path
    wrong_link = substrate.links[-1].id
    if wrong_link == multi[0].link_ids[0]:
        wrong_link = substrate.links[-2].id
    multi[0].link_ids[0] = wrong_link
    problems = validate_mapping(service, substrate, result)
    assert any("does not connect" in p or "unknown link" in p
               for p in problems.as_strings())


def test_detects_bandwidth_oversubscription(scenario):
    substrate, service, result = scenario
    for route in result.hop_routes.values():
        route.bandwidth = 10_000.0
    assert any("over-subscribed" in p for p in
               validate_mapping(service, substrate, result).as_strings())


def test_detects_delay_violation(scenario):
    substrate, service, result = scenario
    for route in result.hop_routes.values():
        route.delay = 100.0
    assert any("delay" in p for p in
               validate_mapping(service, substrate, result).as_strings())


def test_detects_missing_flowrules(scenario):
    substrate, service, result = scenario
    # corrupt the graph the validator inspects (the touched-subgraph
    # commit when present, the full mapped graph otherwise)
    (result.touched if result.touched is not None
     else result.mapped).clear_flowrules()
    assert any("flow rules installed" in p for p in
               validate_mapping(service, substrate, result).as_strings())


def test_detects_foreign_nf_in_placement(scenario):
    substrate, service, result = scenario
    result.nf_placement["alien"] = "s-bb0"
    assert any("non-service NF" in p for p in
               validate_mapping(service, substrate, result).as_strings())
