"""Engine-level tests for the static-analysis rule catalog."""

import pytest

from repro.lint import (
    LintEngine,
    Severity,
    default_registry,
    lint_nffg,
    lint_views,
    render_json,
    render_rule_catalog,
    render_text,
)
from repro.mapping.decomposition import (
    DecompositionLibrary,
    default_decomposition_library,
)
from repro.nffg import NFFGBuilder
from repro.nffg.builder import linear_substrate
from repro.nffg.graph import NFFG
from repro.nffg.model import ResourceVector


def rule_ids(diagnostics):
    return diagnostics.rule_ids()


def clean_service():
    return (NFFGBuilder("svc").sap("sap1").sap("sap2")
            .nf("fw", "firewall")
            .chain("sap1", "fw", "sap2", bandwidth=5.0)
            .requirement("sap1", "sap2", max_delay=50.0).build())


class TestRegistry:
    def test_catalog_size_and_unique_ids(self):
        registry = default_registry()
        assert len(registry) >= 12
        ids = [rule.id for rule in registry]
        assert len(ids) == len(set(ids))

    def test_categories_cover_all_layers(self):
        categories = set(default_registry().categories())
        assert {"graph", "resources", "flowrules",
                "multidomain", "decomposition"} <= categories

    def test_select_by_id_and_category(self):
        registry = default_registry()
        assert [r.id for r in registry.select(ids=["NF001"])] == ["NF001"]
        assert all(r.category == "resources"
                   for r in registry.select(categories=["resources"]))

    def test_unknown_rule_lookup_raises(self):
        with pytest.raises(KeyError):
            default_registry().get("ZZ999")


class TestGraphRules:
    def test_clean_service_graph_has_no_findings(self):
        assert lint_nffg(clean_service()) == []

    def test_nf001_dangling_port(self):
        service = clean_service()
        del service.node("sap2").ports["1"]
        diagnostics = lint_nffg(service)
        assert "NF001" in rule_ids(diagnostics)
        finding = [d for d in diagnostics if d.rule_id == "NF001"][0]
        assert finding.severity is Severity.ERROR
        assert finding.node == "sap2"
        assert finding.port == "1"

    def test_nf002_orphan_nf(self):
        service = clean_service()
        service.add_nf("lonely", "nat", num_ports=2)
        diagnostics = lint_nffg(service)
        assert "NF002" in rule_ids(diagnostics)

    def test_nf003_unreachable_sap(self):
        service = clean_service()
        service.add_sap("sap9")
        diagnostics = lint_nffg(service)
        assert "NF003" in rule_ids(diagnostics)

    def test_nf003_quiet_for_tag_bound_sap(self):
        view = linear_substrate(2, id="s")
        assert "NF003" not in rule_ids(lint_nffg(view))

    def test_nf004_hop_on_infra(self):
        view = linear_substrate(2, id="s")
        view.add_sg_hop("s-bb0", "sap-sap1", "s-bb1", "sap-sap2", id="bad")
        diagnostics = lint_nffg(view)
        assert "NF004" in rule_ids(diagnostics)

    def test_nf005_requirement_with_ghost_hop(self):
        service = clean_service()
        service.requirements[0].sg_path.append("ghost")
        diagnostics = lint_nffg(service)
        assert "NF005" in rule_ids(diagnostics)


class TestResourceRules:
    def test_rs001_negative_nf_demand(self):
        service = clean_service()
        service.nf("fw").resources = ResourceVector(cpu=-1.0)
        diagnostics = lint_nffg(service)
        assert "RS001" in rule_ids(diagnostics)

    def test_rs001_negative_link_bandwidth(self):
        view = linear_substrate(2, id="s")
        view.links[0].bandwidth = -10.0
        assert "RS001" in rule_ids(lint_nffg(view))

    def test_rs002_overcommitted_infra(self):
        view = linear_substrate(2, id="s", cpu=1.0,
                                supported_types=["firewall"])
        view.add_nf("fat", "firewall",
                    resources=ResourceVector(cpu=8.0, mem=64.0), num_ports=1)
        view.place_nf("fat", "s-bb0")
        diagnostics = lint_nffg(view)
        assert "RS002" in rule_ids(diagnostics)

    def test_rs003_oversubscribed_link(self):
        view = linear_substrate(2, id="s")
        view.links[0].reserved = view.links[0].bandwidth + 1.0
        assert "RS003" in rule_ids(lint_nffg(view))

    def test_rs004_infeasible_delay_budget(self):
        service = (NFFGBuilder("svc").sap("sap1").sap("sap2")
                   .nf("fw", "firewall")
                   .hop("sap1", "fw", delay=40.0)
                   .hop("fw", "sap2", delay=40.0)
                   .requirement("sap1", "sap2", max_delay=50.0).build())
        diagnostics = lint_nffg(service)
        found = [d for d in diagnostics if d.rule_id == "RS004"]
        assert found and found[0].severity is Severity.WARNING

    def test_rs004_negative_budget_is_error(self):
        service = clean_service()
        service.requirements[0].max_delay = -5.0
        found = [d for d in lint_nffg(service) if d.rule_id == "RS004"]
        assert found and found[0].severity is Severity.ERROR

    def test_rs005_zero_bandwidth_link_is_info(self):
        view = linear_substrate(2, id="s")
        view.links[0].bandwidth = 0.0
        view.links[0].reserved = 0.0
        found = [d for d in lint_nffg(view) if d.rule_id == "RS005"]
        assert found and found[0].severity is Severity.INFO


class TestFlowruleRules:
    def test_fr001_bad_output_port(self):
        view = linear_substrate(2, id="s")
        view.infras[0].port("sap-sap1").add_flowrule(
            match="in_port=sap-sap1", action="output=ghost")
        diagnostics = lint_nffg(view)
        assert "FR001" in rule_ids(diagnostics)

    def test_fr002_two_port_forwarding_loop(self):
        view = linear_substrate(2, id="s")
        infra = view.infras[0]
        infra.port("sap-sap1").add_flowrule(
            match="in_port=sap-sap1", action="output=to-s-bb1")
        infra.port("to-s-bb1").add_flowrule(
            match="in_port=to-s-bb1", action="output=sap-sap1")
        diagnostics = lint_nffg(view)
        assert "FR002" in rule_ids(diagnostics)

    def test_fr002_quiet_for_tagged_chain(self):
        # mapping-layer style: ingress tags, egress untags — no loop
        view = linear_substrate(2, id="s")
        infra = view.infras[0]
        infra.port("sap-sap1").add_flowrule(
            match="in_port=sap-sap1", action="output=to-s-bb1;tag=h1")
        infra.port("to-s-bb1").add_flowrule(
            match="in_port=to-s-bb1;tag=h1", action="output=sap-sap1;untag")
        assert "FR002" not in rule_ids(lint_nffg(view))

    def test_fr003_conflicting_duplicate_match(self):
        view = linear_substrate(2, id="s")
        port = view.infras[0].port("sap-sap1")
        port.add_flowrule(match="in_port=sap-sap1;flowclass=tp_dst=80",
                          action="output=to-s-bb1")
        port.add_flowrule(match="in_port=sap-sap1;flowclass=tp_dst=80",
                          action="output=sap-sap1")
        found = [d for d in lint_nffg(view) if d.rule_id == "FR003"]
        assert found and found[0].severity is Severity.WARNING

    def test_fr003_pure_duplicate_is_info(self):
        view = linear_substrate(2, id="s")
        port = view.infras[0].port("sap-sap1")
        for _ in range(2):
            port.add_flowrule(match="in_port=sap-sap1",
                              action="output=to-s-bb1")
        found = [d for d in lint_nffg(view) if d.rule_id == "FR003"]
        assert found and found[0].severity is Severity.INFO


class TestMultiDomainRules:
    def test_md001_triple_tag(self):
        view = linear_substrate(3, id="s")
        for index, infra in enumerate(view.infras):
            infra.add_port(f"t{index}", sap_tag="x")
        diagnostics = lint_nffg(view)
        assert "MD001" in rule_ids(diagnostics)

    def test_md002_unpaired_handoff_is_info(self):
        view = linear_substrate(2, id="s")
        view.infras[0].add_port("handoff", sap_tag="to-elsewhere")
        found = [d for d in lint_nffg(view) if d.rule_id == "MD002"]
        assert found and found[0].severity is Severity.INFO

    def test_md003_cross_view_node_collision(self):
        a = NFFG(id="dom-a")
        a.add_infra("bb", num_ports=1)
        b = NFFG(id="dom-b")
        b.add_infra("bb", num_ports=1)
        diagnostics = lint_views([a, b])
        assert "MD003" in rule_ids(diagnostics)

    def test_md004_tag_tripled_across_views(self):
        views = []
        for index in range(3):
            view = NFFG(id=f"dom-{index}")
            infra = view.add_infra(f"bb{index}")
            infra.add_port("h", sap_tag="x")
            views.append(view)
        diagnostics = lint_views(views)
        assert "MD004" in rule_ids(diagnostics)

    def test_single_view_has_no_cross_view_findings(self):
        diagnostics = lint_views([linear_substrate(2, id="a")])
        assert not {d.rule_id for d in diagnostics} & {"MD003", "MD004"}

    def test_md005_slice_rule_references_foreign_port(self):
        # "bb" exists in both slices, but the port the rule outputs to
        # was only kept in dom-b's slice — the finding names the view
        # that does carry it
        a = NFFG(id="dom-a")
        infra_a = a.add_infra("bb", num_ports=1)
        infra_a.port("1").add_flowrule("in_port=1", "output=uplink")
        b = NFFG(id="dom-b")
        b.add_infra("bb2", num_ports=1).add_port("uplink")
        found = [d for d in lint_views([a, b]) if d.rule_id == "MD005"]
        assert found and "absent from this domain view" in found[0].message

    def test_md005_names_the_view_that_has_the_port(self):
        a = NFFG(id="dom-a")
        infra_a = a.add_infra("bb", num_ports=1)
        infra_a.port("1").add_flowrule("in_port=1", "output=uplink")
        b = NFFG(id="dom-b")
        b.add_infra("bb", num_ports=1).add_port("uplink")
        found = [d for d in lint_views([a, b]) if d.rule_id == "MD005"]
        assert found and "dom-b" in found[0].message

    def test_md005_quiet_on_self_contained_slices(self):
        view = linear_substrate(2, id="s")
        view.infras[0].port("sap-sap1").add_flowrule(
            "in_port=sap-sap1", "output=to-s-bb1")
        found = [d for d in lint_views([view]) if d.rule_id == "MD005"]
        assert not found


class TestDecompositionRules:
    def test_dc001_abstract_type_without_rule(self):
        library = DecompositionLibrary()
        library.mark_abstract("vCPE")
        service = (NFFGBuilder("svc").sap("sap1").sap("sap2")
                   .nf("cpe", "vCPE")
                   .chain("sap1", "cpe", "sap2").build())
        diagnostics = lint_nffg(service, decomposition_library=library)
        assert "DC001" in diagnostics.rule_ids()

    def test_dc001_quiet_with_default_library(self):
        service = (NFFGBuilder("svc").sap("sap1").sap("sap2")
                   .nf("cpe", "vCPE")
                   .chain("sap1", "cpe", "sap2").build())
        diagnostics = lint_nffg(
            service, decomposition_library=default_decomposition_library())
        assert "DC001" not in diagnostics.rule_ids()

    def test_dc002_extra_wired_port_on_abstract_nf(self):
        service = (NFFGBuilder("svc").sap("sap1").sap("sap2").sap("sap3")
                   .nf("cpe", "vCPE", num_ports=3)
                   .chain("sap1", "cpe", "sap2").build())
        service.add_sg_hop("cpe", "3", "sap3", "1", id="side-tap")
        diagnostics = lint_nffg(
            service, decomposition_library=default_decomposition_library())
        assert "DC002" in diagnostics.rule_ids()

    def test_rules_silent_without_library(self):
        service = (NFFGBuilder("svc").sap("sap1").sap("sap2")
                   .nf("cpe", "vCPE")
                   .chain("sap1", "cpe", "sap2").build())
        diagnostics = lint_nffg(service)
        assert not {d.rule_id for d in diagnostics} & {"DC001", "DC002"}


class TestEngineAndReporting:
    def test_findings_sorted_most_severe_first(self):
        service = clean_service()
        service.add_sap("sap9")                       # NF003 warning
        service.nf("fw").resources = ResourceVector(cpu=-1.0)  # RS001 error
        diagnostics = lint_nffg(service)
        severities = [d.severity for d in diagnostics]
        assert severities == sorted(severities, reverse=True)

    def test_restricted_rule_selection(self):
        service = clean_service()
        service.add_sap("sap9")
        engine = LintEngine(rules=default_registry().select(ids=["NF001"]))
        assert engine.run(service) == []

    def test_render_text_mentions_rule_and_location(self):
        service = clean_service()
        service.add_sap("sap9")
        text = render_text(lint_nffg(service), source="svc")
        assert "NF003" in text
        assert "node sap9" in text
        assert "1 warning(s)" in text

    def test_render_json_is_machine_readable(self):
        import json

        service = clean_service()
        service.add_sap("sap9")
        payload = json.loads(render_json(lint_nffg(service), source="svc"))
        assert payload["source"] == "svc"
        assert payload["summary"]["warning"] == 1
        assert payload["diagnostics"][0]["rule"] == "NF003"

    def test_rule_catalog_lists_every_rule(self):
        catalog = render_rule_catalog()
        for rule in default_registry():
            assert rule.id in catalog

    def test_diagnostic_list_helpers(self):
        service = clean_service()
        service.add_sap("sap9")
        service.nf("fw").resources = ResourceVector(cpu=-1.0)
        diagnostics = lint_nffg(service)
        assert diagnostics.worst() is Severity.ERROR
        assert diagnostics.at_least(Severity.ERROR) == diagnostics.errors
        assert set(diagnostics.by_rule()) == diagnostics.rule_ids()
        assert len(diagnostics.as_strings()) == len(diagnostics)
