"""Tests for NFFG (de)serialization."""

import json

import pytest

from repro.nffg import (
    NFFG,
    NFFGError,
    ResourceVector,
    nffg_from_dict,
    nffg_from_json,
    nffg_to_dict,
    nffg_to_json,
)
from repro.nffg.builder import linear_substrate


def _mapped_nffg() -> NFFG:
    nffg = linear_substrate(3, id="m", supported_types=["firewall"])
    nffg.add_nf("fw", "firewall",
                resources=ResourceVector(cpu=2, mem=128, storage=2),
                num_ports=2)
    nffg.place_nf("fw", "m-bb1")
    hop = nffg.add_sg_hop("sap1", "1", "fw", "1", id="h1", bandwidth=5.0)
    nffg.add_requirement("sap1", "1", "fw", "1", sg_path=[hop.id],
                         max_delay=20.0)
    nffg.infra("m-bb1").port("fw-1").add_flowrule(
        "in_port=fw-1", "output=to-m-bb2", bandwidth=5.0, hop_id="h1")
    nffg.metadata["owner"] = "tester"
    return nffg


def test_dict_roundtrip_structure():
    original = _mapped_nffg()
    clone = nffg_from_dict(nffg_to_dict(original))
    assert clone.summary() == original.summary()
    assert clone.metadata == {"owner": "tester"}
    assert clone.host_of("fw") == "m-bb1"


def test_dict_roundtrip_preserves_flowrules():
    clone = nffg_from_dict(nffg_to_dict(_mapped_nffg()))
    rules = list(clone.infra("m-bb1").iter_flowrules())
    assert len(rules) == 1
    _, rule = rules[0]
    assert rule.hop_id == "h1"
    assert rule.bandwidth == 5.0


def test_dict_roundtrip_preserves_requirements():
    clone = nffg_from_dict(nffg_to_dict(_mapped_nffg()))
    req = clone.requirements[0]
    assert req.sg_path == ["h1"]
    assert req.max_delay == 20.0


def test_json_roundtrip():
    original = _mapped_nffg()
    payload = nffg_to_json(original)
    json.loads(payload)  # valid JSON
    clone = nffg_from_json(payload)
    assert clone.summary() == original.summary()


def test_json_stable_under_reserialization():
    original = _mapped_nffg()
    once = nffg_to_json(original)
    twice = nffg_to_json(nffg_from_json(once))
    assert once == twice


def test_unknown_node_type_rejected():
    with pytest.raises(NFFGError):
        nffg_from_dict({"id": "x", "nodes": [{"id": "n", "type": "ALIEN"}]})


def test_unknown_edge_type_rejected():
    data = nffg_to_dict(linear_substrate(2))
    data["edges"][0]["type"] = "WORMHOLE"
    with pytest.raises(NFFGError):
        nffg_from_dict(data)


def test_empty_nffg_roundtrip():
    empty = NFFG(id="empty")
    clone = nffg_from_json(nffg_to_json(empty))
    assert clone.id == "empty"
    assert clone.summary()["infras"] == 0


def test_sap_binding_survives():
    nffg = NFFG(id="b")
    nffg.add_sap("sap1", binding="dom:node:port")
    clone = nffg_from_dict(nffg_to_dict(nffg))
    assert clone.sap("sap1").binding == "dom:node:port"
