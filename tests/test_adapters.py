"""Tests for the domain adapter layer (install accounting, teardown,
failure isolation)."""


from repro.emu import EmulatedDomain
from repro.netem import Network
from repro.nffg import NFFG
from repro.nffg.builder import linear_substrate
from repro.nffg.model import DomainType
from repro.orchestration import (
    DirectDomainAdapter,
    EmuDomainAdapter,
    SdnDomainAdapter,
)
from repro.sdnnet import SDNDomain


class TestDirectAdapter:
    def test_records_installs(self):
        adapter = DirectDomainAdapter("d", linear_substrate(2, id="d"))
        install = NFFG(id="install")
        report = adapter.install(install)
        assert report.success
        assert adapter.installs == 1
        assert adapter.installed == [install]

    def test_get_view_returns_copy(self):
        view = linear_substrate(2, id="d")
        adapter = DirectDomainAdapter("d", view)
        got = adapter.get_view()
        got.add_sap("intruder")
        assert not adapter.get_view().has_node("intruder")

    def test_teardown_pushes_empty(self):
        adapter = DirectDomainAdapter("d", linear_substrate(2, id="d"))
        adapter.teardown()
        assert adapter.installed[-1].summary()["infras"] == 0

    def test_default_flow_stats_empty(self):
        adapter = DirectDomainAdapter("d", NFFG(id="v"))
        assert adapter.flow_stats() == {}


class TestAdapterFaultIsolation:
    def test_push_exception_becomes_failed_report(self):
        class ExplodingAdapter(DirectDomainAdapter):
            def _push(self, install):
                raise RuntimeError("boom")

        adapter = ExplodingAdapter("bad", NFFG(id="v"))
        report = adapter.install(NFFG(id="x"))
        assert not report.success
        assert "RuntimeError: boom" in report.error
        assert adapter.installs == 0

    def test_report_counts_control_traffic_delta(self):
        net = Network()
        domain = EmulatedDomain("emu", net, node_ids=["bb0"])
        domain.add_sap("sap1", "bb0")
        adapter = EmuDomainAdapter("emu", domain)
        first = adapter.install(domain.domain_view())
        second = adapter.install(domain.domain_view(), force_full=True)
        assert first.control_messages > 0
        assert second.control_messages > 0
        # deltas, not cumulative totals
        total_messages, _ = adapter.control_stats()
        assert total_messages >= first.control_messages \
            + second.control_messages
        # an unforced re-push of the acknowledged config is a delta
        # no-op: nothing goes on the wire at all
        third = adapter.install(domain.domain_view())
        assert third.success and third.delta
        assert third.control_messages == 0


class TestSdnAdapter:
    def _setup(self):
        net = Network()
        domain = SDNDomain("sdn", net, switch_ids=["sw0", "sw1"],
                           links=[("sw0", "sw1")])
        domain.add_sap("a", "sw0")
        domain.add_sap("b", "sw1")
        return net, domain, SdnDomainAdapter("sdn", domain)

    def test_programs_switch_rules(self):
        net, domain, adapter = self._setup()
        view = adapter.get_view()
        # fabricate a transit install: steer a->b through both switches
        install = view.copy("install")
        install.infra("sw0").port("sap-a").add_flowrule(
            "in_port=sap-a", "output=to-sw1;tag=h1", hop_id="h1")
        install.infra("sw1").port("to-sw0").add_flowrule(
            "in_port=to-sw0;tag=h1", "output=sap-b;untag", hop_id="h1")
        report = adapter.install(install)
        assert report.success, report.error
        assert domain.switches["sw0"].flow_count() == 1
        assert domain.switches["sw1"].flow_count() == 1

    def test_unknown_switch_fails_report(self):
        net, domain, adapter = self._setup()
        install = NFFG(id="x")
        install.add_infra("ghost-switch", domain=DomainType.SDN,
                          num_ports=1)
        report = adapter.install(install)
        assert not report.success
        assert "ghost-switch" in report.error

    def test_reinstall_replaces_flows(self):
        net, domain, adapter = self._setup()
        view = adapter.get_view()
        install = view.copy("install")
        install.infra("sw0").port("sap-a").add_flowrule(
            "in_port=sap-a", "output=to-sw1", hop_id="h1")
        adapter.install(install)
        adapter.install(install)
        assert domain.switches["sw0"].flow_count() == 1

    def test_teardown_clears(self):
        net, domain, adapter = self._setup()
        view = adapter.get_view()
        install = view.copy("install")
        install.infra("sw0").port("sap-a").add_flowrule(
            "in_port=sap-a", "output=to-sw1", hop_id="h1")
        adapter.install(install)
        adapter.teardown()
        assert domain.switches["sw0"].flow_count() == 0
