"""Tests for YANG tree diff/patch — the Unify interface's delta format."""

import pytest

from repro.yang import (
    Container,
    DataNode,
    DiffOp,
    Leaf,
    LeafType,
    ValidationError,
    YangList,
    apply_patch,
    diff_trees,
)
from repro.yang.diff import DiffEntry, patch_size_bytes


@pytest.fixture
def schema():
    return Container("cfg", [
        Leaf("name"),
        Container("box", [Leaf("v", LeafType.INT)]),
        YangList("entry", key="id", children=[
            Leaf("id"), Leaf("value"),
            YangList("port", key="id", children=[Leaf("id"), Leaf("speed")]),
        ]),
    ])


def _base(schema):
    tree = DataNode(schema)
    tree.set_leaf("name", "base")
    tree.container("box").set_leaf("v", 1)
    entry = tree.list_node("entry").add_instance("e1")
    entry.set_leaf("value", "v1")
    entry.list_node("port").add_instance("p1").set_leaf("speed", "10G")
    return tree


def test_identical_trees_empty_diff(schema):
    a = _base(schema)
    assert diff_trees(a, a.copy()) == []


def test_leaf_change_produces_set(schema):
    a = _base(schema)
    b = a.copy()
    b.set_leaf("name", "new")
    entries = diff_trees(a, b)
    assert entries == [DiffEntry(DiffOp.SET, "/cfg/name", "new")]


def test_nested_leaf_change(schema):
    a = _base(schema)
    b = a.copy()
    b.container("box").set_leaf("v", 2)
    entries = diff_trees(a, b)
    assert entries[0].path == "/cfg/box/v" and entries[0].value == 2


def test_instance_create(schema):
    a = _base(schema)
    b = a.copy()
    b.list_node("entry").add_instance("e2").set_leaf("value", "v2")
    entries = diff_trees(a, b)
    assert len(entries) == 1
    assert entries[0].op == DiffOp.CREATE
    assert entries[0].path == "/cfg/entry[e2]"
    assert entries[0].value["value"] == "v2"


def test_instance_delete(schema):
    a = _base(schema)
    b = a.copy()
    b.list_node("entry").remove_instance("e1")
    entries = diff_trees(a, b)
    assert entries == [DiffEntry(DiffOp.DELETE, "/cfg/entry[e1]")]


def test_nested_list_diff(schema):
    a = _base(schema)
    b = a.copy()
    ports = b.list_node("entry").instance("e1").list_node("port")
    ports.remove_instance("p1")
    ports.add_instance("p2").set_leaf("speed", "40G")
    entries = diff_trees(a, b)
    ops = {(e.op, e.path) for e in entries}
    assert (DiffOp.DELETE, "/cfg/entry[e1]/port[p1]") in ops
    assert (DiffOp.CREATE, "/cfg/entry[e1]/port[p2]") in ops


def test_patch_roundtrip_complex(schema):
    a = _base(schema)
    b = a.copy()
    b.set_leaf("name", "patched")
    b.container("box").set_leaf("v", 9)
    b.list_node("entry").remove_instance("e1")
    new_entry = b.list_node("entry").add_instance("e9")
    new_entry.set_leaf("value", "nine")
    new_entry.list_node("port").add_instance("px").set_leaf("speed", "100G")
    entries = diff_trees(a, b)
    patched = apply_patch(a.copy(), entries)
    assert patched.to_dict() == b.to_dict()


def test_patch_create_replaces_existing(schema):
    a = _base(schema)
    entries = [DiffEntry(DiffOp.CREATE, "/cfg/entry[e1]",
                         {"id": "e1", "value": "replaced"})]
    patched = apply_patch(a, entries)
    assert patched.list_node("entry").instance("e1").get("value") == "replaced"


def test_patch_rejects_foreign_root(schema):
    a = _base(schema)
    with pytest.raises(ValidationError):
        apply_patch(a, [DiffEntry(DiffOp.SET, "/other/name", "x")])


def test_diff_rejects_different_schemas(schema):
    other = Container("different", [Leaf("name")])
    with pytest.raises(ValidationError):
        diff_trees(DataNode(schema), DataNode(other))


def test_patch_size_smaller_than_full_tree_for_small_change(schema):
    a = _base(schema)
    for index in range(20):
        a.list_node("entry").add_instance(f"bulk{index}")
    b = a.copy()
    b.set_leaf("name", "tweak")
    entries = diff_trees(a, b)
    assert patch_size_bytes(entries) < len(b.to_json().encode())


def test_diff_entry_dict_roundtrip():
    entry = DiffEntry(DiffOp.CREATE, "/cfg/entry[x]", {"id": "x"})
    assert DiffEntry.from_dict(entry.to_dict()) == entry


def test_new_container_content_emits_sets(schema):
    a = DataNode(schema)
    a.set_leaf("name", "x")
    b = a.copy()
    b.container("box").set_leaf("v", 5)
    entries = diff_trees(a, b)
    assert any(e.op == DiffOp.SET and e.path == "/cfg/box/v" for e in entries)
    patched = apply_patch(a.copy(), entries)
    assert patched.to_dict() == b.to_dict()


def test_deleted_container_emits_delete(schema):
    a = _base(schema)
    b = a.copy()
    b.remove_child("box")
    entries = diff_trees(a, b)
    assert DiffEntry(DiffOp.DELETE, "/cfg/box") in entries
    patched = apply_patch(a.copy(), entries)
    assert not patched.has_child("box")
