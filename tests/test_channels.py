"""Tests for control channels with simulated latency (the async path)."""

import pytest

from repro.netem import Network
from repro.netem.packet import tcp_packet
from repro.openflow import (
    ActionOutput,
    ControllerEndpoint,
    Match,
    OpenFlowSwitch,
)
from repro.openflow.channel import ControlChannel
from repro.sim import Simulator


class TestChannelLatency:
    def test_latent_delivery_uses_simulator(self):
        sim = Simulator()
        channel = ControlChannel("lat", simulator=sim, latency_ms=5.0)
        received = []
        channel.bind_b(received.append)
        channel.bind_a(lambda msg: None)
        channel.send_to_b("hello")
        assert received == []  # not yet delivered
        sim.run()
        assert received == ["hello"]
        assert sim.now == 5.0

    def test_zero_latency_is_synchronous(self):
        sim = Simulator()
        channel = ControlChannel("sync", simulator=sim, latency_ms=0.0)
        received = []
        channel.bind_b(received.append)
        channel.send_to_b("now")
        assert received == ["now"]

    def test_unbound_endpoint_raises(self):
        channel = ControlChannel("x")
        with pytest.raises(RuntimeError):
            channel.send_to_b("nobody home")

    def test_byte_accounting_with_objects(self):
        channel = ControlChannel("acct")
        channel.bind_b(lambda msg: None)
        channel.send_to_b({"key": "value"})
        channel.send_to_b(b"raw-bytes")
        channel.send_to_b("text")
        assert channel.stats.messages_to_b == 3
        assert channel.stats.bytes_to_b == \
            len('{"key": "value"}') + len(b"raw-bytes") + len("text")

    def test_stats_reset(self):
        channel = ControlChannel("r")
        channel.bind_b(lambda msg: None)
        channel.send_to_b("x")
        channel.stats.reset()
        assert channel.stats.messages == 0
        assert channel.stats.bytes == 0


class TestLatentOpenFlowControl:
    def test_reactive_forwarding_with_control_latency(self):
        """Packet-in/flow-mod round trips pay the control RTT; the
        dataplane still converges."""
        net = Network()
        h1 = net.add_host("h1")
        h2 = net.add_host("h2")
        switch = net.add(OpenFlowSwitch("s1", net.simulator))
        net.connect("h1", "0", "s1", "1", delay_ms=0.1)
        net.connect("h2", "0", "s1", "2", delay_ms=0.1)
        controller = ControllerEndpoint("ctl", simulator=net.simulator,
                                        channel_latency_ms=10.0)
        controller.connect_switch(switch)

        def on_packet_in(dpid, msg):
            controller.send_flow_mod(dpid, match=Match(in_port="1"),
                                     actions=[ActionOutput("2")])
            controller.send_packet_out(dpid, msg.packet, msg.in_port,
                                       [ActionOutput("2")])

        controller.on_packet_in(on_packet_in)
        h1.send(tcp_packet(h1.ip, h2.ip))
        net.run()
        assert len(h2.received) == 1
        # first packet paid two control-channel traversals (>= 20 ms)
        assert h2.latencies[0] >= 20.0
        # second packet takes the fast path
        h1.send(tcp_packet(h1.ip, h2.ip))
        net.run()
        assert len(h2.received) == 2
        assert h2.latencies[1] < 1.0

    def test_features_handshake_with_latency(self):
        net = Network()
        switch = net.add(OpenFlowSwitch("s1", net.simulator))
        controller = ControllerEndpoint("ctl", simulator=net.simulator,
                                        channel_latency_ms=3.0)
        controller.connect_switch(switch)
        assert controller.features("s1") is None  # still in flight
        net.run()
        assert controller.features("s1") is not None
