"""Property-based test: the Unify recursion boundary is lossless.

For arbitrary chain-shaped services mapped onto a single-BiS-BiS view,
reconstructing the service from the resulting virtual install
(`service_from_virtual_install`) must preserve the SAP/NF topology,
hop ids, flowclasses and bandwidths — otherwise stacked orchestrators
would silently mutate tenant intent.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.mapping import GreedyEmbedder
from repro.nffg import NFFGBuilder
from repro.nffg.builder import single_bisbis_view
from repro.orchestration import service_from_virtual_install

NF_TYPES = ["firewall", "nat", "dpi", "monitor", "forwarder"]


@st.composite
def chain_service(draw):
    length = draw(st.integers(1, 5))
    builder = NFFGBuilder("svc").sap("sap1").sap("sap2")
    names = []
    for index in range(length):
        name = f"nf{index}"
        builder.nf(name, draw(st.sampled_from(NF_TYPES)),
                   cpu=draw(st.floats(0.5, 2.0, allow_nan=False)))
        names.append(name)
    flowclass = draw(st.sampled_from(["", "tp_dst=80", "nw_proto=6"]))
    bandwidth = draw(st.floats(0.5, 50.0, allow_nan=False))
    builder.chain("sap1", *names, "sap2", flowclass=flowclass,
                  bandwidth=bandwidth)
    return builder.build()


@given(chain_service())
@settings(max_examples=50, deadline=None)
def test_recursion_boundary_is_lossless(service):
    view = single_bisbis_view(cpu=128.0, sap_tags=["sap1", "sap2"])
    result = GreedyEmbedder().map(service, view)
    assert result.success, result.failure_reason
    rebuilt = service_from_virtual_install(result.mapped, "rebuilt")

    assert {nf.id for nf in rebuilt.nfs} == {nf.id for nf in service.nfs}
    assert {sap.id for sap in rebuilt.saps} == \
        {sap.id for sap in service.saps}
    original_hops = {hop.id: hop for hop in service.sg_hops}
    rebuilt_hops = {hop.id: hop for hop in rebuilt.sg_hops}
    assert set(rebuilt_hops) == set(original_hops)
    for hop_id, original in original_hops.items():
        clone = rebuilt_hops[hop_id]
        assert clone.src_node == original.src_node
        assert clone.dst_node == original.dst_node
        assert clone.flowclass == original.flowclass
        assert abs(clone.bandwidth - original.bandwidth) < 1e-9


@given(chain_service())
@settings(max_examples=30, deadline=None)
def test_rebuilt_service_remaps_identically(service):
    """Mapping the reconstructed service again must succeed with the
    same NF placement shape (fixed point of the recursion)."""
    view = single_bisbis_view(cpu=128.0, sap_tags=["sap1", "sap2"])
    first = GreedyEmbedder().map(service, view)
    assert first.success
    rebuilt = service_from_virtual_install(first.mapped, "rebuilt")
    second = GreedyEmbedder().map(rebuilt, view)
    assert second.success, second.failure_reason
    assert set(second.nf_placement) == set(first.nf_placement)
