"""Sharded-CAL equivalence and isolation properties.

1. Partitioning is invisible to consumers of the DoV: a sharded CAL
   and a flat one, driven through the same seeded deploy / teardown /
   heal churn, end with byte-identical stitched views — and both match
   a from-scratch ``rebuild()``.
2. Resilience bookkeeping is shard-local: a breaker tripping in one
   shard never queues replays (or trips breakers) in another, even
   while planned pushes keep flowing through the healthy shard.

Both properties also run under the runtime sanitizer: the per-shard
pending locks must not introduce lock-order inversions or blocking
calls under a lock.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import sanitize
from repro.orchestration import EscapeOrchestrator
from repro.resilience import BreakerState

from tests.property.test_incremental_dov import canonical
from tests.test_cal_shards import CountingAdapter, _pinned_service, domain_view

DOMAINS = ["d0", "d1", "d2", "d3", "d4"]


def _escape(shards):
    escape = EscapeOrchestrator(f"equiv-{shards}", cal_shards=shards)
    escape.cal.breaker_failure_threshold = 2
    adapters = {name: escape.add_domain(
        CountingAdapter(name, domain_view(name))) for name in DOMAINS}
    return escape, adapters


def _run_churn(escape, operations):
    for kind, index, domain_index in operations:
        service_id = f"s{index}"
        deployed = service_id in escape.cal.deployed_services()
        if kind == "deploy" and not deployed:
            escape.deploy(_pinned_service(index, DOMAINS[domain_index]),
                          wait_activation=False)
        elif kind == "teardown" and deployed:
            escape.teardown(service_id)
        elif kind == "heal":
            escape.heal()


churn = st.lists(
    st.tuples(st.sampled_from(["deploy", "teardown", "heal"]),
              st.integers(0, 3),
              st.integers(0, len(DOMAINS) - 1)),
    min_size=2, max_size=10)


@given(churn)
@settings(max_examples=15, deadline=None)
def test_sharded_dov_equals_flat_dov_under_churn(operations):
    sharded, _ = _escape(3)
    flat, _ = _escape(1)
    _run_churn(sharded, operations)
    _run_churn(flat, operations)
    stitched = canonical(sharded.cal.dov)
    assert stitched == canonical(flat.cal.dov)
    # ...and the lazily maintained stitched view is no approximation
    assert stitched == canonical(sharded.cal.rebuild())
    assert sharded.cal.deployed_services() == flat.cal.deployed_services()
    # the incrementally maintained remaining-capacity cache equals a
    # from-scratch derivation off the final DoV
    from repro.nffg.ops import remaining_nffg
    assert canonical(sharded.cal.resource_view()) \
        == canonical(remaining_nffg(sharded.cal.dov, new_id="dov-remaining",
                                    include_deployed=False))


def test_breaker_trip_stays_inside_its_shard():
    previous = sanitize.disable()
    state = sanitize.enable(fresh=True)
    try:
        escape = EscapeOrchestrator(
            "isolation", cal_shards=2,
            cal_shard_map={"d0": 0, "d1": 0, "d2": 1})
        escape.cal.breaker_failure_threshold = 2
        adapters = {name: escape.add_domain(
            CountingAdapter(name, domain_view(name)))
            for name in ("d0", "d1", "d2")}
        cal = escape.cal

        # hammer d2 until its breaker opens, deploying into d0 between
        # failures so the healthy shard keeps taking planned pushes
        adapters["d2"].broken = True
        assert not escape.deploy(_pinned_service(0, "d2"),
                                 wait_activation=False)
        assert escape.deploy(_pinned_service(1, "d0"),
                             wait_activation=False)
        assert cal.breakers["d2"].state is BreakerState.OPEN

        # the trip is shard-local: shard 0 holds no replay debt and
        # its members' breakers never moved
        shard0 = cal.shards[cal.shard_of("d0")]
        shard1 = cal.shards[cal.shard_of("d2")]
        assert shard0 is not shard1
        with shard0.lock:
            assert shard0.pending == set()
        with shard1.lock:
            assert shard1.pending == {"d2"}
        for name in ("d0", "d1"):
            assert cal.breakers[name].state is BreakerState.CLOSED

        # recovery drains only the indebted shard's queue
        adapters["d2"].broken = False
        cal.reconcile(force_probe=True)
        assert cal.pending_reconciliation() == set()
        assert cal.breakers["d2"].state is BreakerState.CLOSED
    finally:
        sanitize.disable()
        sanitize.restore(previous)
    report = state.report()
    assert report.acquisitions > 0
    assert report.ok(), report.render_text()


def test_churn_on_sharded_cal_is_sanitizer_clean():
    previous = sanitize.disable()
    state = sanitize.enable(fresh=True)
    try:
        escape, _ = _escape(3)
        _run_churn(escape, [("deploy", i, i % len(DOMAINS))
                            for i in range(4)]
                   + [("heal", 0, 0), ("teardown", 1, 0),
                      ("deploy", 1, 2)])
        assert canonical(escape.cal.dov) == canonical(escape.cal.rebuild())
    finally:
        sanitize.disable()
        sanitize.restore(previous)
    report = state.report()
    assert report.acquisitions > 0
    assert report.locks_seen >= 3
    assert report.ok(), report.render_text()
