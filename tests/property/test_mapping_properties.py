"""Property-based tests: any successful embedding must be sound.

The independent validator re-derives capacity, routing, bandwidth and
delay constraints, so "success implies zero violations" is a strong
invariant to fuzz across random substrates and random chains.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.mapping import (
    BacktrackingEmbedder,
    DelayAwareEmbedder,
    GreedyEmbedder,
    validate_mapping,
)
from repro.nffg import NFFGBuilder
from repro.nffg.builder import mesh_substrate

NF_TYPES = ["firewall", "nat", "dpi", "monitor"]


@st.composite
def substrate_and_service(draw):
    substrate = mesh_substrate(
        draw(st.integers(4, 14)), degree=3,
        seed=draw(st.integers(0, 50)),
        cpu=draw(st.floats(2, 32, allow_nan=False)),
        link_bw=draw(st.floats(50, 2000, allow_nan=False)),
        supported_types=NF_TYPES)
    chain_length = draw(st.integers(1, 4))
    builder = NFFGBuilder("svc").sap("sap1").sap("sap2")
    names = []
    for index in range(chain_length):
        name = f"nf{index}"
        builder.nf(name, draw(st.sampled_from(NF_TYPES)),
                   cpu=draw(st.floats(0.5, 4, allow_nan=False)))
        names.append(name)
    bandwidth = draw(st.floats(0, 100, allow_nan=False))
    builder.chain("sap1", *names, "sap2", bandwidth=bandwidth)
    if draw(st.booleans()):
        builder.requirement("sap1", "sap2",
                            max_delay=draw(st.floats(5, 500,
                                                     allow_nan=False)))
    return substrate, builder.build()


@given(substrate_and_service(),
       st.sampled_from([GreedyEmbedder, BacktrackingEmbedder,
                        DelayAwareEmbedder]))
@settings(max_examples=40, deadline=None)
def test_successful_mappings_are_always_valid(case, embedder_cls):
    substrate, service = case
    result = embedder_cls().map(service, substrate)
    if result.success:
        violations = validate_mapping(service, substrate, result)
        assert violations == [], violations


@given(substrate_and_service())
@settings(max_examples=30, deadline=None)
def test_mapping_does_not_mutate_inputs(case):
    substrate, service = case
    substrate_before = substrate.summary()
    reserved_before = [link.reserved for link in substrate.links]
    service_before = service.summary()
    GreedyEmbedder().map(service, substrate)
    assert substrate.summary() == substrate_before
    assert [link.reserved for link in substrate.links] == reserved_before
    assert service.summary() == service_before


@given(substrate_and_service())
@settings(max_examples=30, deadline=None)
def test_greedy_and_backtrack_agree_on_feasibility_direction(case):
    """Backtracking explores a superset of greedy's choices: whenever
    greedy succeeds, backtracking must too."""
    substrate, service = case
    greedy = GreedyEmbedder().map(service, substrate)
    if greedy.success:
        backtrack = BacktrackingEmbedder().map(service, substrate)
        assert backtrack.success, backtrack.failure_reason
