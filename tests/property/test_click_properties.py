"""Property-based tests for Click NFs and the simulator kernel."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.click import make_nf_process
from repro.click.catalog import supported_functional_types
from repro.netem.packet import Packet
from repro.sim import Simulator

packets = st.builds(
    Packet,
    ip_src=st.sampled_from(["10.0.0.1", "10.0.0.2"]),
    ip_dst=st.sampled_from(["10.0.1.1", "10.0.1.2"]),
    ip_proto=st.sampled_from([6, 17]),
    tp_src=st.integers(1024, 2048),
    tp_dst=st.integers(1, 1024),
    payload=st.text(alphabet="abcdef malware", max_size=20),
    size_bytes=st.integers(64, 1500),
)


@given(st.sampled_from(supported_functional_types()),
       st.lists(packets, min_size=1, max_size=10))
@settings(max_examples=60, deadline=None)
def test_nfs_never_duplicate_or_crash(functional_type, burst):
    """Any catalog NF, any packet burst: per input packet at most one
    emission per output gate, and no exceptions."""
    process = make_nf_process("x", functional_type)
    for packet in burst:
        emissions = process.push(packet, 0, now=0.0)
        assert len(emissions) <= 2
        for port, emitted in emissions:
            assert isinstance(port, int)
            assert emitted.size_bytes > 0


@given(st.sampled_from(["firewall", "nat", "forwarder", "monitor"]),
       packets)
@settings(max_examples=60, deadline=None)
def test_forwarding_nfs_preserve_identity(functional_type, packet):
    """Forwarded packets keep their uid (no silent re-origination)."""
    process = make_nf_process("x", functional_type)
    original_uid = packet.uid
    for port, emitted in process.push(packet, 0):
        assert emitted.uid == original_uid


@given(st.lists(st.tuples(st.floats(0, 100, allow_nan=False),
                          st.integers(0, 1000)),
                min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_simulator_fires_in_nondecreasing_time_order(events):
    sim = Simulator()
    fired: list[float] = []
    for delay, _ in events:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(events)


@given(st.lists(st.floats(0, 50, allow_nan=False), min_size=1,
                max_size=30))
@settings(max_examples=50, deadline=None)
def test_simulator_clock_never_goes_backwards(delays):
    sim = Simulator()
    observations: list[float] = []

    def observe():
        observations.append(sim.now)

    for delay in delays:
        sim.schedule(delay, observe)
    sim.run()
    assert observations == sorted(observations)
    assert sim.now == max(delays)
