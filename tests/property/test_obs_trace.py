"""Trace-integrity properties under chaos (satellite of the
observability layer).

A seeded chaos storm — random deploy/update/teardown operations against
a faulty domain — runs with tracing enabled.  Whatever the storm did,
the resulting trace must be structurally sound:

1. every span is closed (no leaks survive the storm);
2. every non-root span parents onto a span in the same trace;
3. every ``breaker.trip`` event carries the trace/span id of the
   ``push/<domain>`` span whose failure tripped the breaker — the
   cross-reference that lets an operator jump from the trip straight to
   the offending push;
4. the ring always exports valid Chrome trace JSON.

``REPRO_CHAOS_SMOKE=1`` shrinks the example budget for the CI smoke
job, same as the chaos soak.
"""

import os

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import obs
from repro.obs.trace import validate_chrome_trace
from repro.resilience import FaultKind, FaultPlan

from tests.property.test_chaos_soak import (
    _chaos_escape,
    _drain,
    _run_ops,
    ops,
)

MAX_EXAMPLES = 6 if os.environ.get("REPRO_CHAOS_SMOKE") else 20


@given(ops, st.integers(0, 2 ** 16))
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_chaos_trace_is_closed_parented_and_cross_referenced(
        operations, seed):
    plan = FaultPlan.random_plan(seed, ["dom"], ops=("push",),
                                 rate=0.3, length=60,
                                 kinds=(FaultKind.ERROR, FaultKind.DROP,
                                        FaultKind.FATAL))
    previous = obs.disable()
    state = obs.enable(fresh=True)
    try:
        escape, _ = _chaos_escape(plan)
        _run_ops(escape, operations)
        _drain(escape, plan)
    finally:
        obs.disable()
        obs.restore(previous)

    # 1. no span leaked open past the storm
    assert state.tracer.open_spans() == []

    spans = state.tracer.spans()
    by_id = {span.span_id: span for span in spans}
    assert len(by_id) == len(spans)  # span ids are unique

    # 2. every span is closed and parents inside its own trace
    for span in spans:
        assert span.end_s is not None
        assert span.end_s >= span.start_s
        if span.parent_id is not None:
            parent = by_id.get(span.parent_id)
            # a parent may only be missing if the ring evicted it
            if parent is not None:
                assert parent.trace_id == span.trace_id
                assert parent.start_s <= span.start_s

    # 3. breaker trips point back at the push span that tripped them
    push_spans = {span.span_id: span for span in spans
                  if span.name.startswith("push/")}
    trips = [event for event in state.events.events()
             if event["type"] == "breaker.trip"]
    for trip in trips:
        assert trip["span_id"] is not None
        tripping = push_spans[trip["span_id"]]
        assert tripping.name == f"push/{trip['breaker']}"
        assert trip["trace_id"] == tripping.trace_id
        # the push event on the same span reports the failure
        push_events = [event for event in state.events.events()
                       if event["type"] == "push"
                       and event.get("span_id") == trip["span_id"]]
        assert all(not event["success"] for event in push_events)

    # 4. the ring always exports loadable Chrome trace JSON
    assert validate_chrome_trace(state.tracer.export_chrome()) == []
