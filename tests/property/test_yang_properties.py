"""Property-based tests for the YANG diff/patch engine: for arbitrary
tree pairs, ``apply_patch(a, diff(a, b)) == b``."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.yang import Container, DataNode, Leaf, LeafType, YangList, diff_trees, apply_patch

SCHEMA = Container("cfg", [
    Leaf("name"),
    Leaf("count", LeafType.INT),
    Container("box", [Leaf("v", LeafType.INT), Leaf("w")]),
    YangList("entry", key="id", children=[
        Leaf("id"), Leaf("value"),
        Container("sub", [Leaf("x", LeafType.INT)]),
        YangList("port", key="id", children=[Leaf("id"), Leaf("speed")]),
    ]),
])

names = st.text(alphabet="abcde", min_size=1, max_size=4)


@st.composite
def random_tree(draw):
    tree = DataNode(SCHEMA)
    if draw(st.booleans()):
        tree.set_leaf("name", draw(names))
    if draw(st.booleans()):
        tree.set_leaf("count", draw(st.integers(0, 99)))
    if draw(st.booleans()):
        box = tree.container("box")
        box.set_leaf("v", draw(st.integers(0, 9)))
        if draw(st.booleans()):
            box.set_leaf("w", draw(names))
    entries = tree.list_node("entry")
    for key in draw(st.sets(names, max_size=4)):
        entry = entries.add_instance(key)
        if draw(st.booleans()):
            entry.set_leaf("value", draw(names))
        if draw(st.booleans()):
            entry.container("sub").set_leaf("x", draw(st.integers(0, 9)))
        ports = entry.list_node("port")
        for port_key in draw(st.sets(names, max_size=3)):
            instance = ports.add_instance(port_key)
            if draw(st.booleans()):
                instance.set_leaf("speed", draw(names))
    return tree


@given(random_tree(), random_tree())
@settings(max_examples=80, deadline=None)
def test_patch_transforms_a_into_b(a, b):
    entries = diff_trees(a, b)
    patched = apply_patch(a.copy(), entries)
    assert patched.to_dict() == b.to_dict()


@given(random_tree())
@settings(max_examples=40, deadline=None)
def test_self_diff_is_empty(tree):
    assert diff_trees(tree, tree.copy()) == []


@given(random_tree(), random_tree())
@settings(max_examples=40, deadline=None)
def test_diff_is_antisymmetric_in_size(a, b):
    forward = diff_trees(a, b)
    backward = diff_trees(b, a)
    # applying forward then backward returns to a
    roundtrip = apply_patch(apply_patch(a.copy(), forward), backward)
    assert roundtrip.to_dict() == a.to_dict()


@given(random_tree(), random_tree())
@settings(max_examples=40, deadline=None)
def test_patch_is_idempotent_for_sets_and_creates(a, b):
    entries = [e for e in diff_trees(a, b)]
    patched_once = apply_patch(a.copy(), entries)
    # re-applying CREATE entries replaces-by-key, SET entries overwrite;
    # DELETE entries would fail on second application, so filter them
    from repro.yang import DiffOp
    repeatable = [e for e in entries if e.op != DiffOp.DELETE]
    patched_twice = apply_patch(patched_once.copy(), repeatable)
    assert patched_twice.to_dict() == patched_once.to_dict()
