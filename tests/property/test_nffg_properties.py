"""Property-based tests for the NFFG model (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.nffg import (
    NFFG,
    ResourceVector,
    merge_nffgs,
    nffg_from_dict,
    nffg_from_json,
    nffg_to_dict,
    nffg_to_json,
    remaining_nffg,
    split_per_domain,
)
from repro.nffg.model import DomainType

resources = st.builds(
    ResourceVector,
    cpu=st.floats(0, 128, allow_nan=False),
    mem=st.floats(0, 1 << 16, allow_nan=False),
    storage=st.floats(0, 1 << 10, allow_nan=False),
    bandwidth=st.floats(0, 1 << 14, allow_nan=False),
    delay=st.floats(0, 100, allow_nan=False),
)

node_ids = st.text(alphabet="abcdefgh0123456789", min_size=1, max_size=8)


@st.composite
def random_nffg(draw):
    """A random but structurally valid NFFG with infras, links, NFs."""
    nffg = NFFG(id=f"g{draw(st.integers(0, 999))}")
    infra_count = draw(st.integers(1, 6))
    domains = list(DomainType)
    for index in range(infra_count):
        nffg.add_infra(f"bb{index}", resources=draw(resources),
                       domain=draw(st.sampled_from(domains)),
                       num_ports=0)
    # random connected-ish links
    for index in range(infra_count - 1):
        src, dst = f"bb{index}", f"bb{index + 1}"
        port_s = nffg.infra(src).add_port(f"to-{dst}")
        port_d = nffg.infra(dst).add_port(f"to-{src}")
        nffg.add_link(src, port_s.id, dst, port_d.id,
                      bandwidth=draw(st.floats(1, 1000, allow_nan=False)),
                      delay=draw(st.floats(0, 10, allow_nan=False)))
    nf_count = draw(st.integers(0, 4))
    for index in range(nf_count):
        nf = nffg.add_nf(f"nf{index}", draw(st.sampled_from(
            ["firewall", "nat", "dpi"])), resources=draw(resources),
            num_ports=2)
        host = f"bb{draw(st.integers(0, infra_count - 1))}"
        if nffg.infra(host).supports(nf.functional_type):
            nffg.place_nf(nf.id, host)
    return nffg


@given(random_nffg())
@settings(max_examples=40, deadline=None)
def test_serialization_roundtrip_preserves_everything(nffg):
    clone = nffg_from_dict(nffg_to_dict(nffg))
    assert clone.summary() == nffg.summary()
    assert {n.id for n in clone.nodes} == {n.id for n in nffg.nodes}
    assert {e.id for e in clone.edges} == {e.id for e in nffg.edges}
    for nf in nffg.nfs:
        assert clone.host_of(nf.id) == nffg.host_of(nf.id)


@given(random_nffg())
@settings(max_examples=40, deadline=None)
def test_json_roundtrip_is_fixed_point(nffg):
    once = nffg_to_json(nffg)
    assert nffg_to_json(nffg_from_json(once)) == once


@given(random_nffg())
@settings(max_examples=30, deadline=None)
def test_copy_never_aliases(nffg):
    clone = nffg.copy()
    for node in clone.nodes:
        assert node is not nffg.node(node.id)
    assert clone.summary() == nffg.summary()


@given(random_nffg())
@settings(max_examples=30, deadline=None)
def test_split_partitions_infras(nffg):
    parts = split_per_domain(nffg)
    seen: set[str] = set()
    for domain, part in parts.items():
        ids = {infra.id for infra in part.infras}
        assert not (ids & seen)
        seen |= ids
        for infra in part.infras:
            assert infra.domain == domain
    assert seen == {infra.id for infra in nffg.infras}


@given(random_nffg())
@settings(max_examples=30, deadline=None)
def test_split_keeps_every_placed_nf_exactly_once(nffg):
    parts = split_per_domain(nffg)
    placed = {nf.id for nf in nffg.nfs if nffg.host_of(nf.id) is not None}
    found: list[str] = []
    for part in parts.values():
        found.extend(nf.id for nf in part.nfs)
    assert sorted(found) == sorted(placed)


@given(random_nffg())
@settings(max_examples=30, deadline=None)
def test_remaining_resources_never_negative(nffg):
    remaining = remaining_nffg(nffg)
    for infra in remaining.infras:
        assert infra.resources.cpu >= 0
        assert infra.resources.mem >= 0
        assert infra.resources.storage >= 0
    for link in remaining.links:
        assert link.bandwidth >= 0
        assert link.reserved == 0


@given(random_nffg())
@settings(max_examples=20, deadline=None)
def test_merge_with_relabeled_copy_preserves_node_count(view):
    data = nffg_to_dict(view)
    relabeled = nffg_to_dict(view)
    rename = {node["id"]: "peer-" + node["id"]
              for node in relabeled["nodes"]}
    for node in relabeled["nodes"]:
        node["id"] = rename[node["id"]]
    for edge in relabeled["edges"]:
        edge["id"] = "peer-" + edge["id"]
        edge["src_node"] = rename[edge["src_node"]]
        edge["dst_node"] = rename[edge["dst_node"]]
    views = [nffg_from_dict(data), nffg_from_dict(relabeled)]
    merged = merge_nffgs(views)
    assert len(merged.nodes) == 2 * len(view.nodes)


@given(resources, resources)
def test_add_then_subtract_is_identity(a, b):
    result = (a + b) - b
    for field_name in ("cpu", "mem", "storage", "bandwidth", "delay"):
        assert abs(getattr(result, field_name)
                   - getattr(a, field_name)) < 1e-6


@given(resources)
def test_fits_within_is_reflexive(a):
    assert a.fits_within(a)
