"""Property-based round-trips for the YANG diff engine with *forced*
list-entry creates and deletes.

The generic tree-pair properties in ``test_yang_properties.py`` only
exercise CREATE/DELETE when two independently drawn trees happen to
disagree on list keys; here the second tree is derived from the first
by explicit entry removal/insertion, so every example is guaranteed to
produce a patch containing both ops.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.yang import (
    Container,
    DataNode,
    DiffOp,
    Leaf,
    LeafType,
    YangList,
    apply_patch,
    diff_trees,
)

SCHEMA = Container("cfg", [
    Leaf("name"),
    YangList("entry", key="id", children=[
        Leaf("id"), Leaf("value"),
        Container("sub", [Leaf("x", LeafType.INT)]),
        YangList("port", key="id", children=[Leaf("id"), Leaf("speed")]),
    ]),
])

keys = st.text(alphabet="abcdef", min_size=1, max_size=3)


def populate_entry(draw, entry):
    if draw(st.booleans()):
        entry.set_leaf("value", draw(keys))
    if draw(st.booleans()):
        entry.container("sub").set_leaf("x", draw(st.integers(0, 9)))
    for port_key in draw(st.sets(keys, max_size=3)):
        port = entry.list_node("port").add_instance(port_key)
        if draw(st.booleans()):
            port.set_leaf("speed", draw(keys))


@st.composite
def churned_trees(draw):
    """(old, new, deleted_keys, created_keys): new is old minus at least
    one existing entry plus at least one fresh entry."""
    old = DataNode(SCHEMA)
    entries = old.list_node("entry")
    original = draw(st.sets(keys, min_size=1, max_size=5))
    for key in original:
        populate_entry(draw, entries.add_instance(key))

    new = old.copy()
    doomed = draw(st.sets(st.sampled_from(sorted(original)), min_size=1))
    for key in doomed:
        new.list_node("entry").remove_instance(key)
    fresh = draw(st.sets(keys.filter(lambda k: k not in original),
                         min_size=1, max_size=3))
    for key in fresh:
        populate_entry(draw, new.list_node("entry").add_instance(key))
    return old, new, doomed, fresh


@given(churned_trees())
@settings(max_examples=80, deadline=None)
def test_patch_reproduces_churned_tree(case):
    old, new, doomed, fresh = case
    script = diff_trees(old, new)
    assert apply_patch(old.copy(), script).to_dict() == new.to_dict()


@given(churned_trees())
@settings(max_examples=60, deadline=None)
def test_script_names_every_churned_entry(case):
    old, new, doomed, fresh = case
    script = diff_trees(old, new)
    deletes = {e.path for e in script if e.op == DiffOp.DELETE}
    creates = {e.path for e in script if e.op == DiffOp.CREATE}
    for key in doomed:
        assert f"/cfg/entry[{key}]" in deletes
    for key in fresh:
        assert f"/cfg/entry[{key}]" in creates


@given(churned_trees())
@settings(max_examples=60, deadline=None)
def test_deletes_precede_creates_per_list(case):
    # replace-by-key relies on the delete landing first
    old, new, _, _ = case
    script = diff_trees(old, new)
    ops = [e.op for e in script
           if e.path.startswith("/cfg/entry[") and "]/" not in e.path]
    first_create = ops.index(DiffOp.CREATE) if DiffOp.CREATE in ops else len(ops)
    assert DiffOp.DELETE not in ops[first_create:]


@given(churned_trees())
@settings(max_examples=60, deadline=None)
def test_reverse_patch_restores_original(case):
    old, new, _, _ = case
    forward = diff_trees(old, new)
    backward = diff_trees(new, old)
    roundtrip = apply_patch(apply_patch(old.copy(), forward), backward)
    assert roundtrip.to_dict() == old.to_dict()


@given(churned_trees(), st.data())
@settings(max_examples=60, deadline=None)
def test_nested_port_churn_roundtrips(case, data):
    # churn the nested list of a *surviving* entry as well
    old, new, doomed, _ = case
    survivors = sorted(set(old.list_node("entry").instance_keys()) - doomed)
    if survivors:
        entry = new.list_node("entry").instance(survivors[0])
        ports = entry.list_node("port")
        for key in list(ports.instance_keys()):
            ports.remove_instance(key)
        ports.add_instance(data.draw(keys, label="new-port"))
    script = diff_trees(old, new)
    assert apply_patch(old.copy(), script).to_dict() == new.to_dict()
