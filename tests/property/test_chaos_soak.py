"""Seeded chaos soak: the control plane converges under injected faults.

A random sequence of deploy / update / teardown operations runs against
a single-domain orchestrator whose adapter is wrapped in a
:class:`FaultyAdapter` driven by a seeded :class:`FaultPlan.random_plan`
schedule (transient errors and dropped pushes).  Retries absorb most
faults; the rest fail pushes, trip the breaker, and queue the domain
for reconciliation.  After the storm passes (the plan is cleared and
the queue drained), two invariants must hold:

1. the incrementally maintained DoV equals a from-scratch rebuild;
2. the domain's installed configuration matches the books — and after
   tearing everything down, no orphaned NFs or flow rules remain.

``REPRO_CHAOS_SMOKE=1`` shrinks the example budget for the CI smoke
job; the default budget suits a local tier-1 run.
"""

import os

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro import perf
from repro.nffg.builder import mesh_substrate
from repro.orchestration import DirectDomainAdapter, EscapeOrchestrator
from repro.recovery import (
    CrashPlan,
    IntentJournal,
    OrchestratorCrash,
    recover,
)
from repro.resilience import BreakerState, FaultKind, FaultPlan, FaultyAdapter
from repro.service import ServiceRequestBuilder

from tests.property.test_incremental_dov import canonical

MAX_EXAMPLES = 6 if os.environ.get("REPRO_CHAOS_SMOKE") else 20


def _chain_service(index: int, length: int = 1):
    builder = (ServiceRequestBuilder(f"c{index}")
               .sap("sap1").sap("sap2"))
    names = [f"c{index}n{j}" for j in range(length)]
    for name in names:
        builder.nf(name, "firewall", cpu=0.5, mem=32.0)
    builder.chain("sap1", *names, "sap2", bandwidth=1.0)
    return builder.build().sg


def _chaos_escape(plan: FaultPlan, journal: IntentJournal | None = None):
    # REPRO_CHAOS_SHARDS runs the same storm over a sharded CAL (the
    # CI chaos-smoke job sets 4): the invariants must hold regardless
    # of how the registry is partitioned
    shards = int(os.environ.get("REPRO_CHAOS_SHARDS", "1"))
    escape = EscapeOrchestrator("chaos", cal_shards=shards, journal=journal)
    escape.cal.breaker_failure_threshold = 2
    inner = DirectDomainAdapter(
        "dom", view=mesh_substrate(12, degree=3, seed=5,
                                   supported_types=["firewall"]))
    escape.add_domain(FaultyAdapter(inner, plan))
    return escape, inner


def _run_ops(escape, operations):
    for kind, index in operations:
        service_id = f"c{index}"
        deployed = service_id in escape.cal.deployed_services()
        if kind == "teardown":
            if deployed:
                escape.teardown(service_id)
        elif kind == "update" and deployed:
            escape.update(_chain_service(index, 2))
        elif kind == "deploy" and not deployed:
            escape.deploy(_chain_service(index), wait_activation=False)


def _drain(escape, plan):
    """End the storm: revive the domain and replay queued config."""
    plan.clear("dom")
    plan.specs.clear()  # retire any unfired schedule entries
    for _ in range(5):
        escape.cal.reconcile(force_probe=True)
        if not escape.cal.pending_reconciliation():
            break
    assert escape.cal.pending_reconciliation() == set()
    assert all(b.state is BreakerState.CLOSED
               for b in escape.cal.breakers.values())


ops = st.lists(
    st.tuples(st.sampled_from(["deploy", "teardown", "update"]),
              st.integers(0, 3)),
    min_size=2, max_size=10)


@given(ops, st.integers(0, 2 ** 16))
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_chaos_soak_converges(operations, seed):
    plan = FaultPlan.random_plan(seed, ["dom"], ops=("push",),
                                 rate=0.25, length=60)
    escape, inner = _chaos_escape(plan)
    _run_ops(escape, operations)
    _drain(escape, plan)

    # 1. incremental DoV == from-scratch rebuild (post-storm)
    assert canonical(escape.cal.dov) == canonical(escape.cal.rebuild())

    # 2. the domain holds exactly the booked services' footprint...
    deployed = set(escape.cal.deployed_services())
    last = inner.installed[-1] if inner.installed else None
    if last is not None:
        booked_nfs = {nf_id
                      for service_id in deployed
                      for nf_id in escape.cal.snapshot_service(
                          service_id)[1].nf_placement}
        assert {nf.id for nf in last.nfs} == booked_nfs

    # ...and after tearing everything down, nothing is orphaned
    for service_id in sorted(deployed):
        report = escape.teardown(service_id)
        assert report, report.error
    if inner.installed:
        final = inner.installed[-1]
        assert not final.nfs
        assert all(not rule_port.flowrules
                   for infra in final.infras
                   for rule_port in infra.ports.values())


@given(ops, st.integers(0, 2 ** 16), st.integers(0, 5))
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_chaos_soak_with_mid_storm_outage(operations, seed, crash_at):
    """Same invariants when the domain hard-crashes mid-sequence: the
    breaker trips, later pushes are skipped, and reconciliation after
    the domain returns still converges to the booked state."""
    plan = FaultPlan.random_plan(seed, ["dom"], ops=("push",),
                                 rate=0.15, length=60)
    escape, inner = _chaos_escape(plan)
    before = operations[:crash_at]
    after = operations[crash_at:]
    _run_ops(escape, before)
    plan.crash("dom")
    _run_ops(escape, after)
    _drain(escape, plan)
    assert canonical(escape.cal.dov) == canonical(escape.cal.rebuild())
    deployed = set(escape.cal.deployed_services())
    if inner.installed:
        booked_nfs = {nf_id
                      for service_id in deployed
                      for nf_id in escape.cal.snapshot_service(
                          service_id)[1].nf_placement}
        assert {nf.id for nf in inner.installed[-1].nfs} == booked_nfs


@pytest.mark.skipif(not os.environ.get("REPRO_CHAOS_CRASH"),
                    reason="REPRO_CHAOS_CRASH not set (CI recovery leg)")
@given(ops, st.integers(0, 2 ** 16))
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_chaos_soak_with_crash_recovery(operations, seed):
    """The storm plus a process crash: the orchestrator dies between
    two seeded journal appends while pushes are randomly failing, a
    successor recovers from the journal *under the same storm*, and
    after the weather clears the usual convergence invariants hold on
    the successor."""
    plan = FaultPlan.random_plan(seed, ["dom"], ops=("push",),
                                 rate=0.25, length=60)
    journal = IntentJournal()
    journal.crash_plan = CrashPlan.random_plan(
        seed, horizon=3 * len(operations) + 2)
    escape, inner = _chaos_escape(plan, journal=journal)
    try:
        _run_ops(escape, operations)
    except OrchestratorCrash:
        pass

    report = recover(journal, list(escape.cal.adapters.values()),
                     name="chaos-successor")
    successor = report.orchestrator
    _drain(successor, plan)

    assert canonical(successor.cal.dov) == canonical(successor.cal.rebuild())
    deployed = set(successor.cal.deployed_services())
    if inner.installed:
        booked_nfs = {nf_id
                      for service_id in deployed
                      for nf_id in successor.cal.snapshot_service(
                          service_id)[1].nf_placement}
        assert {nf.id for nf in inner.installed[-1].nfs} == booked_nfs


def test_chaos_counters_record_the_storm():
    """A sanity anchor for the smoke job: a stormy run leaves visible
    fingerprints in the resilience counters."""
    perf.reset("resilience.")
    plan = FaultPlan.random_plan(11, ["dom"], ops=("push",),
                                 rate=0.5, length=60,
                                 kinds=(FaultKind.ERROR,))
    escape, _ = _chaos_escape(plan)
    _run_ops(escape, [("deploy", i) for i in range(4)])
    _drain(escape, plan)
    snap = perf.snapshot("resilience.")
    assert snap.get("resilience.faults.injected", 0) > 0
    assert snap.get("resilience.retry.attempts", 0) > 0


def test_chaos_storm_is_sanitizer_clean():
    """A whole storm under the runtime sanitizer yields zero reports:
    no lock-order inversions, no blocking under a non-exempt lock, no
    hold-time outliers.  The testbed is built *after* enabling, so
    every control-plane lock is tracked."""
    from repro import sanitize

    previous = sanitize.disable()
    state = sanitize.enable(fresh=True)
    try:
        plan = FaultPlan.random_plan(23, ["dom"], ops=("push",),
                                     rate=0.4, length=60)
        escape, _ = _chaos_escape(plan)
        _run_ops(escape, [("deploy", index) for index in range(4)]
                 + [("update", 1), ("teardown", 2), ("deploy", 2)])
        _drain(escape, plan)
    finally:
        sanitize.disable()
        sanitize.restore(previous)
    report = state.report()
    assert report.acquisitions > 0       # the instrumentation saw the run
    assert report.locks_seen >= 3
    assert report.ok(), report.render_text()


def test_global_sanitizer_state_is_clean():
    """CI gate for the REPRO_SANITIZE=1 smoke job: everything tracked
    by the import-time global state across this test session must be
    violation-free."""
    from repro import sanitize

    if not sanitize.enabled():
        pytest.skip("REPRO_SANITIZE not set")
    report = sanitize.state().report()
    assert report.ok(), report.render_text()
