"""Property-based tests for the control-plane fast paths.

Three invariants guard the perf work:

1. the incrementally maintained DoV equals a from-scratch rebuild
   (merge of adapter views + replay of every deployed service) after
   any random sequence of deploy / teardown / update operations;
2. the hand-rolled ``NFFG.copy()`` fast path produces exactly what
   ``copy.deepcopy`` used to (flow rules, metadata and all);
3. routes served from the shared :class:`PathCache` are identical to
   routes computed from scratch by the uncached Dijkstra.
"""

import copy

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.mapping.base import MappingContext
from repro.mapping.pathcache import PathCache
from repro.nffg import NFFG, ResourceVector, nffg_to_dict
from repro.nffg.builder import mesh_substrate
from repro.nffg.model import DomainType
from repro.orchestration.adapters import DirectDomainAdapter
from repro.orchestration.cal import ControllerAdaptationLayer
from repro.orchestration.ro import ResourceOrchestrator
from repro.service import ServiceRequestBuilder

# -- canonical comparison ---------------------------------------------------
# Incremental apply and from-scratch rebuild insert elements in different
# orders; compare graphs on sorted canonical dicts instead.


def canonical(nffg: NFFG) -> dict:
    data = nffg_to_dict(nffg)
    for node in data.get("nodes", ()):
        ports = node.get("ports", [])
        for port in ports:
            port["flowrules"] = sorted(
                port.get("flowrules", []),
                key=lambda rule: (rule.get("hop_id", ""),
                                  rule.get("match", "")))
        node["ports"] = sorted(ports, key=lambda port: str(port["id"]))
    data["nodes"] = sorted(data.get("nodes", ()),
                           key=lambda node: str(node["id"]))
    data["edges"] = sorted(data.get("edges", ()),
                           key=lambda edge: str(edge["id"]))
    return data


def _chain_request(index: int, length: int):
    builder = (ServiceRequestBuilder(f"p{index}")
               .sap("sap1").sap("sap2"))
    names = [f"p{index}n{j}" for j in range(length)]
    for name in names:
        builder.nf(name, "firewall", cpu=0.5, mem=32.0)
    builder.chain("sap1", *names, "sap2", bandwidth=1.0)
    return builder.build().sg


def _fresh_cal() -> ControllerAdaptationLayer:
    mesh = mesh_substrate(12, degree=3, seed=5,
                          supported_types=["firewall"])
    cal = ControllerAdaptationLayer()
    cal.register(DirectDomainAdapter("dom", view=mesh))
    return cal


# each op: (kind, service index); "deploy" maps+commits if not deployed,
# "teardown" removes if deployed, "update" re-maps an existing service
ops = st.lists(
    st.tuples(st.sampled_from(["deploy", "teardown", "update"]),
              st.integers(0, 3)),
    min_size=1, max_size=8)


@given(ops)
@settings(max_examples=25, deadline=None)
def test_incremental_dov_equals_rebuild(operations):
    cal = _fresh_cal()
    ro = ResourceOrchestrator()
    for kind, index in operations:
        service_id = f"p{index}"
        deployed = service_id in cal.deployed_services()
        if kind == "teardown":
            cal.remove_service(service_id)
            continue
        if kind == "update" and deployed:
            snapshot = cal.snapshot_service(service_id)
            cal.remove_service(service_id)
            result = ro.orchestrate(_chain_request(index, 2),
                                    cal.resource_view())
            if result.success:
                cal.commit_mapping(service_id, result.service, result)
            else:
                cal.restore_service(service_id, snapshot)
            continue
        if deployed:
            continue
        result = ro.orchestrate(_chain_request(index, 1),
                                cal.resource_view())
        if result.success:
            cal.commit_mapping(service_id, result.service, result)

    incremental = canonical(cal.dov)
    rebuilt = canonical(cal.rebuild())
    assert incremental == rebuilt


resources = st.builds(
    ResourceVector,
    cpu=st.floats(0, 64, allow_nan=False),
    mem=st.floats(0, 4096, allow_nan=False),
    storage=st.floats(0, 64, allow_nan=False),
    bandwidth=st.floats(0, 1000, allow_nan=False),
    delay=st.floats(0, 10, allow_nan=False),
)


@st.composite
def decorated_nffg(draw):
    """A random NFFG with the trimmings deepcopy has to get right:
    flow rules, metadata, sap-tagged ports, requirement edges."""
    nffg = NFFG(id=f"g{draw(st.integers(0, 99))}", name="prop")
    nffg.metadata["tenant"] = draw(st.text(max_size=6))
    infra_count = draw(st.integers(2, 5))
    for index in range(infra_count):
        infra = nffg.add_infra(
            f"bb{index}", resources=draw(resources),
            domain=draw(st.sampled_from(list(DomainType))),
            supported_types=["firewall"], num_ports=1)
        infra.metadata["rack"] = str(draw(st.integers(0, 9)))
        if draw(st.booleans()):
            infra.add_port(f"sap-{index}", sap_tag=f"tag{index}")
    for index in range(infra_count - 1):
        src, dst = f"bb{index}", f"bb{index + 1}"
        port_s = nffg.infra(src).add_port(f"to-{dst}")
        port_d = nffg.infra(dst).add_port(f"to-{src}")
        nffg.add_link(src, port_s.id, dst, port_d.id,
                      bandwidth=draw(st.floats(1, 100, allow_nan=False)),
                      delay=draw(st.floats(0, 5, allow_nan=False)))
    for index in range(draw(st.integers(0, 3))):
        nf = nffg.add_nf(f"nf{index}", "firewall",
                         resources=draw(resources), num_ports=2)
        nf.metadata["constraint:infra"] = f"bb{index % infra_count}"
        nffg.place_nf(nf.id, f"bb{index % infra_count}")
        for port in nffg.infra(f"bb{index % infra_count}").ports.values():
            port.add_flowrule(match=f"in_port={port.id}",
                              action="output=1",
                              bandwidth=draw(st.floats(0, 10,
                                                       allow_nan=False)),
                              hop_id=f"hop{index}")
            break
    return nffg


@given(decorated_nffg())
@settings(max_examples=40, deadline=None)
def test_copy_fast_path_equals_deepcopy(nffg):
    fast = nffg.copy()
    slow = copy.deepcopy(nffg)
    assert nffg_to_dict(fast) == nffg_to_dict(slow)
    # no aliasing of mutable structure into the original (immutable
    # Flowrule instances are deliberately shared; their *lists* are not)
    for node in fast.nodes:
        original = nffg.node(node.id)
        assert node is not original
        for port_id, port in node.ports.items():
            assert port is not original.ports[port_id]
            assert port.flowrules is not original.ports[port_id].flowrules \
                or not port.flowrules
            # mutating the copy's rule list must not leak back
            before = len(original.ports[port_id].flowrules)
            port.add_flowrule(match="in_port=x", action="output=y")
            assert len(original.ports[port_id].flowrules) == before
            port.flowrules.pop()
    assert fast.metadata == nffg.metadata
    assert fast.metadata is not nffg.metadata or not nffg.metadata


@given(st.lists(st.tuples(st.integers(0, 11), st.integers(0, 11),
                          st.floats(0, 5, allow_nan=False)),
                min_size=1, max_size=12))
@settings(max_examples=30, deadline=None)
def test_path_cache_matches_uncached_routing(queries):
    mesh = mesh_substrate(12, degree=3, seed=9,
                          supported_types=["firewall"])
    service = _chain_request(0, 1)
    cache = PathCache()
    cached_ctx = MappingContext(service, mesh, path_cache=cache)
    plain_ctx = MappingContext(service, mesh)
    for number, (a, b, bandwidth) in enumerate(queries):
        src, dst = f"mesh-bb{a}", f"mesh-bb{b}"
        hop = f"q{number}"
        fast = cached_ctx.route_or_none(hop, src, dst, bandwidth)
        slow = plain_ctx.route_or_none(hop, src, dst, bandwidth)
        if slow is None:
            assert fast is None
            continue
        assert fast is not None
        assert fast.infra_path == slow.infra_path
        assert fast.link_ids == slow.link_ids
        assert abs(fast.delay - slow.delay) < 1e-9
