"""Property tests for the substrate index (PR 10).

Three invariants, matching the index's three promises:

1. **Equivalence under churn** — after any interleaving of deploys,
   teardowns, link failures and heals driven through the real
   orchestrator, the incrementally-maintained index must agree exactly
   with a fresh full-scan rebuild of the CAL's remaining view (free
   maps, link bandwidths, and per-type candidate sets).
2. **Pruning is quality-safe** — the index-backed (pruned) greedy run
   must stay feasible wherever the full scan is, with cost inside a
   fixed tolerance, on seeded 200-node substrates.
3. **Allocators protect acceptance** — on a scarce-resource scenario
   (few DPI-capable hosts, placed where greedy's detour score loves
   them) the balanced/weighted/hybrid allocators must never accept
   fewer services than greedy.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.emu import EmulatedDomain
from repro.mapping import GreedyEmbedder, SubstrateIndex, make_embedder
from repro.netem import Network
from repro.nffg import NFFGBuilder
from repro.nffg.builder import mesh_substrate
from repro.nffg.graph import NFFG
from repro.nffg.model import DomainType, ResourceVector
from repro.orchestration import EmuDomainAdapter, EscapeOrchestrator

NF_TYPES = ["firewall", "nat", "dpi", "monitor"]
COST_TOLERANCE = 1.10


def _chain(service_id, nf_type="firewall", cpu=1.0, bandwidth=1.0):
    return (NFFGBuilder(service_id).sap("sap1").sap("sap2")
            .nf(f"{service_id}-nf", nf_type, cpu=cpu)
            .chain("sap1", f"{service_id}-nf", "sap2", bandwidth=bandwidth)
            .build())


def _triangle_escape():
    net = Network()
    emu = EmulatedDomain("emu", net, node_ids=["bb0", "bb1", "bb2"],
                         links=[("bb0", "bb1"), ("bb1", "bb2"),
                                ("bb0", "bb2")])
    emu.add_sap("sap1", "bb0")
    emu.add_sap("sap2", "bb1")
    escape = EscapeOrchestrator("esc", simulator=net.simulator)
    escape.add_domain(EmuDomainAdapter("emu", emu))
    return net, escape


def _full_scan_supporters(view: NFFG, functional_type: str) -> set:
    from repro.nffg.model import InfraType
    return {infra.id for infra in view.infras
            if infra.infra_type != InfraType.SDN_SWITCH
            and infra.supports(functional_type)}


@given(st.lists(st.tuples(st.sampled_from(["deploy", "teardown", "heal"]),
                          st.integers(0, 3),
                          st.sampled_from(NF_TYPES)),
                min_size=1, max_size=10))
@settings(max_examples=25, deadline=None)
def test_index_matches_full_rescan_after_churn(ops):
    """Incremental apply == fresh rebuild, through real deploy paths."""
    net, escape = _triangle_escape()
    links = [("bb0", "bb1"), ("bb1", "bb2"), ("bb0", "bb2")]
    failed = set()
    for op, slot, nf_type in ops:
        service_id = f"svc{slot}"
        if op == "deploy" and service_id not in escape.deployed_services():
            escape.deploy(_chain(service_id, nf_type))
        elif op == "teardown" and service_id in escape.deployed_services():
            escape.teardown(service_id)
        elif op == "heal":
            # fail one link (keeping the triangle connected), heal,
            # restore — exercises re-map + incremental re-apply
            link = links[slot % len(links)]
            if link not in failed and len(failed) == 0:
                net.fail_link(*link)
                failed.add(link)
                escape.heal()
                net.restore_link(*link)
                failed.discard(link)
                escape.heal()
    escape.resource_view()  # forces a sync against the current epoch
    index = escape.cal.substrate_index
    assert index.resource is not None
    problems = index.verify(index.resource)
    assert problems == [], problems
    for functional_type in NF_TYPES:
        assert set(index.candidate_ids(functional_type)) == \
            _full_scan_supporters(index.resource, functional_type)


@given(st.integers(0, 19), st.integers(2, 6))
@settings(max_examples=20, deadline=None)
def test_pruned_greedy_feasible_and_cost_bounded(seed, chain_length):
    """Index pruning never loses feasibility and stays cost-close."""
    substrate = mesh_substrate(200, degree=3, seed=seed,
                               supported_types=NF_TYPES)
    builder = NFFGBuilder("svc").sap("sap1").sap("sap2")
    names = []
    for position in range(chain_length):
        name = f"nf{position}"
        builder.nf(name, NF_TYPES[position % len(NF_TYPES)], cpu=1.0)
        names.append(name)
    service = builder.chain("sap1", *names, "sap2", bandwidth=2.0).build()

    full = GreedyEmbedder().map(service, substrate)
    index = SubstrateIndex()
    index.sync(substrate, epoch=0)
    pruned = GreedyEmbedder().map(service, substrate, index=index)

    assert full.success, full.failure_reason
    assert pruned.success, pruned.failure_reason
    assert pruned.cost <= COST_TOLERANCE * full.cost + 1e-9, \
        (pruned.cost, full.cost)


def _scarce_substrate() -> NFFG:
    """Two DPI-capable hosts sitting exactly where greedy's detour
    score prefers them (on the SAP attachment points), six generic
    hosts one hop further out."""
    view = NFFG(id="scarce")
    specialist = ["firewall", "nat", "monitor", "dpi"]
    generic = ["firewall", "nat", "monitor"]
    for node_id in ("d0", "d1"):
        view.add_infra(node_id, domain=DomainType.INTERNAL,
                       resources=ResourceVector(cpu=5.0, mem=4096.0,
                                                storage=64.0,
                                                bandwidth=1000.0, delay=0.1),
                       supported_types=specialist)
    for position in range(6):
        view.add_infra(f"g{position}", domain=DomainType.INTERNAL,
                       resources=ResourceVector(cpu=4.0, mem=4096.0,
                                                storage=64.0,
                                                bandwidth=1000.0, delay=0.1),
                       supported_types=generic)

    def connect(a, b, delay):
        node_a, node_b = view.node(a), view.node(b)
        port_a = node_a.add_port(f"to-{b}")
        port_b = node_b.add_port(f"to-{a}")
        view.add_link(a, port_a.id, b, port_b.id,
                      bandwidth=1000.0, delay=delay)

    connect("d0", "d1", delay=0.5)
    for position in range(6):
        connect("d0", f"g{position}", delay=1.0)
        connect("d1", f"g{position}", delay=1.0)
    for sap_id, infra_id in (("sap1", "d0"), ("sap2", "d1")):
        sap = view.add_sap(sap_id)
        infra = view.node(infra_id)
        port = infra.add_port(f"sap-{sap_id}", sap_tag=sap_id)
        view.add_link(sap_id, list(sap.ports)[0], infra_id, port.id,
                      bandwidth=1000.0, delay=0.0)
    return view


def _acceptance(embedder_name: str, services) -> int:
    """Sequential admission: map with a live index, fold accepted
    mappings back in (the CAL's deploy loop in miniature)."""
    substrate = _scarce_substrate()
    index = SubstrateIndex()
    index.sync(substrate, epoch=0)
    accepted = 0
    for service in services:
        result = make_embedder(embedder_name).map(service, substrate,
                                                  index=index)
        if result.success:
            index.apply_mapping(service, result, 1.0)
            accepted += 1
    return accepted


def test_allocators_never_regress_acceptance_on_scarce_types():
    """Six fat firewall services then two DPI services: greedy burns
    the DPI-capable hosts on firewalls (they minimize its detour
    score), the scarce-aware allocators must not."""
    services = [_chain(f"fw{position}", "firewall", cpu=4.0)
                for position in range(6)]
    services += [_chain(f"dpi{position}", "dpi", cpu=2.0)
                 for position in range(2)]
    greedy = _acceptance("greedy", services)
    assert greedy < len(services)  # the trap actually catches greedy
    for name in ("balanced", "weighted", "hybrid"):
        assert _acceptance(name, services) >= greedy, name
    assert _acceptance("balanced", services) == len(services)
