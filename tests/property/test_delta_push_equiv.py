"""Property-based equivalence of delta and full-config pushes.

The delta path is an optimization, never a semantic change: after any
random deploy / update / teardown sequence — including a mid-sequence
breaker trip that forces a full-config resync — every domain's
installed (running) configuration must be byte-identical to what an
all-full-push run of the same sequence installs.
"""

import json

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import perf
from repro.netconf.server import NetconfServer
from repro.nffg.builder import mesh_substrate
from repro.nffg.model import DomainType
from repro.orchestration.adapters import _NetconfAdapter
from repro.orchestration.cal import ControllerAdaptationLayer
from repro.orchestration.ro import ResourceOrchestrator
from repro.resilience.breaker import BreakerState
from repro.resilience.retry import RetryPolicy
from repro.service import ServiceRequestBuilder
from repro.yang.config import canonical_config


class _StubNetconfAdapter(_NetconfAdapter):
    """NETCONF adapter over a plain in-memory server.

    ``force_full`` turns the delta machinery off (the all-full control
    run); ``fail_next`` makes the next N pushes raise before anything
    reaches the server (breaker fodder)."""

    retry_policy = RetryPolicy(max_attempts=1)

    def __init__(self, name, view, *, force_full=False):
        self._view = view
        self.force_full = force_full
        self.fail_next = 0
        self.server = NetconfServer(f"{name}-server")
        super().__init__(name, DomainType.INTERNAL, self.server)

    def get_view(self):
        return self._view.copy()

    def _do_push(self, install, force_full=False):
        if self.fail_next > 0:
            self.fail_next -= 1
            raise RuntimeError("injected push failure")
        return super()._do_push(install, force_full or self.force_full)


def _chain_request(index: int, length: int):
    builder = (ServiceRequestBuilder(f"q{index}")
               .sap("sap1").sap("sap2"))
    names = [f"q{index}n{j}" for j in range(length)]
    for name in names:
        builder.nf(name, "firewall", cpu=0.5, mem=32.0)
    builder.chain("sap1", *names, "sap2", bandwidth=1.0)
    return builder.build().sg


class _Universe:
    """One orchestration stack: CAL + stub NETCONF domain + RO."""

    def __init__(self, *, force_full: bool):
        mesh = mesh_substrate(12, degree=3, seed=5,
                              supported_types=["firewall"])
        self.cal = ControllerAdaptationLayer()
        self.adapter = self.cal.register(
            _StubNetconfAdapter("dom", mesh, force_full=force_full))
        self.ro = ResourceOrchestrator()

    def apply(self, kind: str, index: int) -> None:
        service_id = f"q{index}"
        deployed = service_id in self.cal.deployed_services()
        if kind == "teardown":
            self.cal.remove_service(service_id)
            return
        if kind == "update" and deployed:
            snapshot = self.cal.snapshot_service(service_id)
            self.cal.remove_service(service_id)
            result = self.ro.orchestrate(_chain_request(index, 2),
                                         self.cal.resource_view())
            if result.success:
                self.cal.commit_mapping(service_id, result.service, result)
            else:
                self.cal.restore_service(service_id, snapshot)
            return
        if deployed:
            return
        result = self.ro.orchestrate(_chain_request(index, 1),
                                     self.cal.resource_view())
        if result.success:
            self.cal.commit_mapping(service_id, result.service, result)

    def push(self) -> None:
        reports = self.cal.push_all()
        assert all(report.success for report in reports), reports

    def installed_bytes(self) -> bytes:
        """The running config in its canonical wire form — the same
        form both push modes digest, so equality here is the byte-level
        contract the delta protocol guarantees."""
        return json.dumps(canonical_config(self.adapter.server.running.config),
                          sort_keys=True, default=str).encode()

    def trip_breaker_and_recover(self) -> None:
        """Fail enough pushes to open the breaker, then heal the domain
        and reconcile: the replay re-establishes the delta base with a
        forced full-config resync."""
        threshold = self.cal.breaker_failure_threshold
        self.adapter.fail_next = threshold
        for _ in range(threshold):
            reports = self.cal.push_all()
            assert not reports[0].success
        assert self.cal.breakers["dom"].state is BreakerState.OPEN
        replays = self.cal.reconcile(force_probe=True)
        assert replays and all(report.success for report in replays)


ops = st.lists(
    st.tuples(st.sampled_from(["deploy", "update", "teardown"]),
              st.integers(0, 2)),
    min_size=1, max_size=6)


@given(ops, st.integers(0, 5))
@settings(max_examples=15, deadline=None)
def test_delta_sequence_matches_all_full_run(operations, trip_at):
    delta = _Universe(force_full=False)
    full = _Universe(force_full=True)
    trip_step = min(trip_at, len(operations) - 1)
    for step, (kind, index) in enumerate(operations):
        delta.apply(kind, index)
        full.apply(kind, index)
        if step == trip_step:
            delta.trip_breaker_and_recover()
        delta.push()
        full.push()
        assert delta.installed_bytes() == full.installed_bytes()
    # tear everything down: the final (service-free) configs agree too
    for service_id in list(delta.cal.deployed_services()):
        delta.cal.remove_service(service_id)
        full.cal.remove_service(service_id)
    delta.push()
    full.push()
    assert delta.installed_bytes() == full.installed_bytes()


def test_deploy_update_teardown_with_trip_uses_deltas():
    """The deterministic spine of the property: the delta universe
    actually ships edit-config patches (this is not a vacuous pass
    where everything went out full), and still matches the full run."""
    perf.reset("push.")
    delta = _Universe(force_full=False)
    full = _Universe(force_full=True)
    script = [("deploy", 0), ("deploy", 1), ("update", 0),
              ("teardown", 1), ("deploy", 2)]
    for step, (kind, index) in enumerate(script):
        delta.apply(kind, index)
        full.apply(kind, index)
        if step == 2:
            delta.trip_breaker_and_recover()
        delta.push()
        full.push()
        assert delta.installed_bytes() == full.installed_bytes()
    snapshot = perf.snapshot("push.")
    assert snapshot.get("push.delta", 0) >= 2
    # the recovery replay after the trip went out as a full resync
    assert snapshot.get("push.full", 0) >= 2
