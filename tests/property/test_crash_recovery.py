"""Crash-atomicity property: recovery lands on a committed prefix.

A fixed operation script runs against a direct domain with the crash
injector armed at *every* possible journal append index ``k`` in turn.
Whatever ``k`` is — before an intent, between per-domain outcome
records, just before a commit, even inside a checkpoint — recovery
from the journal must land on exactly one of the states a clean run
passed through at a commit boundary:

1. the recovered desired state equals some committed prefix state of
   the clean run (no torn intents survive, no committed intent is
   lost);
2. the recovered DoV equals a from-scratch rebuild;
3. the domain holds exactly the recovered services' footprint — the
   anti-entropy push swept every half-landed NF and flowrule.

The loop is deterministic (no hypothesis): the journal append count of
a clean run *is* the exhaustive case list.  A second pass replays a few
crash points through a file-backed journal + :meth:`IntentJournal.load`
to cover the durability path, and a third pass shrinks
``checkpoint_every`` so crashes land around checkpoint truncation too.
"""

import json

import pytest

from repro.nffg.builder import mesh_substrate
from repro.orchestration import DirectDomainAdapter, EscapeOrchestrator
from repro.recovery import CrashPlan, IntentJournal, OrchestratorCrash, recover

from tests.property.test_chaos_soak import _chain_service
from tests.property.test_incremental_dov import canonical

#: deploy / teardown / update / redeploy — every intent kind the
#: orchestrator journals, over overlapping service lifetimes
SCRIPT = [("deploy", 0), ("deploy", 1), ("teardown", 0),
          ("update", 1), ("deploy", 2)]


def _fresh_escape(journal):
    escape = EscapeOrchestrator("crashy", journal=journal)
    inner = DirectDomainAdapter(
        "dom", view=mesh_substrate(12, degree=3, seed=5,
                                   supported_types=["firewall"]))
    escape.add_domain(inner)
    return escape, inner


def _run_script(escape):
    for kind, index in SCRIPT:
        if kind == "deploy":
            assert escape.deploy(_chain_service(index),
                                 wait_activation=False).success
        elif kind == "teardown":
            assert escape.teardown(f"c{index}").success
        elif kind == "update":
            assert escape.update(_chain_service(index, 2)).success


def _services_fingerprint(escape):
    return json.dumps(escape.export_state()["services"], sort_keys=True)


def _clean_run(checkpoint_every=10_000):
    """One fault-free pass: returns (total appends, the set of states
    visible at commit boundaries)."""
    journal = IntentJournal(checkpoint_every=checkpoint_every)
    escape, _ = _fresh_escape(journal)
    committed_states = {_services_fingerprint(escape)}  # the empty state
    for kind, index in SCRIPT:
        if kind == "deploy":
            assert escape.deploy(_chain_service(index),
                                 wait_activation=False).success
        elif kind == "teardown":
            assert escape.teardown(f"c{index}").success
        elif kind == "update":
            assert escape.update(_chain_service(index, 2)).success
        committed_states.add(_services_fingerprint(escape))
    return journal.total_appends, committed_states


def _assert_recovered_invariants(report, inner, committed_states, label):
    successor = report.orchestrator
    assert _services_fingerprint(successor) in committed_states, (
        f"{label}: recovered state is not any committed prefix state")
    cal = successor.cal
    assert canonical(cal.dov) == canonical(cal.rebuild()), (
        f"{label}: recovered DoV diverges from a flat rebuild")
    booked = {nf_id
              for service_id in cal.deployed_services()
              for nf_id in cal.snapshot_service(service_id)[1].nf_placement}
    installed = ({nf.id for nf in inner.installed[-1].nfs}
                 if inner.installed else set())
    assert installed == booked, (
        f"{label}: domain holds {sorted(installed)} "
        f"but the books say {sorted(booked)}")
    assert report.ok(), f"{label}: reconciliation push failed"


def _crash_then_recover(k, *, checkpoint_every=10_000):
    journal = IntentJournal(checkpoint_every=checkpoint_every)
    journal.crash_plan = CrashPlan(at=k, label=f"at-{k}")
    escape, inner = _fresh_escape(journal)
    crashed = False
    try:
        _run_script(escape)
    except OrchestratorCrash:
        crashed = True
    report = recover(journal, list(escape.cal.adapters.values()),
                     name=f"succ-{k}")
    return report, inner, crashed


def test_crash_at_every_append_recovers_to_a_committed_state():
    total, committed_states = _clean_run()
    assert total >= len(SCRIPT) * 2  # intent + commit per op, minimum
    for k in range(total + 1):
        report, inner, crashed = _crash_then_recover(k)
        assert crashed == (k < total)
        _assert_recovered_invariants(report, inner, committed_states,
                                     f"crash at append {k}")


def test_crash_points_survive_a_file_backed_journal(tmp_path):
    """The same property through the durability path: journal on disk,
    crash, re-open with :meth:`IntentJournal.load`, recover."""
    total, committed_states = _clean_run()
    for k in (1, total // 2, total - 1):
        path = tmp_path / f"crash-{k}.jsonl"
        journal = IntentJournal(path)
        journal.crash_plan = CrashPlan(at=k, label=f"disk-at-{k}")
        escape, inner = _fresh_escape(journal)
        with pytest.raises(OrchestratorCrash):
            _run_script(escape)
        journal.close()

        loaded = IntentJournal.load(path)
        assert loaded.total_appends == journal.total_appends
        report = recover(loaded, list(escape.cal.adapters.values()),
                         name=f"disk-succ-{k}")
        _assert_recovered_invariants(report, inner, committed_states,
                                     f"disk crash at append {k}")
        loaded.close()


def test_crash_at_every_append_with_aggressive_checkpointing():
    """checkpoint_every=2 makes checkpoint truncation happen mid-script,
    so crash points land before/inside checkpoints as well — the
    recovered state must still be a committed prefix state."""
    total, committed_states = _clean_run(checkpoint_every=2)
    for k in range(total + 1):
        report, inner, _ = _crash_then_recover(k, checkpoint_every=2)
        _assert_recovered_invariants(
            report, inner, committed_states,
            f"crash at append {k} (checkpoint_every=2)")
