"""Property-based tests for flow tables and packet matching."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.netem.packet import Packet
from repro.openflow import FlowMod, FlowModCommand, FlowTable, Match
from repro.openflow.messages import ActionOutput

packets = st.builds(
    Packet,
    ip_src=st.sampled_from(["10.0.0.1", "10.0.0.2", "10.0.0.3"]),
    ip_dst=st.sampled_from(["10.0.1.1", "10.0.1.2"]),
    ip_proto=st.sampled_from([6, 17]),
    tp_src=st.integers(1024, 1030),
    tp_dst=st.sampled_from([22, 53, 80, 443]),
    size_bytes=st.integers(64, 1500),
)

matches = st.builds(
    Match,
    in_port=st.one_of(st.none(), st.sampled_from(["1", "2"])),
    nw_src=st.one_of(st.none(),
                     st.sampled_from(["10.0.0.1", "10.0.0.2"])),
    nw_proto=st.one_of(st.none(), st.sampled_from([6, 17])),
    tp_dst=st.one_of(st.none(), st.sampled_from([22, 80])),
)


@given(packets, matches)
def test_wildcarding_is_monotone(packet, match):
    """If a match hits, removing any constraint still hits."""
    in_port = "1"
    if match.matches(packet, in_port):
        for field_name in ("in_port", "nw_src", "nw_proto", "tp_dst"):
            relaxed = Match(**{**match.to_dict(), field_name: None})
            assert relaxed.matches(packet, in_port)


@given(packets)
def test_empty_match_hits_everything(packet):
    assert Match().matches(packet, "any-port")


@given(st.lists(st.tuples(matches, st.integers(1, 300)), min_size=1,
                max_size=8), packets)
@settings(max_examples=60, deadline=None)
def test_lookup_returns_highest_priority_hit(rules, packet):
    table = FlowTable()
    for index, (match, priority) in enumerate(rules):
        table.apply_flow_mod(FlowMod(
            command=FlowModCommand.ADD, match=match,
            actions=[ActionOutput(str(index))], priority=priority))
    entry = table.lookup(packet, "1")
    hits = [priority for match, priority in rules
            if match.matches(packet, "1")]
    if entry is None:
        assert not hits
    else:
        assert entry.priority == max(hits)


@given(st.lists(st.tuples(matches, st.integers(1, 300)), min_size=1,
                max_size=8))
@settings(max_examples=40, deadline=None)
def test_delete_all_empties_table(rules):
    table = FlowTable()
    for index, (match, priority) in enumerate(rules):
        table.apply_flow_mod(FlowMod(command=FlowModCommand.ADD,
                                     match=match,
                                     actions=[ActionOutput(str(index))],
                                     priority=priority))
    table.apply_flow_mod(FlowMod(command=FlowModCommand.DELETE,
                                 match=Match(), actions=[]))
    assert len(table) == 0


@given(packets)
def test_flowclass_matching_consistent_with_match(packet):
    """Match.from_flowclass and Packet.matches_flowclass agree."""
    spec = f"nw_src={packet.ip_src},tp_dst={packet.tp_dst}"
    assert packet.matches_flowclass(spec)
    assert Match.from_flowclass(spec).matches(packet, "x")
    wrong = "nw_src=203.0.113.9"
    assert not packet.matches_flowclass(wrong)
    assert not Match.from_flowclass(wrong).matches(packet, "x")
