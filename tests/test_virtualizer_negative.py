"""Negative-path tests for the virtualizer model and converters."""

import pytest

from repro.nffg import NFFG
from repro.virtualizer import (
    Virtualizer,
    nffg_to_virtualizer,
    virtualizer_to_nffg,
)
from repro.yang import SchemaError, ValidationError


class TestModelMisuse:
    def test_duplicate_node_rejected(self):
        virt = Virtualizer("v")
        virt.add_node("bb")
        with pytest.raises(ValidationError):
            virt.add_node("bb")

    def test_duplicate_port_rejected(self):
        virt = Virtualizer("v")
        node = virt.add_node("bb")
        Virtualizer.add_port(node, "p1")
        with pytest.raises(ValidationError):
            Virtualizer.add_port(node, "p1")

    def test_unknown_node_lookup(self):
        virt = Virtualizer("v")
        with pytest.raises(ValidationError):
            virt.node("ghost")

    def test_flowentry_on_unknown_node(self):
        virt = Virtualizer("v")
        with pytest.raises(ValidationError):
            virt.add_flowentry("ghost", "fe1", port="p", out="q")

    def test_enum_port_type_enforced(self):
        virt = Virtualizer("v")
        node = virt.add_node("bb")
        port = Virtualizer.add_port(node, "p1")
        with pytest.raises(SchemaError):
            port.set_leaf("port_type", "port-wormhole")

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValidationError):
            Virtualizer.from_dict({"id": "v", "surprise": 1})

    def test_from_dict_rejects_wrong_types(self):
        with pytest.raises(SchemaError):
            Virtualizer.from_dict({
                "id": "v",
                "nodes": {"node": {"bb": {"id": "bb", "resources":
                                          {"cpu": "lots"}}}}})


class TestConversionEdges:
    def test_empty_nffg_roundtrip(self):
        empty = NFFG(id="nothing")
        virt = nffg_to_virtualizer(empty)
        back = virtualizer_to_nffg(virt)
        assert back.summary()["infras"] == 0

    def test_nfs_without_placement_omitted(self):
        nffg = NFFG(id="x")
        nffg.add_infra("bb", num_ports=1)
        nffg.add_nf("floating", "firewall", num_ports=1)  # unplaced
        virt = nffg_to_virtualizer(nffg)
        assert not list(virt.nf_instances("bb"))
        back = virtualizer_to_nffg(virt)
        assert not back.has_node("floating")

    def test_sap_to_sap_links_not_encoded_as_fabric(self):
        nffg = NFFG(id="x")
        sap_a = nffg.add_sap("a")
        sap_b = nffg.add_sap("b")
        nffg.add_link("a", list(sap_a.ports)[0], "b", list(sap_b.ports)[0],
                      id="weird")
        virt = nffg_to_virtualizer(nffg)
        assert not list(virt.links())

    def test_flowentry_without_resources_decodes(self):
        virt = Virtualizer("v")
        node = virt.add_node("bb")
        Virtualizer.add_port(node, "p1")
        Virtualizer.add_port(node, "p2")
        entry = node.container("flowtable").list_node("flowentry") \
            .add_instance("fe1")
        entry.set_leaf("port", "p1")
        entry.set_leaf("out", "p2")
        back = virtualizer_to_nffg(virt)
        rules = list(back.infra("bb").iter_flowrules())
        assert len(rules) == 1
        _, rule = rules[0]
        assert rule.bandwidth == 0.0
