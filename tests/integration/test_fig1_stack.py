"""Integration tests: the full Fig. 1 multi-domain stack.

These tests drive the complete reproduction end to end: service layer
-> RO -> adapters -> four technology domains -> packet dataplane.
"""

import pytest

from repro.cli import ScenarioRunner
from repro.nffg.model import DomainType
from repro.service import ServiceRequestBuilder
from repro.topo import build_reference_multidomain


@pytest.fixture(scope="function")
def testbed():
    return build_reference_multidomain()


def _chain_request(request_id="chain", src="sap1", dst="sap2",
                   nfs=(("fw", "firewall"), ("nat", "nat")),
                   bandwidth=10.0, max_delay=None, flowclass=""):
    builder = ServiceRequestBuilder(request_id).sap(src).sap(dst)
    names = []
    for suffix, functional_type in nfs:
        name = f"{request_id}-{suffix}"
        builder.nf(name, functional_type)
        names.append(name)
    builder.chain(src, *names, dst, bandwidth=bandwidth,
                  flowclass=flowclass)
    if max_delay is not None:
        builder.delay_requirement(src, dst, max_delay=max_delay)
    return builder.build()


class TestGlobalView:
    def test_all_four_domains_in_view(self, testbed):
        view = testbed.escape.resource_view()
        domains = {infra.domain for infra in view.infras}
        assert domains == {DomainType.INTERNAL, DomainType.SDN,
                           DomainType.OPENSTACK, DomainType.UN}

    def test_interdomain_links_stitched(self, testbed):
        view = testbed.escape.resource_view()
        interdomain = [link for link in view.links
                       if link.id.startswith("interdomain-")]
        # 3 hand-offs, bidirectional
        assert len(interdomain) == 6

    def test_three_saps_bound(self, testbed):
        view = testbed.escape.resource_view()
        assert {sap.id for sap in view.saps} == {"sap1", "sap2", "sap3"}


class TestEndToEndChains:
    def test_emu_to_un_chain(self, testbed):
        runner = ScenarioRunner(testbed)
        report, traffic = runner.deploy_and_probe(
            _chain_request(), "sap1", "sap2", count=3)
        assert report.success, report.error
        assert traffic.delivered == 3
        trace = traffic.traces[0]
        assert any("sdn-sw" in node for node in trace)  # transited SDN
        assert "un-lsi" in trace

    def test_chain_with_delay_requirement(self, testbed):
        runner = ScenarioRunner(testbed)
        report, traffic = runner.deploy_and_probe(
            _chain_request("delayed", max_delay=80.0), "sap1", "sap2",
            count=2)
        assert report.success, report.error
        assert traffic.delivered == 2
        assert traffic.mean_latency_ms < 80.0

    def test_firewall_semantics_end_to_end(self, testbed):
        runner = ScenarioRunner(testbed)
        runner.deploy(_chain_request("fwsvc"))
        ok = runner.probe("sap1", "sap2", count=2, tp_dst=80)
        blocked = runner.probe("sap1", "sap2", count=2, tp_dst=22)
        assert ok.delivered == 2
        assert blocked.delivered == 0

    def test_nat_rewrites_source(self, testbed):
        runner = ScenarioRunner(testbed)
        runner.deploy(_chain_request("natsvc"))
        traffic = runner.probe("sap1", "sap2", count=1)
        received = testbed.host("sap2").received[-1]
        assert received.ip_src == "192.0.2.1"

    def test_chain_into_cloud(self, testbed):
        """Force placement into the cloud DC by restricting other
        domains, and verify VM boot dominates activation."""
        testbed.emu.supported_types = ["forwarder"]
        testbed.un.runtime.cpu_capacity = 0.0
        runner = ScenarioRunner(testbed)
        request = _chain_request("cloudsvc", src="sap1", dst="sap3",
                                 nfs=(("dpi", "dpi"),))
        report, traffic = runner.deploy_and_probe(request, "sap1", "sap3",
                                                  count=2)
        assert report.success, report.error
        host = report.mapping.nf_placement["cloudsvc-dpi"]
        assert host == "cloud-bisbis"
        assert report.activation_virtual_ms >= 1500.0  # VM boot
        assert traffic.delivered == 2

    def test_dpi_drops_malware_in_cloud(self, testbed):
        testbed.emu.supported_types = ["forwarder"]
        testbed.un.runtime.cpu_capacity = 0.0
        runner = ScenarioRunner(testbed)
        runner.deploy(_chain_request("dpisvc", src="sap1", dst="sap3",
                                     nfs=(("dpi", "dpi"),)))
        clean = runner.probe("sap1", "sap3", count=1, payload="hello")
        dirty = runner.probe("sap1", "sap3", count=1,
                             payload="malware payload")
        assert clean.delivered == 1
        assert dirty.delivered == 0

    def test_two_concurrent_services(self, testbed):
        """Two chains share the ingress SAP; flowclasses keep their
        traffic apart (same-match rules would otherwise shadow)."""
        runner = ScenarioRunner(testbed)
        first = runner.deploy(_chain_request("svc-a",
                                             flowclass="tp_dst=80"))
        second = runner.deploy(_chain_request("svc-b", src="sap1",
                                              dst="sap3",
                                              nfs=(("mon", "monitor"),),
                                              flowclass="tp_dst=8080"))
        assert first.success and second.success
        a = runner.probe("sap1", "sap2", count=2, tp_dst=80)
        b = runner.probe("sap1", "sap3", count=2, tp_dst=8080)
        assert a.delivered == 2
        assert b.delivered == 2

    def test_teardown_stops_traffic(self, testbed):
        runner = ScenarioRunner(testbed)
        runner.deploy(_chain_request("temp"))
        assert runner.probe("sap1", "sap2", count=1).delivered == 1
        assert testbed.escape.teardown("temp")
        testbed.run()
        assert runner.probe("sap1", "sap2", count=1).delivered == 0


class TestDecompositionEndToEnd:
    def test_vcpe_decomposition_deploys_and_carries_traffic(self, testbed):
        runner = ScenarioRunner(testbed)
        request = (ServiceRequestBuilder("vcpe")
                   .sap("sap1").sap("sap2")
                   .nf("vcpe-cpe", "vCPE", cpu=1.5, mem=192.0, storage=2.0)
                   .chain("sap1", "vcpe-cpe", "sap2", bandwidth=5.0)
                   .build())
        report, traffic = runner.deploy_and_probe(request, "sap1", "sap2",
                                                  count=2)
        assert report.success, report.error
        assert report.mapping.decompositions
        assert traffic.delivered == 2
        # NAT component (from either decomposition option) rewrote src
        assert testbed.host("sap2").received[-1].ip_src == "192.0.2.1"

    def test_decomposition_respects_domain_capabilities(self, testbed):
        """Only the split option's components are runnable when combo
        images are unavailable."""
        for domain in (testbed.emu,):
            domain.supported_types = ["firewall", "nat", "forwarder"]
        testbed.un.runtime.cpu_capacity = 0.0
        # cloud images: remove combo
        testbed.cloud.nova.images.pop("img-fw-nat-combo", None)
        runner = ScenarioRunner(testbed)
        request = (ServiceRequestBuilder("vcpe2")
                   .sap("sap1").sap("sap2")
                   .nf("v2-cpe", "vCPE")
                   .chain("sap1", "v2-cpe", "sap2", bandwidth=5.0).build())
        report = runner.deploy(request)
        assert report.success, report.error
        assert report.mapping.decompositions["v2-cpe"] == "vcpe-split"


class TestBranchingChains:
    def test_classifier_branch_steers_by_flowclass(self, testbed):
        """SFC branching: HTTP through a firewall, DNS through a
        monitor, both re-merging at the egress SAP."""
        from repro.nffg import NFFGBuilder
        builder = (NFFGBuilder("br").sap("sap1").sap("sap2")
                   .nf("br-fw", "firewall").nf("br-mon", "monitor"))
        builder.hop("sap1", "br-fw", flowclass="tp_dst=80", bandwidth=5.0)
        builder.hop("sap1", "br-mon", flowclass="tp_dst=53", bandwidth=1.0)
        builder.hop("br-fw", "sap2", bandwidth=5.0)
        builder.hop("br-mon", "sap2", bandwidth=1.0)
        report = testbed.escape.deploy(builder.build())
        assert report.success, report.error
        runner = ScenarioRunner(testbed)
        http = runner.probe("sap1", "sap2", count=2, tp_dst=80)
        dns = runner.probe("sap1", "sap2", count=2, tp_dst=53)
        assert http.delivered == 2
        assert dns.delivered == 2
        assert all("nf:br-fw" in trace for trace in http.traces)
        assert all("nf:br-mon" in trace for trace in dns.traces)
        # unmatched traffic takes neither branch
        other = runner.probe("sap1", "sap2", count=2, tp_dst=9999)
        assert other.delivered == 0

    def test_bandwidth_requirement_floors_hops(self, testbed):
        request = (ServiceRequestBuilder("bwfloor")
                   .sap("sap1").sap("sap2")
                   .nf("bw-fw", "firewall")
                   .chain("sap1", "bw-fw", "sap2", bandwidth=1.0)
                   .bandwidth_requirement("sap1", "sap2", bandwidth=50.0)
                   .build())
        assert all(hop.bandwidth == 50.0 for hop in request.sg.sg_hops)
        report = testbed.escape.deploy(request.sg)
        assert report.success, report.error
        for route in report.mapping.hop_routes.values():
            assert route.bandwidth == 50.0


class TestControlPlaneAccounting:
    def test_deploy_report_phases(self, testbed):
        report = testbed.service_layer.submit(_chain_request("acct"))
        assert report.success
        assert report.mapping_time_s > 0
        assert report.push_time_s > 0
        assert report.control_messages > 0
        assert report.control_bytes > report.control_messages
        assert len(report.adapters) == 4

    def test_summary_line_renders(self, testbed):
        report = testbed.service_layer.submit(_chain_request("line"))
        assert "OK" in report.summary_line()
