"""Soak test: sustained deploy/teardown cycles leave zero residue.

Resource leaks, stale flow rules and orphaned NFs are the classic
orchestrator rot; this drives many lifecycle cycles over the full
multi-domain testbed and asserts the world returns to pristine state.
"""

import pytest

from repro.topo import build_reference_multidomain
from repro.workload import WorkloadGenerator


@pytest.fixture(scope="module")
def testbed():
    return build_reference_multidomain()


def _pristine_snapshot(testbed):
    view = testbed.escape.resource_view()
    return {
        "cpu": sum(i.resources.cpu for i in view.infras),
        "mem": sum(i.resources.mem for i in view.infras),
        "link_bw": sum(l.bandwidth for l in view.links),
    }


def test_soak_thirty_lifecycle_cycles(testbed):
    pristine = _pristine_snapshot(testbed)
    generator = WorkloadGenerator(seed=21, sap_ids=("sap1", "sap2", "sap3"))
    deployed_total = 0
    for request in generator.batch(30):
        report = testbed.escape.deploy(request.service,
                                       wait_activation=False)
        if report.success:
            deployed_total += 1
            assert testbed.escape.teardown(request.service.id)
    assert deployed_total >= 20  # the mix mostly fits one at a time
    testbed.run()
    assert _pristine_snapshot(testbed) == pristine
    # no NFs left anywhere
    leftovers = [nf for switch in testbed.emu.switches.values()
                 for nf in switch.attached_nfs()]
    leftovers += testbed.un.lsi.attached_nfs()
    leftovers += [vm.name for vm in testbed.cloud.nova.list_instances()]
    assert leftovers == []
    # no flow rules left anywhere
    total_rules = sum(s.flow_count() for s in testbed.emu.switches.values())
    total_rules += sum(s.flow_count()
                       for s in testbed.sdn.switches.values())
    total_rules += testbed.un.lsi.flow_count()
    total_rules += sum(s.flow_count()
                       for s in testbed.cloud.compute_switches.values())
    assert total_rules == 0


def test_soak_concurrent_pairs(testbed):
    """Deploy in overlapping pairs (A, B alive together), teardown in
    mixed order; accounting must survive interleaving."""
    pristine = _pristine_snapshot(testbed)
    generator = WorkloadGenerator(seed=22, sap_ids=("sap1", "sap2"))
    requests = iter(generator.batch(20))
    alive: list[str] = []
    deployed = 0
    for request in requests:
        report = testbed.escape.deploy(request.service,
                                       wait_activation=False)
        if report.success:
            deployed += 1
            alive.append(request.service.id)
        if len(alive) >= 2:
            # tear down the *older* one first, then keep the newer
            victim = alive.pop(0)
            assert testbed.escape.teardown(victim)
    for service_id in alive:
        assert testbed.escape.teardown(service_id)
    testbed.run()
    assert deployed >= 10
    assert _pristine_snapshot(testbed) == pristine
