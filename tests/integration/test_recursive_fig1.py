"""Integration: a parent orchestrator over the complete Fig. 1 stack.

The deepest end-to-end path in the reproduction: parent -> Unify ->
child ESCAPE -> four technology domains -> packet dataplane, including
decomposition chosen below the recursion boundary.
"""

import pytest

from repro.netem.packet import tcp_packet
from repro.orchestration import (
    EscapeOrchestrator,
    UnifyAgent,
    UnifyDomainAdapter,
)
from repro.service import ServiceRequestBuilder
from repro.topo import build_reference_multidomain


@pytest.fixture
def stacked():
    testbed = build_reference_multidomain()
    parent = EscapeOrchestrator("parent",
                                simulator=testbed.network.simulator)
    parent.add_domain(UnifyDomainAdapter("lower",
                                         UnifyAgent(testbed.escape)))
    return testbed, parent


class TestParentOverFig1:
    def test_parent_sees_aggregate_of_everything(self, stacked):
        testbed, parent = stacked
        view = parent.resource_view()
        assert len(view.infras) == 1
        # 2 emu x 8 + cloud 64 + un 16
        assert view.infras[0].resources.cpu == 96.0
        sap_tags = {p.sap_tag for p in view.infras[0].ports.values()
                    if p.sap_tag}
        assert {"sap1", "sap2", "sap3"} <= sap_tags

    def test_concrete_chain_through_parent(self, stacked):
        testbed, parent = stacked
        service = (ServiceRequestBuilder("deep")
                   .sap("sap1").sap("sap2")
                   .nf("deep-fw", "firewall").nf("deep-nat", "nat")
                   .chain("sap1", "deep-fw", "deep-nat", "sap2",
                          bandwidth=5.0).build())
        report = parent.deploy(service.sg)
        assert report.success, report.error
        h1, h2 = testbed.host("sap1"), testbed.host("sap2")
        h1.send(tcp_packet(h1.ip, h2.ip, tp_dst=80))
        testbed.run()
        assert len(h2.received) == 1
        assert h2.received[0].ip_src == "192.0.2.1"
        h1.send(tcp_packet(h1.ip, h2.ip, tp_dst=22))
        testbed.run()
        assert len(h2.received) == 1  # fw drop below recursion boundary

    def test_abstract_nf_through_parent(self, stacked):
        testbed, parent = stacked
        service = (ServiceRequestBuilder("deep-vcpe")
                   .sap("sap1").sap("sap2")
                   .nf("dv-cpe", "vCPE", cpu=1.5, mem=192.0, storage=2.0)
                   .chain("sap1", "dv-cpe", "sap2", bandwidth=5.0).build())
        report = parent.deploy(service.sg)
        assert report.success, report.error
        # the child (which owns the library) decomposed it
        child_report = list(testbed.escape.reports.values())[-1]
        assert child_report.mapping.decompositions
        h1, h2 = testbed.host("sap1"), testbed.host("sap2")
        h1.send(tcp_packet(h1.ip, h2.ip, tp_dst=80))
        testbed.run()
        assert len(h2.received) == 1

    def test_parent_teardown_reaches_dataplane(self, stacked):
        testbed, parent = stacked
        service = (ServiceRequestBuilder("ephemeral")
                   .sap("sap1").sap("sap2")
                   .nf("ep-fw", "firewall")
                   .chain("sap1", "ep-fw", "sap2", bandwidth=1.0).build())
        assert parent.deploy(service.sg).success
        assert parent.teardown("ephemeral")
        testbed.run()
        attached = [nf for switch in testbed.emu.switches.values()
                    for nf in switch.attached_nfs()]
        assert attached == []
        h1, h2 = testbed.host("sap1"), testbed.host("sap2")
        h1.send(tcp_packet(h1.ip, h2.ip, tp_dst=80))
        testbed.run()
        assert len(h2.received) == 0
