"""Tests for the concurrent domain dispatcher and the CAL fan-out
contracts built on it (ordering, per-domain FIFO, reconciliation
queue snapshotting)."""

import threading
import time

import pytest

from repro.nffg import NFFG
from repro.orchestration.adapters import DirectDomainAdapter
from repro.orchestration.cal import ControllerAdaptationLayer
from repro.orchestration.dispatch import DomainDispatcher
from repro.perf import counters
from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.faults import FaultKind, FaultPlan, TransientFault
from repro.resilience.retry import RetryPolicy


class TestDispatcherOrdering:
    def test_results_keep_submission_order(self):
        dispatcher = DomainDispatcher(4)
        delays = {"a": 0.05, "b": 0.0, "c": 0.02}

        def op(name):
            time.sleep(delays[name])
            return name

        try:
            results = dispatcher.run(
                (name, lambda name=name: op(name)) for name in "abc")
        finally:
            dispatcher.shutdown()
        # "b" and "c" finish before "a"; the result list does not care
        assert results == ["a", "b", "c"]

    def test_distinct_domains_overlap(self):
        # both ops block on a shared barrier: the batch can only finish
        # if the two domains genuinely run at the same time
        barrier = threading.Barrier(2, timeout=5.0)
        dispatcher = DomainDispatcher(2)
        try:
            results = dispatcher.run([("a", barrier.wait),
                                      ("b", barrier.wait)])
        finally:
            dispatcher.shutdown()
        assert sorted(results) == [0, 1]

    def test_same_domain_ops_fifo_and_never_overlap(self):
        dispatcher = DomainDispatcher(4)
        order = []
        active = 0
        max_active = 0
        guard = threading.Lock()

        def op(index):
            nonlocal active, max_active
            with guard:
                active += 1
                max_active = max(max_active, active)
                order.append(index)
            time.sleep(0.005)
            with guard:
                active -= 1
            return index

        try:
            results = dispatcher.run(
                [("dom", lambda index=index: op(index))
                 for index in range(5)])
        finally:
            dispatcher.shutdown()
        assert results == list(range(5))
        assert order == list(range(5))
        assert max_active == 1

    def test_first_error_in_submission_order_wins(self):
        dispatcher = DomainDispatcher(4)

        def fail(message, delay=0.0):
            time.sleep(delay)
            raise RuntimeError(message)

        try:
            with pytest.raises(RuntimeError, match="first"):
                # "second" raises earlier in wall-clock; "first" wins
                # because it was submitted earlier
                dispatcher.run([("a", lambda: fail("first", 0.02)),
                                ("b", lambda: fail("second"))])
        finally:
            dispatcher.shutdown()

    def test_single_op_runs_inline_on_caller_thread(self):
        counters.reset("dispatch.")
        dispatcher = DomainDispatcher(4)
        assert dispatcher.run([("a", threading.get_ident)]) \
            == [threading.get_ident()]
        assert counters.get("dispatch.inline") == 1
        assert counters.get("dispatch.parallel") == 0

    def test_serial_mode_runs_on_caller_thread(self):
        dispatcher = DomainDispatcher(4, serial=True)
        caller = threading.get_ident()
        assert dispatcher.run([("a", threading.get_ident),
                               ("b", threading.get_ident)]) \
            == [caller, caller]

    def test_empty_batch(self):
        assert DomainDispatcher(2).run([]) == []


class _FlakyAdapter(DirectDomainAdapter):
    """Pushes fail while ``broken`` is set; one attempt, no backoff."""

    retry_policy = RetryPolicy(max_attempts=1)

    def __init__(self, name, view):
        super().__init__(name, view)
        self.broken = False

    def _push(self, install):
        if self.broken:
            raise RuntimeError(f"{self.name} down")
        super()._push(install)


def _domain_view(name):
    view = NFFG(id=name)
    view.add_infra(f"{name}-bb0", num_ports=1)
    return view


def _cal_with(names):
    cal = ControllerAdaptationLayer()
    adapters = {}
    for name in names:
        adapters[name] = cal.register(
            _FlakyAdapter(name, _domain_view(name)))
    return cal, adapters


class TestReconcileSnapshot:
    """Regression: ``reconcile`` iterates a *snapshot* of the pending
    queue; concurrent ``_push_one`` calls drain/refill the live set as
    replays settle, which must not disturb the iteration."""

    def test_reconcile_replays_every_queued_domain(self):
        cal, adapters = _cal_with(["a", "b", "c"])
        for adapter in adapters.values():
            adapter.broken = True
        reports = cal.push_all()
        assert {r.domain for r in reports if not r.success} \
            == {"a", "b", "c"}
        assert cal.pending_reconciliation() == {"a", "b", "c"}

        for adapter in adapters.values():
            adapter.broken = False
        replays = cal.reconcile()
        # one replay per queued domain, in snapshot (sorted) order,
        # even though each success removed itself from the live queue
        # mid-iteration
        assert [r.domain for r in replays] == ["a", "b", "c"]
        assert all(r.success for r in replays)
        assert cal.pending_reconciliation() == set()

    def test_failed_replay_stays_queued(self):
        cal, adapters = _cal_with(["a", "b"])
        adapters["a"].broken = True
        adapters["b"].broken = True
        cal.push_all()
        adapters["b"].broken = False
        replays = cal.reconcile()
        assert {r.domain: r.success for r in replays} \
            == {"a": False, "b": True}
        assert cal.pending_reconciliation() == {"a"}

    def test_parallel_push_all_reports_keep_registration_order(self):
        cal, adapters = _cal_with(["z", "m", "a"])
        reports = cal.push_all()
        assert [r.domain for r in reports] == ["z", "m", "a"]
        assert all(r.success for r in reports)


class TestErrorPathsMidFanout:
    """Dispatcher error-path contracts under faults: a breaker tripping
    *inside* a batch, and per-domain FIFO holding up when injected
    delays skew completion order."""

    def test_breaker_trips_mid_fanout_first_error_still_wins(self):
        # domain "a" fails three times inside one batch — enough to trip
        # its breaker mid-fanout, so the fourth "a" op must short-circuit
        # without attempting a push.  Domain "b" keeps succeeding; the
        # dispatcher finishes the WHOLE batch, then re-raises the error
        # that is first in submission order (not first in wall-clock).
        breaker = CircuitBreaker("a", failure_threshold=3,
                                 recovery_time_s=60.0)
        events = []

        def push_a(index):
            if not breaker.allow():
                events.append(("a", index, "skipped"))
                return "skipped"
            events.append(("a", index, "attempt"))
            breaker.record_failure()
            time.sleep(0.01)   # "b" errors earlier in wall-clock
            raise TransientFault(f"a push {index}")

        def push_b(index):
            events.append(("b", index, "ok"))
            return index

        dispatcher = DomainDispatcher(4)
        ops = []
        for index in range(4):
            ops.append(("a", lambda index=index: push_a(index)))
            ops.append(("b", lambda index=index: push_b(index)))
        try:
            with pytest.raises(TransientFault, match="a push 0"):
                dispatcher.run(ops)
        finally:
            dispatcher.shutdown()
        assert breaker.state is BreakerState.OPEN
        # FIFO within "a" means the trip is observed by op 3, not racing it
        assert [e for e in events if e[0] == "a"] \
            == [("a", 0, "attempt"), ("a", 1, "attempt"),
                ("a", 2, "attempt"), ("a", 3, "skipped")]
        # the batch still completed every "b" op despite the "a" failures
        assert [e[1] for e in events if e[0] == "b"] == [0, 1, 2, 3]

    def test_cal_skips_open_breaker_and_recovers_via_reconcile(self):
        cal, adapters = _cal_with(["a", "b"])
        adapters["a"].broken = True
        for _ in range(3):          # default failure_threshold = 3
            cal.push_all()
        assert cal.breakers["a"].state is BreakerState.OPEN

        reports = {r.domain: r for r in cal.push_all()}
        assert reports["a"].skipped and not reports["a"].success
        assert "circuit open" in reports["a"].error
        assert reports["b"].success
        assert cal.pending_reconciliation() == {"a"}

        adapters["a"].broken = False
        replays = cal.reconcile(force_probe=True)
        assert [r.domain for r in replays] == ["a"]
        assert replays[0].success
        assert cal.breakers["a"].state is BreakerState.CLOSED
        assert cal.pending_reconciliation() == set()

    def test_per_domain_fifo_under_injected_delays(self):
        # DELAY faults with a real sleep hook skew wall-clock completion
        # hard toward "b"; submission order within each domain must hold
        # anyway, and so must the result list.
        plan = FaultPlan()
        plan.sleep = time.sleep
        plan.add("a", "push", kind=FaultKind.DELAY, count=4, delay_s=0.01)
        order = {"a": [], "b": []}

        def op(domain, index):
            plan.before(domain, "push")
            order[domain].append(index)
            return f"{domain}{index}"

        dispatcher = DomainDispatcher(4)
        ops = []
        for index in range(4):
            ops.append(("a", lambda index=index: op("a", index)))
            ops.append(("b", lambda index=index: op("b", index)))
        try:
            results = dispatcher.run(ops)
        finally:
            dispatcher.shutdown()
        assert order == {"a": [0, 1, 2, 3], "b": [0, 1, 2, 3]}
        assert results == ["a0", "b0", "a1", "b1", "a2", "b2", "a3", "b3"]
        assert plan.virtual_delay_s == pytest.approx(0.04)


class TestShutdownLifecycle:
    """Regression: ``shutdown()`` is idempotent and terminal — a batch
    submitted afterwards must fail loudly instead of hanging on a
    drained worker pool."""

    def test_shutdown_is_idempotent(self):
        dispatcher = DomainDispatcher(2)
        assert dispatcher.run([("a", lambda: 1), ("b", lambda: 2)]) \
            == [1, 2]
        dispatcher.shutdown()
        dispatcher.shutdown()          # second call is a no-op

    def test_run_after_shutdown_raises(self):
        dispatcher = DomainDispatcher(2)
        dispatcher.shutdown()
        with pytest.raises(RuntimeError, match="after shutdown"):
            dispatcher.run([("a", lambda: 1)])

    def test_serial_run_after_shutdown_raises(self):
        dispatcher = DomainDispatcher(1, serial=True)
        dispatcher.shutdown()
        with pytest.raises(RuntimeError, match="after shutdown"):
            dispatcher.run([("a", lambda: 1)])
