"""Tests for the ODL-like fabric controller's path installation,
including the single-tag VLAN semantics."""

import pytest

from repro.cloud.odl import OdlController
from repro.netem import Network
from repro.netem.packet import tcp_packet
from repro.openflow import OpenFlowSwitch


@pytest.fixture
def fabric():
    """h_in -- leaf0 -- spine -- leaf1 -- h_out."""
    net = Network()
    odl = OdlController(simulator=net.simulator)
    switches = {}
    for name in ("leaf0", "spine", "leaf1"):
        switch = net.add(OpenFlowSwitch(name, net.simulator))
        odl.connect(switch)
        switches[name] = switch
    for a, b in (("leaf0", "spine"), ("spine", "leaf1")):
        net.connect(a, f"to-{b}", b, f"to-{a}")
        odl.register_link(a, f"to-{b}", b, f"to-{a}")
    h_in = net.add_host("h-in")
    h_out = net.add_host("h-out")
    net.connect("h-in", "0", "leaf0", "edge-in")
    net.connect("h-out", "0", "leaf1", "edge-out")
    return net, odl, switches, h_in, h_out


def test_install_path_end_to_end(fabric):
    net, odl, switches, h_in, h_out = fabric
    path = odl.install_path(
        ingress_dpid="leaf0", ingress_port="edge-in",
        egress_dpid="leaf1", egress_port="edge-out",
        transport_vlan=500, cookie="svc")
    assert path == ["leaf0", "spine", "leaf1"]
    h_in.send(tcp_packet(h_in.ip, h_out.ip))
    net.run()
    assert len(h_out.received) == 1
    # transport tag stripped at egress
    assert h_out.received[0].vlan is None


def test_install_path_preserves_chain_tag_for_transit(fabric):
    """match_vlan == egress_vlan: the chain tag must survive transit."""
    net, odl, switches, h_in, h_out = fabric
    odl.install_path(
        ingress_dpid="leaf0", ingress_port="edge-in",
        egress_dpid="leaf1", egress_port="edge-out",
        transport_vlan=500, match_vlan=777, egress_vlan=777)
    packet = tcp_packet(h_in.ip, h_out.ip)
    packet.vlan = 777
    h_in.send(packet)
    net.run()
    assert len(h_out.received) == 1
    assert h_out.received[0].vlan == 777


def test_install_path_rewrites_chain_tag(fabric):
    """Tagged h1 traffic leaves carrying the *next* hop's tag."""
    net, odl, switches, h_in, h_out = fabric
    odl.install_path(
        ingress_dpid="leaf0", ingress_port="edge-in",
        egress_dpid="leaf1", egress_port="edge-out",
        transport_vlan=500, match_vlan=777, egress_vlan=888)
    packet = tcp_packet(h_in.ip, h_out.ip)
    packet.vlan = 777
    h_in.send(packet)
    net.run()
    assert h_out.received[0].vlan == 888


def test_install_path_single_switch(fabric):
    net, odl, switches, h_in, h_out = fabric
    net.connect("h-out", "1", "leaf0", "edge-out2")
    path = odl.install_path(
        ingress_dpid="leaf0", ingress_port="edge-in",
        egress_dpid="leaf0", egress_port="edge-out2",
        transport_vlan=500)
    assert path == ["leaf0"]
    h_in.send(tcp_packet(h_in.ip, h_out.ip))
    net.run()
    assert len(h_out.received) == 1
    assert h_out.received[0].vlan is None  # no transport tag needed


def test_untagged_ingress_filtered_from_tagged_path(fabric):
    net, odl, switches, h_in, h_out = fabric
    odl.install_path(
        ingress_dpid="leaf0", ingress_port="edge-in",
        egress_dpid="leaf1", egress_port="edge-out",
        transport_vlan=500, match_vlan=777, egress_vlan=777)
    h_in.send(tcp_packet(h_in.ip, h_out.ip))  # untagged
    net.run()
    assert len(h_out.received) == 0


def test_remove_by_cookie(fabric):
    net, odl, switches, h_in, h_out = fabric
    odl.install_path(
        ingress_dpid="leaf0", ingress_port="edge-in",
        egress_dpid="leaf1", egress_port="edge-out",
        transport_vlan=500, cookie="svc")
    odl.remove_by_cookie("svc")
    assert all(switch.flow_count() == 0 for switch in switches.values())


def test_flowclass_restriction(fabric):
    net, odl, switches, h_in, h_out = fabric
    odl.install_path(
        ingress_dpid="leaf0", ingress_port="edge-in",
        egress_dpid="leaf1", egress_port="edge-out",
        transport_vlan=500, flowclass="tp_dst=80")
    h_in.send(tcp_packet(h_in.ip, h_out.ip, tp_dst=80))
    h_in.send(tcp_packet(h_in.ip, h_out.ip, tp_dst=22))
    net.run()
    assert len(h_out.received) == 1
    assert h_out.received[0].tp_dst == 80
