"""Tests for the OpenFlow-like protocol: matches, tables, switch loop."""

import pytest

from repro.netem import Network
from repro.netem.packet import Packet, tcp_packet
from repro.openflow import (
    ActionOutput,
    ActionPopVlan,
    ActionPushVlan,
    ActionSetField,
    ControllerEndpoint,
    FlowMod,
    FlowModCommand,
    FlowTable,
    Match,
    OpenFlowSwitch,
)
from repro.openflow.messages import Action, OFPP_FLOOD
from repro.sim import Simulator


class TestMatch:
    def test_wildcard_matches_everything(self):
        assert Match().matches(tcp_packet("1.1.1.1", "2.2.2.2"), "1")

    def test_exact_fields(self):
        packet = tcp_packet("1.1.1.1", "2.2.2.2", tp_dst=80)
        assert Match(nw_dst="2.2.2.2", tp_dst=80).matches(packet, "1")
        assert not Match(nw_dst="9.9.9.9").matches(packet, "1")

    def test_in_port(self):
        packet = tcp_packet("1.1.1.1", "2.2.2.2")
        assert Match(in_port="3").matches(packet, "3")
        assert not Match(in_port="3").matches(packet, "4")

    def test_vlan(self):
        packet = tcp_packet("1.1.1.1", "2.2.2.2")
        packet.vlan = 100
        assert Match(dl_vlan=100).matches(packet, "1")
        assert not Match(dl_vlan=200).matches(packet, "1")

    def test_from_flowclass(self):
        match = Match.from_flowclass("tp_dst=80,nw_proto=6", in_port="2")
        assert match.tp_dst == 80 and match.nw_proto == 6
        assert match.in_port == "2"

    def test_from_flowclass_hex(self):
        match = Match.from_flowclass("dl_type=0x0800")
        assert match.dl_type == 0x0800

    def test_specificity(self):
        assert Match().specificity() == 0
        assert Match(in_port="1", tp_dst=80).specificity() == 2

    def test_dict_roundtrip(self):
        match = Match(in_port="1", nw_src="10.0.0.1", tp_dst=443)
        assert Match.from_dict(match.to_dict()) == match


class TestActions:
    def test_output(self):
        assert ActionOutput("5").apply(tcp_packet("1.1.1.1", "2.2.2.2")) == "5"

    def test_push_pop_vlan(self):
        packet = tcp_packet("1.1.1.1", "2.2.2.2")
        ActionPushVlan(42).apply(packet)
        assert packet.vlan == 42
        ActionPopVlan().apply(packet)
        assert packet.vlan is None

    def test_set_field(self):
        packet = tcp_packet("1.1.1.1", "2.2.2.2")
        ActionSetField("nw_src", "99.0.0.1").apply(packet)
        assert packet.ip_src == "99.0.0.1"

    def test_set_field_rejects_unknown(self):
        with pytest.raises(ValueError):
            ActionSetField("nw_ttl", 3)

    def test_action_dict_roundtrip(self):
        for action in (ActionOutput("2"), ActionPushVlan(7), ActionPopVlan(),
                       ActionSetField("tp_dst", 8080)):
            assert Action.from_dict(action.to_dict()) == action


class TestFlowTable:
    def _mod(self, **kwargs):
        defaults = dict(command=FlowModCommand.ADD, match=Match(),
                        actions=[ActionOutput("1")], priority=100)
        defaults.update(kwargs)
        return FlowMod(**defaults)

    def test_priority_wins(self):
        table = FlowTable()
        table.apply_flow_mod(self._mod(match=Match(tp_dst=80),
                                       actions=[ActionOutput("http")],
                                       priority=200))
        table.apply_flow_mod(self._mod(actions=[ActionOutput("default")],
                                       priority=10))
        entry = table.lookup(tcp_packet("1.1.1.1", "2.2.2.2", tp_dst=80), "1")
        assert entry.actions[0].port == "http"
        entry = table.lookup(tcp_packet("1.1.1.1", "2.2.2.2", tp_dst=22), "1")
        assert entry.actions[0].port == "default"

    def test_add_replaces_same_match_priority(self):
        table = FlowTable()
        table.apply_flow_mod(self._mod(actions=[ActionOutput("a")]))
        table.apply_flow_mod(self._mod(actions=[ActionOutput("b")]))
        assert len(table) == 1
        assert table.lookup(tcp_packet("1.1.1.1", "2.2.2.2"), "1") \
            .actions[0].port == "b"

    def test_miss_returns_none(self):
        table = FlowTable()
        table.apply_flow_mod(self._mod(match=Match(tp_dst=80)))
        assert table.lookup(tcp_packet("1.1.1.1", "2.2.2.2", tp_dst=22),
                            "1") is None
        assert table.misses == 1

    def test_stats_accumulate(self):
        table = FlowTable()
        table.apply_flow_mod(self._mod())
        for _ in range(3):
            table.lookup(tcp_packet("1.1.1.1", "2.2.2.2", size=500), "1")
        entry = table.entries()[0]
        assert entry.packets == 3
        assert entry.bytes == 1500

    def test_delete_by_wildcard(self):
        table = FlowTable()
        table.apply_flow_mod(self._mod(match=Match(tp_dst=80)))
        table.apply_flow_mod(self._mod(match=Match(tp_dst=22), priority=50))
        table.apply_flow_mod(self._mod(command=FlowModCommand.DELETE,
                                       match=Match()))
        assert len(table) == 0

    def test_delete_by_cookie(self):
        table = FlowTable()
        table.apply_flow_mod(self._mod(cookie="svc1"))
        table.apply_flow_mod(self._mod(match=Match(tp_dst=1), cookie="svc2"))
        assert table.delete_by_cookie("svc1") == 1
        assert len(table) == 1

    def test_delete_strict(self):
        table = FlowTable()
        table.apply_flow_mod(self._mod(priority=100))
        table.apply_flow_mod(self._mod(match=Match(tp_dst=80), priority=200))
        table.apply_flow_mod(self._mod(command=FlowModCommand.DELETE_STRICT,
                                       priority=100))
        assert len(table) == 1

    def test_modify(self):
        table = FlowTable()
        table.apply_flow_mod(self._mod(actions=[ActionOutput("x")]))
        table.apply_flow_mod(self._mod(command=FlowModCommand.MODIFY,
                                       actions=[ActionOutput("y")]))
        assert table.entries()[0].actions[0].port == "y"

    def test_hard_timeout_expiry(self):
        table = FlowTable()
        table.apply_flow_mod(self._mod(hard_timeout=10.0), now=0.0)
        assert table.lookup(tcp_packet("1.1.1.1", "2.2.2.2"), "1",
                            now=5.0) is not None
        assert table.lookup(tcp_packet("1.1.1.1", "2.2.2.2"), "1",
                            now=15.0) is None

    def test_idle_timeout_refreshes_on_hit(self):
        table = FlowTable()
        table.apply_flow_mod(self._mod(idle_timeout=10.0), now=0.0)
        table.lookup(tcp_packet("1.1.1.1", "2.2.2.2"), "1", now=8.0)
        assert table.lookup(tcp_packet("1.1.1.1", "2.2.2.2"), "1",
                            now=16.0) is not None
        assert table.lookup(tcp_packet("1.1.1.1", "2.2.2.2"), "1",
                            now=40.0) is None


@pytest.fixture
def wired():
    """h1 -- s1 -- h2 with a controller attached to s1."""
    net = Network()
    h1 = net.add_host("h1")
    h2 = net.add_host("h2")
    switch = net.add(OpenFlowSwitch("s1", net.simulator))
    net.connect("h1", "0", "s1", "1", delay_ms=0.5)
    net.connect("h2", "0", "s1", "2", delay_ms=0.5)
    controller = ControllerEndpoint("ctl", simulator=net.simulator)
    controller.connect_switch(switch)
    return net, h1, h2, switch, controller


class TestSwitchControllerLoop:
    def test_features_handshake(self, wired):
        _, _, _, switch, controller = wired
        features = controller.features("s1")
        assert features is not None
        assert set(features.ports) == {"1", "2"}

    def test_table_miss_punts(self, wired):
        net, h1, _, switch, controller = wired
        punted = []
        controller.on_packet_in(lambda dpid, msg: punted.append((dpid, msg)))
        h1.send(tcp_packet(h1.ip, "2.2.2.2"))
        net.run()
        assert len(punted) == 1
        assert punted[0][0] == "s1"
        assert punted[0][1].in_port == "1"

    def test_reactive_forwarding(self, wired):
        net, h1, h2, switch, controller = wired

        def handler(dpid, msg):
            controller.send_flow_mod(dpid, match=Match(in_port="1"),
                                     actions=[ActionOutput("2")])
            controller.send_packet_out(dpid, msg.packet, msg.in_port,
                                       [ActionOutput("2")])

        controller.on_packet_in(handler)
        h1.send(tcp_packet(h1.ip, h2.ip))
        net.run()
        assert len(h2.received) == 1
        # second packet forwarded in the fast path (no new punt)
        punts_before = switch.packet_ins_sent
        h1.send(tcp_packet(h1.ip, h2.ip))
        net.run()
        assert switch.packet_ins_sent == punts_before
        assert len(h2.received) == 2

    def test_flood(self, wired):
        net, h1, h2, switch, controller = wired
        controller.send_flow_mod("s1", match=Match(),
                                 actions=[ActionOutput(OFPP_FLOOD)])
        h1.send(tcp_packet(h1.ip, h2.ip))
        net.run()
        assert len(h2.received) == 1  # flood excludes ingress port

    def test_barrier(self, wired):
        _, _, _, _, controller = wired
        xid = controller.barrier("s1")
        assert not controller.barrier_pending(xid)

    def test_flow_stats(self, wired):
        net, h1, h2, _, controller = wired
        controller.send_flow_mod("s1", match=Match(in_port="1"),
                                 actions=[ActionOutput("2")])
        h1.send(tcp_packet(h1.ip, h2.ip))
        net.run()
        controller.request_flow_stats("s1")
        stats = controller.flow_stats("s1")
        assert stats.entries[0]["packets"] == 1

    def test_vlan_rewrite_path(self, wired):
        net, h1, h2, _, controller = wired
        controller.send_flow_mod(
            "s1", match=Match(in_port="1"),
            actions=[ActionPushVlan(77), ActionPopVlan(), ActionOutput("2")])
        h1.send(tcp_packet(h1.ip, h2.ip))
        net.run()
        assert h2.received[0].vlan is None

    def test_duplicate_switch_rejected(self, wired):
        _, _, _, switch, controller = wired
        with pytest.raises(ValueError):
            controller.connect_switch(switch)

    def test_buffer_overflow_drops(self):
        sim = Simulator()
        switch = OpenFlowSwitch("s", sim, buffer_packets=2)
        # no controller: punts turn into drops
        switch.receive(Packet(), "1")
        assert switch.drops == 1

    def test_echo_keepalive_measures_rtt(self):
        net = Network()
        switch = net.add(OpenFlowSwitch("s1", net.simulator))
        controller = ControllerEndpoint("ctl", simulator=net.simulator,
                                        channel_latency_ms=4.0)
        controller.connect_switch(switch)
        net.run()
        controller.ping("s1")
        net.run()
        assert controller.echo_rtt_ms["s1"] == pytest.approx(8.0)

    def test_flow_removed_notification_on_timeout(self, wired):
        net, h1, h2, switch, controller = wired
        removed = []
        controller.on_flow_removed(
            lambda dpid, msg: removed.append((dpid, msg.cookie, msg.reason)))
        controller.send_flow_mod("s1", match=Match(in_port="1"),
                                 actions=[ActionOutput("2")],
                                 hard_timeout=5.0, cookie="temp")
        h1.send(tcp_packet(h1.ip, h2.ip))
        net.run()
        assert len(h2.received) == 1
        # advance past the timeout; next packet triggers expiry + notify
        net.simulator.schedule(10.0, lambda: None)
        net.run()
        h1.send(tcp_packet(h1.ip, h2.ip))
        net.run()
        assert removed and removed[0][0] == "s1"
        assert removed[0][1] == "temp"
        assert removed[0][2] == "hard_timeout"
