"""Tests for the packet-level network emulation."""

import pytest

from repro.netem import Network
from repro.netem.packet import IPProto, Packet, tcp_packet, udp_packet


class TestPacket:
    def test_copy_is_independent(self):
        packet = tcp_packet("1.1.1.1", "2.2.2.2")
        packet.trace.append("a")
        clone = packet.copy()
        clone.trace.append("b")
        clone.metadata["k"] = 1
        assert packet.trace == ["a"]
        assert "k" not in packet.metadata
        assert clone.uid == packet.uid

    def test_five_tuple(self):
        packet = tcp_packet("1.1.1.1", "2.2.2.2", tp_src=1234, tp_dst=80)
        assert packet.five_tuple() == ("1.1.1.1", "2.2.2.2", IPProto.TCP,
                                       1234, 80)

    def test_flowclass_matching(self):
        packet = tcp_packet("10.0.0.1", "10.0.0.2", tp_dst=80)
        assert packet.matches_flowclass("")
        assert packet.matches_flowclass("tp_dst=80")
        assert packet.matches_flowclass("nw_src=10.0.0.1,tp_dst=80")
        assert not packet.matches_flowclass("tp_dst=22")
        assert not packet.matches_flowclass("nw_dst=9.9.9.9")

    def test_flowclass_dl_type_hex(self):
        packet = Packet()
        assert packet.matches_flowclass("dl_type=0x0800")

    def test_flowclass_vlan_unset(self):
        packet = Packet()
        assert not packet.matches_flowclass("dl_vlan=5")
        packet.vlan = 5
        assert packet.matches_flowclass("dl_vlan=5")

    def test_udp_factory(self):
        packet = udp_packet("1.1.1.1", "2.2.2.2")
        assert packet.ip_proto == IPProto.UDP

    def test_unique_uids(self):
        assert tcp_packet("1.1.1.1", "2.2.2.2").uid != \
            tcp_packet("1.1.1.1", "2.2.2.2").uid


class TestLinkTiming:
    def test_propagation_plus_serialization(self):
        net = Network()
        h1 = net.add_host("h1")
        h2 = net.add_host("h2")
        net.connect("h1", "0", "h2", "0", bandwidth_mbps=100, delay_ms=2)
        h1.send(tcp_packet(h1.ip, h2.ip, size=1000))
        net.run()
        # 1000 B * 8 / (100 Mbit/s) = 0.08 ms serialization + 2 ms prop
        assert h2.latencies[0] == pytest.approx(2.08, abs=1e-6)

    def test_serialization_queueing(self):
        net = Network()
        h1 = net.add_host("h1")
        h2 = net.add_host("h2")
        net.connect("h1", "0", "h2", "0", bandwidth_mbps=8, delay_ms=0)
        # each 1000B packet takes 1 ms to serialize at 8 Mbit/s
        for _ in range(3):
            h1.send(tcp_packet(h1.ip, h2.ip, size=1000))
        net.run()
        assert h2.latencies == pytest.approx([1.0, 2.0, 3.0])

    def test_queue_overflow_drops(self):
        net = Network()
        h1 = net.add_host("h1")
        h2 = net.add_host("h2")
        link = net.connect("h1", "0", "h2", "0", bandwidth_mbps=1,
                           delay_ms=0, queue_packets=2)
        for _ in range(5):
            h1.send(tcp_packet(h1.ip, h2.ip))
        net.run()
        assert len(h2.received) == 2
        assert link.dropped == 3

    def test_link_counters(self):
        net = Network()
        h1 = net.add_host("h1")
        h2 = net.add_host("h2")
        link = net.connect("h1", "0", "h2", "0")
        h1.send(tcp_packet(h1.ip, h2.ip, size=700))
        net.run()
        assert link.tx_packets == 1
        assert link.tx_bytes == 700

    def test_bidirectional(self):
        net = Network()
        h1 = net.add_host("h1")
        h2 = net.add_host("h2")
        net.connect("h1", "0", "h2", "0")
        h1.send(tcp_packet(h1.ip, h2.ip))
        h2.send(tcp_packet(h2.ip, h1.ip))
        net.run()
        assert len(h1.received) == 1 and len(h2.received) == 1


class TestHostsAndNetwork:
    def test_send_burst_spacing(self):
        net = Network()
        h1 = net.add_host("h1")
        h2 = net.add_host("h2")
        net.connect("h1", "0", "h2", "0", bandwidth_mbps=10_000, delay_ms=1)
        packets = [tcp_packet(h1.ip, h2.ip) for _ in range(3)]
        h1.send_burst(packets, interval=5.0)
        net.run()
        arrival_gaps = [b.created_at - a.created_at
                        for a, b in zip(h2.received, h2.received[1:])]
        assert arrival_gaps == pytest.approx([5.0, 5.0])

    def test_on_receive_callback(self):
        net = Network()
        h1 = net.add_host("h1")
        h2 = net.add_host("h2")
        net.connect("h1", "0", "h2", "0")
        got = []
        h2.on_receive = got.append
        h1.send(tcp_packet(h1.ip, h2.ip))
        net.run()
        assert len(got) == 1

    def test_unwired_send_drops(self):
        net = Network()
        h1 = net.add_host("h1")
        h1.send(tcp_packet(h1.ip, "2.2.2.2"))
        net.run()
        assert h1.drops == 1

    def test_duplicate_node_rejected(self):
        net = Network()
        net.add_host("h1")
        with pytest.raises(ValueError):
            net.add_host("h1")

    def test_duplicate_port_rejected(self):
        net = Network()
        net.add_host("h1")
        net.add_host("h2")
        net.add_host("h3")
        net.connect("h1", "0", "h2", "0")
        with pytest.raises(ValueError):
            net.connect("h1", "0", "h3", "0")

    def test_total_delivered(self):
        net = Network()
        h1 = net.add_host("h1")
        h2 = net.add_host("h2")
        net.connect("h1", "0", "h2", "0")
        h1.send(tcp_packet(h1.ip, h2.ip))
        net.run()
        assert net.total_delivered() == 1

    def test_host_clear(self):
        net = Network()
        h1 = net.add_host("h1")
        h2 = net.add_host("h2")
        net.connect("h1", "0", "h2", "0")
        h1.send(tcp_packet(h1.ip, h2.ip))
        net.run()
        h2.clear()
        assert h2.received == [] and h2.latencies == []
