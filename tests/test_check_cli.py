"""End-to-end tests of the ``repro check`` CLI subcommand."""

import json
import textwrap

from repro.cli.main import main


DIRTY_SOURCE = textwrap.dedent("""
    import time

    class Plan:
        def __init__(self):
            self.specs = []  # guarded-by: _lock
            self._lock = object()

        def before(self):
            with self._lock:
                time.sleep(0.1)

        def add(self, spec):
            self.specs.append(spec)
""")

CLEAN_SOURCE = textwrap.dedent("""
    class Plan:
        def __init__(self):
            self.specs = []  # guarded-by: _lock
            self._lock = object()

        def add(self, spec):
            with self._lock:
                self.specs.append(spec)
""")


def write(tmp_path, source, name="module.py"):
    path = tmp_path / name
    path.write_text(source)
    return str(path)


def test_no_input_exits_two(capsys):
    assert main(["check"]) == 2
    assert "no input" in capsys.readouterr().err


def test_clean_module_exits_zero(tmp_path, capsys):
    path = write(tmp_path, CLEAN_SOURCE)
    assert main(["check", path]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_dirty_module_exits_one(tmp_path, capsys):
    path = write(tmp_path, DIRTY_SOURCE)
    assert main(["check", path]) == 1
    out = capsys.readouterr().out
    assert "CC001" in out
    assert "CC005" in out


def test_unparseable_module_exits_two(tmp_path, capsys):
    path = write(tmp_path, "def broken(:\n")
    assert main(["check", path]) == 2
    assert "cannot parse" in capsys.readouterr().err


def test_missing_file_exits_two(tmp_path, capsys):
    assert main(["check", str(tmp_path / "ghost.py")]) == 2
    assert "cannot parse" in capsys.readouterr().err


def test_json_format(tmp_path, capsys):
    path = write(tmp_path, DIRTY_SOURCE)
    assert main(["check", "--format", "json", path]) == 1
    payload = json.loads(capsys.readouterr().out)
    rules = {d["rule"] for d in payload["diagnostics"]}
    assert {"CC001", "CC005"} <= rules
    lines = [d["line"] for d in payload["diagnostics"]]
    assert all(isinstance(line, int) for line in lines)


def test_sarif_format(tmp_path, capsys):
    path = write(tmp_path, DIRTY_SOURCE)
    assert main(["check", "--format", "sarif", path]) == 1
    sarif = json.loads(capsys.readouterr().out)
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    result_ids = {result["ruleId"] for result in run["results"]}
    assert result_ids <= rule_ids
    location = run["results"][0]["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == path
    assert location["region"]["startLine"] >= 1


def test_fail_level_error_tolerates_warnings(tmp_path, capsys):
    source = textwrap.dedent("""
        def bump(table):
            for key in table:
                table[key] = table[key] + 1
    """)
    path = write(tmp_path, source)
    assert main(["check", path]) == 1          # default level: warning
    capsys.readouterr()
    assert main(["check", "--fail-level", "error", path]) == 0


def test_self_clean_with_smoke(capsys):
    # acceptance criterion: the shipped package passes its own check,
    # including the runtime sanitizer smoke, with exit code 0
    assert main(["check", "--self"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out
    assert "sanitizer" in out
    assert "clean" in out


def test_self_no_smoke_skips_sanitizer(capsys):
    assert main(["check", "--self", "--no-smoke"]) == 0
    assert "sanitizer" not in capsys.readouterr().out


def test_mixed_py_and_nffg_inputs(tmp_path, capsys):
    from repro.nffg import NFFGBuilder
    from repro.nffg.serialize import nffg_to_dict

    graph = (NFFGBuilder("clean").sap("sap1").sap("sap2")
             .nf("fw", "firewall")
             .chain("sap1", "fw", "sap2", bandwidth=5.0).build())
    graph_path = tmp_path / "graph.json"
    graph_path.write_text(json.dumps(nffg_to_dict(graph)))
    module_path = write(tmp_path, CLEAN_SOURCE)
    assert main(["check", module_path, str(graph_path)]) == 0
    out = capsys.readouterr().out
    assert out.count("0 error(s)") == 2


def test_lint_sarif_format(tmp_path, capsys):
    # satellite: `repro lint` learned --format sarif alongside json
    from repro.nffg.builder import linear_substrate
    from repro.nffg.model import ResourceVector
    from repro.nffg.serialize import nffg_to_dict

    view = linear_substrate(2, id="bad", supported_types=["firewall"])
    view.add_nf("evil", "firewall",
                resources=ResourceVector(cpu=-2.0, mem=64.0), num_ports=1)
    view.place_nf("evil", "bad-bb0")
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(nffg_to_dict(view)))
    assert main(["lint", "--format", "sarif", str(path)]) == 1
    sarif = json.loads(capsys.readouterr().out)
    assert sarif["version"] == "2.1.0"
    assert sarif["runs"][0]["results"]
