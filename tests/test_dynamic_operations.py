"""Tests for dynamic operation: monitoring, healing, in-place updates.

The paper's premise is "automated, dynamic service creation" — these
are the operations a running orchestrator performs after day-one
deployment.
"""

import pytest

from repro.emu import EmulatedDomain
from repro.netem import Network
from repro.netem.packet import tcp_packet
from repro.nffg import NFFGBuilder
from repro.orchestration import EmuDomainAdapter, EscapeOrchestrator
from repro.topo import build_reference_multidomain
from repro.cli import ScenarioRunner
from repro.service import ServiceRequestBuilder


@pytest.fixture
def triangle():
    """An emu domain with a redundant triangle topology."""
    net = Network()
    emu = EmulatedDomain("emu", net, node_ids=["bb0", "bb1", "bb2"],
                         links=[("bb0", "bb1"), ("bb1", "bb2"),
                                ("bb0", "bb2")])
    emu.add_sap("sap1", "bb0")
    emu.add_sap("sap2", "bb1")
    escape = EscapeOrchestrator("esc", simulator=net.simulator)
    escape.add_domain(EmuDomainAdapter("emu", emu))
    return net, emu, escape


def _service(service_id="svc", nf_type="firewall"):
    return (NFFGBuilder(service_id).sap("sap1").sap("sap2")
            .nf(f"{service_id}-nf", nf_type)
            .chain("sap1", f"{service_id}-nf", "sap2", bandwidth=5.0)
            .build())


class TestLinkFailure:
    def test_failed_link_drops_traffic(self):
        net = Network()
        h1 = net.add_host("h1")
        h2 = net.add_host("h2")
        link = net.connect("h1", "0", "h2", "0")
        net.fail_link("h1", "h2")
        h1.send(tcp_packet(h1.ip, h2.ip))
        net.run()
        assert len(h2.received) == 0
        assert link.dropped == 1
        net.restore_link("h1", "h2")
        h1.send(tcp_packet(h1.ip, h2.ip))
        net.run()
        assert len(h2.received) == 1

    def test_fail_unknown_link_raises(self):
        net = Network()
        net.add_host("h1")
        with pytest.raises(ValueError):
            net.fail_link("h1", "ghost")

    def test_failed_link_leaves_domain_view(self, triangle):
        net, emu, escape = triangle
        assert len(emu.domain_view().links) == 3 * 2 + 2 * 2
        net.fail_link("bb0", "bb1")
        assert len(emu.domain_view().links) == 2 * 2 + 2 * 2


class TestHealing:
    def test_heal_reroutes_around_failure(self, triangle):
        net, emu, escape = triangle
        report = escape.deploy(_service())
        assert report.success
        h1, h2 = emu.sap_hosts["sap1"], emu.sap_hosts["sap2"]
        net.fail_link("bb0", "bb1")
        reports = escape.heal()
        assert reports["svc"].success
        h1.send(tcp_packet(h1.ip, h2.ip, tp_dst=80))
        net.run()
        assert len(h2.received) == 1
        assert "bb2" in h2.received[0].trace  # detour path used

    def test_heal_noop_when_unaffected(self, triangle):
        net, emu, escape = triangle
        escape.deploy(_service())
        assert escape.heal() == {}

    def test_heal_reports_unfixable(self):
        """A partitioned linear topology cannot be healed."""
        net = Network()
        emu = EmulatedDomain("emu", net, node_ids=["bb0", "bb1"],
                             links=[("bb0", "bb1")])
        emu.add_sap("sap1", "bb0")
        emu.add_sap("sap2", "bb1")
        escape = EscapeOrchestrator("esc", simulator=net.simulator)
        escape.add_domain(EmuDomainAdapter("emu", emu))
        assert escape.deploy(_service()).success
        net.fail_link("bb0", "bb1")
        reports = escape.heal()
        assert not reports["svc"].success
        assert "heal failed" in reports["svc"].error

    def test_heal_only_touches_broken_services(self, triangle):
        net, emu, escape = triangle
        escape.deploy(_service("svc-a"))
        # a second service whose hops stay on bb0 only
        local = (NFFGBuilder("svc-b").sap("sap1")
                 .nf("svc-b-nf", "monitor")
                 .chain("sap1", "svc-b-nf", bandwidth=1.0).build())
        # route sap1 -> nf -> (nothing): single-ended chain
        report_b = escape.deploy(local)
        assert report_b.success
        net.fail_link("bb0", "bb1")
        reports = escape.heal()
        assert set(reports) == {"svc-a"}


class TestUpdate:
    def test_update_swaps_nf(self, triangle):
        net, emu, escape = triangle
        escape.deploy(_service("svc", "firewall"))
        report = escape.update(_service("svc", "nat"))
        assert report.success
        h1, h2 = emu.sap_hosts["sap1"], emu.sap_hosts["sap2"]
        h1.send(tcp_packet(h1.ip, h2.ip, tp_dst=80))
        net.run()
        assert h2.received[-1].ip_src == "192.0.2.1"  # NAT active

    def test_failed_update_keeps_old_version(self, triangle):
        net, emu, escape = triangle
        escape.deploy(_service("svc", "nat"))
        report = escape.update(_service("svc", "warpdrive"))
        assert not report.success
        assert "previous version kept" in report.error
        assert escape.deployed_services() == ["svc"]
        h1, h2 = emu.sap_hosts["sap1"], emu.sap_hosts["sap2"]
        h1.send(tcp_packet(h1.ip, h2.ip, tp_dst=80))
        net.run()
        assert h2.received[-1].ip_src == "192.0.2.1"

    def test_update_of_unknown_service_deploys(self, triangle):
        net, emu, escape = triangle
        report = escape.update(_service("fresh"))
        assert report.success
        assert "fresh" in escape.deployed_services()

    def test_update_preserves_unchanged_nf_instance(self, triangle):
        """Reconciliation keeps an NF with an unchanged id running
        across the update (no restart)."""
        net, emu, escape = triangle
        escape.deploy(_service("svc", "firewall"))
        host = escape.cal.snapshot_service("svc")[1].nf_placement["svc-nf"]
        process_before = emu.switches[host].nf_process("svc-nf")
        # same NF, extra monitor appended
        updated = (NFFGBuilder("svc").sap("sap1").sap("sap2")
                   .nf("svc-nf", "firewall").nf("svc-mon", "monitor")
                   .chain("sap1", "svc-nf", "svc-mon", "sap2",
                          bandwidth=5.0).build())
        report = escape.update(updated)
        assert report.success
        host_after = escape.cal.snapshot_service("svc")[1] \
            .nf_placement["svc-nf"]
        if host_after == host:
            assert emu.switches[host].nf_process("svc-nf") is process_before


class TestTechnologyMigration:
    def test_update_migrates_nf_between_technologies(self):
        """Paper: "supports different even legacy technologies and
        migration between them."  Growing the NF's demand beyond the
        emu domain's capacity migrates it into the cloud on update."""
        testbed = build_reference_multidomain()
        small = (ServiceRequestBuilder("mig")
                 .sap("sap1").sap("sap3")
                 .nf("mig-dpi", "dpi", cpu=2.0)
                 .chain("sap1", "mig-dpi", "sap3", bandwidth=5.0).build())
        report = testbed.service_layer.submit(small)
        assert report.success
        first_host = report.mapping.nf_placement["mig-dpi"]
        assert first_host.startswith("emu")  # cheap placement first
        # the new version needs more CPU than any emu node or the UN has
        testbed.un.runtime.cpu_capacity = 4.0
        big = (ServiceRequestBuilder("mig")
               .sap("sap1").sap("sap3")
               .nf("mig-dpi", "dpi", cpu=12.0, mem=4096.0)
               .chain("sap1", "mig-dpi", "sap3", bandwidth=5.0).build())
        update_report = testbed.escape.update(big.sg)
        assert update_report.success, update_report.error
        new_host = update_report.mapping.nf_placement["mig-dpi"]
        assert new_host == "cloud-bisbis"
        # the migrated NF runs as a cloud VM and carries traffic
        runner = ScenarioRunner(testbed)
        traffic = runner.probe("sap1", "sap3", count=2)
        assert traffic.delivered == 2
        assert any("nf:mig-dpi" in trace for trace in traffic.traces)


class TestMonitoring:
    def test_flow_stats_track_traffic(self):
        testbed = build_reference_multidomain()
        runner = ScenarioRunner(testbed)
        request = (ServiceRequestBuilder("mon")
                   .sap("sap1").sap("sap2")
                   .nf("mon-fw", "firewall")
                   .chain("sap1", "mon-fw", "sap2", bandwidth=5.0).build())
        assert runner.deploy(request).success
        runner.probe("sap1", "sap2", count=4)
        stats = testbed.escape.service_flow_stats("mon")
        assert set(stats) == {"mon-hop1", "mon-hop2"}
        assert all(entry["packets"] == 4 for entry in stats.values())
        assert all(entry["bytes"] == 4000 for entry in stats.values())

    def test_flow_stats_unknown_service_empty(self):
        testbed = build_reference_multidomain()
        assert testbed.escape.service_flow_stats("ghost") == {}

    def test_flow_stats_counts_only_matching_hops(self):
        testbed = build_reference_multidomain()
        runner = ScenarioRunner(testbed)
        for service_id, flowclass, port in (("s1", "tp_dst=80", 80),
                                            ("s2", "tp_dst=53", 53)):
            request = (ServiceRequestBuilder(service_id)
                       .sap("sap1").sap("sap2")
                       .nf(f"{service_id}-f", "forwarder")
                       .chain("sap1", f"{service_id}-f", "sap2",
                              bandwidth=1.0, flowclass=flowclass).build())
            assert runner.deploy(request).success
        runner.probe("sap1", "sap2", count=3, tp_dst=80)
        runner.probe("sap1", "sap2", count=1, tp_dst=53)
        stats_a = testbed.escape.service_flow_stats("s1")
        stats_b = testbed.escape.service_flow_stats("s2")
        assert max(e["packets"] for e in stats_a.values()) == 3
        assert max(e["packets"] for e in stats_b.values()) == 1
