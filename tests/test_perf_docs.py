"""Anti-drift gate for the counter catalog (observability satellite).

:mod:`repro.perf`'s module docstring is the reference list of every
counter the control plane can increment.  This test drives the stack
hard enough to touch every counter group — traced deploys over the
reference testbed, a chaos storm with retries/breaker trips/rollback,
a heal — and then asserts that every counter name that actually
incremented is documented.  Adding a counter without documenting it
fails here, not in a code review six months later.
"""

import re

from repro import obs, perf
from repro.resilience import FaultKind, FaultPlan


def _documented_names() -> tuple[set, set]:
    """(exact names, wildcard prefixes) from the perf.py docstring.

    Dotted names are documented literally; a ``prefix.<a|b|...>``
    pattern documents ``prefix.a``/``prefix.b`` and — when ``...`` is
    among the alternatives — any further name under ``prefix.``.
    """
    doc = perf.__doc__ or ""
    names = set(re.findall(r"\b[a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+\b", doc))
    prefixes = set()
    for prefix, alternatives in re.findall(
            r"([a-z][a-z0-9_.]*\.)<([^>]+)>", doc):
        parts = [part.strip() for part in alternatives.split("|")]
        if "..." in parts:
            prefixes.add(prefix)
        names.update(prefix + part for part in parts if part != "...")
    return names, prefixes


def _is_documented(name: str, names: set, prefixes: set) -> bool:
    return name in names \
        or any(name.startswith(prefix) for prefix in prefixes)


def _drive_the_stack():
    """Touch every counter group: traced deploys, a chaos storm with a
    fatal push (rollback), and reconciliation."""
    from repro.service import ServiceRequestBuilder
    from repro.topo import build_reference_multidomain

    from tests.property.test_chaos_soak import (
        _chaos_escape,
        _drain,
        _run_ops,
    )

    testbed = build_reference_multidomain()
    for index in range(2):
        request = (ServiceRequestBuilder(f"doc{index}")
                   .sap("sap1").sap("sap2")
                   .nf(f"doc{index}-fw", "firewall")
                   .chain("sap1", f"doc{index}-fw", "sap2", bandwidth=1.0)
                   .build())
        assert testbed.service_layer.submit(request).success
    testbed.escape.teardown("doc0")

    plan = FaultPlan.random_plan(11, ["dom"], ops=("push",),
                                 rate=0.5, length=60,
                                 kinds=(FaultKind.ERROR, FaultKind.DROP,
                                        FaultKind.FATAL))
    escape, _ = _chaos_escape(plan)
    _run_ops(escape, [("deploy", index) for index in range(4)]
             + [("update", 1), ("teardown", 2), ("deploy", 2)])
    _drain(escape, plan)
    escape.heal()


class TestCounterCatalog:
    def test_every_incremented_counter_is_documented(self):
        previous = obs.disable()
        obs.enable(fresh=True)
        perf.counters.reset()
        try:
            _drive_the_stack()
        finally:
            obs.disable()
            obs.restore(previous)
        names, prefixes = _documented_names()
        incremented = sorted(perf.snapshot())
        assert incremented, "the driver incremented nothing?"
        undocumented = [name for name in incremented
                        if not _is_documented(name, names, prefixes)]
        assert undocumented == [], (
            f"counters incremented at runtime but missing from the "
            f"repro.perf docstring catalog: {undocumented}")

    def test_driver_touches_every_counter_group(self):
        """The gate above is only as good as its driver: make sure the
        drive hits each documented group, so a counter in any group
        would be caught if undocumented."""
        previous = obs.disable()
        obs.enable(fresh=True)
        perf.counters.reset()
        try:
            _drive_the_stack()
        finally:
            obs.disable()
            obs.restore(previous)
        incremented = set(perf.snapshot())
        for group in ("dov.", "nffg.", "pathcache.", "push.",
                      "dispatch.", "resilience.", "recovery.",
                      "trace.", "obs."):
            assert any(name.startswith(group) for name in incremented), \
                f"driver never incremented a {group}* counter"

    def test_docstring_catalog_parses(self):
        names, prefixes = _documented_names()
        assert "dov.rebuild" in names
        assert "trace.spans" in names
        assert "obs.events" in names
        assert "deploy.latency_s" in names
        assert "resilience.faults." in prefixes

    def test_histogram_and_gauge_names_are_documented(self):
        """The metric (histogram/gauge) names recorded by a traced run
        must be in the catalog too."""
        previous = obs.disable()
        obs.enable(fresh=True)
        perf.reset()
        try:
            _drive_the_stack()
        finally:
            obs.disable()
            obs.restore(previous)
        names, prefixes = _documented_names()
        recorded = sorted(perf.metrics.names())
        assert recorded, "the driver recorded no metrics?"
        undocumented = [name for name in recorded
                        if not _is_documented(name, names, prefixes)]
        assert undocumented == [], (
            f"metrics recorded at runtime but missing from the "
            f"repro.perf docstring catalog: {undocumented}")


def test_snapshot_docstring_example_counters_exist():
    """Spot-check that a handful of documented counters are real names
    the code actually uses (guards against the docstring rotting in the
    other direction)."""
    import pathlib

    root = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"
    source = "\n".join(path.read_text(encoding="utf-8")
                       for path in root.rglob("*.py"))
    for name in ("dov.rebuild", "push.delta", "resilience.breaker.trip",
                 "trace.spans", "obs.events", "deploy.latency_s",
                 "cal.pending_reconcile"):
        assert f'"{name}"' in source, \
            f"documented counter {name} never referenced in src/repro"
