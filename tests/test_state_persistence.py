"""Tests for controller state export/import (restart recovery)."""

import json

import pytest

from repro.emu import EmulatedDomain
from repro.netem import Network
from repro.netem.packet import tcp_packet
from repro.nffg import NFFGBuilder
from repro.orchestration import EmuDomainAdapter, EscapeOrchestrator


@pytest.fixture
def running():
    net = Network()
    emu = EmulatedDomain("emu", net, node_ids=["bb0", "bb1"],
                         links=[("bb0", "bb1")])
    emu.add_sap("sap1", "bb0")
    emu.add_sap("sap2", "bb1")
    escape = EscapeOrchestrator("esc", simulator=net.simulator)
    adapter = EmuDomainAdapter("emu", emu)
    escape.add_domain(adapter)
    service = (NFFGBuilder("persist").sap("sap1").sap("sap2")
               .nf("p-fw", "firewall").nf("p-nat", "nat")
               .chain("sap1", "p-fw", "p-nat", "sap2", bandwidth=5.0)
               .build())
    assert escape.deploy(service).success
    return net, emu, escape


class TestExport:
    def test_state_is_json_serializable(self, running):
        _, _, escape = running
        state = escape.export_state()
        payload = json.dumps(state)
        assert json.loads(payload) == state

    def test_state_captures_placements_and_routes(self, running):
        _, _, escape = running
        state = escape.export_state()
        record = state["services"]["persist"]
        assert set(record["placement"]) == {"p-fw", "p-nat"}
        assert record["routes"]
        for route in record["routes"].values():
            assert route["infra_path"]

    def test_empty_state(self):
        net = Network()
        escape = EscapeOrchestrator("empty", simulator=net.simulator)
        assert escape.export_state()["services"] == {}

    def test_state_carries_resilience_section(self, running):
        _, _, escape = running
        state = escape.export_state()
        assert set(state["resilience"]) == {"breakers", "pending"}
        assert "emu" in state["resilience"]["breakers"]
        assert state["resilience"]["breakers"]["emu"]["state"] == "closed"
        assert state["resilience"]["pending"] == []


class TestImport:
    def test_failover_controller_takes_over(self, running):
        net, emu, escape = running
        state = json.loads(json.dumps(escape.export_state()))
        # the "old controller dies": a fresh instance over the SAME
        # domains takes over from the exported state
        successor = EscapeOrchestrator("esc2", simulator=net.simulator)
        successor.add_domain(
            EmuDomainAdapter("emu2",
                             emu,
                             orchestrator=escape.cal.adapters["emu"]
                             .orchestrator))
        restored = successor.import_state(state)
        assert restored == ["persist"]
        assert successor.deployed_services() == ["persist"]
        # successor's books match reality: traffic flows
        h1, h2 = emu.sap_hosts["sap1"], emu.sap_hosts["sap2"]
        h1.send(tcp_packet(h1.ip, h2.ip, tp_dst=80))
        net.run()
        assert len(h2.received) == 1
        # successor can tear the service down cleanly
        assert successor.teardown("persist")
        for switch in emu.switches.values():
            assert switch.attached_nfs() == []

    def test_import_preserves_resource_accounting(self, running):
        net, emu, escape = running
        before = sum(i.resources.cpu
                     for i in escape.resource_view().infras)
        state = escape.export_state()
        successor = EscapeOrchestrator("esc2", simulator=net.simulator)
        successor.add_domain(
            EmuDomainAdapter("emu2", emu,
                             orchestrator=escape.cal.adapters["emu"]
                             .orchestrator))
        successor.import_state(state, push=False)
        after = sum(i.resources.cpu
                    for i in successor.resource_view().infras)
        assert after == before

    def test_import_into_nonempty_rejected(self, running):
        net, emu, escape = running
        state = escape.export_state()
        with pytest.raises(RuntimeError):
            escape.import_state(state)

    def test_reconcile_import_into_running_controller(self, running):
        # reconcile=True diffs instead of raising: importing our own
        # export is a no-op that keeps the service running
        net, emu, escape = running
        state = json.loads(json.dumps(escape.export_state()))
        escape.import_state(state, reconcile=True)
        assert escape.deployed_services() == ["persist"]
        h1, h2 = emu.sap_hosts["sap1"], emu.sap_hosts["sap2"]
        h1.send(tcp_packet(h1.ip, h2.ip, tp_dst=80))
        net.run()
        assert len(h2.received) == 1

    def test_roundtrip_state_stable(self, running):
        net, emu, escape = running
        state = escape.export_state()
        successor = EscapeOrchestrator("esc2", simulator=net.simulator)
        successor.add_domain(
            EmuDomainAdapter("emu2", emu,
                             orchestrator=escape.cal.adapters["emu"]
                             .orchestrator))
        successor.import_state(state, push=False)
        assert successor.export_state()["services"] == state["services"]
