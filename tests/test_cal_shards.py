"""Tests for the sharded CAL: registry partitioning, per-shard
staleness/refresh, two-level stitching, touched-set push planning and
the per-adapter install caches that keep pushes O(domain)."""

import zlib

import pytest

from repro.nffg import NFFG, ResourceVector
from repro.nffg.model import DomainType
from repro.orchestration.adapters import DirectDomainAdapter
from repro.orchestration.cal import ControllerAdaptationLayer
from repro.orchestration.escape import EscapeOrchestrator
from repro.perf import counters
from repro.resilience.retry import RetryPolicy
from repro.service import ServiceRequestBuilder


def domain_view(name, *, peer_tag=None):
    """A one-infra domain view whose node/sap ids are all prefixed by
    the domain name, so any number of them merge without collisions."""
    view = NFFG(id=name)
    infra = view.add_infra(
        f"{name}-bb0",
        resources=ResourceVector(cpu=8.0, mem=8192.0, storage=64.0,
                                 bandwidth=10_000.0, delay=0.1),
        supported_types=["firewall"])
    for sap_id in (f"{name}-sap1", f"{name}-sap2"):
        sap = view.add_sap(sap_id)
        port = infra.add_port(f"to-{sap_id}", sap_tag=sap_id)
        view.add_link(sap_id, next(iter(sap.ports)), infra.id, port.id,
                      bandwidth=1_000.0, delay=0.0)
    if peer_tag is not None:
        infra.add_port(f"peer-{peer_tag}", sap_tag=peer_tag)
    return view


class CountingAdapter(DirectDomainAdapter):
    """Counts view fetches and own-infra lookups; optionally breakable."""

    retry_policy = RetryPolicy(max_attempts=1)

    def __init__(self, name, view):
        super().__init__(name, view)
        self.view_fetches = 0
        self.own_id_calls = 0
        self.broken = False

    def get_view(self):
        self.view_fetches += 1
        return super().get_view()

    def own_infra_ids(self):
        self.own_id_calls += 1
        return super().own_infra_ids()

    def _push(self, install):
        if self.broken:
            raise RuntimeError(f"{self.name} down")
        super()._push(install)


def _cal(names, **kwargs):
    cal = ControllerAdaptationLayer(**kwargs)
    adapters = {name: cal.register(CountingAdapter(name, domain_view(name)))
                for name in names}
    return cal, adapters


def _pinned_service(index, domain):
    """A sap-nf-sap chain pinned entirely inside one domain."""
    return (ServiceRequestBuilder(f"s{index}")
            .sap(f"{domain}-sap1").sap(f"{domain}-sap2")
            .nf(f"s{index}-fw", "firewall", cpu=0.5, mem=32.0,
                pin_to=f"{domain}-bb0")
            .chain(f"{domain}-sap1", f"s{index}-fw", f"{domain}-sap2",
                   bandwidth=1.0)
            .build().sg)


class TestShardAssignment:
    def test_hash_sharding_partitions_the_registry(self):
        names = ["alpha", "beta", "gamma", "delta", "epsilon"]
        cal, _ = _cal(names, shards=3)
        for name in names:
            assert cal.shard_of(name) == zlib.crc32(
                name.encode("utf-8")) % 3
        members = [set(shard.adapter_names) for shard in cal.shards]
        assert set().union(*members) == set(names)
        # partition: no adapter lives in two shards
        assert sum(len(m) for m in members) == len(names)

    def test_hash_is_stable_across_registration_order(self):
        names = ["alpha", "beta", "gamma", "delta"]
        forward, _ = _cal(names, shards=4)
        backward, _ = _cal(list(reversed(names)), shards=4)
        assert {n: forward.shard_of(n) for n in names} \
            == {n: backward.shard_of(n) for n in names}

    def test_explicit_shard_map_pins_adapters(self):
        cal, _ = _cal(["a", "b", "c"], shards=2,
                      shard_map={"a": 1, "b": 0})
        assert cal.shard_of("a") == 1
        assert cal.shard_of("b") == 0
        assert 0 <= cal.shard_of("c") < 2     # unpinned names still hash

    def test_shard_map_grows_the_shard_count(self):
        cal, _ = _cal(["a"], shards=1, shard_map={"a": 3})
        assert len(cal.shards) == 4
        assert cal.shard_of("a") == 3

    def test_negative_shard_map_entry_is_rejected(self):
        cal = ControllerAdaptationLayer(shards=2, shard_map={"bad": -1})
        with pytest.raises(ValueError, match="shard_map"):
            cal.register(CountingAdapter("bad", domain_view("bad")))


class TestShardStaleness:
    def test_mark_stale_refreshes_only_the_owning_shard(self):
        cal, adapters = _cal(["a", "b"], shards=2,
                             shard_map={"a": 0, "b": 1})
        cal.dov                               # first merge fetches both
        base = {n: a.view_fetches for n, a in adapters.items()}
        cal.mark_stale(domains=["a"])
        cal.dov
        assert adapters["a"].view_fetches == base["a"] + 1
        assert adapters["b"].view_fetches == base["b"]

    def test_fresh_shards_are_reused_between_rebuilds(self):
        cal, _ = _cal(["a", "b"], shards=2, shard_map={"a": 0, "b": 1})
        cal.dov
        before = counters.snapshot("cal.shard.")
        cal.mark_stale(domains=["b"])
        cal.dov
        after = counters.snapshot("cal.shard.")
        assert after.get("cal.shard.refresh", 0) \
            - before.get("cal.shard.refresh", 0) == 1
        assert after.get("cal.shard.reuse", 0) \
            - before.get("cal.shard.reuse", 0) == 1

    def test_pristine_view_refetches_every_shard(self):
        cal, adapters = _cal(["a", "b"], shards=2,
                             shard_map={"a": 0, "b": 1})
        cal.dov
        base = {n: a.view_fetches for n, a in adapters.items()}
        cal.pristine_view()                   # heal semantics: all fresh
        assert all(a.view_fetches == base[n] + 1
                   for n, a in adapters.items())

    def test_failed_fetch_keeps_the_shard_stale(self):
        cal, adapters = _cal(["a", "b"], shards=2,
                             shard_map={"a": 0, "b": 1})
        original = adapters["a"].get_view

        def boom():
            raise RuntimeError("view unavailable")
        adapters["a"].get_view = boom
        cal.rebuild()
        assert cal.last_view_failures == {"a"}
        assert cal.shards[0].stale            # retried at next stitch
        assert not cal.shards[1].stale
        adapters["a"].get_view = original
        cal.rebuild()
        assert cal.last_view_failures == set()
        assert not cal.shards[0].stale


class TestStitching:
    def test_cross_shard_sap_tag_pairs_stitch_once(self):
        cal = ControllerAdaptationLayer(shards=2,
                                        shard_map={"a": 0, "b": 1})
        cal.register(CountingAdapter("a", domain_view("a", peer_tag="ab")))
        cal.register(CountingAdapter("b", domain_view("b", peer_tag="ab")))
        dov = cal.dov
        stitched = [edge for edge in dov.links
                    if edge.id == "interdomain-ab"]
        assert len(stitched) == 1
        # the unstitched sub-views must not have consumed the pair
        for shard in cal.shards:
            if shard.view is not None:
                assert not any(edge.id.startswith("interdomain-")
                               for edge in shard.view.links)

    def test_sharded_dov_matches_single_shard_dov(self):
        names = ["a", "b", "c", "d"]
        sharded = ControllerAdaptationLayer(shards=3)
        flat = ControllerAdaptationLayer()
        for name in names:
            sharded.register(
                CountingAdapter(name, domain_view(name, peer_tag="x"
                                if name in ("a", "b") else None)))
            flat.register(
                CountingAdapter(name, domain_view(name, peer_tag="x"
                                if name in ("a", "b") else None)))

        from tests.property.test_incremental_dov import canonical
        assert canonical(sharded.dov) == canonical(flat.dov)


class TestPushPlanning:
    def _escape(self):
        escape = EscapeOrchestrator("planner", cal_shards=2,
                                    cal_shard_map={"dom-a": 0, "dom-b": 1})
        adapters = {}
        for name in ("dom-a", "dom-b"):
            adapters[name] = CountingAdapter(name, domain_view(name))
            escape.add_domain(adapters[name])
        return escape, adapters

    def test_planned_push_targets_only_touched_domains(self):
        escape, adapters = self._escape()
        first = escape.deploy(_pinned_service(0, "dom-a"),
                              wait_activation=False)
        assert first, first.error
        # first deploy rides a full rebuild: everything is dirty
        assert {r.domain for r in first.adapters} == {"dom-a", "dom-b"}
        pushes_b = len(adapters["dom-b"].installed)

        before = counters.snapshot("cal.push.")
        second = escape.deploy(_pinned_service(1, "dom-a"),
                               wait_activation=False)
        assert second, second.error
        assert [r.domain for r in second.adapters] == ["dom-a"]
        assert len(adapters["dom-b"].installed) == pushes_b
        after = counters.snapshot("cal.push.")
        assert after.get("cal.push.planned", 0) \
            - before.get("cal.push.planned", 0) == 1
        assert after.get("cal.push.skipped", 0) \
            - before.get("cal.push.skipped", 0) == 1

    def test_teardown_pushes_only_the_touched_domain(self):
        escape, adapters = self._escape()
        escape.deploy(_pinned_service(0, "dom-a"), wait_activation=False)
        escape.deploy(_pinned_service(1, "dom-b"), wait_activation=False)
        pushes_a = len(adapters["dom-a"].installed)
        report = escape.teardown("s1")
        assert report, report.error
        assert [r.domain for r in report.adapters] == ["dom-b"]
        assert len(adapters["dom-a"].installed) == pushes_a

    def test_pending_domain_joins_the_next_planned_push(self):
        escape, adapters = self._escape()
        escape.deploy(_pinned_service(0, "dom-b"), wait_activation=False)
        adapters["dom-b"].broken = True
        failed = escape.deploy(_pinned_service(1, "dom-b"),
                               wait_activation=False)
        assert not failed
        assert "dom-b" in escape.cal.pending_reconciliation()

        adapters["dom-b"].broken = False
        report = escape.deploy(_pinned_service(2, "dom-a"),
                               wait_activation=False)
        assert report, report.error
        # the planner folds the queued replay into the same fan-out
        assert {r.domain for r in report.adapters} == {"dom-a", "dom-b"}
        assert escape.cal.pending_reconciliation() == set()

    def test_push_all_still_fans_out_everywhere(self):
        escape, adapters = self._escape()
        escape.deploy(_pinned_service(0, "dom-a"), wait_activation=False)
        reports = escape.cal.push_all()
        assert {r.domain for r in reports} == {"dom-a", "dom-b"}


class TestInstallCaches:
    def test_adapters_for_uses_the_type_index(self):
        cal = ControllerAdaptationLayer()
        internal = CountingAdapter("int-a", domain_view("int-a"))
        sdn = DirectDomainAdapter("sdn-a", domain_view("sdn-a"),
                                  domain_type=DomainType.SDN)
        cal.register(internal)
        cal.register(sdn)
        assert cal.adapters_for(DomainType.INTERNAL) == [internal]
        assert cal.adapters_for(DomainType.SDN) == [sdn]
        assert cal.adapters_for(DomainType.UNIFY) == []

    def test_own_infra_ids_cached_per_topology_generation(self):
        cal, adapters = _cal(["a"])
        cal.push_all()
        cal.push_all()
        assert adapters["a"].own_id_calls == 1
        cal.mark_stale(domains=["a"])         # topology bump
        cal.push_all()
        assert adapters["a"].own_id_calls == 2

    def test_install_slices_carry_only_own_nodes(self):
        escape, adapters = self._escape_pair()
        escape.deploy(_pinned_service(0, "dom-a"), wait_activation=False)
        escape.deploy(_pinned_service(1, "dom-b"), wait_activation=False)
        for name, adapter in adapters.items():
            last = adapter.installed[-1]
            assert {infra.id for infra in last.infras} == {f"{name}-bb0"}
            assert all(nf.id.endswith("-fw") for nf in last.nfs)

    def _escape_pair(self):
        escape = EscapeOrchestrator("slices", cal_shards=2)
        adapters = {}
        for name in ("dom-a", "dom-b"):
            adapters[name] = CountingAdapter(name, domain_view(name))
            escape.add_domain(adapters[name])
        return escape, adapters
