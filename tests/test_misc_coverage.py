"""Grab-bag tests for remaining corners: reports, POX no-path, probe
factories, renderer edge cases."""

import pytest

from repro.cli import ScenarioRunner, render_deploy_report, render_nffg
from repro.netem import Network
from repro.netem.packet import udp_packet
from repro.orchestration.report import AdapterReport, DeployReport
from repro.sdnnet import SDNDomain
from repro.service import ServiceRequestBuilder
from repro.topo import build_emulated_testbed


class TestReports:
    def test_deploy_report_aggregates_adapters(self):
        report = DeployReport(service_id="x", success=True)
        report.adapters = [
            AdapterReport(domain="a", success=True, control_messages=3,
                          control_bytes=100),
            AdapterReport(domain="b", success=True, control_messages=7,
                          control_bytes=50),
        ]
        assert report.control_messages == 10
        assert report.control_bytes == 150

    def test_failed_report_is_falsy(self):
        report = DeployReport(service_id="x", success=False, error="why")
        assert not report
        assert "FAILED" in report.summary_line()
        assert "why" in report.summary_line()

    def test_successful_report_is_truthy(self):
        assert DeployReport(service_id="x", success=True)

    def test_render_failed_deploy_report(self):
        report = DeployReport(service_id="x", success=False, error="boom")
        report.adapters = [AdapterReport(domain="a", success=False,
                                         error="adapter exploded")]
        text = render_deploy_report(report)
        assert "boom" in text and "adapter exploded" in text


class TestPoxNoPath:
    def test_push_path_raises_on_partition(self):
        import networkx as nx
        net = Network()
        domain = SDNDomain("sdn", net, switch_ids=["sw0", "sw1"])
        # no links: sw0 and sw1 are disconnected
        with pytest.raises(nx.NetworkXNoPath):
            domain.path_pusher.push_path(
                ingress_dpid="sw0", ingress_port="p",
                egress_dpid="sw1", egress_port="q")


class TestScenarioProbeFactory:
    def test_custom_packet_factory(self):
        testbed = build_emulated_testbed(switches=2)
        runner = ScenarioRunner(testbed)
        request = (ServiceRequestBuilder("udp-svc")
                   .sap("sap1").sap("sap2")
                   .nf("u-f", "forwarder")
                   .chain("sap1", "u-f", "sap2", bandwidth=1.0).build())
        assert runner.deploy(request).success
        src = testbed.host("sap1")
        dst = testbed.host("sap2")
        traffic = runner.probe(
            "sap1", "sap2", count=3,
            packet_factory=lambda i: udp_packet(src.ip, dst.ip,
                                                tp_src=6000 + i))
        assert traffic.delivered == 3
        assert all(p.ip_proto == 17 for p in dst.received)

    def test_traffic_result_defaults(self):
        from repro.cli.scenario import TrafficResult
        empty = TrafficResult()
        assert empty.delivery_ratio == 0.0
        assert empty.mean_latency_ms == 0.0


class TestRendererEdges:
    def test_render_empty_nffg(self):
        from repro.nffg import NFFG
        text = render_nffg(NFFG(id="void"))
        assert "void" in text

    def test_render_shows_reserved_capacity(self):
        testbed = build_emulated_testbed(switches=2)
        request = (ServiceRequestBuilder("rsvc")
                   .sap("sap1").sap("sap2")
                   .nf("r-f", "forwarder")
                   .chain("sap1", "r-f", "sap2", bandwidth=5.0).build())
        assert testbed.service_layer.submit(request).success
        text = render_nffg(testbed.escape.global_view())
        assert "NFs: r-f" in text
