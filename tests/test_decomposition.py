"""Tests for NF decomposition (paper §2, ref [2])."""

import pytest

from repro.mapping import (
    Decomposition,
    DecompositionLibrary,
    DecompositionRule,
    GreedyEmbedder,
    default_decomposition_library,
    expand_service,
    validate_mapping,
)
from repro.mapping.decomposition import (
    ComponentSpec,
    iter_decompositions,
    map_with_decomposition,
)
from repro.nffg import NFFGBuilder, ResourceVector
from repro.nffg.builder import linear_substrate


def vcpe_service(max_delay=None):
    builder = (NFFGBuilder("svc").sap("sap1").sap("sap2")
               .nf("cpe", "vCPE")
               .chain("sap1", "cpe", "sap2", bandwidth=5.0))
    if max_delay is not None:
        builder.requirement("sap1", "sap2", max_delay=max_delay)
    return builder.build()


@pytest.fixture
def library():
    return default_decomposition_library()


class TestLibrary:
    def test_options_cheapest_first(self, library):
        options = library.options_for("vCPE")
        cpus = [rule.total_cpu() for rule in options]
        assert cpus == sorted(cpus)

    def test_abstract_type_has_no_identity(self, library):
        assert all(not rule.is_identity
                   for rule in library.options_for("vCPE"))

    def test_concrete_type_gets_identity(self, library):
        options = library.options_for("firewall")
        assert any(rule.is_identity for rule in options)

    def test_decomposable_types(self, library):
        assert "vCPE" in library.decomposable_types()
        assert "dpi" in library.decomposable_types()


class TestExpand:
    def test_expand_replaces_nf_with_chain(self, library):
        service = vcpe_service()
        rule = next(r for r in library.options_for("vCPE")
                    if r.name == "vcpe-split")
        expanded = expand_service(service, Decomposition({"cpe": rule}))
        assert not expanded.has_node("cpe")
        assert expanded.has_node("cpe.fw")
        assert expanded.has_node("cpe.nat")
        # sap1 -> cpe.fw -> cpe.nat -> sap2
        assert len(expanded.sg_hops) == 3

    def test_expand_preserves_hop_ids(self, library):
        service = vcpe_service()
        original_hops = {hop.id for hop in service.sg_hops}
        rule = library.options_for("vCPE")[0]
        expanded = expand_service(service, Decomposition({"cpe": rule}))
        assert original_hops <= {hop.id for hop in expanded.sg_hops}

    def test_expand_splices_requirement_paths(self, library):
        service = vcpe_service(max_delay=40.0)
        rule = next(r for r in library.options_for("vCPE")
                    if r.name == "vcpe-split")
        expanded = expand_service(service, Decomposition({"cpe": rule}))
        req = expanded.requirements[0]
        assert len(req.sg_path) == 3
        for hop_id in req.sg_path:
            assert expanded.has_edge(hop_id)

    def test_identity_expansion_is_noop(self, library):
        service = vcpe_service()
        rule = DecompositionRule("identity-vCPE", "vCPE", ())
        expanded = expand_service(service, Decomposition({"cpe": rule}))
        assert expanded.has_node("cpe")

    def test_original_service_untouched(self, library):
        service = vcpe_service()
        before = service.summary()
        rule = library.options_for("vCPE")[0]
        expand_service(service, Decomposition({"cpe": rule}))
        assert service.summary() == before


class TestIterDecompositions:
    def test_combination_count(self, library):
        service = (NFFGBuilder("s").sap("a").sap("b")
                   .nf("cpe", "vCPE").nf("d", "dpi")
                   .chain("a", "cpe", "d", "b").build())
        combos = list(iter_decompositions(service, library))
        # vCPE has 2 options, dpi has pipeline + identity = 2
        assert len(combos) == 4

    def test_cheapest_combo_first(self, library):
        service = vcpe_service()
        combos = list(iter_decompositions(service, library))
        assert combos[0].total_cpu() <= combos[-1].total_cpu()

    def test_unknown_type_gets_identity(self):
        library = DecompositionLibrary()
        service = (NFFGBuilder("s").sap("a").sap("b")
                   .nf("x", "exotic").chain("a", "x", "b").build())
        combos = list(iter_decompositions(service, library))
        assert len(combos) == 1
        assert combos[0].choices["x"].is_identity


class TestMapWithDecomposition:
    def test_picks_cheapest_feasible(self, library):
        substrate = linear_substrate(
            3, supported_types=["firewall", "nat", "fw-nat-combo"])
        result = map_with_decomposition(GreedyEmbedder(), vcpe_service(),
                                        substrate, library)
        assert result.success
        assert result.decompositions["cpe"] == "vcpe-consolidated"

    def test_falls_back_when_cheapest_unsupported(self, library):
        substrate = linear_substrate(3, supported_types=["firewall", "nat"])
        result = map_with_decomposition(GreedyEmbedder(), vcpe_service(),
                                        substrate, library)
        assert result.success
        assert result.decompositions["cpe"] == "vcpe-split"
        assert set(result.nf_placement) == {"cpe.fw", "cpe.nat"}

    def test_result_validates_against_expanded_service(self, library):
        substrate = linear_substrate(3, supported_types=["firewall", "nat"])
        result = map_with_decomposition(GreedyEmbedder(), vcpe_service(),
                                        substrate, library)
        assert result.service is not None
        assert validate_mapping(result.service, substrate, result) == []

    def test_all_options_fail(self, library):
        substrate = linear_substrate(2, supported_types=["forwarder"])
        result = map_with_decomposition(GreedyEmbedder(), vcpe_service(),
                                        substrate, library)
        assert not result.success

    def test_max_options_cap(self, library):
        substrate = linear_substrate(2, supported_types=["forwarder"])
        result = map_with_decomposition(GreedyEmbedder(), vcpe_service(),
                                        substrate, library, max_options=1)
        assert not result.success

    def test_decomposition_increases_acceptance(self, library):
        """Ref [2]'s headline shape: with decompositions enabled more
        requests fit — a substrate that only runs the combo image
        accepts vCPE only through decomposition."""
        substrate = linear_substrate(2, supported_types=["fw-nat-combo"])
        plain = GreedyEmbedder().map(vcpe_service(), substrate)
        assert not plain.success  # abstract vCPE is not deployable
        decomposed = map_with_decomposition(GreedyEmbedder(), vcpe_service(),
                                            substrate, library)
        assert decomposed.success


class TestCustomRules:
    def test_three_component_chain(self):
        library = DecompositionLibrary()
        library.mark_abstract("mega")
        library.add_rule(DecompositionRule(
            "mega3", "mega",
            components=tuple(
                ComponentSpec(s, "forwarder",
                              ResourceVector(cpu=0.5, mem=64, storage=1))
                for s in ("a", "b", "c"))))
        service = (NFFGBuilder("s").sap("sap1").sap("sap2").nf("m", "mega")
                   .chain("sap1", "m", "sap2", bandwidth=1.0).build())
        substrate = linear_substrate(2, supported_types=["forwarder"])
        result = map_with_decomposition(GreedyEmbedder(), service, substrate,
                                        library)
        assert result.success
        assert set(result.nf_placement) == {"m.a", "m.b", "m.c"}
        assert len(result.hop_routes) == 4
