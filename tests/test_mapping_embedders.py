"""Tests for the three embedding algorithms (shared behaviours +
algorithm-specific ones)."""

import pytest

from repro.mapping import (
    BacktrackingEmbedder,
    DelayAwareEmbedder,
    GreedyEmbedder,
    validate_mapping,
)
from repro.mapping.greedy import service_order
from repro.nffg import NFFG, NFFGBuilder, ResourceVector
from repro.nffg.builder import linear_substrate, mesh_substrate

ALL_EMBEDDERS = [GreedyEmbedder, BacktrackingEmbedder, DelayAwareEmbedder]


def simple_service(bandwidth=10.0, max_delay=None):
    builder = (NFFGBuilder("svc").sap("sap1").sap("sap2")
               .nf("fw", "firewall").nf("nat", "nat")
               .chain("sap1", "fw", "nat", "sap2", bandwidth=bandwidth))
    if max_delay is not None:
        builder.requirement("sap1", "sap2", max_delay=max_delay)
    return builder.build()


@pytest.fixture
def substrate():
    return linear_substrate(4, id="s",
                            supported_types=["firewall", "nat", "dpi"])


class TestSharedBehaviour:
    @pytest.mark.parametrize("embedder_cls", ALL_EMBEDDERS)
    def test_successful_mapping_is_valid(self, embedder_cls, substrate):
        service = simple_service(max_delay=30.0)
        result = embedder_cls().map(service, substrate)
        assert result.success, result.failure_reason
        assert validate_mapping(service, substrate, result) == []

    @pytest.mark.parametrize("embedder_cls", ALL_EMBEDDERS)
    def test_all_nfs_placed_all_hops_routed(self, embedder_cls, substrate):
        service = simple_service()
        result = embedder_cls().map(service, substrate)
        assert set(result.nf_placement) == {"fw", "nat"}
        assert set(result.hop_routes) == {hop.id for hop in service.sg_hops}

    @pytest.mark.parametrize("embedder_cls", ALL_EMBEDDERS)
    def test_unsupported_type_fails(self, embedder_cls):
        substrate = linear_substrate(3, supported_types=["nat"])
        result = embedder_cls().map(simple_service(), substrate)
        assert not result.success
        assert "fw" in result.failure_reason or "host" in result.failure_reason

    @pytest.mark.parametrize("embedder_cls", ALL_EMBEDDERS)
    def test_insufficient_cpu_fails(self, embedder_cls):
        substrate = linear_substrate(2, cpu=0.5)
        result = embedder_cls().map(simple_service(), substrate)
        assert not result.success

    @pytest.mark.parametrize("embedder_cls", ALL_EMBEDDERS)
    def test_insufficient_bandwidth_fails(self, embedder_cls):
        substrate = linear_substrate(3, link_bw=5.0)
        result = embedder_cls().map(simple_service(bandwidth=50.0), substrate)
        assert not result.success

    @pytest.mark.parametrize("embedder_cls", ALL_EMBEDDERS)
    def test_impossible_delay_fails(self, embedder_cls):
        substrate = linear_substrate(5, link_delay=100.0)
        result = embedder_cls().map(simple_service(max_delay=5.0), substrate)
        # either refuses during routing or via requirement check
        assert not result.success

    @pytest.mark.parametrize("embedder_cls", ALL_EMBEDDERS)
    def test_failure_does_not_raise(self, embedder_cls):
        empty = NFFG(id="nothing")
        result = embedder_cls().map(simple_service(), empty)
        assert not result.success

    @pytest.mark.parametrize("embedder_cls", ALL_EMBEDDERS)
    def test_mapped_graph_carries_flowrules(self, embedder_cls, substrate):
        service = simple_service()
        result = embedder_cls().map(service, substrate)
        total_rules = result.mapped.summary()["flowrules"]
        expected = sum(len(route.infra_path)
                       for route in result.hop_routes.values())
        assert total_rules == expected

    @pytest.mark.parametrize("embedder_cls", ALL_EMBEDDERS)
    def test_mesh_substrate(self, embedder_cls):
        substrate = mesh_substrate(20, degree=3, seed=7,
                                   supported_types=["firewall", "nat"])
        service = simple_service(bandwidth=5.0)
        result = embedder_cls().map(service, substrate)
        assert result.success, result.failure_reason
        assert validate_mapping(service, substrate, result) == []

    @pytest.mark.parametrize("embedder_cls", ALL_EMBEDDERS)
    def test_source_views_not_mutated(self, embedder_cls, substrate):
        service = simple_service()
        before_sub = substrate.summary()
        before_svc = service.summary()
        embedder_cls().map(service, substrate)
        assert substrate.summary() == before_sub
        assert service.summary() == before_svc
        assert all(link.reserved == 0 for link in substrate.links)


class TestServiceOrder:
    def test_chain_order_from_sap(self):
        service = simple_service()
        assert service_order(service) == ["fw", "nat"]

    def test_isolated_nf_still_ordered(self):
        sg = NFFG(id="iso")
        sg.add_nf("lonely", "firewall", num_ports=1)
        assert service_order(sg) == ["lonely"]

    def test_branching_order_visits_all(self):
        sg = (NFFGBuilder("b").sap("u").sap("s")
              .nf("a", "x").nf("b", "y")
              .hop("u", "a").hop("u", "b").hop("a", "s").hop("b", "s")
              .build())
        assert set(service_order(sg)) == {"a", "b"}


class TestBacktracking:
    def test_finds_solution_greedy_misses(self):
        """Two NFs, two nodes; the greedy-preferred node can host only
        one NF, and the far node is reachable only through a
        bandwidth-limited link that forces fw onto the near node."""
        view = NFFG(id="trap")
        near = view.add_infra("near", resources=ResourceVector(
            cpu=1.0, mem=4096, storage=50), supported_types=["firewall", "nat"])
        far = view.add_infra("far", resources=ResourceVector(
            cpu=8.0, mem=4096, storage=50), supported_types=["firewall", "nat"],
            cost_per_cpu=5.0)
        port_n = near.add_port("to-far")
        port_f = far.add_port("to-near")
        view.add_link("near", port_n.id, "far", port_f.id, bandwidth=100.0,
                      delay=1.0)
        sap = view.add_sap("sap1")
        sap_port = near.add_port("sap-sap1", sap_tag="sap1")
        view.add_link("sap1", "1", "near", sap_port.id, bandwidth=100.0)
        service = (NFFGBuilder("svc").sap("sap1")
                   .nf("fw", "firewall", cpu=1.0).nf("nat", "nat", cpu=1.0)
                   .chain("sap1", "fw", "nat", bandwidth=10.0).build())
        result = BacktrackingEmbedder().map(service, view)
        assert result.success, result.failure_reason
        assert validate_mapping(service, view, result) == []

    def test_backtrack_budget_respected(self):
        substrate = linear_substrate(2, cpu=0.1)
        embedder = BacktrackingEmbedder(max_backtracks=5)
        result = embedder.map(simple_service(), substrate)
        assert not result.success
        assert result.backtracks <= 6


class TestDelayAware:
    def test_respects_tight_budget_better_than_greedy(self):
        """Delay-aware places the NF between the SAPs instead of at the
        cheap end when an end-to-end delay requirement is tight."""
        substrate = linear_substrate(5, id="line", link_delay=5.0,
                                     supported_types=["firewall"])
        # make the far end cheap so greedy drifts there
        for index, infra in enumerate(substrate.infras):
            infra.cost_per_cpu = 5.0 - index
        service = (NFFGBuilder("svc").sap("sap1").sap("sap2")
                   .nf("fw", "firewall")
                   .chain("sap1", "fw", "sap2", bandwidth=1.0)
                   .requirement("sap1", "sap2", max_delay=60.0).build())
        result = DelayAwareEmbedder(alpha=0.1, beta=5.0).map(service, substrate)
        assert result.success, result.failure_reason
        assert validate_mapping(service, substrate, result) == []

    def test_cost_metrics_populated(self):
        substrate = linear_substrate(3, supported_types=["firewall", "nat"])
        result = DelayAwareEmbedder().map(simple_service(), substrate)
        assert result.cost > 0
        assert result.nodes_examined > 0
        assert result.runtime_s >= 0
