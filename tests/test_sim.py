"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Simulator, SimulationError, EventCancelled
from repro.sim.kernel import drain


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, seen.append, "late")
        sim.schedule(1.0, seen.append, "early")
        sim.schedule(3.0, seen.append, "mid")
        sim.run()
        assert seen == ["early", "mid", "late"]

    def test_ties_fire_in_schedule_order(self):
        sim = Simulator()
        seen = []
        for label in "abc":
            sim.schedule(1.0, seen.append, label)
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.schedule(7.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.5, 7.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(4.0, fired.append, True)
        sim.run()
        assert fired and sim.now == 4.0

    def test_nested_scheduling_from_callback(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append("first")
            sim.schedule(1.0, lambda: seen.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == ["first", "second"]
        assert sim.now == 2.0

    def test_zero_delay_runs_at_current_time(self):
        sim = Simulator()
        sim.schedule(3.0, lambda: sim.schedule(0.0, lambda: None))
        sim.run()
        assert sim.now == 3.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(1.0, seen.append, "x")
        event.cancel()
        sim.run()
        assert seen == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_pending_ignores_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        event = sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.pending == 1

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(5.0, lambda: None)
        event.cancel()
        assert sim.peek_time() == 5.0


class TestRunControl:
    def test_run_until_stops_clock(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, "a")
        sim.schedule(10.0, seen.append, "b")
        sim.run(until=5.0)
        assert seen == ["a"]
        assert sim.now == 5.0
        sim.run()
        assert seen == ["a", "b"]

    def test_step_returns_false_when_empty(self):
        sim = Simulator()
        assert sim.step() is False

    def test_max_events_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_not_reentrant(self):
        sim = Simulator()

        def recurse():
            sim.run()

        sim.schedule(0.0, recurse)
        with pytest.raises(SimulationError):
            sim.run()

    def test_clock_view(self):
        sim = Simulator()
        clock = sim.clock()
        sim.schedule(3.0, lambda: None)
        sim.run()
        assert clock.now == 3.0


class TestProcesses:
    def test_process_sleeps(self):
        sim = Simulator()
        times = []

        def proc():
            times.append(sim.now)
            yield 5.0
            times.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert times == [0.0, 5.0]

    def test_process_returns_result(self):
        sim = Simulator()

        def proc():
            yield 1.0
            return 42

        process = sim.spawn(proc())
        sim.run()
        assert process.finished and process.result == 42

    def test_process_waits_for_process(self):
        sim = Simulator()
        order = []

        def child():
            yield 3.0
            order.append("child")
            return "payload"

        def parent():
            result = yield sim.spawn(child())
            order.append(f"parent:{result}")

        sim.spawn(parent())
        sim.run()
        assert order == ["child", "parent:payload"]

    def test_waiting_on_finished_process(self):
        sim = Simulator()

        def child():
            yield 0.0
            return 7

        child_process = sim.spawn(child())

        def parent():
            value = yield child_process
            return value + 1

        sim.run()
        parent_process = sim.spawn(parent())
        sim.run()
        assert parent_process.result == 8

    def test_yield_none_resumes_same_time(self):
        sim = Simulator()
        times = []

        def proc():
            times.append(sim.now)
            yield None
            times.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert times == [0.0, 0.0]

    def test_negative_yield_rejected(self):
        sim = Simulator()

        def proc():
            yield -2.0

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_interrupt_delivers_exception(self):
        sim = Simulator()
        outcome = []

        def proc():
            try:
                yield 100.0
            except EventCancelled:
                outcome.append("interrupted")

        process = sim.spawn(proc())
        sim.schedule(1.0, process.interrupt)
        sim.run()
        assert outcome == ["interrupted"]
        assert sim.now < 100.0

    def test_drain_returns_results(self):
        sim = Simulator()

        def proc(value):
            yield 1.0
            return value

        processes = [sim.spawn(proc(i)) for i in range(3)]
        assert drain(sim, processes) == [0, 1, 2]

    def test_unsupported_yield_value(self):
        sim = Simulator()

        def proc():
            yield "nope"

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run()
