"""Tests for the YANG-like schema/data engine."""

import pytest

from repro.yang import (
    Container,
    DataNode,
    Leaf,
    LeafType,
    SchemaError,
    ValidationError,
    YangList,
    data_from_dict,
)


@pytest.fixture
def schema():
    return Container("root", [
        Leaf("id", mandatory=True),
        Leaf("count", LeafType.INT),
        Leaf("ratio", LeafType.DECIMAL),
        Leaf("enabled", LeafType.BOOLEAN),
        Leaf("mode", LeafType.ENUM, enum_values=("fast", "slow")),
        Container("nested", [Leaf("value")]),
        YangList("item", key="id", children=[
            Leaf("id"), Leaf("label"),
            Container("sub", [Leaf("x", LeafType.INT)]),
        ]),
    ])


class TestSchema:
    def test_leaf_type_checking(self):
        leaf = Leaf("n", LeafType.INT)
        assert leaf.check_value(5) == 5
        with pytest.raises(SchemaError):
            leaf.check_value("five")
        with pytest.raises(SchemaError):
            leaf.check_value(True)  # bool is not int here

    def test_decimal_accepts_int(self):
        leaf = Leaf("d", LeafType.DECIMAL)
        assert leaf.check_value(3) == 3.0

    def test_enum_requires_values(self):
        with pytest.raises(SchemaError):
            Leaf("e", LeafType.ENUM)

    def test_enum_rejects_unknown(self):
        leaf = Leaf("e", LeafType.ENUM, enum_values=("a",))
        with pytest.raises(SchemaError):
            leaf.check_value("b")

    def test_boolean(self):
        leaf = Leaf("b", LeafType.BOOLEAN)
        assert leaf.check_value(True) is True
        with pytest.raises(SchemaError):
            leaf.check_value(1)

    def test_string_rejects_non_string(self):
        with pytest.raises(SchemaError):
            Leaf("s").check_value(5)

    def test_duplicate_child_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.add(Leaf("id"))

    def test_bad_default_rejected(self):
        with pytest.raises(SchemaError):
            Leaf("n", LeafType.INT, default="zero")

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Container("a/b")

    def test_schema_path(self, schema):
        assert schema.child("nested").path() == "/root/nested"


class TestDataTree:
    def test_set_and_get_leaf(self, schema):
        tree = DataNode(schema)
        tree.set_leaf("id", "x")
        assert tree.get("id") == "x"
        assert tree.get("missing", "default") == "default"

    def test_set_leaf_wrong_type(self, schema):
        tree = DataNode(schema)
        with pytest.raises(SchemaError):
            tree.set_leaf("count", "not a number")

    def test_unknown_child_rejected(self, schema):
        tree = DataNode(schema)
        with pytest.raises(ValidationError):
            tree.set_leaf("ghost", "x")

    def test_container_get_or_create(self, schema):
        tree = DataNode(schema)
        nested = tree.container("nested")
        assert tree.container("nested") is nested
        nested.set_leaf("value", "v")
        assert tree.container("nested").get("value") == "v"

    def test_container_on_leaf_rejected(self, schema):
        tree = DataNode(schema)
        with pytest.raises(ValidationError):
            tree.container("id")

    def test_list_instances(self, schema):
        tree = DataNode(schema)
        items = tree.list_node("item")
        items.add_instance("a").set_leaf("label", "first")
        items.add_instance("b")
        assert items.instance_keys() == ["a", "b"]
        assert items.instance("a").get("label") == "first"
        assert items.instance("a").get("id") == "a"  # key auto-set

    def test_duplicate_instance_rejected(self, schema):
        items = DataNode(schema).list_node("item")
        items.add_instance("a")
        with pytest.raises(ValidationError):
            items.add_instance("a")

    def test_remove_instance(self, schema):
        items = DataNode(schema).list_node("item")
        items.add_instance("a")
        items.remove_instance("a")
        assert not items.has_instance("a")
        with pytest.raises(ValidationError):
            items.remove_instance("a")

    def test_paths(self, schema):
        tree = DataNode(schema)
        sub = tree.list_node("item").add_instance("k1").container("sub")
        sub.set_leaf("x", 5)
        assert sub.child("x").path() == "/root/item[k1]/sub/x"

    def test_resolve(self, schema):
        tree = DataNode(schema)
        tree.list_node("item").add_instance("k1").container("sub") \
            .set_leaf("x", 7)
        assert tree.resolve("item[k1]/sub/x").value == 7
        assert tree.resolve("") is tree

    def test_resolve_missing_instance(self, schema):
        tree = DataNode(schema)
        tree.list_node("item")
        with pytest.raises(ValidationError):
            tree.resolve("item[nope]")

    def test_validation_mandatory_leaf(self, schema):
        tree = DataNode(schema)
        problems = tree.validate()
        assert any("mandatory" in p for p in problems)
        tree.set_leaf("id", "ok")
        assert tree.validate() == []

    def test_copy_is_deep(self, schema):
        tree = DataNode(schema)
        tree.set_leaf("id", "x")
        tree.list_node("item").add_instance("a")
        clone = tree.copy()
        clone.list_node("item").add_instance("b")
        assert tree.list_node("item").instance_keys() == ["a"]

    def test_dict_roundtrip(self, schema):
        tree = DataNode(schema)
        tree.set_leaf("id", "x")
        tree.set_leaf("count", 3)
        tree.set_leaf("enabled", False)
        tree.set_leaf("mode", "fast")
        tree.container("nested").set_leaf("value", "deep")
        tree.list_node("item").add_instance("a").container("sub") \
            .set_leaf("x", 1)
        rebuilt = data_from_dict(schema, tree.to_dict())
        assert rebuilt.to_dict() == tree.to_dict()

    def test_dict_rejects_unknown_key(self, schema):
        with pytest.raises(ValidationError):
            data_from_dict(schema, {"alien": 1})

    def test_xml_rendering(self, schema):
        tree = DataNode(schema)
        tree.set_leaf("id", "x")
        xml = tree.to_xml()
        assert "<root>" in xml and "<id>x</id>" in xml

    def test_json_rendering(self, schema):
        tree = DataNode(schema)
        tree.set_leaf("id", "x")
        assert '"id": "x"' in tree.to_json(indent=1)

    def test_remove_child(self, schema):
        tree = DataNode(schema)
        tree.set_leaf("id", "x")
        tree.remove_child("id")
        assert not tree.has_child("id")
        with pytest.raises(ValidationError):
            tree.remove_child("id")
