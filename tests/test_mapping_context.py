"""Direct tests for MappingContext / ResourceLedger internals —
the bookkeeping every embedder depends on."""

import pytest

from repro.mapping import MappingContext, MappingError, ResourceLedger
from repro.mapping.base import HopRoute
from repro.nffg import NFFGBuilder, ResourceVector
from repro.nffg.builder import linear_substrate


@pytest.fixture
def case():
    substrate = linear_substrate(3, id="s",
                                 supported_types=["firewall", "nat"])
    service = (NFFGBuilder("svc").sap("sap1").sap("sap2")
               .nf("fw", "firewall",
                   cpu=2.0, mem=256.0, storage=2.0)
               .chain("sap1", "fw", "sap2", bandwidth=10.0)
               .requirement("sap1", "sap2", max_delay=30.0).build())
    return service, substrate


class TestResourceLedger:
    def test_alloc_and_release_nf(self, case):
        service, substrate = case
        ledger = ResourceLedger(substrate)
        nf = service.nf("fw")
        before = ledger.free("s-bb0").cpu
        ledger.alloc_nf(nf, "s-bb0")
        assert ledger.free("s-bb0").cpu == before - 2.0
        ledger.release_nf(nf, "s-bb0")
        assert ledger.free("s-bb0").cpu == before

    def test_alloc_beyond_capacity_raises(self, case):
        service, substrate = case
        ledger = ResourceLedger(substrate)
        big = service.nf("fw")
        big.resources = ResourceVector(cpu=1000.0)
        with pytest.raises(MappingError):
            ledger.alloc_nf(big, "s-bb0")

    def test_can_host_respects_types(self, case):
        service, substrate = case
        ledger = ResourceLedger(substrate)
        nf = service.nf("fw")
        assert ledger.can_host(nf, substrate.infra("s-bb0"))
        substrate.infra("s-bb0").supported_types = {"nat"}
        assert not ledger.can_host(nf, substrate.infra("s-bb0"))

    def test_link_bandwidth_accounting(self, case):
        _, substrate = case
        ledger = ResourceLedger(substrate)
        link = substrate.links[0]
        ledger.alloc_links([link.id], 600.0)
        assert ledger.link_free(link.id) == link.bandwidth - 600.0
        assert not ledger.can_route(link, 600.0)
        ledger.release_links([link.id], 600.0)
        assert ledger.can_route(link, 600.0)

    def test_alloc_links_atomic(self, case):
        _, substrate = case
        ledger = ResourceLedger(substrate)
        first, second = substrate.links[0], substrate.links[1]
        ledger.alloc_links([second.id], 900.0)
        with pytest.raises(MappingError):
            ledger.alloc_links([first.id, second.id], 500.0)
        # nothing was deducted from first
        assert ledger.link_free(first.id) == first.bandwidth


class TestMappingContext:
    def test_sap_attachment_resolution(self, case):
        service, substrate = case
        ctx = MappingContext(service, substrate)
        assert ctx.sap_attachment("sap1") == ("s-bb0", "sap-sap1")
        with pytest.raises(MappingError):
            ctx.sap_attachment("ghost")

    def test_endpoint_infra(self, case):
        service, substrate = case
        ctx = MappingContext(service, substrate)
        assert ctx.endpoint_infra("sap1") == "s-bb0"
        assert ctx.endpoint_infra("fw") is None
        ctx.place("fw", "s-bb1")
        assert ctx.endpoint_infra("fw") == "s-bb1"

    def test_place_unplace_roundtrip(self, case):
        service, substrate = case
        ctx = MappingContext(service, substrate)
        free_before = ctx.ledger.free("s-bb0").cpu
        ctx.place("fw", "s-bb0")
        ctx.unplace("fw")
        assert ctx.ledger.free("s-bb0").cpu == free_before
        assert "fw" not in ctx.placement

    def test_record_and_drop_route(self, case):
        service, substrate = case
        ctx = MappingContext(service, substrate)
        link = substrate.links[0]
        route = HopRoute(hop_id="h", infra_path=["s-bb0", "s-bb1"],
                         link_ids=[link.id], delay=2.0, bandwidth=100.0)
        ctx.record_route(route)
        assert ctx.ledger.link_free(link.id) == link.bandwidth - 100.0
        ctx.drop_route("h")
        assert ctx.ledger.link_free(link.id) == link.bandwidth

    def test_requirement_violations(self, case):
        service, substrate = case
        ctx = MappingContext(service, substrate)
        hop_ids = [hop.id for hop in service.sg_hops]
        for hop_id in hop_ids:
            ctx.routes[hop_id] = HopRoute(hop_id=hop_id,
                                          infra_path=["s-bb0"],
                                          link_ids=[], delay=20.0,
                                          bandwidth=0.0)
        violations = ctx.requirement_violations()
        assert violations and "delay" in violations[0]
        for hop_id in hop_ids:
            ctx.routes[hop_id].delay = 10.0
        assert ctx.requirement_violations() == []

    def test_partial_delay(self, case):
        service, substrate = case
        ctx = MappingContext(service, substrate)
        hop_ids = [hop.id for hop in service.sg_hops]
        ctx.routes[hop_ids[0]] = HopRoute(hop_id=hop_ids[0],
                                          infra_path=["s-bb0"],
                                          link_ids=[], delay=7.0,
                                          bandwidth=0.0)
        assert ctx.partial_delay(hop_ids) == 7.0

    def test_adjacency_cache_is_stable(self, case):
        service, substrate = case
        ctx = MappingContext(service, substrate)
        first = ctx.adjacency()
        assert ctx.adjacency() is first
        assert all(link.src_node in ctx.node_delays()
                   for links in first.values() for link in links)

    def test_delay_estimate_matches_route(self, case):
        service, substrate = case
        ctx = MappingContext(service, substrate)
        from repro.mapping.paths import find_route
        route = find_route(substrate, ctx.ledger, "probe", "s-bb0",
                           "s-bb2", bandwidth=0.0)
        assert ctx.delay_estimate("s-bb0", "s-bb2") == \
            pytest.approx(route.delay)

    def test_delay_estimate_unreachable(self, case):
        service, substrate = case
        from repro.nffg import NFFG
        island = NFFG(id="island")
        island.add_infra("alone")
        substrate.add_node_copy(island.node("alone"))
        ctx = MappingContext(service, substrate)
        assert ctx.delay_estimate("s-bb0", "alone") == float("inf")

    def test_total_cost_components(self, case):
        service, substrate = case
        ctx = MappingContext(service, substrate)
        ctx.place("fw", "s-bb0")
        cost_placement_only = ctx.total_cost()
        link = substrate.links[0]
        ctx.record_route(HopRoute(hop_id="h", infra_path=["s-bb0", "s-bb1"],
                                  link_ids=[link.id], delay=1.0,
                                  bandwidth=10.0))
        assert ctx.total_cost() > cost_placement_only
