"""Tests for the Mininet-like emulated domain and its orchestrator."""

import pytest

from repro.emu import EmulatedDomain, EmuDomainOrchestrator
from repro.infra.nfswitch import NFHostingSwitch
from repro.click import make_nf_process
from repro.mapping import GreedyEmbedder
from repro.netconf import NetconfClient, NetconfError
from repro.netem import Network
from repro.netem.packet import tcp_packet
from repro.nffg import NFFGBuilder
from repro.nffg.serialize import nffg_to_dict
from repro.openflow.channel import ControlChannel
from repro.openflow.messages import ActionOutput, Match


@pytest.fixture
def domain():
    net = Network()
    dom = EmulatedDomain("emu", net, node_ids=["bb0", "bb1"],
                         links=[("bb0", "bb1")])
    dom.add_sap("sap1", "bb0")
    dom.add_sap("sap2", "bb1")
    return net, dom


@pytest.fixture
def managed(domain):
    net, dom = domain
    orchestrator = EmuDomainOrchestrator(dom)
    channel = ControlChannel("mgmt")
    orchestrator.bind(channel)
    client = NetconfClient("ro", channel)
    client.hello()
    return net, dom, orchestrator, client


def _mapped_install(dom):
    view = dom.domain_view()
    service = (NFFGBuilder("svc").sap("sap1").sap("sap2")
               .nf("fw", "firewall")
               .chain("sap1", "fw", "sap2", bandwidth=10.0).build())
    result = GreedyEmbedder().map(service, view)
    assert result.success, result.failure_reason
    return result.mapped


class TestNFHostingSwitch:
    def test_attach_creates_ports(self):
        net = Network()
        switch = net.add(NFHostingSwitch("bb", net.simulator))
        ports = switch.attach_nf("fw", make_nf_process("fw", "firewall"))
        assert ports == ["fw-1", "fw-2"]
        assert "fw-1" in switch.ports()
        assert switch.attached_nfs() == ["fw"]

    def test_duplicate_attach_rejected(self):
        net = Network()
        switch = net.add(NFHostingSwitch("bb", net.simulator))
        switch.attach_nf("fw", make_nf_process("fw", "firewall"))
        with pytest.raises(ValueError):
            switch.attach_nf("fw", make_nf_process("fw", "firewall"))

    def test_detach_removes_ports_and_stops(self):
        net = Network()
        switch = net.add(NFHostingSwitch("bb", net.simulator))
        process = make_nf_process("fw", "firewall")
        switch.attach_nf("fw", process)
        switch.detach_nf("fw")
        assert "fw-1" not in switch.ports()
        assert not process.running

    def test_packet_traverses_nf(self):
        net = Network()
        h1 = net.add_host("h1")
        h2 = net.add_host("h2")
        switch = net.add(NFHostingSwitch("bb", net.simulator))
        net.connect("h1", "0", "bb", "p1")
        net.connect("h2", "0", "bb", "p2")
        switch.attach_nf("fw", make_nf_process("fw", "firewall"))
        switch.table.apply_flow_mod(_flowmod(Match(in_port="p1"), "fw-1"))
        switch.table.apply_flow_mod(_flowmod(Match(in_port="fw-2"), "p2"))
        h1.send(tcp_packet(h1.ip, h2.ip, tp_dst=80))
        net.run()
        assert len(h2.received) == 1
        assert "nf:fw" in h2.received[0].trace


def _flowmod(match, out_port):
    from repro.openflow.messages import FlowMod, FlowModCommand
    return FlowMod(command=FlowModCommand.ADD, match=match,
                   actions=[ActionOutput(out_port)])


class TestDomainView:
    def test_view_shape(self, domain):
        _, dom = domain
        view = dom.domain_view()
        assert {infra.id for infra in view.infras} == {"bb0", "bb1"}
        assert {sap.id for sap in view.saps} == {"sap1", "sap2"}
        assert view.sap_bindings()["sap1"] == ("bb0", "sap-sap1")

    def test_handoff_port_in_view(self, domain):
        _, dom = domain
        dom.add_handoff("peering", "bb1")
        view = dom.domain_view()
        assert view.infra("bb1").port("sap-peering").sap_tag == "peering"

    def test_supported_types_from_catalog(self, domain):
        _, dom = domain
        view = dom.domain_view()
        assert "firewall" in view.infras[0].supported_types


class TestOrchestrator:
    def test_deploy_starts_nfs_and_installs_flows(self, managed):
        net, dom, orchestrator, client = managed
        mapped = _mapped_install(dom)
        client.edit_config({"nffg": nffg_to_dict(mapped)},
                           operation="replace")
        client.commit()
        assert orchestrator.deployed_nf_count() == 1
        host_switch = dom.switches[orchestrator._deployed_nfs["fw"][0]]
        assert "fw" in host_switch.attached_nfs()
        assert sum(s.flow_count() for s in dom.switches.values()) >= 3

    def test_dataplane_carries_chain(self, managed):
        net, dom, orchestrator, client = managed
        mapped = _mapped_install(dom)
        client.edit_config({"nffg": nffg_to_dict(mapped)},
                           operation="replace")
        client.commit()
        h1, h2 = dom.sap_hosts["sap1"], dom.sap_hosts["sap2"]
        h1.send(tcp_packet(h1.ip, h2.ip, tp_dst=80))
        net.run()
        assert len(h2.received) == 1
        assert "nf:fw" in h2.received[0].trace

    def test_validation_rejects_unknown_switch(self, managed):
        net, dom, orchestrator, client = managed
        mapped = _mapped_install(dom)
        data = nffg_to_dict(mapped)
        for node in data["nodes"]:
            if node["id"] == "bb0":
                node["id"] = "ghost"
        # fix references so the NFFG itself parses
        for edge in data["edges"]:
            for key in ("src_node", "dst_node"):
                if edge[key] == "bb0":
                    edge[key] = "ghost"
        client.edit_config({"nffg": data}, operation="replace")
        with pytest.raises(NetconfError):
            client.commit()

    def test_validation_rejects_unknown_nf_type(self, managed):
        net, dom, orchestrator, client = managed
        view = dom.domain_view()
        service = (NFFGBuilder("svc").sap("sap1").sap("sap2")
                   .nf("x", "warpdrive")
                   .chain("sap1", "x", "sap2").build())
        from repro.mapping import GreedyEmbedder
        dom2_view = view.copy()
        for infra in dom2_view.infras:
            infra.supported_types = set()  # accept anything at mapping time
        result = GreedyEmbedder().map(service, dom2_view)
        assert result.success
        client.edit_config({"nffg": nffg_to_dict(result.mapped)},
                           operation="replace")
        with pytest.raises(NetconfError):
            client.commit()

    def test_reconcile_removes_stale_nfs(self, managed):
        net, dom, orchestrator, client = managed
        mapped = _mapped_install(dom)
        client.edit_config({"nffg": nffg_to_dict(mapped)},
                           operation="replace")
        client.commit()
        assert orchestrator.deployed_nf_count() == 1
        empty = dom.domain_view()
        client.edit_config({"nffg": nffg_to_dict(empty)},
                           operation="replace")
        client.commit()
        assert orchestrator.deployed_nf_count() == 0

    def test_redeploy_same_nf_not_restarted(self, managed):
        net, dom, orchestrator, client = managed
        mapped = _mapped_install(dom)
        client.edit_config({"nffg": nffg_to_dict(mapped)},
                           operation="replace")
        client.commit()
        switch = dom.switches[orchestrator._deployed_nfs["fw"][0]]
        process_before = switch.nf_process("fw")
        client.edit_config({"nffg": nffg_to_dict(mapped)},
                           operation="replace")
        client.commit()
        assert switch.nf_process("fw") is process_before

    def test_get_topology_rpc(self, managed):
        net, dom, orchestrator, client = managed
        data = client.rpc("get-topology")
        assert {n["id"] for n in data["nodes"]
                if n["type"] == "INFRA"} == {"bb0", "bb1"}

    def test_nf_status_rpc(self, managed):
        net, dom, orchestrator, client = managed
        assert client.rpc("get-nf-status", id="fw")["status"] == "absent"
        mapped = _mapped_install(dom)
        client.edit_config({"nffg": nffg_to_dict(mapped)},
                           operation="replace")
        client.commit()
        status = client.rpc("get-nf-status", id="fw")
        assert status["status"] == "running"

    def test_notifications_emitted(self, managed):
        net, dom, orchestrator, client = managed
        mapped = _mapped_install(dom)
        client.edit_config({"nffg": nffg_to_dict(mapped)},
                           operation="replace")
        client.commit()
        events = [n.event for n in client.notifications]
        assert "vnf-started" in events
        assert "deploy-finished" in events
