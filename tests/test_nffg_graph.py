"""Tests for the NFFG container."""

import pytest

from repro.nffg import NFFG, NFFGError, ResourceVector


@pytest.fixture
def simple():
    """Two BiS-BiS nodes, one SAP, a firewall NF ready to place."""
    nffg = NFFG(id="t")
    bb0 = nffg.add_infra("bb0", supported_types=["firewall"],
                         resources=ResourceVector(cpu=4, mem=1024, storage=10))
    bb1 = nffg.add_infra("bb1", resources=ResourceVector(cpu=4, mem=1024,
                                                         storage=10))
    port0 = bb0.add_port("to-bb1")
    port1 = bb1.add_port("to-bb0")
    nffg.add_link("bb0", port0.id, "bb1", port1.id, id="l01",
                  bandwidth=100.0, delay=2.0)
    sap = nffg.add_sap("sap1")
    sap_port = bb0.add_port("sap-sap1", sap_tag="sap1")
    nffg.add_link("sap1", list(sap.ports)[0], "bb0", sap_port.id, id="sl1",
                  bandwidth=100.0)
    nffg.add_nf("fw", "firewall", num_ports=2)
    return nffg


class TestNodeManagement:
    def test_typed_accessors(self, simple):
        assert {n.id for n in simple.infras} == {"bb0", "bb1"}
        assert [s.id for s in simple.saps] == ["sap1"]
        assert [n.id for n in simple.nfs] == ["fw"]

    def test_duplicate_node_rejected(self, simple):
        with pytest.raises(NFFGError):
            simple.add_sap("sap1")

    def test_unknown_node_raises(self, simple):
        with pytest.raises(NFFGError):
            simple.node("ghost")

    def test_wrong_type_accessor_raises(self, simple):
        with pytest.raises(NFFGError):
            simple.infra("fw")
        with pytest.raises(NFFGError):
            simple.nf("bb0")
        with pytest.raises(NFFGError):
            simple.sap("bb0")

    def test_contains(self, simple):
        assert "bb0" in simple
        assert "ghost" not in simple

    def test_remove_node_removes_edges(self, simple):
        simple.remove_node("bb1")
        assert not simple.has_node("bb1")
        assert not simple.has_edge("l01")
        assert not simple.has_edge("l01-back")

    def test_remove_unknown_node(self, simple):
        with pytest.raises(NFFGError):
            simple.remove_node("ghost")


class TestEdgeManagement:
    def test_bidirectional_link_creates_pair(self, simple):
        assert simple.has_edge("l01") and simple.has_edge("l01-back")

    def test_unidirectional_link(self):
        nffg = NFFG()
        a = nffg.add_infra("a", num_ports=1)
        b = nffg.add_infra("b", num_ports=1)
        nffg.add_link("a", "1", "b", "1", id="x", bidirectional=False)
        assert nffg.has_edge("x") and not nffg.has_edge("x-back")

    def test_edge_endpoint_port_validated(self, simple):
        with pytest.raises(NFFGError):
            simple.add_link("bb0", "nonexistent", "bb1", "to-bb0")

    def test_sg_hop_and_requirement(self, simple):
        hop1 = simple.add_sg_hop("sap1", "1", "fw", "1", bandwidth=5.0)
        hop2 = simple.add_sg_hop("fw", "2", "sap1", "1")
        req = simple.add_requirement("sap1", "1", "sap1", "1",
                                     sg_path=[hop1.id, hop2.id],
                                     max_delay=20.0)
        assert len(simple.sg_hops) == 2
        assert simple.requirements[0].id == req.id

    def test_requirement_unknown_hop_rejected(self, simple):
        with pytest.raises(NFFGError):
            simple.add_requirement("sap1", "1", "sap1", "1",
                                   sg_path=["ghost-hop"])

    def test_duplicate_edge_id_rejected(self, simple):
        with pytest.raises(NFFGError):
            simple.add_link("bb0", "to-bb1", "bb1", "to-bb0", id="l01")

    def test_remove_edge(self, simple):
        simple.remove_edge("l01")
        assert not simple.has_edge("l01")
        assert simple.has_edge("l01-back")

    def test_link_between(self, simple):
        assert simple.link_between("bb0", "bb1").id == "l01"
        assert simple.link_between("bb1", "bb0").id == "l01-back"
        assert simple.link_between("bb0", "bb0") is None

    def test_out_links(self, simple):
        out_ids = {link.id for link in simple.out_links("bb0")}
        assert "l01" in out_ids


class TestPlacement:
    def test_place_nf_creates_dynamic_links_and_ports(self, simple):
        created = simple.place_nf("fw", "bb0")
        assert len(created) == 2
        assert simple.host_of("fw") == "bb0"
        assert simple.infra("bb0").has_port("fw-1")
        assert simple.infra("bb0").has_port("fw-2")
        assert simple.nf("fw").status == "placed"

    def test_place_nf_on_unsupporting_infra(self):
        nffg = NFFG()
        nffg.add_infra("bb", supported_types=["nat"])
        nffg.add_nf("fw", "firewall", num_ports=1)
        with pytest.raises(NFFGError):
            nffg.place_nf("fw", "bb")

    def test_nfs_on(self, simple):
        simple.place_nf("fw", "bb0")
        assert [nf.id for nf in simple.nfs_on("bb0")] == ["fw"]
        assert simple.nfs_on("bb1") == []

    def test_infra_port_of_nf(self, simple):
        simple.place_nf("fw", "bb0")
        assert simple.infra_port_of_nf("fw", "1") == ("bb0", "fw-1")
        assert simple.infra_port_of_nf("fw", "99") is None

    def test_host_of_unplaced(self, simple):
        assert simple.host_of("fw") is None


class TestWholeGraph:
    def test_copy_is_deep(self, simple):
        clone = simple.copy("clone")
        clone.infra("bb0").add_port("extra")
        assert not simple.infra("bb0").has_port("extra")
        assert clone.id == "clone"

    def test_validate_clean(self, simple):
        assert simple.validate() == []
        assert simple.is_valid()

    def test_validate_overreserved_link(self, simple):
        link = simple.edge("l01")
        link.reserved = link.bandwidth + 1
        assert any("exceeds capacity" in p for p in simple.validate())

    def test_validate_sg_hop_on_infra(self, simple):
        simple.add_sg_hop("sap1", "1", "fw", "1", id="ok")
        hop = simple.edge("ok")
        hop.dst_node = "bb0"
        hop.dst_port = "to-bb1"
        assert any("touches infra" in p for p in simple.validate())

    def test_summary_counts(self, simple):
        summary = simple.summary()
        assert summary["infras"] == 2
        assert summary["saps"] == 1
        assert summary["nfs"] == 1
        assert summary["static_links"] == 4

    def test_infra_topology_excludes_saps(self, simple):
        topo = simple.infra_topology()
        assert set(topo.nodes) == {"bb0", "bb1"}

    def test_sap_bindings(self, simple):
        assert simple.sap_bindings() == {"sap1": ("bb0", "sap-sap1")}

    def test_clear_flowrules(self, simple):
        simple.infra("bb0").port("to-bb1").add_flowrule("in_port=to-bb1",
                                                        "output=sap-sap1")
        simple.clear_flowrules()
        assert simple.summary()["flowrules"] == 0

    def test_connected_infra(self, simple):
        neighbours = simple.connected_infra("bb0")
        assert [infra.id for _, infra in neighbours] == ["bb1"]

    def test_filter_nodes(self, simple):
        big = simple.filter_nodes(
            lambda n: getattr(n, "resources", None) is not None
            and getattr(n.resources, "cpu", 0) >= 4)
        assert {n.id for n in big} == {"bb0", "bb1"}

    def test_add_node_copy_rejects_duplicate(self, simple):
        with pytest.raises(NFFGError):
            simple.add_node_copy(simple.node("bb0"))
