"""Tests for the RO, CAL and the ESCAPE facade (single level)."""

import pytest

from repro.mapping import DelayAwareEmbedder, GreedyEmbedder
from repro.mapping.decomposition import default_decomposition_library
from repro.nffg import NFFG, NFFGBuilder
from repro.nffg.builder import linear_substrate
from repro.nffg.model import DomainType
from repro.orchestration import (
    ControllerAdaptationLayer,
    DirectDomainAdapter,
    ResourceOrchestrator,
)
from repro.topo import build_emulated_testbed


def simple_service(service_id="svc", bandwidth=10.0):
    return (NFFGBuilder(service_id).sap("sap1").sap("sap2")
            .nf(f"{service_id}-fw", "firewall")
            .chain("sap1", f"{service_id}-fw", "sap2",
                   bandwidth=bandwidth).build())


class TestResourceOrchestrator:
    def test_orchestrate_success(self):
        ro = ResourceOrchestrator(GreedyEmbedder())
        view = linear_substrate(3, supported_types=["firewall"])
        result = ro.orchestrate(simple_service(), view)
        assert result.success
        assert ro.acceptance_ratio == 1.0

    def test_orchestrate_failure_tracked(self):
        ro = ResourceOrchestrator(GreedyEmbedder())
        view = linear_substrate(3, supported_types=["nat"])
        assert not ro.orchestrate(simple_service(), view).success
        assert ro.acceptance_ratio == 0.0

    def test_decomposition_integration(self):
        ro = ResourceOrchestrator(
            GreedyEmbedder(),
            decomposition_library=default_decomposition_library())
        view = linear_substrate(3, supported_types=["firewall", "nat"])
        service = (NFFGBuilder("svc").sap("sap1").sap("sap2")
                   .nf("cpe", "vCPE")
                   .chain("sap1", "cpe", "sap2", bandwidth=1.0).build())
        result = ro.orchestrate(service, view)
        assert result.success
        assert result.decompositions["cpe"] == "vcpe-split"

    def test_verification_catches_bad_embedder(self):
        class LyingEmbedder(GreedyEmbedder):
            def map(self, service, resource, mapped_id=None):
                result = super().map(service, resource, mapped_id)
                if result.success:
                    result.nf_placement["svc-fw"] = "ghost-node"
                return result

        ro = ResourceOrchestrator(LyingEmbedder())
        view = linear_substrate(3, supported_types=["firewall"])
        result = ro.orchestrate(simple_service(), view)
        assert not result.success
        assert "verification failed" in result.failure_reason


class TestCAL:
    def _cal_with_two_domains(self):
        cal = ControllerAdaptationLayer()
        view_a = linear_substrate(2, id="a", supported_types=["firewall"])
        view_b = linear_substrate(2, id="b", domain=DomainType.UN,
                                  supported_types=["nat"])
        # drop dom-b's SAP nodes: sap ids must be globally unique when
        # views are merged, and this test only exercises slicing
        for sap in list(view_b.saps):
            view_b.remove_node(sap.id)
        for infra in view_b.infras:
            for port in infra.ports.values():
                port.sap_tag = None
        cal.register(DirectDomainAdapter("dom-a", view_a))
        cal.register(DirectDomainAdapter("dom-b", view_b,
                                         domain_type=DomainType.UN))
        return cal

    def test_duplicate_adapter_rejected(self):
        cal = ControllerAdaptationLayer()
        cal.register(DirectDomainAdapter("x", NFFG(id="v")))
        with pytest.raises(ValueError):
            cal.register(DirectDomainAdapter("x", NFFG(id="v2")))

    def test_dov_merges_views(self):
        cal = ControllerAdaptationLayer()
        cal.register(DirectDomainAdapter("a", linear_substrate(2, id="a")))
        dov = cal.dov
        assert len(dov.infras) == 2

    def test_commit_mapping_updates_dov(self):
        cal = ControllerAdaptationLayer()
        view = linear_substrate(2, id="a", supported_types=["firewall"])
        cal.register(DirectDomainAdapter("a", view))
        service = simple_service()
        result = GreedyEmbedder().map(service, cal.resource_view())
        assert result.success
        cal.commit_mapping("svc", service, result)
        assert cal.dov.has_node("svc-fw")
        remaining = cal.resource_view()
        host = result.nf_placement["svc-fw"]
        assert remaining.infra(host).resources.cpu < 16.0

    def test_remove_service_restores_resources(self):
        cal = ControllerAdaptationLayer()
        view = linear_substrate(2, id="a", supported_types=["firewall"])
        cal.register(DirectDomainAdapter("a", view))
        service = simple_service()
        result = GreedyEmbedder().map(service, cal.resource_view())
        cal.commit_mapping("svc", service, result)
        assert cal.remove_service("svc")
        assert not cal.dov.has_node("svc-fw")
        assert not cal.remove_service("svc")

    def test_push_all_slices_per_adapter(self):
        cal = self._cal_with_two_domains()
        reports = cal.push_all()
        assert len(reports) == 2
        assert all(report.success for report in reports)


class TestEscapeSingleDomain:
    @pytest.fixture
    def testbed(self):
        return build_emulated_testbed(switches=3)

    def test_deploy_success(self, testbed):
        report = testbed.escape.deploy(simple_service())
        assert report.success
        assert report.mapping_time_s >= 0
        assert report.control_messages > 0
        assert testbed.escape.deployed_services() == ["svc"]

    def test_duplicate_deploy_rejected(self, testbed):
        testbed.escape.deploy(simple_service())
        report = testbed.escape.deploy(simple_service())
        assert not report.success
        assert "already deployed" in report.error

    def test_mapping_failure_reported(self, testbed):
        service = (NFFGBuilder("bad").sap("sap1").sap("sap2")
                   .nf("x", "warpdrive")
                   .chain("sap1", "x", "sap2").build())
        testbed.emu.supported_types = ["firewall"]
        report = testbed.escape.deploy(service)
        assert not report.success
        assert "mapping failed" in report.error
        assert testbed.escape.deployed_services() == []

    def test_teardown_restores_capacity(self, testbed):
        testbed.escape.deploy(simple_service())
        before = testbed.escape.resource_view()
        assert testbed.escape.teardown("svc")
        after = testbed.escape.resource_view()
        total_before = sum(i.resources.cpu for i in before.infras)
        total_after = sum(i.resources.cpu for i in after.infras)
        assert total_after > total_before
        assert not testbed.escape.teardown("svc")

    def test_sequential_services_share_substrate(self, testbed):
        first = testbed.escape.deploy(simple_service("svc1"))
        second = testbed.escape.deploy(simple_service("svc2"))
        assert first.success and second.success
        assert set(testbed.escape.deployed_services()) == {"svc1", "svc2"}
        # both firewalls actually running in the domain
        attached = [nf for switch in testbed.emu.switches.values()
                    for nf in switch.attached_nfs()]
        assert len(attached) == 2

    def test_capacity_exhaustion_fails_cleanly(self, testbed):
        for index in range(100):
            service = simple_service(f"svc{index}")
            report = testbed.escape.deploy(service)
            if not report.success:
                break
        else:
            pytest.fail("capacity never exhausted")
        assert "mapping failed" in report.error
        # earlier services unaffected
        assert len(testbed.escape.deployed_services()) == index

    def test_delay_aware_embedder_pluggable(self):
        testbed = build_emulated_testbed(switches=3,
                                         embedder=DelayAwareEmbedder())
        report = testbed.escape.deploy(simple_service())
        assert report.success
