"""Tests for the PerDomainBiSBiSView policy (and cross-policy laws)."""

import pytest

from repro.mapping import GreedyEmbedder, validate_mapping
from repro.nffg import NFFGBuilder
from repro.nffg.model import DomainType, InfraType
from repro.topo import build_reference_multidomain
from repro.virtualizer.views import (
    FullTopologyView,
    PerDomainBiSBiSView,
    SingleBiSBiSView,
)


@pytest.fixture
def dov():
    return build_reference_multidomain().escape.cal.dov


class TestPerDomainView:
    def test_one_node_per_domain(self, dov):
        view = PerDomainBiSBiSView().build_view(dov, "pd")
        assert len(view.infras) == 4
        domains = {infra.domain for infra in view.infras}
        assert domains == {DomainType.INTERNAL, DomainType.SDN,
                           DomainType.OPENSTACK, DomainType.UN}

    def test_capacity_aggregated_per_domain(self, dov):
        view = PerDomainBiSBiSView().build_view(dov, "pd")
        emu_node = next(i for i in view.infras
                        if i.domain == DomainType.INTERNAL)
        real = sum(i.resources.cpu for i in dov.infras
                   if i.domain == DomainType.INTERNAL)
        assert emu_node.resources.cpu == real

    def test_sdn_aggregate_is_forwarding_only(self, dov):
        view = PerDomainBiSBiSView().build_view(dov, "pd")
        sdn_node = next(i for i in view.infras
                        if i.domain == DomainType.SDN)
        assert sdn_node.infra_type == InfraType.SDN_SWITCH
        assert not sdn_node.supports("firewall")

    def test_saps_attach_to_their_domain(self, dov):
        view = PerDomainBiSBiSView().build_view(dov, "pd")
        bindings = view.sap_bindings()
        assert bindings["sap1"][0].endswith("INTERNAL")
        assert bindings["sap2"][0].endswith("UNIVERSAL-NODE")
        assert bindings["sap3"][0].endswith("OPENSTACK")

    def test_interdomain_connectivity_preserved(self, dov):
        view = PerDomainBiSBiSView().build_view(dov, "pd")
        import networkx as nx
        topo = view.infra_topology()
        assert nx.is_strongly_connected(topo)

    def test_mappable(self, dov):
        view = PerDomainBiSBiSView().build_view(dov, "pd")
        service = (NFFGBuilder("s").sap("sap1").sap("sap2")
                   .nf("s-fw", "firewall")
                   .chain("sap1", "s-fw", "sap2", bandwidth=5.0).build())
        result = GreedyEmbedder().map(service, view)
        assert result.success, result.failure_reason
        assert validate_mapping(service, view, result) == []


class TestCrossPolicyLaws:
    def test_total_capacity_identical_across_policies(self, dov):
        single = SingleBiSBiSView().build_view(dov, "s")
        per_domain = PerDomainBiSBiSView().build_view(dov, "p")
        full = FullTopologyView().build_view(dov, "f")

        def hosting_cpu(view):
            return sum(i.resources.cpu for i in view.infras
                       if i.infra_type != InfraType.SDN_SWITCH)

        assert hosting_cpu(single) == hosting_cpu(per_domain) \
            == hosting_cpu(full)

    def test_node_count_ordering(self, dov):
        single = SingleBiSBiSView().build_view(dov, "s")
        per_domain = PerDomainBiSBiSView().build_view(dov, "p")
        full = FullTopologyView().build_view(dov, "f")
        assert len(single.infras) <= len(per_domain.infras) \
            <= len(full.infras)

    def test_all_policies_keep_saps(self, dov):
        expected = {sap.id for sap in dov.saps}
        for policy in (SingleBiSBiSView(), PerDomainBiSBiSView(),
                       FullTopologyView()):
            view = policy.build_view(dov, "v")
            assert {sap.id for sap in view.saps} == expected
