"""Tests for the Unify virtualizer model, conversion and view policies."""

import pytest

from repro.nffg import NFFG, ResourceVector
from repro.nffg.builder import linear_substrate
from repro.nffg.model import DomainType, InfraType
from repro.virtualizer import (
    FullTopologyView,
    SingleBiSBiSView,
    Virtualizer,
    nffg_to_virtualizer,
    virtualizer_to_nffg,
)
from repro.virtualizer.views import FilteredView
from repro.yang import diff_trees, apply_patch


@pytest.fixture
def mapped_substrate():
    sub = linear_substrate(3, id="d", supported_types=["firewall", "nat"])
    sub.add_nf("fw", "firewall",
               resources=ResourceVector(cpu=2, mem=256, storage=2),
               num_ports=2)
    sub.place_nf("fw", "d-bb1")
    sub.infra("d-bb1").port("fw-1").add_flowrule(
        "in_port=fw-1;flowclass=tp_dst=80", "output=to-d-bb2",
        bandwidth=5.0, hop_id="h1")
    return sub


class TestVirtualizerModel:
    def test_build_and_query(self):
        virt = Virtualizer("v1", name="test")
        node = virt.add_node("bb1", cpu=8, mem=1024)
        Virtualizer.add_port(node, "p1")
        Virtualizer.add_port(node, "sap-s1", sap="s1")
        virt.set_supported_nfs("bb1", ["firewall", "nat"])
        assert virt.has_node("bb1")
        assert virt.supported_nfs("bb1") == ["firewall", "nat"]
        ports = {p.get("id"): p.get("port_type")
                 for p in Virtualizer.ports(virt.node("bb1"))}
        assert ports == {"p1": "port-abstract", "sap-s1": "port-sap"}

    def test_nf_instances(self):
        virt = Virtualizer("v1")
        virt.add_node("bb1", cpu=8)
        virt.add_nf_instance("bb1", "fw", type="firewall", cpu=2)
        instances = list(virt.nf_instances("bb1"))
        assert len(instances) == 1
        assert instances[0].get("type") == "firewall"
        virt.remove_nf_instance("bb1", "fw")
        assert not list(virt.nf_instances("bb1"))

    def test_flowentries(self):
        virt = Virtualizer("v1")
        virt.add_node("bb1")
        virt.add_flowentry("bb1", "fe1", port="p1", out="p2",
                           match="in_port=p1", action="output=p2",
                           bandwidth=10.0, hop_id="h1")
        entries = list(virt.flowentries("bb1"))
        assert entries[0].get("out") == "p2"
        assert entries[0].get("hop_id") == "h1"

    def test_links(self):
        virt = Virtualizer("v1")
        virt.add_node("a")
        virt.add_node("b")
        virt.add_link("l1", src_node="a", src_port="1", dst_node="b",
                      dst_port="1", delay=2.0, bandwidth=100.0)
        links = list(virt.links())
        assert links[0].get("src_node") == "a"

    def test_dict_roundtrip(self):
        virt = Virtualizer("v1")
        node = virt.add_node("bb1", cpu=4)
        Virtualizer.add_port(node, "p1")
        virt.add_nf_instance("bb1", "fw", type="firewall")
        clone = Virtualizer.from_dict(virt.to_dict())
        assert clone.to_dict() == virt.to_dict()

    def test_validate(self):
        virt = Virtualizer("v1")
        assert virt.validate() == []

    def test_tree_diffable(self):
        virt = Virtualizer("v1")
        virt.add_node("bb1", cpu=4)
        changed = virt.copy()
        changed.add_nf_instance("bb1", "fw", type="firewall")
        entries = diff_trees(virt.tree, changed.tree)
        assert len(entries) == 1
        patched = virt.copy()
        apply_patch(patched.tree, entries)
        assert patched.to_dict() == changed.to_dict()


class TestConversion:
    def test_roundtrip_structure(self, mapped_substrate):
        virt = nffg_to_virtualizer(mapped_substrate)
        back = virtualizer_to_nffg(virt)
        assert len(back.infras) == 3
        assert back.host_of("fw") == "d-bb1"
        assert back.summary()["flowrules"] == 1
        assert {s.id for s in back.saps} == {"sap1", "sap2"}

    def test_roundtrip_preserves_resources(self, mapped_substrate):
        back = virtualizer_to_nffg(nffg_to_virtualizer(mapped_substrate))
        infra = back.infra("d-bb0")
        assert infra.resources.cpu == 16.0
        assert back.nf("fw").resources.cpu == 2.0

    def test_roundtrip_preserves_supported_types(self, mapped_substrate):
        back = virtualizer_to_nffg(nffg_to_virtualizer(mapped_substrate))
        assert back.infra("d-bb0").supported_types == {"firewall", "nat"}

    def test_roundtrip_preserves_flowrule_fields(self, mapped_substrate):
        back = virtualizer_to_nffg(nffg_to_virtualizer(mapped_substrate))
        _, rule = next(back.infra("d-bb1").iter_flowrules())
        assert rule.hop_id == "h1"
        assert rule.bandwidth == 5.0
        assert "flowclass=tp_dst=80" in rule.match

    def test_single_direction_links(self, mapped_substrate):
        virt = nffg_to_virtualizer(mapped_substrate)
        link_ids = [link.get("id") for link in virt.links()]
        assert len(link_ids) == len(set(link_ids))
        # reverse pairs collapsed: 2 infra-infra links stored once each
        assert len(link_ids) == 2

    def test_infra_type_preserved(self):
        view = NFFG(id="v")
        view.add_infra("sw", infra_type=InfraType.SDN_SWITCH,
                       domain=DomainType.SDN)
        back = virtualizer_to_nffg(nffg_to_virtualizer(view))
        assert back.infra("sw").infra_type == InfraType.SDN_SWITCH
        assert back.infra("sw").domain == DomainType.SDN


class TestViewPolicies:
    def test_full_topology_view(self, mapped_substrate):
        view = FullTopologyView().build_view(mapped_substrate, "client")
        assert view.id == "client"
        assert len(view.infras) == 3
        # remaining resources: fw consumed 2 cpu on bb1
        assert view.infra("d-bb1").resources.cpu == 14.0

    def test_single_bisbis_aggregates(self, mapped_substrate):
        view = SingleBiSBiSView().build_view(mapped_substrate, "client")
        assert len(view.infras) == 1
        infra = view.infras[0]
        assert infra.resources.cpu == 16 * 3 - 2
        assert infra.supported_types == {"firewall", "nat"}
        assert {s.id for s in view.saps} == {"sap1", "sap2"}

    def test_single_bisbis_custom_id(self, mapped_substrate):
        view = SingleBiSBiSView(bisbis_id="mega").build_view(
            mapped_substrate, "client")
        assert view.infras[0].id == "mega"

    def test_single_bisbis_excludes_sdn_switches(self):
        view_src = NFFG(id="v")
        view_src.add_infra("sw", infra_type=InfraType.SDN_SWITCH,
                           resources=ResourceVector(cpu=99))
        view_src.add_infra("bb", resources=ResourceVector(cpu=4))
        view = SingleBiSBiSView().build_view(view_src, "c")
        assert view.infras[0].resources.cpu == 4

    def test_single_bisbis_preserves_handoff_tags(self):
        view_src = NFFG(id="v")
        infra = view_src.add_infra("bb", resources=ResourceVector(cpu=4))
        infra.add_port("sap-peerlink", sap_tag="peerlink")
        view = SingleBiSBiSView().build_view(view_src, "c")
        tags = {p.sap_tag for p in view.infras[0].ports.values()}
        assert "peerlink" in tags

    def test_filtered_view(self, mapped_substrate):
        view = FilteredView(["d-bb0", "d-bb1"]).build_view(
            mapped_substrate, "slice")
        assert {i.id for i in view.infras} == {"d-bb0", "d-bb1"}
        # sap2 attached to removed bb2 loses its link and is dropped
        assert {s.id for s in view.saps} == {"sap1"}

    def test_filtered_view_removes_foreign_nfs(self, mapped_substrate):
        view = FilteredView(["d-bb0"]).build_view(mapped_substrate, "slice")
        assert not view.nfs
