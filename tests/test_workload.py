"""Tests for the workload generator."""

import pytest

from repro.workload import (
    ChainTemplate,
    DEFAULT_TEMPLATES,
    WorkloadGenerator,
)


class TestGeneration:
    def test_deterministic_for_seed(self):
        a = WorkloadGenerator(seed=3).batch(10)
        b = WorkloadGenerator(seed=3).batch(10)
        assert [r.template for r in a] == [r.template for r in b]
        assert [r.service.summary() for r in a] == \
            [r.service.summary() for r in b]

    def test_different_seeds_differ(self):
        a = WorkloadGenerator(seed=1).batch(20)
        b = WorkloadGenerator(seed=2).batch(20)
        assert [r.template for r in a] != [r.template for r in b]

    def test_services_are_valid(self):
        for request in WorkloadGenerator(seed=4).batch(20):
            assert request.service.validate() == []
            assert request.service.nfs
            assert request.service.sg_hops

    def test_unique_ids_across_stream(self):
        requests = WorkloadGenerator(seed=5).batch(30)
        ids = [r.service.id for r in requests]
        assert len(set(ids)) == 30
        nf_ids = [nf.id for r in requests for nf in r.service.nfs]
        assert len(set(nf_ids)) == len(nf_ids)

    def test_distinct_flowclasses(self):
        requests = WorkloadGenerator(seed=6).batch(10)
        classes = {hop.flowclass for r in requests
                   for hop in r.service.sg_hops}
        assert len(classes) == 10

    def test_flowclasses_can_be_disabled(self):
        generator = WorkloadGenerator(seed=6, distinct_flowclasses=False)
        request = generator.next_request()
        assert all(hop.flowclass == "" for hop in request.service.sg_hops)

    def test_template_mix_follows_weights(self):
        requests = WorkloadGenerator(seed=7).batch(200)
        counts: dict[str, int] = {}
        for request in requests:
            counts[request.template] = counts.get(request.template, 0) + 1
        # the weight-3 template should dominate the weight-1 ones
        assert counts["access"] > counts["media"]
        assert set(counts) <= {t.name for t in DEFAULT_TEMPLATES}

    def test_custom_templates(self):
        template = ChainTemplate("only", ("monitor",), (1.0, 1.0))
        generator = WorkloadGenerator(seed=1, templates=[template])
        request = generator.next_request()
        assert request.template == "only"
        assert request.service.nfs[0].functional_type == "monitor"

    def test_needs_two_saps(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(sap_ids=("only-one",))

    def test_delay_requirements_applied(self):
        template = ChainTemplate("delayed", ("firewall",), (1.0, 1.0),
                                 max_delay_range=(10.0, 20.0))
        request = WorkloadGenerator(
            seed=2, templates=[template]).next_request()
        req = request.service.requirements[0]
        assert 10.0 <= req.max_delay <= 20.0


class TestArrivalProcess:
    def test_poisson_arrivals_monotone(self):
        requests = WorkloadGenerator(seed=8).poisson_arrivals(
            20, rate_per_s=2.0)
        arrivals = [r.arrival_ms for r in requests]
        assert arrivals == sorted(arrivals)
        assert all(a > 0 for a in arrivals)

    def test_holding_times_positive(self):
        requests = WorkloadGenerator(seed=8).poisson_arrivals(
            10, mean_holding_s=5.0)
        assert all(r.holding_ms > 0 for r in requests)

    def test_rate_scales_density(self):
        slow = WorkloadGenerator(seed=9).poisson_arrivals(
            50, rate_per_s=0.5)
        fast = WorkloadGenerator(seed=9).poisson_arrivals(
            50, rate_per_s=5.0)
        assert fast[-1].arrival_ms < slow[-1].arrival_ms

    def test_stream_is_lazy(self):
        stream = WorkloadGenerator(seed=1).stream()
        first = next(stream)
        second = next(stream)
        assert first.service.id != second.service.id
