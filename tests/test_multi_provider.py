"""Two providers with the *same* technology under one orchestrator.

Fig. 1 shows heterogeneous domains; multi-domain orchestration equally
covers two domains of the same type (e.g. two emulated providers).
This exercises the adaptation layer's per-adapter slicing: both
adapters have DomainType INTERNAL, so the per-domain-type split must be
further sliced by node ownership.
"""

import pytest

from repro.emu import EmulatedDomain
from repro.netem import Network
from repro.netem.packet import tcp_packet
from repro.nffg import NFFGBuilder
from repro.orchestration import EmuDomainAdapter, EscapeOrchestrator


@pytest.fixture
def two_providers():
    net = Network()
    west = EmulatedDomain("west", net, node_ids=["west-bb0", "west-bb1"],
                          links=[("west-bb0", "west-bb1")])
    east = EmulatedDomain("east", net, node_ids=["east-bb0", "east-bb1"],
                          links=[("east-bb0", "east-bb1")])
    west.add_sap("sap1", "west-bb0")
    east.add_sap("sap2", "east-bb1")
    # physical peering west-bb1 <-> east-bb0
    (w_node, w_port) = west.add_handoff("peer", "west-bb1")
    (e_node, e_port) = east.add_handoff("peer", "east-bb0")
    net.connect(w_node, w_port, e_node, e_port,
                bandwidth_mbps=1000.0, delay_ms=2.0)
    escape = EscapeOrchestrator("esc", simulator=net.simulator)
    west_adapter = escape.add_domain(EmuDomainAdapter("west", west))
    east_adapter = escape.add_domain(EmuDomainAdapter("east", east))
    return net, west, east, escape, west_adapter, east_adapter


def _cross_service():
    return (NFFGBuilder("x").sap("sap1").sap("sap2")
            .nf("x-fw", "firewall").nf("x-nat", "nat")
            .chain("sap1", "x-fw", "x-nat", "sap2", bandwidth=5.0)
            .build())


class TestTwoProviders:
    def test_views_stitched_at_peering(self, two_providers):
        net, west, east, escape, _, _ = two_providers
        view = escape.resource_view()
        assert len(view.infras) == 4
        assert view.has_edge("interdomain-peer")

    def test_cross_provider_chain_carries_traffic(self, two_providers):
        net, west, east, escape, _, _ = two_providers
        report = escape.deploy(_cross_service())
        assert report.success, report.error
        h1 = west.sap_hosts["sap1"]
        h2 = east.sap_hosts["sap2"]
        h1.send(tcp_packet(h1.ip, h2.ip, tp_dst=80))
        net.run()
        assert len(h2.received) == 1
        trace = h2.received[0].trace
        assert any(node.startswith("west-") for node in trace)
        assert any(node.startswith("east-") for node in trace)

    def test_each_adapter_gets_only_its_nodes(self, two_providers):
        net, west, east, escape, west_adapter, east_adapter = two_providers
        report = escape.deploy(_cross_service())
        assert report.success
        # every NF deployed exactly once, in the right provider
        west_nfs = [nf for switch in west.switches.values()
                    for nf in switch.attached_nfs()]
        east_nfs = [nf for switch in east.switches.values()
                    for nf in switch.attached_nfs()]
        assert sorted(west_nfs + east_nfs) == ["x-fw", "x-nat"]
        for nf_id, host in report.mapping.nf_placement.items():
            if host.startswith("west"):
                assert nf_id in west_nfs
            else:
                assert nf_id in east_nfs

    def test_forced_split_across_providers(self, two_providers):
        """Pin one NF per provider via supported types and verify the
        chain crosses the peering link mid-chain."""
        net, west, east, escape, _, _ = two_providers
        west.supported_types = ["firewall"]
        east.supported_types = ["nat"]
        report = escape.deploy(_cross_service())
        assert report.success, report.error
        assert report.mapping.nf_placement["x-fw"].startswith("west")
        assert report.mapping.nf_placement["x-nat"].startswith("east")
        h1, h2 = west.sap_hosts["sap1"], east.sap_hosts["sap2"]
        h1.send(tcp_packet(h1.ip, h2.ip, tp_dst=80))
        net.run()
        assert len(h2.received) == 1
        assert h2.received[0].ip_src == "192.0.2.1"  # NAT ran in east

    def test_teardown_cleans_both_providers(self, two_providers):
        net, west, east, escape, _, _ = two_providers
        escape.deploy(_cross_service())
        assert escape.teardown("x")
        for domain in (west, east):
            for switch in domain.switches.values():
                assert switch.attached_nfs() == []
                assert switch.flow_count() == 0

    def test_provider_failure_isolated(self, two_providers):
        """A push failure in one provider rolls the whole service back
        and leaves the other provider clean."""
        net, west, east, escape, west_adapter, east_adapter = two_providers
        west.supported_types = ["firewall"]
        east.supported_types = ["nat"]

        original_push = east_adapter._push

        def failing_push(install):
            if install.nfs:
                raise RuntimeError("east control plane down")
            original_push(install)

        east_adapter._push = failing_push
        report = escape.deploy(_cross_service())
        assert not report.success
        assert "east control plane down" in report.error
        assert escape.deployed_services() == []
        for switch in west.switches.values():
            assert switch.attached_nfs() == []
