"""End-to-end tests of the ``repro lint`` CLI subcommand."""

import json

import pytest

from repro.cli.main import main
from repro.nffg import NFFGBuilder
from repro.nffg.builder import linear_substrate
from repro.nffg.model import ResourceVector
from repro.nffg.serialize import nffg_to_dict


def write_nffg(tmp_path, nffg, name="graph.json"):
    path = tmp_path / name
    path.write_text(json.dumps(nffg_to_dict(nffg)))
    return str(path)


def clean_graph():
    return (NFFGBuilder("clean").sap("sap1").sap("sap2")
            .nf("fw", "firewall")
            .chain("sap1", "fw", "sap2", bandwidth=5.0)
            .requirement("sap1", "sap2", max_delay=50.0).build())


def broken_graph():
    """A substrate violating several independent rules at once."""
    view = linear_substrate(3, id="bad", supported_types=["firewall"])
    # RS001: NF demanding negative cpu
    view.add_nf("evil", "firewall",
                resources=ResourceVector(cpu=-2.0, mem=64.0), num_ports=1)
    view.place_nf("evil", "bad-bb0")
    # RS003: link reserved beyond capacity
    view.links[0].reserved = view.links[0].bandwidth + 5.0
    # MD001: sap_tag on three ports
    for infra in view.infras:
        infra.add_port(f"x-{infra.id}", sap_tag="x")
    # FR001: flow rule outputs to a port the node does not have
    view.infras[0].port("sap-sap1").add_flowrule(
        match="in_port=sap-sap1", action="output=ghost")
    # NF005: requirement path referencing an unknown hop (the builder
    # API refuses this, so mutate after creation — JSON loading keeps it)
    req = view.add_requirement("sap1", "1", "sap2", "1",
                               sg_path=[], max_delay=10.0)
    req.sg_path.append("ghost-hop")
    return view


def warning_only_graph():
    service = clean_graph()
    service.add_sap("sap9")      # NF003: unreachable SAP (warning)
    return service


def test_clean_file_exits_zero(tmp_path, capsys):
    path = write_nffg(tmp_path, clean_graph())
    assert main(["lint", path]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s), 0 info(s)" in out


def test_broken_file_flags_at_least_four_rules(tmp_path, capsys):
    path = write_nffg(tmp_path, broken_graph())
    assert main(["lint", path]) == 1
    out = capsys.readouterr().out
    fired = {rule for rule in ("RS001", "RS003", "MD001", "FR001", "NF005")
             if rule in out}
    assert len(fired) >= 4, f"only {fired} flagged:\n{out}"


def test_broken_fixture_survives_json_roundtrip(tmp_path):
    # the fixture's violations must be expressible in serialized form,
    # otherwise the CLI path would silently test a weaker graph
    from repro.lint import lint_nffg
    from repro.nffg.serialize import nffg_from_dict

    reloaded = nffg_from_dict(json.loads(
        json.dumps(nffg_to_dict(broken_graph()))))
    assert {"RS001", "RS003", "MD001", "FR001", "NF005"} <= \
        lint_nffg(reloaded).rule_ids()


def test_fail_level_gates_warnings(tmp_path):
    path = write_nffg(tmp_path, warning_only_graph())
    assert main(["lint", path]) == 1                       # default: warning
    assert main(["lint", "--fail-level", "error", path]) == 0
    assert main(["lint", "--fail-level", "info", path]) == 1


def test_unparseable_file_exits_two(tmp_path, capsys):
    path = tmp_path / "garbage.json"
    path.write_text("{not json")
    assert main(["lint", str(path)]) == 2
    assert "cannot load NFFG" in capsys.readouterr().err


def test_missing_file_exits_two(tmp_path):
    assert main(["lint", str(tmp_path / "absent.json")]) == 2


def test_invalid_nffg_payload_exits_two(tmp_path):
    path = tmp_path / "bad-type.json"
    path.write_text(json.dumps({"id": "x", "nodes": [{"type": "ALIEN"}]}))
    assert main(["lint", str(path)]) == 2


def test_no_files_exits_two(capsys):
    assert main(["lint"]) == 2
    assert "no input files" in capsys.readouterr().err


def test_multiple_files_worst_exit_wins(tmp_path, capsys):
    clean = write_nffg(tmp_path, clean_graph(), "clean.json")
    broken = write_nffg(tmp_path, broken_graph(), "broken.json")
    assert main(["lint", clean, broken]) == 1
    out = capsys.readouterr().out
    assert "clean.json" in out and "broken.json" in out


def test_json_format_is_machine_readable(tmp_path, capsys):
    path = write_nffg(tmp_path, broken_graph())
    assert main(["lint", "--format", "json", path]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["source"] == path
    assert payload["summary"]["error"] >= 4
    assert {d["rule"] for d in payload["diagnostics"]} >= {"RS001", "FR001"}


def test_list_rules_prints_catalog(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("NF001", "RS001", "FR001", "MD001", "DC001"):
        assert rule_id in out


@pytest.mark.parametrize("fail_level", ["info", "warning", "error"])
def test_clean_file_clean_at_every_level(tmp_path, fail_level):
    path = write_nffg(tmp_path, clean_graph())
    assert main(["lint", "--fail-level", fail_level, path]) == 0
