"""Tests for the observability layer: gated spans, the tracer ring,
Chrome export, the structured event log, and the perf histograms and
gauges the instrumentation feeds."""

import json
import threading

import pytest

from repro import obs, perf
from repro.nffg import NFFGBuilder
from repro.obs.events import EventLog, render_jsonl
from repro.obs.metrics import metric_name, render_prometheus
from repro.obs.trace import (
    NOOP_SPAN,
    Tracer,
    current_span,
    render_tree,
    validate_chrome_trace,
)
from repro.perf import Gauge, Histogram, MetricsRegistry
from repro.resilience import FaultKind, FaultPlan
from repro.service import ServiceRequestBuilder


@pytest.fixture
def scoped_obs():
    """A fresh obs state installed for the test, old state restored."""
    previous = obs.disable()
    state = obs.enable(fresh=True)
    yield state
    obs.disable()
    obs.restore(previous)


@pytest.fixture
def obs_off():
    """Tracing hard-off for the test, old state restored."""
    previous = obs.disable()
    yield
    obs.restore(previous)


def _chain_request(index=0, prefix="obs"):
    return (ServiceRequestBuilder(f"{prefix}{index}")
            .sap("sap1").sap("sap2")
            .nf(f"{prefix}{index}-fw", "firewall")
            .nf(f"{prefix}{index}-nat", "nat")
            .chain("sap1", f"{prefix}{index}-fw", f"{prefix}{index}-nat",
                   "sap2", bandwidth=2.0)
            .build())


# -- gating -----------------------------------------------------------------


class TestGating:
    def test_disabled_span_is_shared_noop(self, obs_off):
        assert obs.span("deploy", service="x") is NOOP_SPAN
        with obs.span("deploy") as span:
            assert span.trace_id is None
            assert current_span() is None

    def test_disabled_event_is_noop(self, obs_off):
        obs.event("deploy", service="x")  # must not raise
        assert obs.state() is None
        assert not obs.enabled()

    def test_enable_disable_roundtrip(self, obs_off):
        state = obs.enable(fresh=True)
        assert obs.enabled()
        with obs.span("deploy"):
            pass
        detached = obs.disable()
        assert detached is state
        assert len(detached.tracer.spans()) == 1
        assert not obs.enabled()

    def test_env_gate_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert not obs._env_enabled()
        monkeypatch.setenv("REPRO_OBS", "0")
        assert not obs._env_enabled()
        monkeypatch.setenv("REPRO_OBS", "1")
        assert obs._env_enabled()


# -- spans and the tracer ---------------------------------------------------


class TestTracer:
    def test_nesting_builds_parent_links(self):
        tracer = Tracer()
        with tracer.start_span("deploy") as root:
            with tracer.start_span("deploy/map") as child:
                assert current_span() is child
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id
            assert current_span() is root
        assert current_span() is None
        spans = tracer.spans()
        assert [s.name for s in spans] == ["deploy/map", "deploy"]

    def test_sibling_roots_get_distinct_traces(self):
        tracer = Tracer()
        with tracer.start_span("a"):
            pass
        with tracer.start_span("b"):
            pass
        first, second = tracer.spans()
        assert first.trace_id != second.trace_id

    def test_exception_sets_status_and_closes(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.start_span("deploy"):
                raise ValueError("boom")
        (span,) = tracer.spans()
        assert span.status == "ValueError"
        assert span.end_s is not None
        assert tracer.open_spans() == []

    def test_end_is_idempotent(self):
        tracer = Tracer()
        span = tracer.start_span("x")
        span.end()
        span.end()
        assert len(tracer.spans()) == 1

    def test_ring_evicts_oldest_and_counts(self):
        perf.reset("trace.")
        tracer = Tracer(max_spans=2)
        for index in range(4):
            tracer.start_span(f"s{index}").end()
        assert [s.name for s in tracer.spans()] == ["s2", "s3"]
        assert tracer.dropped == 2
        assert perf.snapshot("trace.")["trace.dropped"] == 2

    def test_span_records_thread(self):
        tracer = Tracer()
        names = {}

        def work():
            with tracer.start_span("worker") as span:
                names["thread"] = span.thread_name

        thread = threading.Thread(target=work, name="push-worker")
        thread.start()
        thread.join()
        assert names["thread"] == "push-worker"

    def test_set_attrs_chainable(self):
        tracer = Tracer()
        with tracer.start_span("x", {"a": 1}) as span:
            span.set(b=2).set(a=3)
        assert tracer.spans()[0].attrs == {"a": 3, "b": 2}


class TestChromeExport:
    def test_export_is_valid_and_carries_ids(self):
        tracer = Tracer()
        with tracer.start_span("deploy", {"service": "svc"}):
            with tracer.start_span("deploy/push"):
                pass
        data = tracer.export_chrome()
        assert validate_chrome_trace(data) == []
        assert json.loads(json.dumps(data)) == data  # JSON-serializable
        complete = [e for e in data["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in complete}
        root = by_name["deploy"]
        child = by_name["deploy/push"]
        assert root["args"]["service"] == "svc"
        assert child["args"]["parent_id"] == root["args"]["span_id"]
        assert child["cat"] == "deploy"
        meta = [e for e in data["traceEvents"] if e["ph"] == "M"]
        assert meta and meta[0]["args"]["name"]

    def test_validator_rejects_garbage(self):
        assert validate_chrome_trace([]) == ["top level is not a JSON object"]
        assert validate_chrome_trace({}) == [
            "traceEvents missing or not a list"]
        problems = validate_chrome_trace(
            {"traceEvents": [{"ph": "Q", "pid": "x", "tid": 1}]})
        assert any("name" in p for p in problems)
        assert any("phase" in p for p in problems)
        assert any("pid" in p for p in problems)

    def test_render_tree_shows_hierarchy(self):
        tracer = Tracer()
        with tracer.start_span("deploy"):
            with tracer.start_span("deploy/map"):
                pass
        text = render_tree(tracer)
        lines = text.splitlines()
        assert lines[0].startswith("deploy ")
        assert lines[1].startswith("  deploy/map ")

    def test_render_tree_empty(self):
        assert render_tree(Tracer()) == "(no spans recorded)"


# -- event log --------------------------------------------------------------


class TestEventLog:
    def test_emit_stamps_seq_and_ids(self):
        log = EventLog()
        event = log.emit("push", trace_id="t1", span_id="s2",
                         fields={"domain": "emu"})
        assert event["seq"] == 1
        assert event["trace_id"] == "t1"
        assert event["span_id"] == "s2"
        assert event["domain"] == "emu"
        assert event["ts_ms"] >= 0.0

    def test_ring_evicts_oldest(self):
        log = EventLog(max_events=2)
        for index in range(4):
            log.emit(f"e{index}")
        assert [e["type"] for e in log.events()] == ["e2", "e3"]
        assert log.dropped == 2

    def test_filter_and_limit(self):
        log = EventLog()
        log.emit("push")
        log.emit("push.mode")
        log.emit("deploy")
        assert [e["type"] for e in log.events(type_prefix="push")] \
            == ["push", "push.mode"]
        assert [e["type"] for e in log.events(limit=1)] == ["deploy"]

    def test_subscribe_sees_live_events(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        log.emit("a")
        log.unsubscribe(seen.append)
        log.emit("b")
        assert [e["type"] for e in seen] == ["a"]

    def test_render_jsonl_roundtrips(self):
        log = EventLog()
        log.emit("push", fields={"domain": "emu", "ok": True})
        lines = render_jsonl(log.events()).splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["domain"] == "emu"

    def test_obs_event_attaches_active_span(self, scoped_obs):
        with obs.span("deploy") as span:
            obs.event("deploy", service="svc")
        (event,) = scoped_obs.events.events()
        assert event["trace_id"] == span.trace_id
        assert event["span_id"] == span.span_id


# -- histograms / gauges / prometheus ---------------------------------------


class TestHistogram:
    def test_single_value_reports_itself_at_every_quantile(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        histogram.observe(1.5)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert histogram.quantile(q) == pytest.approx(1.5)

    def test_quantiles_interpolate_and_clamp(self):
        histogram = Histogram("h", buckets=(10.0, 20.0, 30.0))
        for value in (1.0, 12.0, 14.0, 28.0):
            histogram.observe(value)
        assert histogram.quantile(0.0) == pytest.approx(1.0)
        assert histogram.quantile(1.0) == pytest.approx(28.0)
        assert 10.0 <= histogram.percentile(50) <= 20.0
        assert histogram.count == 4

    def test_empty_histogram_is_zero(self):
        histogram = Histogram("h", buckets=(1.0,))
        assert histogram.quantile(0.99) == 0.0
        snap = histogram.snapshot()
        assert snap["count"] == 0 and snap["sum"] == 0.0

    def test_overflow_bucket_catches_large_values(self):
        histogram = Histogram("h", buckets=(1.0,))
        histogram.observe(100.0)
        assert histogram.snapshot()["counts"] == [0, 1]
        assert histogram.quantile(0.5) == pytest.approx(100.0)

    def test_registry_get_or_create_by_labels(self):
        registry = MetricsRegistry()
        a = registry.histogram("push.latency_s", labels={"domain": "emu"})
        b = registry.histogram("push.latency_s", labels={"domain": "emu"})
        c = registry.histogram("push.latency_s", labels={"domain": "sdn"})
        assert a is b and a is not c
        assert registry.names() == {"push.latency_s"}
        registry.reset("push.")
        assert registry.names() == set()

    def test_gauge_set_add(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        gauge.add(-1.0)
        assert gauge.get() == 2.0


class TestPrometheusRendering:
    def test_metric_name_mangling(self):
        assert metric_name("deploy.latency_s") == "repro_deploy_latency_s"
        assert metric_name("x.y", "_p50") == "repro_x_y_p50"

    def test_render_counters_histograms_gauges(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("deploy.latency_s",
                                       buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        registry.gauge("cal.services_deployed").set(3)
        text = render_prometheus(
            registry=registry, counter_snapshot={"push.full": 2})
        assert "# TYPE repro_push_full_total counter" in text
        assert "repro_push_full_total 2" in text
        assert "# TYPE repro_deploy_latency_s histogram" in text
        assert 'repro_deploy_latency_s_bucket{le="0.1"} 1' in text
        assert 'repro_deploy_latency_s_bucket{le="+Inf"} 2' in text
        assert "repro_deploy_latency_s_count 2" in text
        assert "# TYPE repro_deploy_latency_s_p95 gauge" in text
        assert "repro_cal_services_deployed 3" in text

    def test_labelled_series_render_with_labels(self):
        registry = MetricsRegistry()
        registry.histogram("push.latency_s",
                           labels={"domain": "emu"}).observe(0.01)
        text = render_prometheus(registry=registry)
        assert 'repro_push_latency_s_count{domain="emu"} 1' in text
        assert 'repro_push_latency_s_p50{domain="emu"}' in text


# -- end-to-end instrumentation ---------------------------------------------


class TestInstrumentedDeploy:
    def test_traced_deploy_produces_expected_span_tree(self, scoped_obs):
        from repro.topo import build_reference_multidomain

        testbed = build_reference_multidomain()
        report = testbed.service_layer.submit(_chain_request())
        assert report.success
        spans = scoped_obs.tracer.spans()
        names = {span.name for span in spans}
        assert {"deploy", "deploy/lint", "deploy/view", "deploy/map",
                "deploy/push", "deploy/activate", "map/embed"} <= names
        assert scoped_obs.tracer.open_spans() == []
        roots = [s for s in spans if s.name == "deploy"]
        assert len(roots) == 1
        root = roots[0]
        assert root.attrs["outcome"] == "success"
        # every span belongs to the one deploy trace
        stages = [s for s in spans if s.name.startswith("deploy/")]
        assert all(s.trace_id == root.trace_id for s in stages)

    def test_push_spans_land_on_worker_threads(self, scoped_obs):
        from repro.topo import build_reference_multidomain

        testbed = build_reference_multidomain()
        assert testbed.service_layer.submit(_chain_request()).success
        push_spans = [s for s in scoped_obs.tracer.spans()
                      if s.name.startswith("push/")]
        domains = {s.attrs["domain"] for s in push_spans}
        assert domains == {"emu", "sdn", "cloud", "un"}
        assert all(s.thread_name.startswith("domain-push")
                   for s in push_spans)
        # copied contexts parent each push under the deploy/push stage
        parents = {s.span_id: s for s in scoped_obs.tracer.spans()}
        for span in push_spans:
            parent = parents.get(span.parent_id)
            if parent is not None:
                assert parent.name == "deploy/push"

    def test_deploy_emits_events_and_chrome_trace(self, scoped_obs):
        from repro.topo import build_reference_multidomain

        testbed = build_reference_multidomain()
        assert testbed.service_layer.submit(_chain_request()).success
        types = [e["type"] for e in scoped_obs.events.events()]
        assert "deploy" in types and "push" in types
        data = scoped_obs.tracer.export_chrome()
        assert validate_chrome_trace(data) == []

    def test_deploy_feeds_latency_histograms(self, scoped_obs):
        from repro.topo import build_reference_multidomain

        perf.reset()
        testbed = build_reference_multidomain()
        assert testbed.service_layer.submit(_chain_request()).success
        deploy_hist = perf.metrics.histogram("deploy.latency_s")
        assert deploy_hist.count == 1
        assert deploy_hist.quantile(0.5) > 0.0
        labelled = [h for h in perf.metrics.histograms()
                    if h.name == "push.latency_s"]
        assert {dict(h.labels)["domain"] for h in labelled} \
            == {"emu", "sdn", "cloud", "un"}
        gauge = perf.metrics.gauge("cal.services_deployed")
        assert gauge.get() == 1.0

    def test_untraced_deploy_records_no_spans(self, obs_off):
        from repro.topo import build_reference_multidomain

        perf.reset("trace.")
        perf.reset("obs.")
        testbed = build_reference_multidomain()
        assert testbed.service_layer.submit(_chain_request()).success
        assert perf.snapshot("trace.") == {}
        assert perf.snapshot("obs.") == {}


class TestFailurePathObservability:
    def _failing_escape(self):
        from repro.orchestration import (
            DirectDomainAdapter,
            EscapeOrchestrator,
        )
        from repro.resilience import FaultyAdapter

        from tests.test_resilience import _direct_view

        escape = EscapeOrchestrator("obs-fail")
        escape.cal.breaker_failure_threshold = 5
        plan = FaultPlan()
        escape.add_domain(
            DirectDomainAdapter("dom-a", view=_direct_view("dom-a", "sapA")))
        escape.add_domain(FaultyAdapter(
            DirectDomainAdapter("dom-b", view=_direct_view("dom-b", "sapB")),
            plan))
        return escape, plan

    def _one_hop(self, service_id, sap_id):
        return (NFFGBuilder(service_id).sap(sap_id)
                .nf(f"{service_id}-nf", "firewall")
                .chain(sap_id, f"{service_id}-nf", bandwidth=1.0).build())

    def test_failed_deploy_records_rollback_time(self, obs_off):
        escape, plan = self._failing_escape()
        plan.add("dom-b", "push", kind=FaultKind.FATAL, count=1)
        report = escape.deploy(self._one_hop("b1", "sapB"),
                               wait_activation=False)
        assert not report.success
        assert report.rollback
        assert report.rollback_time_s > 0.0
        assert report.stage_timings()["rollback"] == report.rollback_time_s

    def test_successful_deploy_has_zero_rollback_time(self, obs_off):
        escape, plan = self._failing_escape()
        report = escape.deploy(self._one_hop("a1", "sapA"),
                               wait_activation=False)
        assert report.success
        assert report.rollback_time_s == 0.0

    def test_rendered_report_shows_rollback_stage_only_on_failure(
            self, obs_off):
        from repro.cli.render import render_deploy_report

        escape, plan = self._failing_escape()
        ok = escape.deploy(self._one_hop("a1", "sapA"),
                           wait_activation=False)
        assert "rollback" not in render_deploy_report(ok)
        plan.add("dom-b", "push", kind=FaultKind.FATAL, count=1)
        failed = escape.deploy(self._one_hop("b1", "sapB"),
                               wait_activation=False)
        rendered = render_deploy_report(failed)
        assert "rollback" in rendered
        assert "stages:" in rendered

    def test_failure_spans_and_events(self, scoped_obs):
        escape, plan = self._failing_escape()
        plan.add("dom-b", "push", kind=FaultKind.FATAL, count=1)
        report = escape.deploy(self._one_hop("b1", "sapB"),
                               wait_activation=False)
        assert not report.success
        names = {s.name for s in scoped_obs.tracer.spans()}
        assert "deploy/rollback" in names
        types = [e["type"] for e in scoped_obs.events.events()]
        assert "fault.injected" in types
        assert "rollback" in types
        deploy_events = [e for e in scoped_obs.events.events()
                         if e["type"] == "deploy"]
        assert deploy_events[-1]["outcome"] == "failed"


class TestSimVirtualTime:
    def test_events_during_sim_run_carry_vtime(self, scoped_obs):
        from repro.sim.kernel import Simulator

        simulator = Simulator()
        simulator.schedule(25.0, lambda: obs.event("tick"))
        simulator.run()
        (event,) = scoped_obs.events.events(type_prefix="tick")
        assert event["vtime_ms"] == 25.0
        names = {s.name for s in scoped_obs.tracer.spans()}
        assert "sim/run" in names

    def test_vclock_unbound_after_run(self, scoped_obs):
        from repro.sim.kernel import Simulator

        Simulator().run()
        obs.event("after")
        (event,) = scoped_obs.events.events(type_prefix="after")
        assert "vtime_ms" not in event
