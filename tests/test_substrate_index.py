"""Unit tests for the substrate index, the embedder registry, and the
index-backed allocators (PR 10).

The deeper equivalence/acceptance properties live in
``tests/property/test_substrate_index.py``; these tests pin the
individual mechanisms: bucket maintenance, incremental apply vs the
escape-hatch verify, copy-on-write ledger seeding, candidate pruning,
and registry plumbing.
"""

import types

import pytest

from repro.mapping import (
    BacktrackingEmbedder,
    DelayAwareEmbedder,
    GreedyEmbedder,
    MappingContext,
    SubstrateIndex,
    embedder_names,
    make_embedder,
    register_embedder,
    validate_mapping,
)
from repro.mapping.base import Embedder
from repro.mapping.index import cpu_class
from repro.nffg import NFFGBuilder
from repro.nffg.builder import mesh_substrate
from repro.nffg.model import InfraType, ResourceVector

NF_TYPES = ["firewall", "nat", "dpi", "monitor"]


def _substrate(size=12, seed=3, **kwargs):
    kwargs.setdefault("supported_types", NF_TYPES)
    return mesh_substrate(size, degree=3, seed=seed, **kwargs)


def _chain(length=3, service_id="svc", cpu=1.0, bandwidth=2.0):
    builder = NFFGBuilder(service_id).sap("sap1").sap("sap2")
    names = []
    for index in range(length):
        name = f"{service_id}-nf{index}"
        builder.nf(name, NF_TYPES[index % len(NF_TYPES)], cpu=cpu)
        names.append(name)
    builder.chain("sap1", *names, "sap2", bandwidth=bandwidth)
    return builder.build()


def _synced(substrate, epoch=1):
    index = SubstrateIndex()
    index.sync(substrate, epoch=epoch)
    return index


class TestCpuClass:
    def test_exhausted_is_class_zero(self):
        assert cpu_class(0.0) == 0
        assert cpu_class(-1.0) == 0

    def test_monotone_powers_of_two(self):
        classes = [cpu_class(value) for value in (0.5, 1.0, 2.0, 4.0, 16.0)]
        assert classes == sorted(classes)
        assert cpu_class(3.9) == cpu_class(2.1)
        assert cpu_class(4.1) > cpu_class(3.9)


class TestLifecycle:
    def test_rebuild_populates_free_and_type_sets(self):
        substrate = _substrate()
        index = _synced(substrate)
        assert set(index.free) == {infra.id for infra in substrate.infras}
        for infra in substrate.infras:
            assert index.free[infra.id].cpu == infra.resources.cpu
        for functional_type in NF_TYPES:
            assert index.supporters(functional_type) == len(substrate.infras)
        stats = index.stats()
        assert stats["rebuilds"] == 1
        assert stats["applies"] == 0

    def test_sync_is_idempotent_per_epoch(self):
        substrate = _substrate()
        index = _synced(substrate, epoch=1)
        index.sync(substrate, epoch=1)
        assert index.rebuilds == 1
        index.sync(substrate, epoch=2)  # topology moved
        assert index.rebuilds == 2
        other = _substrate(seed=4)
        index.sync(other, epoch=2)  # different view object
        assert index.rebuilds == 3

    def test_covers_is_identity_based(self):
        substrate = _substrate()
        index = _synced(substrate)
        assert index.covers(substrate)
        assert not index.covers(_substrate())
        index.mark_stale()
        assert not index.covers(substrate)

    def test_stale_index_is_skipped_by_context(self):
        substrate = _substrate()
        index = _synced(substrate)
        index.mark_stale()
        ctx = MappingContext(_chain(), substrate, index=index)
        assert ctx.index is None  # fell back to the full-rescan path

    def test_switches_are_excluded_from_candidates(self):
        substrate = _substrate()
        switch = substrate.infras[0]
        switch.infra_type = InfraType.SDN_SWITCH
        index = _synced(substrate)
        assert switch.id in index.free  # still in the ledger seed
        for functional_type in NF_TYPES:
            assert switch.id not in index.candidate_ids(functional_type)


class TestApplyAndVerify:
    def test_apply_roundtrip_restores_free(self):
        substrate = _substrate()
        index = _synced(substrate)
        before = dict(index.free)
        service = _chain()
        result = GreedyEmbedder().map(service, substrate, index=index)
        assert result.success, result.failure_reason
        index.apply_mapping(service, result, 1.0)
        host = result.nf_placement[f"svc-nf0"]
        assert index.free[host].cpu < before[host].cpu
        index.apply_mapping(service, result, -1.0)
        for infra_id, expected in before.items():
            assert index.free[infra_id].cpu == \
                pytest.approx(expected.cpu)
        assert index.verify(substrate) == []

    def test_verify_detects_drift_and_marks_stale(self):
        substrate = _substrate()
        index = _synced(substrate)
        service = _chain()
        result = GreedyEmbedder().map(service, substrate, index=index)
        assert result.success
        # deploy folded into the index but NOT into the view: drift
        index.apply_mapping(service, result, 1.0)
        problems = index.verify(substrate)
        assert problems
        assert not index.covers(substrate)
        index.sync(substrate)  # next sync rebuilds
        assert index.verify(substrate) == []

    def test_unresolvable_id_marks_stale(self):
        substrate = _substrate()
        index = _synced(substrate)
        ghost = types.SimpleNamespace(
            nf_placement={"svc-nf0": "no-such-infra"}, hop_routes={})
        index.apply_mapping(_chain(), ghost, 1.0)
        assert not index.covers(substrate)
        assert index.applies == 0

    def test_apply_rebuckets_on_class_change(self):
        substrate = _substrate(cpu=16.0)
        index = _synced(substrate)
        service = _chain(length=1, cpu=12.0)
        result = GreedyEmbedder().map(service, substrate, index=index)
        assert result.success
        host = result.nf_placement["svc-nf0"]
        index.apply_mapping(service, result, 1.0)
        assert index._bucket_of[host] == cpu_class(16.0 - 12.0)
        assert index.verify(substrate) != []  # view untouched, as above


class TestCandidates:
    def test_full_set_matches_manual_scan(self):
        substrate = _substrate()
        index = _synced(substrate)
        for functional_type in NF_TYPES:
            expected = {infra.id for infra in substrate.infras
                        if infra.supports(functional_type)}
            assert set(index.candidate_ids(functional_type)) == expected

    def test_k_prunes_and_min_cpu_filters(self):
        substrate = _substrate(size=30)
        index = _synced(substrate)
        pruned = index.candidate_ids("dpi", k=5)
        assert len(pruned) == 5
        full = set(index.candidate_ids("dpi"))
        assert set(pruned) <= full
        # demand larger than any host: the bucket floor empties the set
        assert index.candidate_ids("dpi", min_cpu=1e9) == []

    def test_domain_filter(self):
        substrate = _substrate()
        index = _synced(substrate)
        domain = substrate.infras[0].domain.value
        assert set(index.candidate_ids("dpi", domain=domain)) == \
            set(index.candidate_ids("dpi"))
        assert index.candidate_ids("dpi", domain="no-such-domain") == []

    def test_near_anchor_admits_neighbours_first(self):
        substrate = _substrate(size=40)
        index = _synced(substrate)
        anchor = substrate.infras[0].id
        near = index.candidate_ids("dpi", k=8, near=anchor)
        assert anchor in near  # the anchor supports dpi and has capacity

    def test_cow_ledger_does_not_touch_index(self):
        substrate = _substrate()
        index = _synced(substrate)
        service = _chain()
        ctx = MappingContext(service, substrate, index=index)
        assert ctx.index is index
        nf = service.nf("svc-nf0")
        host = substrate.infras[0]
        ctx.ledger.alloc_nf(nf, host.id)
        assert ctx.ledger.free(host.id).cpu < index.free[host.id].cpu
        assert index.free[host.id].cpu == host.resources.cpu
        assert index.verify(substrate) == []


class TestRegistry:
    def test_all_embedders_registered(self):
        assert {"greedy", "backtrack", "delay-aware",
                "balanced", "weighted", "hybrid"} <= set(embedder_names())

    def test_make_embedder_unknown_name(self):
        with pytest.raises(ValueError, match="registered"):
            make_embedder("no-such-embedder")

    def test_make_embedder_forwards_kwargs(self):
        embedder = make_embedder("greedy", candidate_k=7)
        assert embedder.candidate_k == 7

    def test_register_rejects_abstract(self):
        with pytest.raises(ValueError):
            register_embedder(Embedder)


class TestAllocators:
    @pytest.mark.parametrize("name", ["balanced", "weighted", "hybrid"])
    def test_allocators_produce_valid_mappings(self, name):
        substrate = _substrate(size=16)
        service = _chain(length=4)
        result = make_embedder(name).map(service, substrate)
        assert result.success, result.failure_reason
        assert result.embedder == name
        assert validate_mapping(service, substrate, result) == []

    @pytest.mark.parametrize("name", ["balanced", "weighted", "hybrid"])
    def test_allocators_work_with_index(self, name):
        substrate = _substrate(size=16)
        index = _synced(substrate)
        service = _chain(length=4)
        result = make_embedder(name).map(service, substrate, index=index)
        assert result.success, result.failure_reason
        assert validate_mapping(service, substrate, result) == []


class TestEmbedderAttribution:
    def test_result_carries_embedder_name(self):
        substrate = _substrate()
        service = _chain()
        for cls in (GreedyEmbedder, BacktrackingEmbedder,
                    DelayAwareEmbedder):
            result = cls().map(service, substrate)
            assert result.embedder == cls.name
