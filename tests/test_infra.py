"""Tests for shared infra pieces: chain tags, flow-rule translation."""


from repro.infra.flowprog import (
    flowrule_to_flowmod,
    program_infra_flows,
    remove_service_flows,
)
from repro.infra.tags import vlan_for_hop
from repro.netem import Network
from repro.nffg.model import Flowrule, NodeInfra
from repro.openflow import ControllerEndpoint, OpenFlowSwitch
from repro.openflow.messages import (
    ActionOutput,
    ActionPopVlan,
    ActionPushVlan,
)


class TestVlanForHop:
    def test_deterministic(self):
        assert vlan_for_hop("hop-a") == vlan_for_hop("hop-a")

    def test_in_valid_range(self):
        for hop_id in ("h1", "svc-hop3", "a" * 100, ""):
            vlan = vlan_for_hop(hop_id)
            assert 100 <= vlan < 4000 + 100

    def test_distinct_for_typical_ids(self):
        vlans = {vlan_for_hop(f"svc-hop{i}") for i in range(100)}
        assert len(vlans) >= 98  # collisions possible but rare


class TestFlowruleTranslation:
    def test_plain_output(self):
        rule = Flowrule(match="in_port=p1", action="output=p2")
        match, actions, priority = flowrule_to_flowmod(rule)
        assert match.in_port == "p1"
        assert actions == [ActionOutput("p2")]

    def test_flowclass_fields(self):
        rule = Flowrule(match="in_port=p1;flowclass=tp_dst=80,nw_proto=6",
                        action="output=p2")
        match, actions, _ = flowrule_to_flowmod(rule)
        assert match.tp_dst == 80 and match.nw_proto == 6

    def test_tag_match_becomes_vlan(self):
        rule = Flowrule(match="in_port=p1;tag=hop9", action="output=p2")
        match, _, _ = flowrule_to_flowmod(rule)
        assert match.dl_vlan == vlan_for_hop("hop9")

    def test_tag_action_pushes_vlan(self):
        rule = Flowrule(match="in_port=p1", action="output=p2;tag=hop9")
        _, actions, _ = flowrule_to_flowmod(rule)
        assert ActionPushVlan(vlan_for_hop("hop9")) in actions
        # push happens before output
        assert actions.index(ActionPushVlan(vlan_for_hop("hop9"))) < \
            actions.index(ActionOutput("p2"))

    def test_untag_action_pops_vlan(self):
        rule = Flowrule(match="in_port=p1;tag=hop9",
                        action="output=p2;untag")
        _, actions, _ = flowrule_to_flowmod(rule)
        assert ActionPopVlan() in actions

    def test_priority_scales_with_specificity(self):
        vague = Flowrule(match="in_port=p1", action="output=p2")
        precise = Flowrule(match="in_port=p1;flowclass=tp_dst=80,nw_src=1.2.3.4",
                           action="output=p2")
        _, _, p_vague = flowrule_to_flowmod(vague)
        _, _, p_precise = flowrule_to_flowmod(precise)
        assert p_precise > p_vague


class TestProgramInfraFlows:
    def _wired(self):
        net = Network()
        switch = net.add(OpenFlowSwitch("bb", net.simulator))
        controller = ControllerEndpoint("c", simulator=net.simulator)
        controller.connect_switch(switch)
        infra = NodeInfra("bb")
        port = infra.add_port("p1")
        infra.add_port("p2")
        return switch, controller, infra, port

    def test_installs_one_flowmod_per_rule(self):
        switch, controller, infra, port = self._wired()
        port.add_flowrule("in_port=p1", "output=p2", hop_id="h1")
        port.add_flowrule("in_port=p1;flowclass=tp_dst=80", "output=p2",
                          hop_id="h2")
        sent = program_infra_flows(controller, "bb", infra)
        assert sent == 2
        assert switch.flow_count() == 2

    def test_missing_in_port_defaults_to_rule_port(self):
        switch, controller, infra, port = self._wired()
        port.add_flowrule("flowclass=tp_dst=80", "output=p2")
        program_infra_flows(controller, "bb", infra)
        entry = switch.table.entries()[0]
        assert entry.match.in_port == "p1"

    def test_hop_filter(self):
        switch, controller, infra, port = self._wired()
        port.add_flowrule("in_port=p1", "output=p2", hop_id="keep")
        port.add_flowrule("in_port=p1;flowclass=tp_dst=1", "output=p2",
                          hop_id="skip")
        sent = program_infra_flows(controller, "bb", infra,
                                   hop_filter={"keep"})
        assert sent == 1

    def test_cookie_teardown(self):
        switch, controller, infra, port = self._wired()
        port.add_flowrule("in_port=p1", "output=p2", hop_id="h1")
        program_infra_flows(controller, "bb", infra, cookie="svc")
        assert switch.flow_count() == 1
        remove_service_flows(controller, "bb", "svc")
        assert switch.flow_count() == 0
