"""Tests for the command-line entry point."""

import pytest

from repro.cli.main import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestSubcommands:
    def test_demo_succeeds(self, capsys):
        assert main(["demo", "--packets", "2"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "2/2 delivered" in out
        assert "nf:demo-fw" in out

    def test_topology_ascii(self, capsys):
        assert main(["topology"]) == 0
        out = capsys.readouterr().out
        assert "emu-bb0" in out
        assert "un-bisbis" in out

    def test_topology_dot(self, capsys):
        assert main(["topology", "--format", "dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert '"cloud-bisbis"' in out

    def test_topology_scaling_flags(self, capsys):
        assert main(["topology", "--emu-switches", "4"]) == 0
        out = capsys.readouterr().out
        assert "emu-bb3" in out

    def test_catalog(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "firewall" in out and "dpi" in out

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "FIG1" in out and "ABL-1" in out
        assert "pytest benchmarks/" in out

    def test_scale_cycle(self, capsys):
        assert main(["scale", "--packets", "200"]) == 0
        out = capsys.readouterr().out
        assert "scale-out" in out
        assert "final level 1" in out

    def test_perf_prints_push_pipeline_counters(self, capsys):
        assert main(["perf", "--deploys", "2"]) == 0
        out = capsys.readouterr().out
        # the adapter lines surface the config-push accounting
        assert "push delta" in out
        # steady-state deploys go out as edit-config patches
        assert "push.delta" in out
        assert "push.bytes_saved" in out
        assert "dispatch.parallel" in out

    def test_perf_first_deploy_pushes_full(self, capsys):
        assert main(["perf", "--deploys", "1"]) == 0
        out = capsys.readouterr().out
        # first contact: every NETCONF domain ships the full config
        assert "push full" in out
        assert "push.full" in out
