"""Tests for the command-line entry point."""

import pytest

from repro.cli.main import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestSubcommands:
    def test_demo_succeeds(self, capsys):
        assert main(["demo", "--packets", "2"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "2/2 delivered" in out
        assert "nf:demo-fw" in out

    def test_topology_ascii(self, capsys):
        assert main(["topology"]) == 0
        out = capsys.readouterr().out
        assert "emu-bb0" in out
        assert "un-bisbis" in out

    def test_topology_dot(self, capsys):
        assert main(["topology", "--format", "dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert '"cloud-bisbis"' in out

    def test_topology_scaling_flags(self, capsys):
        assert main(["topology", "--emu-switches", "4"]) == 0
        out = capsys.readouterr().out
        assert "emu-bb3" in out

    def test_catalog(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "firewall" in out and "dpi" in out

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "FIG1" in out and "ABL-1" in out
        assert "pytest benchmarks/" in out

    def test_scale_cycle(self, capsys):
        assert main(["scale", "--packets", "200"]) == 0
        out = capsys.readouterr().out
        assert "scale-out" in out
        assert "final level 1" in out

    def test_perf_prints_push_pipeline_counters(self, capsys):
        assert main(["perf", "--deploys", "2"]) == 0
        out = capsys.readouterr().out
        # the adapter lines surface the config-push accounting
        assert "push delta" in out
        # steady-state deploys go out as edit-config patches
        assert "push.delta" in out
        assert "push.bytes_saved" in out
        assert "dispatch.parallel" in out

    def test_perf_first_deploy_pushes_full(self, capsys):
        assert main(["perf", "--deploys", "1"]) == 0
        out = capsys.readouterr().out
        # first contact: every NETCONF domain ships the full config
        assert "push full" in out
        assert "push.full" in out


class TestObservabilitySubcommands:
    def test_trace_prints_span_tree(self, capsys):
        assert main(["trace", "--deploys", "1"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("deploy ")
        assert "  deploy/push" in out
        for domain in ("emu", "sdn", "cloud", "un"):
            assert f"push/{domain}" in out

    def test_trace_writes_valid_chrome_json(self, capsys, tmp_path):
        from repro.obs.trace import validate_chrome_trace

        target = tmp_path / "trace.json"
        assert main(["trace", "--deploys", "1",
                     "--chrome", str(target)]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out and "Perfetto" in out
        import json

        data = json.loads(target.read_text(encoding="utf-8"))
        assert validate_chrome_trace(data) == []
        names = {event["name"] for event in data["traceEvents"]}
        assert {"deploy", "deploy/push", "push/emu"} <= names

    def test_trace_leaves_tracing_disabled(self):
        from repro import obs

        assert main(["trace", "--deploys", "1"]) == 0
        assert not obs.enabled()

    def test_metrics_prints_prometheus_percentiles(self, capsys):
        assert main(["metrics", "--deploys", "2"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_deploy_latency_s histogram" in out
        assert 'repro_deploy_latency_s_bucket{le="+Inf"} 2' in out
        for quantile in ("p50", "p95", "p99"):
            assert f"repro_deploy_latency_s_{quantile} " in out
        assert 'repro_push_latency_s_count{domain="emu"}' in out
        assert "repro_cal_services_deployed 2" in out

    def test_events_replays_jsonl(self, capsys):
        import json

        assert main(["events", "--deploys", "1"]) == 0
        out = capsys.readouterr().out
        events = [json.loads(line) for line in out.splitlines() if line]
        types = {event["type"] for event in events}
        assert "deploy" in types and "push" in types
        assert all("seq" in event and "ts_ms" in event
                   for event in events)

    def test_events_limit(self, capsys):
        import json

        assert main(["events", "--deploys", "1", "--limit", "3"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line]
        assert len(lines) == 3
        assert json.loads(lines[-1])["type"] == "deploy"

    def test_events_follow_streams_live(self, capsys):
        import json

        assert main(["events", "--deploys", "1", "--follow"]) == 0
        out = capsys.readouterr().out
        events = [json.loads(line) for line in out.splitlines() if line]
        assert any(event["type"] == "deploy" for event in events)

    def test_events_with_faults_shows_fault_stream(self, capsys):
        import json

        assert main(["events", "--deploys", "2", "--faults",
                     "--seed", "3"]) == 0
        out = capsys.readouterr().out
        types = {json.loads(line)["type"]
                 for line in out.splitlines() if line}
        assert "fault.injected" in types
