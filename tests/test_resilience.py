"""Tests for the failure model: fault injection, retry/backoff,
per-domain circuit breakers, reconciliation, and domain-outage
evacuation through ``heal()``.
"""

import pytest

from repro import perf
from repro.emu import EmulatedDomain
from repro.netem import Network
from repro.nffg import NFFG, NFFGBuilder, ResourceVector
from repro.nffg.model import DomainType
from repro.orchestration import (
    DirectDomainAdapter,
    DomainUnreachable,
    EmuDomainAdapter,
    EscapeOrchestrator,
)
from repro.resilience import (
    BreakerState,
    CircuitBreaker,
    DomainDown,
    FaultError,
    FaultKind,
    FaultPlan,
    FaultTimeout,
    FaultyAdapter,
    RetryPolicy,
    TransientFault,
    is_transient,
)


# -- helpers ----------------------------------------------------------------


def _direct_view(domain_id: str, sap_id: str,
                 supported=("firewall",)) -> NFFG:
    """A one-BiS-BiS domain view with its own SAP."""
    view = NFFG(id=domain_id)
    infra = view.add_infra(
        f"{domain_id}-bb0", domain=DomainType.INTERNAL,
        resources=ResourceVector(cpu=8.0, mem=1024.0, storage=64.0,
                                 bandwidth=1000.0, delay=0.1),
        supported_types=list(supported))
    sap = view.add_sap(sap_id)
    port = infra.add_port(f"sap-{sap_id}")
    view.add_link(sap_id, list(sap.ports)[0], infra.id, port.id,
                  bandwidth=1000.0, delay=0.0)
    return view


def _one_hop_service(service_id: str, sap_id: str) -> "NFFG":
    return (NFFGBuilder(service_id).sap(sap_id)
            .nf(f"{service_id}-nf", "firewall")
            .chain(sap_id, f"{service_id}-nf", bandwidth=1.0).build())


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# -- RetryPolicy ------------------------------------------------------------


class TestRetryPolicy:
    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientFault("blip")
            return "done"

        outcome = RetryPolicy(max_attempts=3).run(flaky)
        assert outcome.success
        assert outcome.value == "done"
        assert outcome.attempts == 3
        assert outcome.backoff_s > 0.0

    def test_non_transient_not_retried(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise KeyError("unknown switch")

        outcome = RetryPolicy(max_attempts=5).run(broken)
        assert not outcome.success
        assert calls["n"] == 1
        assert outcome.attempts == 1
        assert isinstance(outcome.error, KeyError)

    def test_gives_up_after_max_attempts(self):
        outcome = RetryPolicy(max_attempts=3).run(
            lambda: (_ for _ in ()).throw(TransientFault("always")))
        assert not outcome.success
        assert outcome.attempts == 3

    def test_deadline_stops_retrying(self):
        clock = _FakeClock()

        def failing():
            clock.advance(10.0)
            raise TransientFault("slow failure")

        policy = RetryPolicy(max_attempts=10, deadline_s=25.0, clock=clock)
        outcome = policy.run(failing)
        assert not outcome.success
        assert outcome.attempts == 3  # 10s + 10s + 10s > 25s budget

    def test_backoff_grows_and_is_seeded(self):
        policy = RetryPolicy(max_attempts=4, backoff_base_s=0.1,
                             backoff_multiplier=2.0, backoff_max_s=10.0,
                             jitter=0.1, seed=42)
        sleeps_a, sleeps_b = [], []
        for sleeps in (sleeps_a, sleeps_b):
            trial = RetryPolicy(**{**policy.__dict__,
                                   "sleep": sleeps.append})
            trial.run(lambda: (_ for _ in ()).throw(TransientFault("x")))
        assert sleeps_a == sleeps_b  # same seed, same jitter
        assert len(sleeps_a) == 3
        assert sleeps_a[0] < sleeps_a[1] < sleeps_a[2]  # exponential
        assert all(0.9 * 0.1 * 2 ** i <= s <= 1.1 * 0.1 * 2 ** i
                   for i, s in enumerate(sleeps_a))

    def test_transient_classification(self):
        assert is_transient(TransientFault("x"))
        assert is_transient(FaultTimeout("x"))
        assert is_transient(TimeoutError("x"))
        assert is_transient(ConnectionError("x"))
        assert not is_transient(DomainDown("x"))
        assert not is_transient(FaultError("x"))
        assert not is_transient(KeyError("x"))


# -- FaultPlan --------------------------------------------------------------


class TestFaultPlan:
    def test_count_and_after(self):
        plan = FaultPlan().add("dom", "push", kind=FaultKind.ERROR,
                               count=2, after=1)
        plan.before("dom", "push")  # call 1: skipped by `after`
        with pytest.raises(TransientFault):
            plan.before("dom", "push")
        with pytest.raises(TransientFault):
            plan.before("dom", "push")
        plan.before("dom", "push")  # exhausted
        assert plan.exhausted()
        assert len(plan.history) == 2

    def test_op_prefix_and_wildcard_matching(self):
        plan = FaultPlan().add("dom", "rpc", kind=FaultKind.DROP, count=1)
        plan.before("dom", "push")  # no match
        with pytest.raises(FaultTimeout):
            plan.before("dom", "rpc:commit")
        wild = FaultPlan().add("*", "*", kind=FaultKind.ERROR, count=1)
        with pytest.raises(TransientFault):
            wild.before("anything", "get_view")

    def test_crash_and_clear(self):
        plan = FaultPlan().crash("dom")
        with pytest.raises(DomainDown):
            plan.before("dom", "push")
        with pytest.raises(DomainDown):
            plan.before("dom", "get_view")
        assert not plan.exhausted()
        plan.clear("dom")
        plan.before("dom", "push")  # revived
        assert plan.exhausted()

    def test_crash_spec_persists_until_cleared(self):
        plan = FaultPlan().add("dom", "push", kind=FaultKind.CRASH)
        with pytest.raises(DomainDown):
            plan.before("dom", "push")
        # the crash latched: even get_view now fails
        with pytest.raises(DomainDown):
            plan.before("dom", "get_view")

    def test_delay_accumulates_virtually(self):
        plan = FaultPlan().add("dom", "push", kind=FaultKind.DELAY,
                               count=2, delay_s=0.5)
        assert plan.before("dom", "push") == 0.5
        assert plan.before("dom", "push") == 0.5
        assert plan.before("dom", "push") == 0.0
        assert plan.virtual_delay_s == 1.0

    def test_random_plan_deterministic(self):
        plan_a = FaultPlan.random_plan(7, ["dom-a", "dom-b"], rate=0.3)
        plan_b = FaultPlan.random_plan(7, ["dom-a", "dom-b"], rate=0.3)
        schedule_a = [(s.domain, s.op, s.kind, s.after)
                      for s in plan_a.specs]
        schedule_b = [(s.domain, s.op, s.kind, s.after)
                      for s in plan_b.specs]
        assert schedule_a == schedule_b
        assert schedule_a  # rate 0.3 over 50 calls: something fires
        different = FaultPlan.random_plan(8, ["dom-a", "dom-b"], rate=0.3)
        assert schedule_a != [(s.domain, s.op, s.kind, s.after)
                              for s in different.specs]


# -- CircuitBreaker ---------------------------------------------------------


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker("dom", failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker("dom", failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_after_recovery_window(self):
        clock = _FakeClock()
        breaker = CircuitBreaker("dom", failure_threshold=1,
                                 recovery_time_s=30.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(31.0)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()  # the probe goes through
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_failed_probe_reopens(self):
        clock = _FakeClock()
        breaker = CircuitBreaker("dom", failure_threshold=1,
                                 recovery_time_s=10.0, clock=clock)
        breaker.record_failure()
        clock.advance(11.0)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2

    def test_force_half_open(self):
        breaker = CircuitBreaker("dom", failure_threshold=1,
                                 recovery_time_s=1e9)
        breaker.record_failure()
        assert not breaker.allow()
        breaker.force_half_open()
        assert breaker.state is BreakerState.HALF_OPEN


# -- retries through the adapter stack -------------------------------------


def _single_domain_escape(plan=None, **policy_kwargs):
    escape = EscapeOrchestrator("esc")
    adapter = DirectDomainAdapter("dom", view=_direct_view("dom", "sapA"))
    if plan is not None:
        adapter = FaultyAdapter(adapter, plan)
    if policy_kwargs:
        adapter.retry_policy = RetryPolicy(**policy_kwargs)
    escape.add_domain(adapter)
    return escape, adapter


class TestAdapterRetries:
    def test_deploy_succeeds_through_two_transient_push_failures(self):
        """The acceptance scenario: a seeded FaultPlan injects two
        transient push faults; the default retry budget absorbs them."""
        plan = FaultPlan(seed=3).add("dom", "push",
                                     kind=FaultKind.ERROR, count=2)
        escape, _ = _single_domain_escape(plan)
        report = escape.deploy(_one_hop_service("svc", "sapA"),
                               wait_activation=False)
        assert report.success, report.error
        assert report.resolved_outcome() == "success"
        push = report.adapters[0]
        assert push.attempts == 3
        assert push.backoff_s > 0.0
        assert plan.exhausted()

    def test_retries_exhausted_fails_and_rolls_back(self):
        plan = FaultPlan().add("dom", "push",
                               kind=FaultKind.ERROR, count=10)
        escape, adapter = _single_domain_escape(plan)
        report = escape.deploy(_one_hop_service("svc", "sapA"),
                               wait_activation=False)
        assert not report.success
        assert report.adapters[0].attempts == 3  # default budget
        assert escape.deployed_services() == []

    def test_fatal_fault_not_retried(self):
        plan = FaultPlan().add("dom", "push", kind=FaultKind.FATAL)
        escape, _ = _single_domain_escape(plan)
        report = escape.deploy(_one_hop_service("svc", "sapA"),
                               wait_activation=False)
        assert not report.success
        assert report.adapters[0].attempts == 1

    def test_fetch_view_retries_then_raises_unreachable(self):
        plan = FaultPlan().add("dom", "get_view",
                               kind=FaultKind.DROP, count=1)
        adapter = FaultyAdapter(
            DirectDomainAdapter("dom", view=_direct_view("dom", "sapA")),
            plan)
        view = adapter.fetch_view()  # one drop absorbed by retry
        assert view.infras
        plan.crash("dom")
        with pytest.raises(DomainUnreachable):
            adapter.fetch_view()

    def test_netconf_hook_faults_are_retried(self):
        """Faults injected mid-RPC (through NetconfClient.fault_hook)
        surface as push failures and are absorbed by the retry."""
        net = Network()
        emu = EmulatedDomain("emu", net, node_ids=["bb0", "bb1"],
                             links=[("bb0", "bb1")])
        emu.add_sap("sap1", "bb0")
        emu.add_sap("sap2", "bb1")
        escape = EscapeOrchestrator("esc", simulator=net.simulator)
        adapter = escape.add_domain(EmuDomainAdapter("emu", emu))
        plan = FaultPlan(seed=1).add("emu", "rpc:commit",
                                     kind=FaultKind.ERROR, count=2)
        adapter.client.fault_hook = plan.netconf_hook("emu")
        service = (NFFGBuilder("svc").sap("sap1").sap("sap2")
                   .nf("svc-nf", "firewall")
                   .chain("sap1", "svc-nf", "sap2", bandwidth=1.0).build())
        report = escape.deploy(service)
        assert report.success, report.error
        assert report.adapters[0].attempts == 3
        assert plan.exhausted()


# -- breaker integration through the CAL ------------------------------------


def _two_domain_escape(threshold=1):
    escape = EscapeOrchestrator("esc")
    escape.cal.breaker_failure_threshold = threshold
    plan = FaultPlan()
    adapter_a = escape.add_domain(
        DirectDomainAdapter("dom-a", view=_direct_view("dom-a", "sapA")))
    adapter_b = escape.add_domain(FaultyAdapter(
        DirectDomainAdapter("dom-b", view=_direct_view("dom-b", "sapB")),
        plan))
    return escape, plan, adapter_a, adapter_b


class TestCircuitBreakerInCAL:
    def test_breaker_trips_and_push_all_skips(self):
        escape, plan, _, _ = _two_domain_escape(threshold=1)
        report = escape.deploy(_one_hop_service("b1", "sapB"),
                               wait_activation=False)
        assert report.success
        plan.crash("dom-b")
        down = escape.deploy(_one_hop_service("b2", "sapB"),
                             wait_activation=False)
        assert not down.success  # hard failure, rolled back
        breaker = escape.cal.breakers["dom-b"]
        assert breaker.state is BreakerState.OPEN
        # next fan-out skips the tripped domain instead of hammering it
        reports = escape.cal.push_all()
        by_domain = {r.domain: r for r in reports}
        assert by_domain["dom-b"].skipped
        assert "circuit open" in by_domain["dom-b"].error
        assert by_domain["dom-a"].success
        assert "dom-b" in escape.cal.pending_reconciliation()
        # dom-b saw pushes only while the breaker admitted them
        assert plan.history[-1].kind is FaultKind.CRASH

    def test_deploy_on_healthy_domain_unaffected_by_open_breaker(self):
        escape, plan, _, _ = _two_domain_escape(threshold=1)
        plan.crash("dom-b")
        escape.cal.push_all()  # trips dom-b's breaker
        assert escape.cal.breakers["dom-b"].state is BreakerState.OPEN
        report = escape.deploy(_one_hop_service("a1", "sapA"),
                               wait_activation=False)
        assert report.success
        assert report.resolved_outcome() == "success"  # dom-b irrelevant

    def test_deploy_touching_open_domain_is_degraded(self):
        escape, plan, _, adapter_b = _two_domain_escape(threshold=1)
        warm = escape.deploy(_one_hop_service("warm", "sapB"),
                             wait_activation=False)
        assert warm.success
        plan.crash("dom-b")
        escape.cal.push_all()  # trips the breaker
        report = escape.deploy(_one_hop_service("b2", "sapB"),
                               wait_activation=False)
        assert report.success  # deployed in the books...
        assert report.resolved_outcome() == "degraded"  # ...not on the wire
        assert "dom-b" in escape.cal.pending_reconciliation()

    def test_reconcile_replays_queued_config_when_domain_returns(self):
        escape, plan, _, adapter_b = _two_domain_escape(threshold=1)
        assert escape.deploy(_one_hop_service("b1", "sapB"),
                             wait_activation=False).success
        plan.crash("dom-b")
        escape.cal.push_all()
        escape.cal.push_all()  # skipped: breaker open
        installs_while_down = adapter_b.installs
        plan.clear("dom-b")
        reports = escape.cal.reconcile(force_probe=True)
        assert [r.domain for r in reports] == ["dom-b"]
        assert reports[0].success
        assert escape.cal.pending_reconciliation() == set()
        assert escape.cal.breakers["dom-b"].state is BreakerState.CLOSED
        assert adapter_b.installs == installs_while_down + 1
        # the replayed cumulative config still contains the service
        assert adapter_b.inner.installed[-1].nfs

    def test_reconcile_without_probe_respects_open_breaker(self):
        escape, plan, _, _ = _two_domain_escape(threshold=1)
        plan.crash("dom-b")
        escape.cal.push_all()
        assert escape.cal.reconcile() == []  # breaker still open
        assert "dom-b" in escape.cal.pending_reconciliation()


# -- rollback / teardown reporting (satellite bugfixes) ----------------------


class TestFailureReporting:
    def test_failed_deploy_records_rollback_reports(self):
        escape, plan, _, _ = _two_domain_escape(threshold=5)
        plan.add("dom-b", "push", kind=FaultKind.FATAL, count=1)
        report = escape.deploy(_one_hop_service("b1", "sapB"),
                               wait_activation=False)
        assert not report.success
        assert report.resolved_outcome() == "failed"
        assert report.rollback  # reconciliation pushes were recorded
        assert {r.domain for r in report.rollback} == {"dom-a", "dom-b"}
        assert all(r.success for r in report.rollback)
        assert report.rollback_failures() == []

    def test_failed_rollback_is_surfaced_not_swallowed(self):
        escape, plan, _, _ = _two_domain_escape(threshold=5)
        # first push fails fatally, and so does the rollback push
        plan.add("dom-b", "push", kind=FaultKind.FATAL, count=2)
        report = escape.deploy(_one_hop_service("b1", "sapB"),
                               wait_activation=False)
        assert not report.success
        assert report.rollback_failures()
        assert "rollback incomplete" in report.error
        assert "dom-b" in report.error

    def test_teardown_reports_push_failures(self):
        escape, plan, _, _ = _two_domain_escape(threshold=5)
        assert escape.deploy(_one_hop_service("b1", "sapB"),
                             wait_activation=False).success
        plan.crash("dom-b")
        report = escape.teardown("b1")
        assert not report.success  # stale state left behind
        assert report.resolved_outcome() == "failed"
        assert "stale state" in report.error
        assert "dom-b" in report.error
        # the service is out of the books regardless
        assert escape.deployed_services() == []

    def test_teardown_clean_path_still_truthy(self):
        escape, plan, _, _ = _two_domain_escape()
        assert escape.deploy(_one_hop_service("b1", "sapB"),
                             wait_activation=False).success
        report = escape.teardown("b1")
        assert report  # boolean callers keep working
        assert report.resolved_outcome() == "success"
        assert not escape.teardown("ghost")

    def test_failed_update_push_restores_previous_version(self):
        escape, plan, _, adapter_b = _two_domain_escape(threshold=5)
        assert escape.deploy(_one_hop_service("b1", "sapB"),
                             wait_activation=False).success
        plan.add("dom-b", "push", kind=FaultKind.FATAL, count=1)
        updated = (NFFGBuilder("b1").sap("sapB")
                   .nf("b1-nf", "firewall").nf("b1-fw2", "firewall")
                   .chain("sapB", "b1-nf", "b1-fw2", bandwidth=1.0).build())
        report = escape.update(updated)
        assert not report.success
        assert "previous version restored" in report.error
        assert report.rollback
        assert escape.deployed_services() == ["b1"]
        # the old single-NF version is back on the domain
        assert [nf.id for nf in adapter_b.inner.installed[-1].nfs] \
            == ["b1-nf"]


# -- domain-outage evacuation through heal() ---------------------------------


@pytest.fixture
def evacuation_testbed():
    """Two stitched emu providers; the NF lands in east first (west
    can't host it yet), then east crashes and west takes over."""
    net = Network()
    west = EmulatedDomain("west", net, node_ids=["west-bb0", "west-bb1"],
                          links=[("west-bb0", "west-bb1")])
    east = EmulatedDomain("east", net, node_ids=["east-bb0", "east-bb1"],
                          links=[("east-bb0", "east-bb1")])
    west.add_sap("sap1", "west-bb0")
    west.add_sap("sap2", "west-bb1")
    (w_node, w_port) = west.add_handoff("peer", "west-bb1")
    (e_node, e_port) = east.add_handoff("peer", "east-bb0")
    net.connect(w_node, w_port, e_node, e_port,
                bandwidth_mbps=1000.0, delay_ms=2.0)
    west.supported_types = ["monitor"]  # east must host the firewall
    escape = EscapeOrchestrator("esc", simulator=net.simulator)
    escape.cal.breaker_failure_threshold = 1
    plan = FaultPlan()
    escape.add_domain(EmuDomainAdapter("west", west))
    escape.add_domain(FaultyAdapter(EmuDomainAdapter("east", east), plan))
    return net, west, east, escape, plan


class TestDomainOutageEvacuation:
    def test_heal_evacuates_services_off_a_dead_domain(
            self, evacuation_testbed):
        net, west, east, escape, plan = evacuation_testbed
        service = (NFFGBuilder("svc").sap("sap1").sap("sap2")
                   .nf("svc-nf", "firewall")
                   .chain("sap1", "svc-nf", "sap2", bandwidth=1.0).build())
        report = escape.deploy(service)
        assert report.success, report.error
        assert report.mapping.nf_placement["svc-nf"].startswith("east")

        # east dies; west becomes able to host the NF (capacity exists)
        west.supported_types = ["monitor", "firewall"]
        plan.crash("east")
        escape.cal.push_all()  # trips east's breaker (threshold 1)
        assert escape.cal.breakers["east"].state is BreakerState.OPEN

        reports = escape.heal()
        assert set(reports) == {"svc"}
        healed = reports["svc"]
        assert healed.success, healed.error
        assert healed.mapping.nf_placement["svc-nf"].startswith("west")
        # east is quarantined: its skipped report is not attached
        # (it is not relevant to the evacuated placement)
        assert all(r.domain == "west" for r in healed.adapters)
        assert all(r.success for r in healed.adapters)
        assert healed.resolved_outcome() == "success"
        assert perf.snapshot("resilience.heal")

    def test_heal_reports_unevacuable_service(self, evacuation_testbed):
        net, west, east, escape, plan = evacuation_testbed
        service = (NFFGBuilder("svc").sap("sap1").sap("sap2")
                   .nf("svc-nf", "firewall")
                   .chain("sap1", "svc-nf", "sap2", bandwidth=1.0).build())
        assert escape.deploy(service).success
        # west still cannot host firewalls: nowhere to evacuate to
        plan.crash("east")
        escape.cal.push_all()
        reports = escape.heal()
        assert not reports["svc"].success
        assert "heal failed" in reports["svc"].error

    def test_heal_attaches_only_relevant_reports(self, evacuation_testbed):
        """A healed west-only service gets west's push report — not
        east's, and a service that failed to re-map gets none."""
        net, west, east, escape, plan = evacuation_testbed
        west.supported_types = ["monitor", "forwarder"]
        west_only = (NFFGBuilder("local").sap("sap1").sap("sap2")
                     .nf("local-nf", "monitor")
                     .chain("sap1", "local-nf", "sap2",
                            bandwidth=1.0).build())
        cross = (NFFGBuilder("cross").sap("sap1").sap("sap2")
                 .nf("cross-nf", "firewall")
                 .chain("sap1", "cross-nf", "sap2", bandwidth=1.0).build())
        assert escape.deploy(west_only).success
        report = escape.deploy(cross)
        assert report.success, report.error
        assert report.mapping.nf_placement["cross-nf"].startswith("east")
        plan.crash("east")
        escape.cal.push_all()
        reports = escape.heal()
        # cross is stranded (east gone, west can't host firewalls);
        # local is re-mapped because its east-crossing... it is not
        # broken at all unless its routes touched east — so only cross
        # appears, with no adapter reports attached.
        assert "cross" in reports
        assert not reports["cross"].success
        assert reports["cross"].adapters == []


# -- fault-free paths stay clean ---------------------------------------------


class TestNoOverheadWhenHealthy:
    def test_no_resilience_counters_on_clean_deploy(self):
        perf.reset("resilience.")
        escape, _ = _single_domain_escape()
        report = escape.deploy(_one_hop_service("svc", "sapA"),
                               wait_activation=False)
        assert report.success
        assert report.adapters[0].attempts == 1
        assert report.adapters[0].backoff_s == 0.0
        assert perf.snapshot("resilience.") == {}
        assert escape.cal.pending_reconciliation() == set()
        assert all(b.state is BreakerState.CLOSED
                   for b in escape.cal.breakers.values())
