"""Tests for constrained substrate path finding."""

import pytest

from repro.mapping import MappingError, ResourceLedger
from repro.mapping.paths import find_route, path_delay_estimate, route_or_none
from repro.nffg import NFFG, ResourceVector
from repro.nffg.builder import linear_substrate


@pytest.fixture
def chain4():
    return linear_substrate(4, id="c", link_bw=100.0, link_delay=2.0)


def test_shortest_path_found(chain4):
    ledger = ResourceLedger(chain4)
    route = find_route(chain4, ledger, "h", "c-bb0", "c-bb3", bandwidth=10.0)
    assert route.infra_path == ["c-bb0", "c-bb1", "c-bb2", "c-bb3"]
    assert len(route.link_ids) == 3


def test_delay_includes_nodes_and_links(chain4):
    ledger = ResourceLedger(chain4)
    route = find_route(chain4, ledger, "h", "c-bb0", "c-bb1", bandwidth=0.0)
    # node delays 0.1 + 0.1 and link delay 2.0
    assert route.delay == pytest.approx(2.2)


def test_same_node_route(chain4):
    ledger = ResourceLedger(chain4)
    route = find_route(chain4, ledger, "h", "c-bb1", "c-bb1", bandwidth=5.0)
    assert route.infra_path == ["c-bb1"]
    assert route.link_ids == []
    assert route.delay == pytest.approx(0.1)


def test_bandwidth_constraint_blocks(chain4):
    ledger = ResourceLedger(chain4)
    with pytest.raises(MappingError):
        find_route(chain4, ledger, "h", "c-bb0", "c-bb3", bandwidth=150.0)


def test_ledger_reservations_respected(chain4):
    ledger = ResourceLedger(chain4)
    first = find_route(chain4, ledger, "h1", "c-bb0", "c-bb3", bandwidth=60.0)
    ledger.alloc_links(first.link_ids, 60.0)
    assert route_or_none(chain4, ledger, "h2", "c-bb0", "c-bb3",
                         bandwidth=60.0) is None
    ledger.release_links(first.link_ids, 60.0)
    assert route_or_none(chain4, ledger, "h2", "c-bb0", "c-bb3",
                         bandwidth=60.0) is not None


def test_max_delay_constraint(chain4):
    ledger = ResourceLedger(chain4)
    assert route_or_none(chain4, ledger, "h", "c-bb0", "c-bb3",
                         bandwidth=0.0, max_delay=1.0) is None
    assert route_or_none(chain4, ledger, "h", "c-bb0", "c-bb3",
                         bandwidth=0.0, max_delay=10.0) is not None


def test_prefers_lower_delay_path():
    view = NFFG(id="tri")
    for name in ("a", "b", "c"):
        view.add_infra(name, resources=ResourceVector(cpu=1, delay=0.0))
    for src, dst, delay in (("a", "b", 10.0), ("a", "c", 1.0),
                            ("c", "b", 1.0)):
        port_s = view.infra(src).add_port(f"to-{dst}")
        port_d = view.infra(dst).add_port(f"to-{src}")
        view.add_link(src, port_s.id, dst, port_d.id, bandwidth=100.0,
                      delay=delay)
    ledger = ResourceLedger(view)
    route = find_route(view, ledger, "h", "a", "b", bandwidth=1.0)
    assert route.infra_path == ["a", "c", "b"]


def test_unreachable_raises():
    view = NFFG(id="iso")
    view.add_infra("a", resources=ResourceVector())
    view.add_infra("b", resources=ResourceVector())
    ledger = ResourceLedger(view)
    with pytest.raises(MappingError):
        find_route(view, ledger, "h", "a", "b", bandwidth=0.0)


def test_path_delay_estimate(chain4):
    assert path_delay_estimate(chain4, "c-bb0", "c-bb3") == pytest.approx(
        3 * 2.0 + 4 * 0.1)
    view = NFFG(id="iso2")
    view.add_infra("a")
    view.add_infra("b")
    assert path_delay_estimate(view, "a", "b") == float("inf")
