"""Tests for the Universal Node domain."""

import pytest

from repro.mapping import GreedyEmbedder
from repro.netconf import NetconfClient, NetconfError
from repro.netem import Network
from repro.netem.packet import tcp_packet
from repro.nffg import NFFGBuilder
from repro.nffg.serialize import nffg_to_dict
from repro.openflow.channel import ControlChannel
from repro.sim import Simulator
from repro.un import (
    ContainerRuntime,
    ContainerState,
    UNLocalOrchestrator,
    UniversalNodeDomain,
)


class TestContainerRuntime:
    def test_run_reaches_running_after_delay(self):
        sim = Simulator()
        runtime = ContainerRuntime(sim, start_delay_ms=250.0)
        container = runtime.run("fw", "firewall")
        assert container.state == ContainerState.CREATED
        sim.run()
        assert container.state == ContainerState.RUNNING
        assert container.process is not None
        assert container.started_at == 250.0

    def test_on_running_callback(self):
        sim = Simulator()
        runtime = ContainerRuntime(sim)
        container = runtime.run("fw", "firewall")
        seen = []
        container.on_running(lambda c: seen.append(c.name))
        sim.run()
        assert seen == ["fw"]

    def test_capacity_enforced(self):
        sim = Simulator()
        runtime = ContainerRuntime(sim, cpu_capacity=2.0)
        runtime.run("a", "firewall", cpu=1.5)
        with pytest.raises(RuntimeError):
            runtime.run("b", "firewall", cpu=1.0)

    def test_stop_releases_capacity(self):
        sim = Simulator()
        runtime = ContainerRuntime(sim, cpu_capacity=2.0)
        container = runtime.run("a", "firewall", cpu=1.5)
        sim.run()
        runtime.stop(container.id)
        assert runtime.cpu_used == 0.0
        assert not container.process.running

    def test_unknown_image_rejected(self):
        sim = Simulator()
        runtime = ContainerRuntime(sim)
        with pytest.raises(KeyError):
            runtime.run("x", "not-an-image")

    def test_by_name(self):
        sim = Simulator()
        runtime = ContainerRuntime(sim)
        container = runtime.run("fw", "firewall")
        assert runtime.by_name("fw") is container
        runtime.stop(container.id)
        assert runtime.by_name("fw") is None


@pytest.fixture
def un():
    net = Network()
    domain = UniversalNodeDomain("un", net, container_start_delay_ms=100.0)
    domain.add_sap("in")
    domain.add_sap("out")
    orchestrator = UNLocalOrchestrator(domain)
    channel = ControlChannel("mgmt")
    orchestrator.bind(channel)
    client = NetconfClient("parent", channel)
    client.hello()
    return net, domain, orchestrator, client


def _install_for(domain):
    view = domain.domain_view()
    service = (NFFGBuilder("svc").sap("in").sap("out")
               .nf("fw", "firewall")
               .chain("in", "fw", "out", bandwidth=10.0).build())
    result = GreedyEmbedder().map(service, view)
    assert result.success, result.failure_reason
    return result.mapped


class TestUNDomain:
    def test_view_is_single_bisbis(self, un):
        _, domain, _, _ = un
        view = domain.domain_view()
        assert len(view.infras) == 1
        assert view.infras[0].id == "un-bisbis"
        assert view.infras[0].resources.delay <= 0.01  # DPDK-class

    def test_deploy_starts_container(self, un):
        net, domain, orchestrator, client = un
        client.edit_config({"nffg": nffg_to_dict(_install_for(domain))},
                           operation="replace")
        client.commit()
        assert not orchestrator.all_containers_running()
        net.run()
        assert orchestrator.all_containers_running()
        containers = client.rpc("list-containers")
        assert containers[0]["image"] == "firewall"
        assert "fw" in domain.lsi.attached_nfs()

    def test_dataplane_through_container(self, un):
        net, domain, orchestrator, client = un
        client.edit_config({"nffg": nffg_to_dict(_install_for(domain))},
                           operation="replace")
        client.commit()
        net.run()
        h_in, h_out = domain.sap_hosts["in"], domain.sap_hosts["out"]
        h_in.send(tcp_packet(h_in.ip, h_out.ip, tp_dst=80))
        net.run()
        assert len(h_out.received) == 1
        assert "nf:fw" in h_out.received[0].trace
        assert "un-lsi" in h_out.received[0].trace

    def test_teardown_stops_container(self, un):
        net, domain, orchestrator, client = un
        client.edit_config({"nffg": nffg_to_dict(_install_for(domain))},
                           operation="replace")
        client.commit()
        net.run()
        client.edit_config(None, operation="delete")
        client.commit()
        assert domain.runtime.running() == []
        assert domain.lsi.attached_nfs() == []
        assert domain.lsi.flow_count() == 0

    def test_validation_rejects_overload(self, un):
        net, domain, orchestrator, client = un
        view = domain.domain_view()
        view.infras[0].resources = view.infras[0].resources.scaled(100.0)
        service = (NFFGBuilder("svc").sap("in").sap("out")
                   .nf("big", "firewall", cpu=1000.0)
                   .chain("in", "big", "out").build())
        result = GreedyEmbedder().map(service, view)
        assert result.success
        client.edit_config({"nffg": nffg_to_dict(result.mapped)},
                           operation="replace")
        with pytest.raises(NetconfError):
            client.commit()

    def test_container_start_faster_than_cloud_vm(self, un):
        """The UN's pitch: container NF activation beats VM boots."""
        net, domain, orchestrator, client = un
        client.edit_config({"nffg": nffg_to_dict(_install_for(domain))},
                           operation="replace")
        before = net.simulator.now
        client.commit()
        net.run()
        activation = (max(c.started_at for c in domain.runtime.running())
                      - before)
        assert activation <= 150.0  # vs 1500 ms default VM boot
