"""Every ``examples/`` scenario must be lint-clean.

Reconstructs the exact service graphs the example scripts build (plus
the testbed resource views they deploy onto), serializes each through
the JSON wire format and runs the real ``repro lint`` CLI over it —
the demos must never ship a graph the pre-deploy gate would reject.
"""

import json

import pytest

from repro.cli.main import main
from repro.nffg import NFFGBuilder
from repro.nffg.serialize import nffg_to_dict
from repro.service import ServiceRequestBuilder
from repro.topo import build_emulated_testbed, build_reference_multidomain


def quickstart_sg():
    return (ServiceRequestBuilder("quickstart")
            .sap("sap1").sap("sap2")
            .nf("q-fw", "firewall").nf("q-nat", "nat")
            .chain("sap1", "q-fw", "q-nat", "sap2", bandwidth=10.0)
            .delay_requirement("sap1", "sap2", max_delay=80.0)
            .build().sg)


def multidomain_tenant_a_sg():
    return (ServiceRequestBuilder("tenant-a")
            .sap("sap1").sap("sap3")
            .nf("a-dpi", "dpi", cpu=6.0, mem=2048.0)
            .chain("sap1", "a-dpi", "sap3", bandwidth=20.0,
                   flowclass="tp_dst=80")
            .build().sg)


def multidomain_tenant_b_sg():
    return (ServiceRequestBuilder("tenant-b")
            .sap("sap1").sap("sap2")
            .nf("b-fw", "firewall", cpu=1.0)
            .chain("sap1", "b-fw", "sap2", bandwidth=5.0,
                   flowclass="tp_dst=5353")
            .build().sg)


def elastic_web_sg(level):
    builder = (ServiceRequestBuilder("web")
               .sap("sap1").sap("sap2")
               .nf("web-lb", "loadbalancer"))
    previous = "web-lb"
    builder.hop("sap1", previous, bandwidth=10.0, flowclass="tp_dst=80")
    for index in range(level):
        worker = f"web-w{index}"
        builder.nf(worker, "webserver", cpu=2.0, mem=1024.0)
        builder.hop(previous, worker, bandwidth=10.0)
        previous = worker
    builder.hop(previous, "sap2", bandwidth=10.0)
    return builder.build().sg


def recursive_vcpe_sg():
    return (ServiceRequestBuilder("vcpe-recursive")
            .sap("sap1").sap("sap2")
            .nf("cpe", "vCPE", cpu=2.0, mem=256.0, storage=2.0)
            .chain("sap1", "cpe", "sap2", bandwidth=5.0)
            .build().sg)


def resilient_sg():
    return (NFFGBuilder("resilient").sap("sap1").sap("sap2")
            .nf("r-fw", "firewall")
            .chain("sap1", "r-fw", "sap2", bandwidth=5.0).build())


def full_demo_showcase_sg():
    return (ServiceRequestBuilder("showcase")
            .sap("sap1").sap("sap2")
            .nf("sc-fw", "firewall")
            .nf("sc-dpi", "dpi", domain="OPENSTACK")
            .nf("sc-nat", "nat")
            .chain("sap1", "sc-fw", "sc-dpi", "sc-nat", "sap2",
                   bandwidth=10.0)
            .delay_requirement("sap1", "sap2", max_delay=120.0)
            .build().sg)


def full_demo_vcpe_sg():
    return (ServiceRequestBuilder("vcpe")
            .sap("sap1").sap("sap2")
            .nf("vcpe-cpe", "vCPE", cpu=1.5, mem=192.0, storage=2.0)
            .chain("sap1", "vcpe-cpe", "sap2", bandwidth=5.0)
            .build().sg)


def full_demo_epi_sg():
    return (ServiceRequestBuilder("epi")
            .sap("sap1").sap("sap2")
            .nf("epi-fw", "firewall")
            .chain("sap1", "epi-fw", "sap2", bandwidth=5.0).build().sg)


SCENARIO_GRAPHS = {
    "quickstart": quickstart_sg,
    "multidomain-tenant-a": multidomain_tenant_a_sg,
    "multidomain-tenant-b": multidomain_tenant_b_sg,
    "elastic-web-v1": lambda: elastic_web_sg(1),
    "elastic-web-v3": lambda: elastic_web_sg(3),
    "recursive-vcpe": recursive_vcpe_sg,
    "resilient": resilient_sg,
    "full-demo-showcase": full_demo_showcase_sg,
    "full-demo-vcpe": full_demo_vcpe_sg,
    "full-demo-epi": full_demo_epi_sg,
}


def lint_via_cli(tmp_path, nffg, name):
    path = tmp_path / f"{name}.json"
    path.write_text(json.dumps(nffg_to_dict(nffg)))
    return main(["lint", str(path)])


@pytest.mark.parametrize("name", sorted(SCENARIO_GRAPHS))
def test_example_service_graph_is_lint_clean(tmp_path, capsys, name):
    exit_code = lint_via_cli(tmp_path, SCENARIO_GRAPHS[name](), name)
    assert exit_code == 0, capsys.readouterr().out


def test_reference_testbed_view_is_lint_clean(tmp_path, capsys):
    view = build_reference_multidomain().escape.resource_view()
    assert lint_via_cli(tmp_path, view, "fig1-view") == 0, \
        capsys.readouterr().out


def test_mapped_global_view_is_lint_clean(tmp_path, capsys):
    # after a real deployment the DoV carries placed NFs, dynamic
    # links and installed flow rules — all of it must stay clean
    testbed = build_emulated_testbed(switches=3)
    report = testbed.escape.deploy(quickstart_sg())
    assert report.success
    view = testbed.escape.global_view()
    assert lint_via_cli(tmp_path, view, "dov") == 0, \
        capsys.readouterr().out
