"""Tests for the seeded randomness helpers."""

import pytest

from repro.sim import SeededRandom


def test_same_seed_same_stream():
    a = SeededRandom(42)
    b = SeededRandom(42)
    assert [a.randint(0, 100) for _ in range(10)] == \
        [b.randint(0, 100) for _ in range(10)]


def test_different_seeds_diverge():
    a = SeededRandom(1)
    b = SeededRandom(2)
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_fork_is_deterministic():
    parent_a = SeededRandom(7)
    parent_b = SeededRandom(7)
    assert parent_a.fork("x").randint(0, 10**6) == \
        parent_b.fork("x").randint(0, 10**6)


def test_fork_labels_independent():
    parent = SeededRandom(7)
    assert parent.fork("x").seed != parent.fork("y").seed


def test_jitter_bounds():
    rng = SeededRandom(3)
    for _ in range(100):
        value = rng.jitter(10.0, fraction=0.2)
        assert 8.0 <= value <= 12.0


def test_weighted_choice_respects_zero_weight():
    rng = SeededRandom(5)
    picks = {rng.weighted_choice([("a", 1.0), ("b", 0.0)])
             for _ in range(50)}
    assert picks == {"a"}


def test_weighted_choice_rejects_nonpositive_total():
    rng = SeededRandom(5)
    with pytest.raises(ValueError):
        rng.weighted_choice([("a", 0.0)])


def test_sample_and_shuffle():
    rng = SeededRandom(11)
    population = list(range(20))
    sample = rng.sample(population, 5)
    assert len(set(sample)) == 5
    shuffled = list(population)
    rng.shuffle(shuffled)
    assert sorted(shuffled) == population


def test_expovariate_positive():
    rng = SeededRandom(13)
    assert all(rng.expovariate(0.5) > 0 for _ in range(50))
