"""Edge-case tests for the orchestrator facade and domain views."""


from repro.emu import EmulatedDomain
from repro.netem import Network
from repro.nffg import NFFGBuilder
from repro.orchestration import EmuDomainAdapter, EscapeOrchestrator
from repro.sdnnet import SDNDomain
from repro.topo import build_emulated_testbed


class TestIdConflicts:
    def test_nf_id_collision_across_services_rejected(self):
        testbed = build_emulated_testbed(switches=2)
        first = (NFFGBuilder("a").sap("sap1").sap("sap2")
                 .nf("shared-nf", "firewall")
                 .chain("sap1", "shared-nf", "sap2", bandwidth=1.0).build())
        second = (NFFGBuilder("b").sap("sap1").sap("sap2")
                  .nf("shared-nf", "nat")
                  .chain("sap1", "shared-nf", "sap2", bandwidth=1.0).build())
        assert testbed.escape.deploy(first).success
        report = testbed.escape.deploy(second)
        assert not report.success
        assert "collide" in report.error
        assert "shared-nf" in report.error
        # first service untouched
        assert testbed.escape.deployed_services() == ["a"]

    def test_hop_id_collision_rejected(self):
        testbed = build_emulated_testbed(switches=2)
        first = (NFFGBuilder("c").sap("sap1").sap("sap2")
                 .nf("c-nf", "firewall")
                 .chain("sap1", "c-nf", "sap2", bandwidth=1.0).build())
        assert testbed.escape.deploy(first).success
        # a service with different NF ids but a manually colliding hop id
        second = (NFFGBuilder("d").sap("sap1").sap("sap2")
                  .nf("d-nf", "nat").build())
        second.add_sg_hop("sap1", "1", "d-nf", "1", id="c-hop1",
                          bandwidth=1.0)
        second.add_sg_hop("d-nf", "2", "sap2", "1", id="d-own-hop",
                          bandwidth=1.0)
        report = testbed.escape.deploy(second)
        assert not report.success
        assert "c-hop1" in report.error

    def test_same_service_redeploy_after_teardown_ok(self):
        testbed = build_emulated_testbed(switches=2)
        service = (NFFGBuilder("e").sap("sap1").sap("sap2")
                   .nf("e-nf", "firewall")
                   .chain("sap1", "e-nf", "sap2", bandwidth=1.0).build())
        assert testbed.escape.deploy(service).success
        assert testbed.escape.teardown("e")
        assert testbed.escape.deploy(service.copy()).success


class TestPerLinkParameters:
    def test_emu_view_reflects_custom_link_params(self):
        net = Network()
        emu = EmulatedDomain("emu", net, node_ids=["bb0", "bb1", "bb2"])
        emu.add_link("bb0", "bb1", bandwidth=123.0, delay=7.0)
        emu.add_link("bb1", "bb2")  # domain defaults
        view = emu.domain_view()
        custom = view.edge("emu-bb0-bb1")
        assert custom.bandwidth == 123.0
        assert custom.delay == 7.0
        default = view.edge("emu-bb1-bb2")
        assert default.bandwidth == emu.link_bandwidth
        assert default.delay == emu.link_delay

    def test_emu_dataplane_honours_custom_delay(self):
        net = Network()
        emu = EmulatedDomain("emu", net, node_ids=["bb0", "bb1"])
        emu.add_link("bb0", "bb1", delay=25.0)
        physical = net.link_between("bb0", "bb1")
        assert physical.delay_ms == 25.0

    def test_sdn_view_reflects_custom_link_params(self):
        net = Network()
        sdn = SDNDomain("sdn", net, switch_ids=["sw0", "sw1"])
        sdn.add_link("sw0", "sw1", bandwidth=55.0, delay=9.0)
        view = sdn.domain_view()
        link = view.edge("sdn-sw0-sw1")
        assert link.bandwidth == 55.0
        assert link.delay == 9.0

    def test_sdn_topology_component_uses_custom_delay(self):
        net = Network()
        sdn = SDNDomain("sdn", net, switch_ids=["sw0", "sw1", "sw2"])
        sdn.add_link("sw0", "sw1", delay=100.0)
        sdn.add_link("sw1", "sw2", delay=1.0)
        sdn.add_link("sw0", "sw2", delay=1.0)
        # shortest path avoids the slow link
        assert sdn.topology.shortest_path("sw0", "sw1") == \
            ["sw0", "sw2", "sw1"]

    def test_mapping_respects_slow_custom_link(self):
        """A tight delay requirement fails when the only path uses a
        slow custom link — proving the view carries real parameters."""
        net = Network()
        emu = EmulatedDomain("emu", net, node_ids=["bb0", "bb1"])
        emu.add_link("bb0", "bb1", delay=500.0)
        emu.add_sap("sap1", "bb0")
        emu.add_sap("sap2", "bb1")
        escape = EscapeOrchestrator("esc", simulator=net.simulator)
        escape.add_domain(EmuDomainAdapter("emu", emu))
        service = (NFFGBuilder("slow").sap("sap1").sap("sap2")
                   .nf("slow-nf", "firewall")
                   .chain("sap1", "slow-nf", "sap2", bandwidth=1.0)
                   .build())
        # tight requirement: cannot cross a 500 ms link...
        tight = service.copy()
        tight.add_requirement(
            "sap1", "1", "sap2", "1",
            sg_path=[hop.id for hop in tight.sg_hops], max_delay=50.0)
        assert not escape.deploy(tight).success
        # ...without the requirement the same chain deploys fine
        report = escape.deploy(service)
        assert report.success, report.error
