"""Extensibility tests: ESCAPEv2 "can be extended easily with additional
plug and play components/algorithms, like NF implementations, network
embedding algorithms, NF decomposition models."

Each test registers a user-supplied component and drives it through the
full deploy pipeline.
"""

import pytest

from repro.click.catalog import NFImplementation, NF_CATALOG, register_nf
from repro.click.elements import Element
from repro.click.process import register_element
from repro.mapping import MappingError
from repro.mapping.base import MappingContext
from repro.mapping.decomposition import (
    ComponentSpec,
    DecompositionLibrary,
    DecompositionRule,
)
from repro.mapping.greedy import GreedyEmbedder, service_order
from repro.netem.packet import tcp_packet
from repro.nffg import NFFGBuilder, ResourceVector
from repro.orchestration import EmuDomainAdapter, EscapeOrchestrator
from repro.emu import EmulatedDomain
from repro.netem import Network


@pytest.fixture
def stack():
    net = Network()
    emu = EmulatedDomain("x-emu", net, node_ids=["x-bb0", "x-bb1"],
                         links=[("x-bb0", "x-bb1")])
    emu.add_sap("xsap1", "x-bb0")
    emu.add_sap("xsap2", "x-bb1")
    escape = EscapeOrchestrator("x-esc", simulator=net.simulator)
    escape.add_domain(EmuDomainAdapter("x-emu", emu))
    return net, emu, escape


class TestCustomNFImplementation:
    def test_registered_nf_deploys_and_processes(self, stack):
        net, emu, escape = stack

        class Stamper(Element):
            """Marks every packet it sees."""

            def process(self, packet, in_gate):
                packet.metadata["stamped_by"] = self.name
                return [(0, packet)]

        register_element("Stamper", lambda name, args: Stamper(name))
        register_nf(NFImplementation(
            "stamper", "FromPort(0) -> Stamper() -> ToPort(1)",
            ResourceVector(cpu=0.5, mem=32.0, storage=1.0),
            description="test-only custom NF"))
        try:
            emu.supported_types = list(emu.supported_types) + ["stamper"]
            service = (NFFGBuilder("ext").sap("xsap1").sap("xsap2")
                       .nf("ext-st", "stamper")
                       .chain("xsap1", "ext-st", "xsap2",
                              bandwidth=1.0).build())
            report = escape.deploy(service)
            assert report.success, report.error
            h1 = emu.sap_hosts["xsap1"]
            h2 = emu.sap_hosts["xsap2"]
            h1.send(tcp_packet(h1.ip, h2.ip))
            net.run()
            assert h2.received[0].metadata.get("stamped_by")
        finally:
            NF_CATALOG.pop("stamper", None)


class TestCustomEmbedder:
    def test_plug_in_embedder_used_by_orchestrator(self, stack):
        net, emu, escape = stack

        class LastNodeEmbedder(GreedyEmbedder):
            """Places everything on the lexicographically last infra."""

            name = "last-node"

            def _run(self, ctx: MappingContext) -> None:
                target = sorted(infra.id
                                for infra in ctx.resource.infras)[-1]
                for nf_id in service_order(ctx.service):
                    nf = ctx.service.nf(nf_id)
                    if not ctx.ledger.can_host(nf,
                                               ctx.resource.infra(target)):
                        raise MappingError("last node full")
                    ctx.place(nf_id, target)
                    self._route_ready_hops(ctx, set(ctx.routes))
                self._route_ready_hops(ctx, set(ctx.routes))

        escape.ro.embedder = LastNodeEmbedder()
        service = (NFFGBuilder("emb").sap("xsap1").sap("xsap2")
                   .nf("emb-fw", "firewall")
                   .chain("xsap1", "emb-fw", "xsap2", bandwidth=1.0).build())
        report = escape.deploy(service)
        assert report.success, report.error
        assert report.mapping.nf_placement["emb-fw"] == "x-bb1"


class TestCustomDecompositionModel:
    def test_plug_in_rule_drives_expansion(self, stack):
        net, emu, escape = stack
        library = DecompositionLibrary()
        library.mark_abstract("secure-pipe")
        library.add_rule(DecompositionRule(
            "secure-pipe-v1", "secure-pipe",
            components=(
                ComponentSpec("fw", "firewall",
                              ResourceVector(cpu=1.0, mem=128.0,
                                             storage=1.0)),
                ComponentSpec("mon", "monitor",
                              ResourceVector(cpu=0.5, mem=64.0,
                                             storage=2.0)),
            )))
        escape.ro.decomposition_library = library
        service = (NFFGBuilder("dec").sap("xsap1").sap("xsap2")
                   .nf("dec-sp", "secure-pipe")
                   .chain("xsap1", "dec-sp", "xsap2", bandwidth=1.0)
                   .build())
        report = escape.deploy(service)
        assert report.success, report.error
        assert report.mapping.decompositions["dec-sp"] == "secure-pipe-v1"
        attached = [nf for switch in emu.switches.values()
                    for nf in switch.attached_nfs()]
        assert sorted(attached) == ["dec-sp.fw", "dec-sp.mon"]
        h1, h2 = emu.sap_hosts["xsap1"], emu.sap_hosts["xsap2"]
        h1.send(tcp_packet(h1.ip, h2.ip, tp_dst=80))
        net.run()
        assert len(h2.received) == 1
