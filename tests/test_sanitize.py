"""Tests for the runtime concurrency sanitizer (repro.sanitize)."""

import threading
import time

from repro import sanitize
from repro.resilience.faults import FaultKind, FaultPlan
from repro.sanitize import (
    SanitizerState,
    TrackedLock,
    TrackedRLock,
    make_lock,
)


class TestTrackedLockBasics:
    def test_acquire_release_and_locked(self):
        state = SanitizerState()
        lock = TrackedLock("a", state=state)
        assert not lock.locked()
        with lock:
            assert lock.locked()
        assert not lock.locked()
        assert state.report().acquisitions == 1

    def test_drop_in_for_threading_lock(self):
        # the API surface code actually uses: acquire/release/locked/with
        lock = TrackedLock("a", state=SanitizerState())
        assert lock.acquire()
        assert not lock.acquire(blocking=False)
        lock.release()
        assert lock.acquire(timeout=0.5)
        lock.release()

    def test_rlock_reentry_counts_once(self):
        state = SanitizerState()
        lock = TrackedRLock("r", state=state)
        with lock:
            with lock:
                assert state.holding() == ("r",)
        assert state.holding() == ()
        assert state.report().acquisitions == 1

    def test_mutual_exclusion_still_enforced(self):
        state = SanitizerState()
        lock = TrackedLock("a", state=state)
        hits = []

        def worker():
            with lock:
                hits.append(max(hits, default=0) + 1)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert hits == list(range(1, 9))

    def test_unheld_release_is_reported(self):
        state = SanitizerState()
        lock = TrackedLock("a", state=state)
        lock._inner.acquire()   # bypass tracking, then release via API
        lock.release()
        report = state.report()
        assert [i.kind for i in report.issues] == ["unheld-release"]


class TestLockOrderGraph:
    def test_consistent_order_is_clean(self):
        state = SanitizerState()
        a, b = TrackedLock("a", state=state), TrackedLock("b", state=state)
        for _ in range(3):
            with a:
                with b:
                    pass
        assert state.find_inversions() == []
        assert state.report().ok()

    def test_inversion_detected(self):
        # the seeded synthetic violation from the acceptance criteria:
        # A->B in one place, B->A in another = potential deadlock
        state = SanitizerState()
        a, b = TrackedLock("a", state=state), TrackedLock("b", state=state)
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        cycles = state.find_inversions()
        assert len(cycles) == 1
        assert cycles[0].locks == ("a", "b")
        assert any("a -> b" in w for w in cycles[0].witnesses)
        report = state.report()
        assert not report.ok()
        assert "inversion" in report.render_text()

    def test_three_lock_cycle(self):
        state = SanitizerState()
        locks = {name: TrackedLock(name, state=state) for name in "abc"}
        for first, second in (("a", "b"), ("b", "c"), ("c", "a")):
            with locks[first]:
                with locks[second]:
                    pass
        cycles = state.find_inversions()
        assert len(cycles) == 1
        assert cycles[0].locks == ("a", "b", "c")

    def test_cross_thread_edges_merge_into_one_graph(self):
        state = SanitizerState()
        a, b = TrackedLock("a", state=state), TrackedLock("b", state=state)

        def held_in_order(first, second):
            with first:
                with second:
                    pass

        t1 = threading.Thread(target=held_in_order, args=(a, b))
        t1.start()
        t1.join()
        t2 = threading.Thread(target=held_in_order, args=(b, a))
        t2.start()
        t2.join()
        assert len(state.find_inversions()) == 1


class TestBlockingAndHoldTime:
    def test_blocking_under_lock_reported(self):
        state = SanitizerState()
        lock = TrackedLock("plan", state=state)
        with lock:
            state.note_blocking("time.sleep(0.1)")
        report = state.report()
        assert len(report.blocking) == 1
        assert report.blocking[0].lock == "plan"
        assert "time.sleep" in report.blocking[0].detail

    def test_blocking_outside_lock_is_clean(self):
        state = SanitizerState()
        lock = TrackedLock("plan", state=state)
        with lock:
            pass
        state.note_blocking("time.sleep(0.1)")
        assert state.report().ok()

    def test_blocking_ok_locks_are_exempt(self):
        # the dispatcher's per-domain mutexes hold across adapter I/O by
        # design; they must not produce blocking reports
        state = SanitizerState()
        lock = TrackedLock("dispatch.domain.emu", state=state,
                           blocking_ok=True)
        with lock:
            state.note_blocking("adapter.install(emu)")
        assert state.report().ok()

    def test_hold_time_outlier(self):
        state = SanitizerState(hold_budget_s=0.001)
        lock = TrackedLock("slow", state=state)
        with lock:
            time.sleep(0.01)
        report = state.report()
        assert len(report.hold_outliers) == 1
        assert report.hold_outliers[0].lock == "slow"

    def test_hold_time_exempt_for_blocking_ok(self):
        state = SanitizerState(hold_budget_s=0.001)
        lock = TrackedLock("domain", state=state, blocking_ok=True)
        with lock:
            time.sleep(0.01)
        assert state.report().ok()


class TestGlobalState:
    def test_make_lock_plain_when_disabled(self):
        previous = sanitize.disable()
        try:
            lock = make_lock("x")
            assert not isinstance(lock, TrackedLock)
        finally:
            sanitize.restore(previous)

    def test_make_lock_tracked_when_enabled(self):
        previous = sanitize.disable()
        try:
            state = sanitize.enable(fresh=True)
            lock = make_lock("x")
            assert isinstance(lock, TrackedLock)
            with lock:
                pass
            assert state.report().acquisitions == 1
        finally:
            sanitize.disable()
            sanitize.restore(previous)

    def test_note_blocking_noop_when_disabled(self):
        previous = sanitize.disable()
        try:
            sanitize.note_blocking("time.sleep(1)")  # must not raise
        finally:
            sanitize.restore(previous)

    def test_tracked_sleep_reports_under_lock(self):
        previous = sanitize.disable()
        try:
            state = sanitize.enable(fresh=True)
            lock = make_lock("x")
            with lock:
                sanitize.tracked_sleep(0.0)
            assert len(state.report().blocking) == 1
        finally:
            sanitize.disable()
            sanitize.restore(previous)


class TestFaultPlanUnderSanitizer:
    """Regressions for the PR 4 delay bug and the PR 5 schedule-edit
    race, verified through the sanitizer itself."""

    def test_delay_fault_sleeps_outside_the_plan_lock(self):
        # PR 4 fix: FaultPlan.before releases its lock before sleeping.
        # Under the sanitizer a regression shows up as blocking-under-lock.
        previous = sanitize.disable()
        try:
            state = sanitize.enable(fresh=True)
            plan = FaultPlan()  # built after enable(): lock is tracked
            plan.sleep = lambda seconds: sanitize.note_blocking("sleep")
            plan.add("dom", "push", kind=FaultKind.DELAY, delay_s=0.01)
            assert plan.before("dom", "push") == 0.01
            report = state.report()
            assert report.ok(), report.render_text()
            assert report.acquisitions >= 2  # add() + before()
        finally:
            sanitize.disable()
            sanitize.restore(previous)

    def test_schedule_edits_race_free_with_concurrent_consultation(self):
        # PR 5 fix: add()/crash()/clear() take the plan lock, so a storm
        # consulting before() concurrently never iterates a list that
        # clear() is rebuilding mid-flight.
        plan = FaultPlan()
        for index in range(50):
            plan.add("dom", "push", kind=FaultKind.ERROR, after=index,
                     count=1)
        errors = []
        stop = threading.Event()

        def consult():
            while not stop.is_set():
                try:
                    plan.before("dom", "push")
                except RuntimeError:
                    pass  # injected faults are expected
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)
                    return

        workers = [threading.Thread(target=consult) for _ in range(4)]
        for worker in workers:
            worker.start()
        for _ in range(200):
            plan.crash("other")
            plan.clear("other")
            plan.add("dom", "get_view", kind=FaultKind.ERROR)
        stop.set()
        for worker in workers:
            worker.join()
        assert errors == []

    def test_crash_clear_survive_mid_storm_consultation_counts(self):
        plan = FaultPlan()
        plan.crash("dom")
        try:
            plan.before("dom", "push")
            raise AssertionError("expected DomainDown")
        except RuntimeError:
            pass
        plan.clear("dom")
        assert plan.before("dom", "push") == 0.0  # revived, no fault
