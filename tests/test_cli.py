"""Tests for renderers and the scenario runner."""

import pytest

from repro.cli import (
    ScenarioRunner,
    render_deploy_report,
    render_dot,
    render_mapping,
    render_nffg,
)
from repro.mapping import GreedyEmbedder
from repro.nffg import NFFGBuilder
from repro.nffg.builder import linear_substrate
from repro.service import ServiceRequestBuilder
from repro.topo import build_emulated_testbed


def _mapped():
    substrate = linear_substrate(3, supported_types=["firewall"])
    service = (NFFGBuilder("svc").sap("sap1").sap("sap2")
               .nf("fw", "firewall")
               .chain("sap1", "fw", "sap2", bandwidth=5.0)
               .requirement("sap1", "sap2", max_delay=30.0).build())
    return substrate, service, GreedyEmbedder().map(service, substrate)


class TestRenderers:
    def test_render_nffg_mentions_everything(self):
        substrate, service, result = _mapped()
        text = render_nffg(result.mapped, show_flowrules=True)
        assert "fw" in text and "BiSBiS" in text and "sap1" in text
        assert "->" in text  # flow rules shown

    def test_render_service_graph(self):
        _, service, _ = _mapped()
        text = render_nffg(service)
        assert "hop" in text
        assert "delay<=30" in text

    def test_render_mapping_success(self):
        _, _, result = _mapped()
        text = render_mapping(result)
        assert "fw ->" in text
        assert "cost=" in text

    def test_render_mapping_failure(self):
        from repro.mapping.base import MappingResult
        text = render_mapping(MappingResult(success=False,
                                            failure_reason="no capacity"))
        assert "FAILED" in text and "no capacity" in text

    def test_render_deploy_report(self):
        testbed = build_emulated_testbed()
        request = (ServiceRequestBuilder("r").sap("sap1").sap("sap2")
                   .nf("r-fw", "firewall")
                   .chain("sap1", "r-fw", "sap2").build())
        report = testbed.service_layer.submit(request)
        text = render_deploy_report(report)
        assert "OK" in text and "emu" in text


class TestDotRenderer:
    def test_dot_is_structurally_valid(self):
        substrate, service, result = _mapped()
        dot = render_dot(result.mapped, title="mapped")
        assert dot.startswith('digraph "mapped" {')
        assert dot.rstrip().endswith("}")
        assert dot.count("{") == dot.count("}")

    def test_dot_contains_all_elements(self):
        substrate, service, result = _mapped()
        dot = render_dot(result.mapped)
        for sap in result.mapped.saps:
            assert f'"{sap.id}"' in dot
        for infra in result.mapped.infras:
            assert f'"{infra.id}"' in dot
        assert '"fw"' in dot
        assert "style=dashed" in dot  # SG hops present

    def test_dot_for_bare_service_graph(self):
        _, service, _ = _mapped()
        dot = render_dot(service)
        assert "firewall" in dot


class TestScenarioRunner:
    @pytest.fixture
    def runner(self):
        return ScenarioRunner(build_emulated_testbed(switches=2))

    def test_deploy_and_probe(self, runner):
        request = (ServiceRequestBuilder("probe-svc")
                   .sap("sap1").sap("sap2")
                   .nf("p-fw", "firewall")
                   .chain("sap1", "p-fw", "sap2", bandwidth=5.0).build())
        report, traffic = runner.deploy_and_probe(request, "sap1", "sap2",
                                                  count=4)
        assert report.success
        assert traffic.sent == 4
        assert traffic.delivered == 4
        assert traffic.delivery_ratio == 1.0
        assert traffic.mean_latency_ms > 0
        assert all("nf:p-fw" in trace for trace in traffic.traces)

    def test_probe_counts_drops(self, runner):
        request = (ServiceRequestBuilder("fw-svc").sap("sap1").sap("sap2")
                   .nf("f-fw", "firewall")
                   .chain("sap1", "f-fw", "sap2").build())
        runner.deploy(request)
        blocked = runner.probe("sap1", "sap2", count=3, tp_dst=22)
        assert blocked.delivered == 0
        assert blocked.dropped == 3

    def test_failed_deploy_returns_empty_traffic(self, runner):
        request = (ServiceRequestBuilder("nope").sap("sap1").sap("sap2")
                   .nf("x", "warpdrive").chain("sap1", "x", "sap2").build())
        runner.testbed.emu.supported_types = ["firewall"]
        report, traffic = runner.deploy_and_probe(request, "sap1", "sap2")
        assert not report.success
        assert traffic.sent == 0
