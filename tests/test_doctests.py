"""Run the executable examples embedded in module docstrings."""

import doctest

import pytest

import repro.sim.kernel
import repro.nffg.builder
import repro.service.request
import repro.workload

MODULES = [
    repro.sim.kernel,
    repro.nffg.builder,
    repro.service.request,
    repro.workload,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=[m.__name__ for m in MODULES])
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
