"""Tests for the recursive Unify interface (demo showcase iii)."""

import pytest

from repro.emu import EmulatedDomain
from repro.netem import Network
from repro.netem.packet import tcp_packet
from repro.nffg import NFFGBuilder
from repro.orchestration import (
    EmuDomainAdapter,
    EscapeOrchestrator,
    UnifyAgent,
    UnifyDomainAdapter,
    service_from_virtual_install,
)
from repro.mapping import GreedyEmbedder
from repro.nffg.model import DomainType


def _child_stack(net, name="child", switches=2, sap_ids=("sap1", "sap2")):
    domain = EmulatedDomain(
        f"{name}-emu", net,
        node_ids=[f"{name}-bb{i}" for i in range(switches)],
        links=[(f"{name}-bb{i}", f"{name}-bb{i + 1}")
               for i in range(switches - 1)])
    domain.add_sap(sap_ids[0], f"{name}-bb0")
    domain.add_sap(sap_ids[1], f"{name}-bb{switches - 1}")
    child = EscapeOrchestrator(name, simulator=net.simulator)
    child.add_domain(EmuDomainAdapter(f"{name}-emu", domain))
    return domain, child, UnifyAgent(child)


def _service(service_id="rsvc"):
    return (NFFGBuilder(service_id).sap("sap1").sap("sap2")
            .nf(f"{service_id}-fw", "firewall")
            .chain("sap1", f"{service_id}-fw", "sap2", bandwidth=5.0)
            .build())


class TestServiceReconstruction:
    def test_roundtrip_through_virtual_view(self):
        """service -> map onto single BiS-BiS -> reconstruct == service."""
        from repro.nffg.builder import single_bisbis_view
        view = single_bisbis_view(sap_tags=["sap1", "sap2"])
        service = _service()
        result = GreedyEmbedder().map(service, view)
        assert result.success
        rebuilt = service_from_virtual_install(result.mapped, "rebuilt")
        assert {nf.id for nf in rebuilt.nfs} == {"rsvc-fw"}
        assert {sap.id for sap in rebuilt.saps} == {"sap1", "sap2"}
        assert {hop.id for hop in rebuilt.sg_hops} == \
            {hop.id for hop in service.sg_hops}
        rebuilt_hops = {hop.id: hop for hop in rebuilt.sg_hops}
        for hop in service.sg_hops:
            assert rebuilt_hops[hop.id].bandwidth == hop.bandwidth

    def test_flowclass_preserved(self):
        from repro.nffg.builder import single_bisbis_view
        view = single_bisbis_view(sap_tags=["sap1", "sap2"])
        service = (NFFGBuilder("s").sap("sap1").sap("sap2")
                   .nf("s-fw", "firewall")
                   .hop("sap1", "s-fw", flowclass="tp_dst=80", bandwidth=1.0)
                   .hop("s-fw", "sap2", bandwidth=1.0).build())
        result = GreedyEmbedder().map(service, view)
        rebuilt = service_from_virtual_install(result.mapped, "r")
        classes = {hop.id: hop.flowclass for hop in rebuilt.sg_hops}
        assert "tp_dst=80" in classes.values()

    def test_empty_install_yields_empty_service(self):
        from repro.nffg.builder import single_bisbis_view
        view = single_bisbis_view(sap_tags=["sap1"])
        rebuilt = service_from_virtual_install(view, "r")
        assert not rebuilt.nfs and not rebuilt.sg_hops


@pytest.fixture
def two_level():
    net = Network()
    domain, child, agent = _child_stack(net)
    parent = EscapeOrchestrator("parent", simulator=net.simulator)
    parent.add_domain(UnifyDomainAdapter("child-dom", agent))
    return net, domain, child, parent


class TestTwoLevel:
    def test_parent_sees_single_bisbis(self, two_level):
        _, _, _, parent = two_level
        view = parent.resource_view()
        assert len(view.infras) == 1
        infra = view.infras[0]
        assert infra.domain == DomainType.UNIFY
        tags = {p.sap_tag for p in infra.ports.values() if p.sap_tag}
        assert tags == {"sap1", "sap2"}

    def test_parent_deploy_delegates_to_child(self, two_level):
        net, domain, child, parent = two_level
        report = parent.deploy(_service())
        assert report.success, report.error
        assert child.deployed_services() == ["child-client-svc"]
        # NF physically running in the child's domain
        attached = [nf for switch in domain.switches.values()
                    for nf in switch.attached_nfs()]
        assert attached == ["rsvc-fw"]

    def test_dataplane_through_recursion(self, two_level):
        net, domain, child, parent = two_level
        parent.deploy(_service())
        h1, h2 = domain.sap_hosts["sap1"], domain.sap_hosts["sap2"]
        h1.send(tcp_packet(h1.ip, h2.ip, tp_dst=80))
        net.run()
        assert len(h2.received) == 1
        assert "nf:rsvc-fw" in h2.received[0].trace
        h1.send(tcp_packet(h1.ip, h2.ip, tp_dst=22))
        net.run()
        assert len(h2.received) == 1  # firewall drops ssh

    def test_parent_teardown_clears_child(self, two_level):
        net, domain, child, parent = two_level
        parent.deploy(_service())
        assert parent.teardown("rsvc")
        assert child.deployed_services() == []
        attached = [nf for switch in domain.switches.values()
                    for nf in switch.attached_nfs()]
        assert attached == []

    def test_child_failure_propagates(self, two_level):
        net, domain, child, parent = two_level
        domain.supported_types = ["nat"]  # child can no longer host fw
        report = parent.deploy(_service())
        assert not report.success
        assert parent.deployed_services() == []

    def test_parent_resource_view_tracks_child_consumption(self, two_level):
        _, _, _, parent = two_level
        cpu_before = parent.resource_view().infras[0].resources.cpu
        parent.deploy(_service())
        cpu_after = parent.resource_view().infras[0].resources.cpu
        assert cpu_after < cpu_before

    def test_control_bytes_counted(self, two_level):
        _, _, _, parent = two_level
        report = parent.deploy(_service())
        assert report.control_bytes > 0


class TestUpdateThroughRecursion:
    def test_parent_update_reconciles_child(self, two_level):
        net, domain, child, parent = two_level
        assert parent.deploy(_service("rsvc")).success
        # new version: firewall replaced by NAT, same service id
        new_version = (NFFGBuilder("rsvc").sap("sap1").sap("sap2")
                       .nf("rsvc-nat", "nat")
                       .chain("sap1", "rsvc-nat", "sap2", bandwidth=5.0)
                       .build())
        report = parent.update(new_version)
        assert report.success, report.error
        attached = [nf for switch in domain.switches.values()
                    for nf in switch.attached_nfs()]
        assert attached == ["rsvc-nat"]
        h1, h2 = domain.sap_hosts["sap1"], domain.sap_hosts["sap2"]
        h1.send(tcp_packet(h1.ip, h2.ip, tp_dst=80))
        net.run()
        assert h2.received[-1].ip_src == "192.0.2.1"  # NAT active below

    def test_parent_failed_update_keeps_child_running(self, two_level):
        net, domain, child, parent = two_level
        assert parent.deploy(_service("rsvc")).success
        bad = (NFFGBuilder("rsvc").sap("sap1").sap("sap2")
               .nf("rsvc-x", "warpdrive")
               .chain("sap1", "rsvc-x", "sap2", bandwidth=5.0).build())
        report = parent.update(bad)
        assert not report.success
        # old chain still carries traffic end to end
        h1, h2 = domain.sap_hosts["sap1"], domain.sap_hosts["sap2"]
        h1.send(tcp_packet(h1.ip, h2.ip, tp_dst=80))
        net.run()
        assert len(h2.received) == 1


class TestAbstractNFAdvertisement:
    def test_child_with_library_advertises_abstract_types(self):
        from repro.mapping.decomposition import default_decomposition_library
        net = Network()
        domain = EmulatedDomain("adv-emu", net, node_ids=["adv-bb0"])
        domain.add_sap("asap1", "adv-bb0")
        domain.add_sap("asap2", "adv-bb0")
        child = EscapeOrchestrator(
            "adv-child", simulator=net.simulator,
            decomposition_library=default_decomposition_library())
        child.add_domain(EmuDomainAdapter("adv-emu", domain))
        agent = UnifyAgent(child)
        view = agent.current_view()
        assert "vCPE" in view.infras[0].supported_types

    def test_parent_places_abstract_nf_child_decomposes(self):
        from repro.mapping.decomposition import default_decomposition_library
        net = Network()
        domain = EmulatedDomain("dc-emu", net,
                                node_ids=["dc-bb0", "dc-bb1"],
                                links=[("dc-bb0", "dc-bb1")])
        domain.add_sap("dsap1", "dc-bb0")
        domain.add_sap("dsap2", "dc-bb1")
        child = EscapeOrchestrator(
            "dc-child", simulator=net.simulator,
            decomposition_library=default_decomposition_library())
        child.add_domain(EmuDomainAdapter("dc-emu", domain))
        parent = EscapeOrchestrator("dc-parent", simulator=net.simulator)
        parent.add_domain(UnifyDomainAdapter("dc-dom", UnifyAgent(child)))
        service = (NFFGBuilder("abs").sap("dsap1").sap("dsap2")
                   .nf("abs-cpe", "vCPE")
                   .chain("dsap1", "abs-cpe", "dsap2", bandwidth=1.0)
                   .build())
        report = parent.deploy(service)
        assert report.success, report.error
        # components of the decomposition are physically attached
        attached = [nf for switch in domain.switches.values()
                    for nf in switch.attached_nfs()]
        assert attached and all(nf.startswith("abs-cpe.")
                                for nf in attached)
        h1, h2 = domain.sap_hosts["dsap1"], domain.sap_hosts["dsap2"]
        h1.send(tcp_packet(h1.ip, h2.ip, tp_dst=80))
        net.run()
        assert len(h2.received) == 1

    def test_child_without_library_does_not_advertise(self):
        net = Network()
        domain = EmulatedDomain("plain-emu", net, node_ids=["p-bb0"])
        domain.add_sap("psap1", "p-bb0")
        child = EscapeOrchestrator("plain-child", simulator=net.simulator)
        child.add_domain(EmuDomainAdapter("plain-emu", domain))
        view = UnifyAgent(child).current_view()
        assert "vCPE" not in view.infras[0].supported_types


class TestMultiNodeViewPolicy:
    """Recursion with a per-domain view: the parent's hops traverse
    several virtual nodes, so the child must reassemble each hop from
    multiple flow rules (the multi-rule reconstruction path)."""

    def _stack(self):
        from repro.sdnnet import SDNDomain
        from repro.virtualizer.views import PerDomainBiSBiSView

        net = Network()
        emu = EmulatedDomain("m-emu", net,
                             node_ids=["m-bb0", "m-bb1"],
                             links=[("m-bb0", "m-bb1")])
        emu.add_sap("msap1", "m-bb0")
        sdn = SDNDomain("m-sdn", net, switch_ids=["m-sw0"])
        sdn.add_sap("msap2", "m-sw0")
        side_a = emu.add_handoff("mx", "m-bb1")
        side_b = sdn.add_handoff("mx", "m-sw0")
        net.connect(*side_a, *side_b, bandwidth_mbps=1000.0, delay_ms=1.0)
        child = EscapeOrchestrator("m-child", simulator=net.simulator)
        child.add_domain(EmuDomainAdapter("m-emu", emu))
        from repro.orchestration import SdnDomainAdapter
        child.add_domain(SdnDomainAdapter("m-sdn", sdn))
        agent = UnifyAgent(child, view_policy=PerDomainBiSBiSView())
        parent = EscapeOrchestrator("m-parent", simulator=net.simulator)
        parent.add_domain(UnifyDomainAdapter("m-dom", agent))
        return net, emu, sdn, child, parent

    def test_parent_sees_per_domain_aggregates(self):
        net, emu, sdn, child, parent = self._stack()
        view = parent.resource_view()
        assert len(view.infras) == 2
        types = {infra.infra_type.value for infra in view.infras}
        assert types == {"BiSBiS", "SDN-SWITCH"}

    def test_hop_across_virtual_nodes_reconstructs(self):
        net, emu, sdn, child, parent = self._stack()
        service = (NFFGBuilder("mn").sap("msap1").sap("msap2")
                   .nf("mn-fw", "firewall")
                   .chain("msap1", "mn-fw", "msap2", bandwidth=5.0)
                   .build())
        report = parent.deploy(service)
        assert report.success, report.error
        # the fw->msap2 hop crossed two virtual nodes at the parent
        routes = report.mapping.hop_routes
        assert any(len(route.infra_path) == 2 for route in routes.values())
        h1 = emu.sap_hosts["msap1"]
        h2 = sdn.sap_hosts["msap2"]
        h1.send(tcp_packet(h1.ip, h2.ip, tp_dst=80))
        net.run()
        assert len(h2.received) == 1
        trace = h2.received[0].trace
        assert "nf:mn-fw" in trace and "m-sw0" in trace


class TestThreeLevel:
    def test_three_level_stack(self):
        net = Network()
        domain, child, agent1 = _child_stack(net, "l0")
        mid = EscapeOrchestrator("l1", simulator=net.simulator)
        mid.add_domain(UnifyDomainAdapter("l0-dom", agent1))
        agent2 = UnifyAgent(mid)
        top = EscapeOrchestrator("l2", simulator=net.simulator)
        top.add_domain(UnifyDomainAdapter("l1-dom", agent2))

        report = top.deploy(_service("deep"))
        assert report.success, report.error
        # the NF ran all the way down in the physical domain
        attached = [nf for switch in domain.switches.values()
                    for nf in switch.attached_nfs()]
        assert attached == ["deep-fw"]
        h1, h2 = domain.sap_hosts["sap1"], domain.sap_hosts["sap2"]
        h1.send(tcp_packet(h1.ip, h2.ip, tp_dst=80))
        net.run()
        assert len(h2.received) == 1

    def test_mixed_direct_and_recursive_domains(self):
        """A parent with one physical domain and one Unify child."""
        net = Network()
        local = EmulatedDomain("local-emu", net, node_ids=["local-bb0"])
        local.add_sap("sap1", "local-bb0")
        child_domain, _, agent = _child_stack(net, "remote", switches=1,
                                              sap_ids=("rsap1", "rsap2"))
        parent = EscapeOrchestrator("parent", simulator=net.simulator)
        parent.add_domain(EmuDomainAdapter("local-emu", local))
        parent.add_domain(UnifyDomainAdapter("remote-dom", agent))
        view = parent.resource_view()
        domains = {infra.domain for infra in view.infras}
        assert DomainType.INTERNAL in domains
        assert DomainType.UNIFY in domains
