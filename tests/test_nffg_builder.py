"""Tests for the fluent builders and canned substrates."""

import pytest

from repro.nffg import NFFGBuilder, NFFGError
from repro.nffg.builder import linear_substrate, mesh_substrate, single_bisbis_view
from repro.nffg.model import DomainType, InfraType


class TestNFFGBuilder:
    def test_simple_chain(self):
        sg = (NFFGBuilder("svc").sap("u").sap("s").nf("fw", "firewall")
              .chain("u", "fw", "s", bandwidth=5.0).build())
        assert len(sg.sg_hops) == 2
        assert all(hop.bandwidth == 5.0 for hop in sg.sg_hops)

    def test_chain_needs_two_nodes(self):
        with pytest.raises(NFFGError):
            NFFGBuilder("svc").sap("u").chain("u")

    def test_requirement_traces_path(self):
        sg = (NFFGBuilder("svc").sap("u").sap("s")
              .nf("a", "firewall").nf("b", "nat")
              .chain("u", "a", "b", "s")
              .requirement("u", "s", max_delay=30.0).build())
        req = sg.requirements[0]
        assert len(req.sg_path) == 3
        assert req.max_delay == 30.0

    def test_requirement_without_path_fails(self):
        builder = NFFGBuilder("svc").sap("u").sap("s")
        with pytest.raises(NFFGError):
            builder.requirement("u", "s", max_delay=10.0)

    def test_hop_ports_default_in_out(self):
        sg = (NFFGBuilder("svc").sap("u").sap("s").nf("fw", "firewall")
              .chain("u", "fw", "s").build())
        first, second = sg.sg_hops
        assert first.dst_port == "1"   # NF ingress
        assert second.src_port == "2"  # NF egress

    def test_branching_with_flowclass(self):
        sg = (NFFGBuilder("svc").sap("u").sap("s")
              .nf("web", "webserver").nf("dns", "forwarder")
              .hop("u", "web", flowclass="tp_dst=80")
              .hop("u", "dns", flowclass="tp_dst=53")
              .hop("web", "s").hop("dns", "s").build())
        assert len(sg.sg_hops) == 4

    def test_loop_detected_in_requirement_trace(self):
        builder = (NFFGBuilder("svc").sap("u")
                   .nf("a", "x").nf("b", "y"))
        builder.hop("u", "a").hop("a", "b").hop("b", "a")
        with pytest.raises(NFFGError):
            builder.requirement("u", "s")


class TestSubstrates:
    def test_linear_substrate_shape(self):
        sub = linear_substrate(4)
        assert len(sub.infras) == 4
        assert {s.id for s in sub.saps} == {"sap1", "sap2"}
        # 3 inter-switch pairs + 2 sap links, all bidirectional
        assert len(sub.links) == 3 * 2 + 2 * 2

    def test_linear_substrate_sap_bindings(self):
        sub = linear_substrate(3, id="x")
        bindings = sub.sap_bindings()
        assert bindings["sap1"][0] == "x-bb0"
        assert bindings["sap2"][0] == "x-bb2"

    def test_mesh_substrate_connected(self):
        import networkx as nx
        sub = mesh_substrate(12, degree=3, seed=5)
        topo = sub.infra_topology()
        assert nx.is_strongly_connected(topo)

    def test_mesh_substrate_deterministic(self):
        a = mesh_substrate(10, seed=3)
        b = mesh_substrate(10, seed=3)
        assert a.summary() == b.summary()
        assert sorted(l.id for l in a.links) == sorted(l.id for l in b.links)

    def test_single_bisbis_view(self):
        view = single_bisbis_view(cpu=32, sap_tags=["sap1", "sap2"])
        assert len(view.infras) == 1
        infra = view.infras[0]
        assert infra.infra_type == InfraType.BISBIS
        assert infra.domain == DomainType.VIRTUAL
        assert infra.resources.cpu == 32
        assert infra.port("sap-sap1").sap_tag == "sap1"
        assert len(view.saps) == 2
