"""Tests for the OpenStack+ODL-like cloud domain."""

import pytest

from repro.cloud import (
    CloudDomain,
    CloudLocalOrchestrator,
    ComputeHost,
    FilterScheduler,
    Flavor,
    Image,
    NovaCompute,
    NoValidHost,
)
from repro.cloud.nova import VMState, flavor_for
from repro.mapping import GreedyEmbedder
from repro.netconf import NetconfClient
from repro.netem import Network
from repro.netem.packet import tcp_packet
from repro.nffg import NFFGBuilder
from repro.nffg.serialize import nffg_to_dict
from repro.openflow.channel import ControlChannel
from repro.sim import Simulator


class TestScheduler:
    def _hosts(self):
        return [ComputeHost("h1", vcpus=4, ram_mb=4096, disk_gb=100),
                ComputeHost("h2", vcpus=8, ram_mb=8192, disk_gb=100)]

    def test_picks_most_free(self):
        scheduler = FilterScheduler()
        flavor = Flavor("f", 1, 512, 1)
        image = Image("img", "firewall")
        host = scheduler.select_host(self._hosts(), flavor, image)
        assert host.name == "h2"

    def test_filters_prune_full_hosts(self):
        scheduler = FilterScheduler()
        hosts = self._hosts()
        hosts[1].vcpus_used = 8.0
        flavor = Flavor("f", 2, 512, 1)
        host = scheduler.select_host(hosts, flavor, Image("img", "x"))
        assert host.name == "h1"

    def test_no_valid_host(self):
        scheduler = FilterScheduler()
        with pytest.raises(NoValidHost):
            scheduler.select_host(self._hosts(), Flavor("f", 64, 1, 1),
                                  Image("img", "x"))

    def test_image_properties_filter(self):
        scheduler = FilterScheduler()
        image = Image("big", "x", min_ram_mb=2048)
        with pytest.raises(NoValidHost):
            scheduler.select_host(self._hosts(), Flavor("f", 1, 512, 1),
                                  image)

    def test_flavor_for_picks_smallest_fit(self):
        assert flavor_for(0.4, 32, 0.5).name == "m1.tiny"
        assert flavor_for(2, 256, 4).name == "m1.medium"
        assert flavor_for(32, 99999, 1).name.startswith("custom")


class TestNovaLifecycle:
    def test_boot_reaches_active_after_delay(self):
        sim = Simulator()
        nova = NovaCompute(sim, boot_delay_ms=1000.0)
        nova.add_host(ComputeHost("h1", 4, 4096, 100))
        vm = nova.boot("vm1", Flavor("f", 1, 512, 1), Image("img", "x"))
        assert vm.state == VMState.BUILD
        sim.run()
        assert vm.state == VMState.ACTIVE
        assert vm.booted_at == 1000.0

    def test_on_active_callback(self):
        sim = Simulator()
        nova = NovaCompute(sim, boot_delay_ms=500.0)
        nova.add_host(ComputeHost("h1", 4, 4096, 100))
        vm = nova.boot("vm1", Flavor("f", 1, 512, 1), Image("img", "x"))
        seen = []
        vm.on_active(lambda v: seen.append(v.id))
        sim.run()
        assert seen == [vm.id]
        # late registration fires immediately
        vm.on_active(lambda v: seen.append("late"))
        assert seen[-1] == "late"

    def test_resources_claimed_and_released(self):
        sim = Simulator()
        nova = NovaCompute(sim)
        host = nova.add_host(ComputeHost("h1", 4, 4096, 100))
        vm = nova.boot("vm1", Flavor("f", 2, 1024, 10), Image("img", "x"))
        assert host.vcpus_used == 2
        nova.delete(vm.id)
        assert host.vcpus_used == 0
        assert vm.state == VMState.DELETED

    def test_capacity(self):
        sim = Simulator()
        nova = NovaCompute(sim)
        nova.add_host(ComputeHost("h1", 4, 4096, 100))
        nova.add_host(ComputeHost("h2", 4, 4096, 100))
        nova.boot("vm1", Flavor("f", 1, 512, 10), Image("img", "x"))
        vcpus, ram, disk = nova.capacity()
        assert vcpus == 7 and ram == 7680 and disk == 190

    def test_list_instances_excludes_deleted(self):
        sim = Simulator()
        nova = NovaCompute(sim)
        nova.add_host(ComputeHost("h1", 4, 4096, 100))
        vm = nova.boot("vm1", Flavor("f", 1, 512, 1), Image("img", "x"))
        nova.delete(vm.id)
        assert nova.list_instances() == []
        assert len(nova.list_instances(include_deleted=True)) == 1


@pytest.fixture
def cloud():
    net = Network()
    domain = CloudDomain("cloud", net, num_spines=1, num_leaves=2,
                         hosts_per_leaf=1, vm_boot_delay_ms=500.0)
    domain.add_sap("in", leaf_index=0)
    domain.add_sap("out", leaf_index=1)
    orchestrator = CloudLocalOrchestrator(domain)
    channel = ControlChannel("mgmt")
    orchestrator.bind(channel)
    client = NetconfClient("parent", channel)
    client.hello()
    return net, domain, orchestrator, client


def _install_for(domain, nf_type="firewall"):
    view = domain.domain_view()
    service = (NFFGBuilder("svc").sap("in").sap("out")
               .nf("fw", nf_type)
               .chain("in", "fw", "out", bandwidth=10.0).build())
    result = GreedyEmbedder().map(service, view)
    assert result.success, result.failure_reason
    return result.mapped


class TestCloudDomain:
    def test_view_is_single_bisbis(self, cloud):
        _, domain, _, _ = cloud
        view = domain.domain_view()
        assert len(view.infras) == 1
        infra = view.infras[0]
        assert infra.id == "cloud-bisbis"
        assert infra.resources.cpu == 32.0  # 2 hosts x 16 vcpus
        assert "firewall" in infra.supported_types

    def test_view_reports_installed_inventory(self, cloud):
        """The view is the installed inventory — local consumption is
        the parent CAL's bookkeeping, not the view's (otherwise it
        would be subtracted twice)."""
        net, domain, orchestrator, client = cloud
        client.edit_config({"nffg": nffg_to_dict(_install_for(domain))},
                           operation="replace")
        client.commit()
        view = domain.domain_view()
        assert view.infras[0].resources.cpu == 32.0
        # live consumption is visible through Nova instead
        free_vcpus, _, _ = domain.nova.capacity()
        assert free_vcpus < 32.0

    def test_deploy_boots_vm_and_attaches(self, cloud):
        net, domain, orchestrator, client = cloud
        client.edit_config({"nffg": nffg_to_dict(_install_for(domain))},
                           operation="replace")
        client.commit()
        assert not orchestrator.all_vms_active()
        assert orchestrator.wait_ready()
        vms = client.rpc("list-vms")
        assert vms[0]["state"] == "ACTIVE"
        host_dpid = vms[0]["host"]
        assert "fw" in domain.compute_switches[host_dpid].attached_nfs()

    def test_dataplane_through_vm(self, cloud):
        net, domain, orchestrator, client = cloud
        client.edit_config({"nffg": nffg_to_dict(_install_for(domain))},
                           operation="replace")
        client.commit()
        orchestrator.wait_ready()
        h_in, h_out = domain.sap_hosts["in"], domain.sap_hosts["out"]
        h_in.send(tcp_packet(h_in.ip, h_out.ip, tp_dst=80))
        net.run()
        assert len(h_out.received) == 1
        assert "nf:fw" in h_out.received[0].trace
        # firewall semantics preserved inside the VM
        h_in.send(tcp_packet(h_in.ip, h_out.ip, tp_dst=22))
        net.run()
        assert len(h_out.received) == 1

    def test_teardown_deletes_vm(self, cloud):
        net, domain, orchestrator, client = cloud
        client.edit_config({"nffg": nffg_to_dict(_install_for(domain))},
                           operation="replace")
        client.commit()
        orchestrator.wait_ready()
        client.edit_config(None, operation="delete")
        client.commit()
        assert domain.nova.list_instances() == []
        vcpus, _, _ = domain.nova.capacity()
        assert vcpus == 32.0

    def test_validation_rejects_foreign_bisbis(self, cloud):
        net, domain, orchestrator, client = cloud
        install = _install_for(domain)
        data = nffg_to_dict(install)
        for node in data["nodes"]:
            if node["id"] == "cloud-bisbis":
                node["id"] = "other-bisbis"
        for edge in data["edges"]:
            for key in ("src_node", "dst_node"):
                if edge[key] == "cloud-bisbis":
                    edge[key] = "other-bisbis"
        client.edit_config({"nffg": data}, operation="replace")
        from repro.netconf import NetconfError
        with pytest.raises(NetconfError):
            client.commit()

    def test_state_data(self, cloud):
        net, domain, orchestrator, client = cloud
        client.edit_config({"nffg": nffg_to_dict(_install_for(domain))},
                           operation="replace")
        client.commit()
        state = client.get()["state"]
        assert state["deploys"] == 1
        assert "fw" in state["vms"]
