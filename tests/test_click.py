"""Tests for the Click-style NF execution environment."""

import pytest

from repro.click import (
    ClickConfigError,
    Classifier,
    Counter,
    DPIElement,
    FirewallFilter,
    NATRewriter,
    RateLimiter,
    Tee,
    VlanTagger,
    VlanUntagger,
    compile_config,
    make_nf_process,
)
from repro.click.catalog import NF_CATALOG, click_config_for, supported_functional_types
from repro.click.elements import LatencyProbe, PayloadRewriter
from repro.netem.packet import tcp_packet


class TestElements:
    def test_counter(self):
        counter = Counter("c")
        counter.push(tcp_packet("1.1.1.1", "2.2.2.2", size=300))
        counter.push(tcp_packet("1.1.1.1", "2.2.2.2", size=200))
        assert counter.count == 2 and counter.bytes == 500

    def test_classifier_first_match_wins(self):
        classifier = Classifier("c", ["tp_dst=80", "nw_proto=6"])
        http = classifier.push(tcp_packet("1.1.1.1", "2.2.2.2", tp_dst=80))
        assert http[0][0] == 0
        other_tcp = classifier.push(tcp_packet("1.1.1.1", "2.2.2.2",
                                               tp_dst=443))
        assert other_tcp[0][0] == 1

    def test_classifier_default_gate(self):
        classifier = Classifier("c", ["tp_dst=80"])
        packet = tcp_packet("1.1.1.1", "2.2.2.2", tp_dst=22)
        assert classifier.push(packet)[0][0] == 1

    def test_firewall_rules_ordered(self):
        firewall = FirewallFilter("fw", [("deny", "tp_dst=22"),
                                         ("allow", "nw_proto=6")])
        assert firewall.push(tcp_packet("1.1.1.1", "2.2.2.2", tp_dst=22)) == []
        assert firewall.denied == 1
        passed = firewall.push(tcp_packet("1.1.1.1", "2.2.2.2", tp_dst=80))
        assert passed and "fw" in passed[0][1].metadata["fw_passed"]

    def test_firewall_default_deny(self):
        firewall = FirewallFilter("fw", default="deny")
        assert firewall.push(tcp_packet("1.1.1.1", "2.2.2.2")) == []

    def test_nat_forward_and_reverse(self):
        nat = NATRewriter("nat", public_ip="5.5.5.5")
        out = nat.push(tcp_packet("10.0.0.2", "8.8.8.8", tp_src=1111,
                                  tp_dst=80))
        assert out[0][1].ip_src == "5.5.5.5"
        reply = tcp_packet("8.8.8.8", "5.5.5.5", tp_src=80, tp_dst=1111)
        back = nat.push(reply, in_gate=1)
        assert back[0][1].ip_dst == "10.0.0.2"

    def test_nat_drops_unknown_reply(self):
        nat = NATRewriter("nat")
        reply = tcp_packet("8.8.8.8", "192.0.2.1", tp_src=80, tp_dst=9999)
        assert nat.push(reply, in_gate=1) == []

    def test_dpi_flags_signature(self):
        dpi = DPIElement("dpi", ["malware"])
        bad = dpi.push(tcp_packet("1.1.1.1", "2.2.2.2",
                                  payload="xx malware yy"))
        assert bad[0][0] == 1
        assert bad[0][1].metadata["dpi_flags"] == ["malware"]
        good = dpi.push(tcp_packet("1.1.1.1", "2.2.2.2", payload="clean"))
        assert good[0][0] == 0

    def test_rate_limiter_tokens(self):
        limiter = RateLimiter("rl", rate_pps_ms=1.0, burst=2.0)
        limiter.observe_time(0.0)
        results = [limiter.push(tcp_packet("1.1.1.1", "2.2.2.2"))
                   for _ in range(4)]
        assert [bool(r) for r in results] == [True, True, False, False]
        limiter.observe_time(5.0)  # refill
        assert limiter.push(tcp_packet("1.1.1.1", "2.2.2.2"))

    def test_tee_duplicates(self):
        tee = Tee("t", outputs=3)
        out = tee.push(tcp_packet("1.1.1.1", "2.2.2.2"))
        assert [gate for gate, _ in out] == [0, 1, 2]
        assert out[1][1] is not out[0][1]

    def test_vlan_tag_untag(self):
        packet = tcp_packet("1.1.1.1", "2.2.2.2")
        VlanTagger("t", 55).push(packet)
        assert packet.vlan == 55
        VlanUntagger("u").push(packet)
        assert packet.vlan is None

    def test_payload_rewriter(self):
        rewriter = PayloadRewriter("rw", "h264", "vp9")
        out = rewriter.push(tcp_packet("1.1.1.1", "2.2.2.2",
                                       payload="codec=h264"))
        assert out[0][1].payload == "codec=vp9"

    def test_latency_probe(self):
        probe = LatencyProbe("p")
        probe.observe_time(12.0)
        packet = tcp_packet("1.1.1.1", "2.2.2.2")
        packet.created_at = 10.0
        probe.push(packet)
        assert probe.samples == [2.0]


class TestConfigCompiler:
    def test_inline_chain(self):
        process = compile_config(
            "p", "FromPort(0) -> Counter() -> ToPort(1)")
        out = process.push(tcp_packet("1.1.1.1", "2.2.2.2"), 0)
        assert out == [(1, out[0][1])]

    def test_named_elements_and_gates(self):
        config = """
        in :: FromPort(0);
        c :: Classifier(tp_dst=80);
        keep :: ToPort(1);
        drop :: Discard();
        in -> c; c[0] -> keep; c[1] -> [0]drop
        """
        process = compile_config("p", config)
        assert process.push(tcp_packet("1.1.1.1", "2.2.2.2", tp_dst=80), 0)
        assert not process.push(tcp_packet("1.1.1.1", "2.2.2.2", tp_dst=1), 0)

    def test_unknown_element_type(self):
        with pytest.raises(ClickConfigError):
            compile_config("p", "FromPort(0) -> Quantum() -> ToPort(1)")

    def test_unknown_wire_target(self):
        with pytest.raises(ClickConfigError):
            compile_config("p", "in :: FromPort(0); in -> ghost")

    def test_config_without_fromport_rejected(self):
        with pytest.raises(ClickConfigError):
            compile_config("p", "c :: Counter()")

    def test_duplicate_element_name(self):
        with pytest.raises(ClickConfigError):
            compile_config("p", "x :: FromPort(0); x :: Counter(); ")

    def test_double_wired_gate_rejected(self):
        config = ("in :: FromPort(0); a :: Counter(); b :: Counter(); "
                  "in -> a; in -> b")
        with pytest.raises(ClickConfigError):
            compile_config("p", config)

    def test_push_on_unknown_port_drops(self):
        process = compile_config("p", "FromPort(0) -> ToPort(1)")
        assert process.push(tcp_packet("1.1.1.1", "2.2.2.2"), 7) == []

    def test_stopped_process_drops(self):
        process = compile_config("p", "FromPort(0) -> ToPort(1)")
        process.stop()
        assert process.push(tcp_packet("1.1.1.1", "2.2.2.2"), 0) == []

    def test_trace_records_nf(self):
        process = compile_config("nf7", "FromPort(0) -> ToPort(1)")
        packet = tcp_packet("1.1.1.1", "2.2.2.2")
        process.push(packet, 0)
        assert "nf:nf7" in packet.trace

    def test_stats(self):
        process = compile_config("p", "FromPort(0) -> Counter() -> ToPort(1)")
        process.push(tcp_packet("1.1.1.1", "2.2.2.2"), 0)
        stats = process.stats()
        assert any(counters["in"] == 1 for counters in stats.values())


class TestCatalog:
    def test_all_catalog_configs_compile(self):
        for functional_type in supported_functional_types():
            process = make_nf_process(f"{functional_type}-test",
                                      functional_type)
            assert process.elements

    def test_all_catalog_nfs_forward_clean_http(self):
        for functional_type in supported_functional_types():
            if functional_type == "ratelimiter":
                continue  # stateful: depends on token history
            process = make_nf_process("x", functional_type)
            packet = tcp_packet("10.0.0.1", "10.0.0.2", tp_dst=80,
                                payload="GET /index")
            out = process.push(packet, 0)
            assert out, f"{functional_type} dropped clean traffic"
            assert out[0][0] == 1

    def test_firewall_blocks_ssh(self):
        process = make_nf_process("fw", "firewall")
        assert process.push(tcp_packet("1.1.1.1", "2.2.2.2", tp_dst=22), 0) == []

    def test_dpi_blocks_malware(self):
        process = make_nf_process("dpi", "dpi")
        assert process.push(
            tcp_packet("1.1.1.1", "2.2.2.2", payload="malware inside"),
            0) == []

    def test_unknown_type_raises(self):
        with pytest.raises(KeyError):
            make_nf_process("x", "teleporter")
        with pytest.raises(KeyError):
            click_config_for("teleporter")

    def test_catalog_has_paper_nfs(self):
        for needed in ("firewall", "nat", "dpi", "fw-nat-combo",
                       "classifier", "analyzer"):
            assert needed in NF_CATALOG
