"""Tests for whole-graph NFFG operations (merge/split/remaining/strip)."""

import pytest

from repro.nffg import (
    NFFG,
    NFFGError,
    ResourceVector,
    merge_nffgs,
    remaining_nffg,
    split_per_domain,
    strip_deployment,
)
from repro.nffg.builder import linear_substrate
from repro.nffg.model import DomainType
from repro.nffg.ops import available_resources, consumed_resources


def _domain_view(name: str, domain: DomainType, tag: str) -> NFFG:
    view = NFFG(id=name)
    infra = view.add_infra(f"{name}-bb", domain=domain,
                           resources=ResourceVector(cpu=8, mem=1024,
                                                    storage=16,
                                                    bandwidth=1000))
    infra.add_port(f"sap-{tag}", sap_tag=tag)
    return view


class TestMerge:
    def test_merge_stitches_shared_tags(self):
        a = _domain_view("a", DomainType.INTERNAL, "x")
        b = _domain_view("b", DomainType.SDN, "x")
        merged = merge_nffgs([a, b])
        assert merged.has_edge("interdomain-x")
        assert len(merged.infras) == 2

    def test_merge_keeps_singleton_tags_unstitched(self):
        a = _domain_view("a", DomainType.INTERNAL, "only")
        merged = merge_nffgs([a])
        assert not merged.has_edge("interdomain-only")

    def test_merge_rejects_triple_tags(self):
        views = [_domain_view(n, DomainType.INTERNAL, "x")
                 for n in ("a", "b", "c")]
        with pytest.raises(NFFGError):
            merge_nffgs(views)

    def test_merge_rejects_duplicate_node_ids(self):
        a = _domain_view("a", DomainType.INTERNAL, "x")
        b = NFFG(id="b")
        b.add_infra("a-bb", domain=DomainType.SDN)   # collides with a's infra
        with pytest.raises(NFFGError) as excinfo:
            merge_nffgs([a, b])
        message = str(excinfo.value)
        assert "a-bb" in message
        assert "'a'" in message and "'b'" in message

    def test_merge_rejects_duplicate_sap_ids(self):
        a = linear_substrate(2, id="s1")
        b = linear_substrate(2, id="s2")    # both carry sap1/sap2 SAP nodes
        with pytest.raises(NFFGError, match="globally unique"):
            merge_nffgs([a, b])

    def test_lint_flags_what_merge_rejects(self):
        from repro.lint import lint_views

        a = _domain_view("a", DomainType.INTERNAL, "x")
        b = NFFG(id="b")
        b.add_infra("a-bb", domain=DomainType.SDN)
        diagnostics = lint_views([a, b])
        assert "MD003" in diagnostics.rule_ids()
        with pytest.raises(NFFGError):
            merge_nffgs([a, b])

    def test_merge_preserves_all_nodes_and_edges(self):
        a = linear_substrate(3, id="s1")
        b = _domain_view("b", DomainType.UN, "z")
        merged = merge_nffgs([a, b])
        assert len(merged.infras) == 4
        assert len(merged.saps) == 2


class TestSplit:
    def test_split_by_domain(self):
        a = _domain_view("a", DomainType.INTERNAL, "x")
        b = _domain_view("b", DomainType.SDN, "x")
        merged = merge_nffgs([a, b])
        merged.add_nf("fw", "firewall", num_ports=1)
        merged.place_nf("fw", "a-bb")
        parts = split_per_domain(merged)
        assert set(parts) == {DomainType.INTERNAL, DomainType.SDN}
        internal = parts[DomainType.INTERNAL]
        assert internal.has_node("fw")
        assert internal.host_of("fw") == "a-bb"
        assert not parts[DomainType.SDN].has_node("fw")

    def test_split_drops_interdomain_links(self):
        a = _domain_view("a", DomainType.INTERNAL, "x")
        b = _domain_view("b", DomainType.SDN, "x")
        merged = merge_nffgs([a, b])
        parts = split_per_domain(merged)
        for part in parts.values():
            assert not part.has_edge("interdomain-x")

    def test_split_keeps_intradomain_links(self):
        sub = linear_substrate(3, id="s")
        parts = split_per_domain(sub)
        part = parts[DomainType.INTERNAL]
        assert len(part.links) == len(sub.links)

    def test_split_includes_saps_with_tagged_ports(self):
        sub = linear_substrate(2, id="s")
        parts = split_per_domain(sub)
        assert {s.id for s in parts[DomainType.INTERNAL].saps} == \
            {"sap1", "sap2"}


class TestResources:
    def test_consumed_and_available(self):
        sub = linear_substrate(2, id="s", cpu=8)
        sub.add_nf("fw", "firewall",
                   resources=ResourceVector(cpu=3, mem=100, storage=1),
                   num_ports=1)
        sub.place_nf("fw", "s-bb0")
        assert consumed_resources(sub, "s-bb0").cpu == 3
        assert available_resources(sub, "s-bb0").cpu == 5
        assert available_resources(sub, "s-bb1").cpu == 8

    def test_remaining_nffg_reports_free(self):
        sub = linear_substrate(2, id="s", cpu=8)
        sub.add_nf("fw", "firewall", resources=ResourceVector(cpu=3),
                   num_ports=1)
        sub.place_nf("fw", "s-bb0")
        link = sub.links[0]
        link.reserved = 400.0
        remaining = remaining_nffg(sub)
        assert remaining.infra("s-bb0").resources.cpu == 5
        remaining_link = remaining.edge(link.id)
        assert remaining_link.bandwidth == link.bandwidth - 400.0
        assert remaining_link.reserved == 0.0

    def test_remaining_clamps_negative(self):
        sub = linear_substrate(1, id="s", cpu=1)
        sub.add_nf("big", "firewall", resources=ResourceVector(cpu=5),
                   num_ports=1)
        sub.infra("s-bb0").supported_types = set()
        sub.place_nf("big", "s-bb0")
        remaining = remaining_nffg(sub)
        assert remaining.infra("s-bb0").resources.cpu == 0.0


class TestStrip:
    def test_strip_removes_deployment_state(self):
        sub = linear_substrate(2, id="s")
        sub.add_nf("fw", "firewall", num_ports=2)
        sub.place_nf("fw", "s-bb0")
        sub.add_sg_hop("sap1", "1", "fw", "1", id="h1", bandwidth=5)
        sub.infra("s-bb0").port("sap-sap1").add_flowrule(
            "in_port=sap-sap1", "output=fw-1", hop_id="h1")
        sub.links[0].reserved = 10.0
        bare = strip_deployment(sub)
        summary = bare.summary()
        assert summary["nfs"] == 0
        assert summary["sg_hops"] == 0
        assert summary["dynamic_links"] == 0
        assert summary["flowrules"] == 0
        assert all(link.reserved == 0 for link in bare.links)
        assert not bare.infra("s-bb0").has_port("fw-1")

    def test_strip_keeps_topology(self):
        sub = linear_substrate(3, id="s")
        bare = strip_deployment(sub)
        assert len(bare.infras) == 3
        assert len(bare.links) == len(sub.links)
        assert {s.id for s in bare.saps} == {"sap1", "sap2"}
