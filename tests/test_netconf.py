"""Tests for the NETCONF-like management protocol."""

import pytest

from repro.netconf import NetconfClient, NetconfError, NetconfServer
from repro.netconf.messages import UNIFY_CAPABILITY
from repro.openflow.channel import ControlChannel


@pytest.fixture
def session():
    channel = ControlChannel("mgmt")
    server = NetconfServer("device", capabilities=[UNIFY_CAPABILITY],
                           initial_config={"a": 1})
    server.bind(channel)
    client = NetconfClient("manager", channel)
    client.hello()
    return client, server, channel


class TestSession:
    def test_hello_exchanges_capabilities(self, session):
        client, server, _ = session
        assert client.session_id == server.session_id
        assert client.has_capability(UNIFY_CAPABILITY)
        assert any("base:1.1" in cap for cap in client.server_capabilities)

    def test_close_session(self, session):
        client, _, _ = session
        client.close()


class TestDatastores:
    def test_get_config_running(self, session):
        client, _, _ = session
        assert client.get_config() == {"a": 1}

    def test_candidate_starts_as_running_copy(self, session):
        client, _, _ = session
        assert client.get_config("candidate") == {"a": 1}

    def test_edit_candidate_leaves_running(self, session):
        client, _, _ = session
        client.edit_config({"b": 2})
        assert client.get_config("candidate") == {"a": 1, "b": 2}
        assert client.get_config("running") == {"a": 1}

    def test_commit_promotes_candidate(self, session):
        client, _, _ = session
        client.edit_config({"b": 2})
        client.commit()
        assert client.get_config("running") == {"a": 1, "b": 2}

    def test_merge_is_deep(self, session):
        client, _, _ = session
        client.edit_config({"tree": {"x": 1}})
        client.edit_config({"tree": {"y": 2}})
        assert client.get_config("candidate")["tree"] == {"x": 1, "y": 2}

    def test_replace_operation(self, session):
        client, _, _ = session
        client.edit_config({"only": True}, operation="replace")
        assert client.get_config("candidate") == {"only": True}

    def test_delete_operation(self, session):
        client, _, _ = session
        client.edit_config(None, operation="delete")
        assert client.get_config("candidate") is None

    def test_discard_changes(self, session):
        client, _, _ = session
        client.edit_config({"b": 2})
        client.discard_changes()
        assert client.get_config("candidate") == {"a": 1}

    def test_unknown_datastore_rejected(self, session):
        client, _, _ = session
        with pytest.raises(NetconfError):
            client.get_config("startup")

    def test_edit_running_applies_immediately(self, session):
        client, server, _ = session
        applied = []
        server.on_apply(applied.append)
        client.edit_config({"x": 9}, target="running")
        assert applied == [{"a": 1, "x": 9}]


class TestCommitSemantics:
    def test_commit_fires_apply(self, session):
        client, server, _ = session
        applied = []
        server.on_apply(applied.append)
        client.edit_config({"b": 2})
        client.commit()
        assert applied == [{"a": 1, "b": 2}]

    def test_commit_validates(self, session):
        client, server, _ = session
        server.validate_config = lambda cfg: (["bad config"]
                                              if cfg and "bad" in cfg else [])
        client.edit_config({"bad": True})
        with pytest.raises(NetconfError):
            client.commit()
        # running unchanged after failed commit
        assert client.get_config("running") == {"a": 1}

    def test_validate_rpc(self, session):
        client, server, _ = session
        assert client.validate("candidate") == {"ok": True}
        server.validate_config = lambda cfg: ["nope"]
        with pytest.raises(NetconfError) as err:
            client.validate("candidate")
        assert err.value.tag == "invalid-value"


class TestLocking:
    def test_lock_unlock(self, session):
        client, _, _ = session
        client.lock()
        with pytest.raises(NetconfError) as err:
            client.lock()
        assert err.value.tag == "lock-denied"
        client.unlock()
        client.lock()


class TestErrorsAndExtensions:
    def test_unknown_rpc(self, session):
        client, _, _ = session
        with pytest.raises(NetconfError) as err:
            client.rpc("mystery-op")
        assert err.value.tag == "operation-not-supported"

    def test_custom_rpc(self, session):
        client, server, _ = session
        server.register_rpc("ping", lambda params: {"pong": params["n"]})
        assert client.rpc("ping", n=5) == {"pong": 5}

    def test_rpc_exception_becomes_error(self, session):
        client, server, _ = session
        server.register_rpc("boom", lambda params: 1 / 0)
        with pytest.raises(NetconfError) as err:
            client.rpc("boom")
        assert "ZeroDivisionError" in str(err.value)

    def test_get_includes_state(self, session):
        client, server, _ = session
        server.state_data = lambda: {"uptime": 3}
        data = client.get()
        assert data["state"] == {"uptime": 3}
        assert data["config"] == {"a": 1}

    def test_notifications(self, session):
        client, server, _ = session
        events = []
        client.on_notification = events.append
        server.notify("alarm", {"severity": "minor"})
        assert client.notifications[0].event == "alarm"
        assert events[0].data == {"severity": "minor"}

    def test_channel_counts_bytes(self, session):
        client, _, channel = session
        before = channel.stats.bytes
        client.get_config()
        assert channel.stats.bytes > before
        assert channel.stats.messages_to_b >= 2
