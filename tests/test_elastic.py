"""Tests for the elasticity controller (the UNIFY elastic-router loop)."""

import pytest

from repro.elastic import (
    ElasticityController,
    ScalingAction,
    ScalingRule,
)
from repro.netem.packet import tcp_packet
from repro.service import ServiceRequestBuilder
from repro.topo import build_emulated_testbed


def _version(level: int):
    """An 'elastic' chain: level N = N forwarder workers in series
    (stand-in for parallel scale-out, same orchestration mechanics)."""
    builder = (ServiceRequestBuilder("elastic")
               .sap("sap1").sap("sap2"))
    names = []
    for index in range(level):
        name = f"elastic-w{index}"
        builder.nf(name, "forwarder")
        names.append(name)
    builder.chain("sap1", *names, "sap2", bandwidth=1.0)
    return builder.build().sg


RULE = ScalingRule(metric_hop="elastic-hop1", scale_out_pps=100.0,
                   scale_in_pps=10.0, min_level=1, max_level=3)


@pytest.fixture
def managed():
    testbed = build_emulated_testbed(switches=2)
    report = testbed.escape.deploy(_version(1))
    assert report.success
    controller = ElasticityController(testbed.escape)
    controller.manage("elastic", RULE, _version)
    return testbed, controller


def _blast(testbed, count, spacing_ms=1.0):
    src = testbed.host("sap1")
    dst = testbed.host("sap2")
    packets = [tcp_packet(src.ip, dst.ip, tp_src=40000 + i)
               for i in range(count)]
    src.send_burst(packets, interval=spacing_ms)
    testbed.run()


class TestScalingRule:
    def test_thresholds_validated(self):
        with pytest.raises(ValueError):
            ScalingRule(metric_hop="h", scale_out_pps=10.0,
                        scale_in_pps=20.0)
        with pytest.raises(ValueError):
            ScalingRule(metric_hop="h", scale_out_pps=10.0,
                        scale_in_pps=1.0, min_level=0)


class TestControlLoop:
    def test_scale_out_on_load(self, managed):
        testbed, controller = managed
        # 200 packets over ~0.2 virtual seconds = ~1000 pps >> 100
        _blast(testbed, 200)
        events = controller.poll()
        assert len(events) == 1
        assert events[0].action == ScalingAction.OUT
        assert controller.managed_level("elastic") == 2
        assert events[0].observed_pps > RULE.scale_out_pps
        # the scaled version is actually deployed: 2 workers attached
        attached = [nf for switch in testbed.emu.switches.values()
                    for nf in switch.attached_nfs()]
        assert len(attached) == 2

    def test_scale_in_when_idle(self, managed):
        testbed, controller = managed
        _blast(testbed, 200)
        controller.poll()
        assert controller.managed_level("elastic") == 2
        # idle period: advance virtual time with a single slow packet
        testbed.network.simulator.schedule(10_000.0, lambda: None)
        testbed.run()
        events = controller.poll()
        assert events and events[0].action == ScalingAction.IN
        assert controller.managed_level("elastic") == 1

    def test_respects_max_level(self, managed):
        testbed, controller = managed
        for _ in range(5):
            _blast(testbed, 300)
            controller.poll()
        assert controller.managed_level("elastic") <= RULE.max_level

    def test_no_action_in_deadband(self, managed):
        testbed, controller = managed
        # ~50 pps: between scale_in (10) and scale_out (100)
        _blast(testbed, 50, spacing_ms=20.0)
        assert controller.poll() == []
        assert controller.managed_level("elastic") == 1

    def test_blocked_scaling_reports(self, managed):
        testbed, controller = managed

        def broken_builder(level):
            version = _version(level)
            for nf in version.nfs:
                nf.functional_type = "warpdrive"
            return version

        controller._managed["elastic"].version_builder = broken_builder
        _blast(testbed, 200)
        events = controller.poll()
        assert events[0].action == ScalingAction.BLOCKED
        assert controller.managed_level("elastic") == 1
        # traffic still flows through the old version
        _blast(testbed, 2)
        assert len(testbed.host("sap2").received) >= 2

    def test_manage_requires_deployed_service(self):
        testbed = build_emulated_testbed()
        controller = ElasticityController(testbed.escape)
        with pytest.raises(ValueError):
            controller.manage("ghost", RULE, _version)

    def test_version_builder_must_keep_id(self, managed):
        testbed, controller = managed

        def renaming_builder(level):
            version = _version(level)
            version.id = "other"
            return version

        controller._managed["elastic"].version_builder = renaming_builder
        _blast(testbed, 200)
        with pytest.raises(ValueError):
            controller.poll()

    def test_unmanage_stops_polling(self, managed):
        testbed, controller = managed
        controller.unmanage("elastic")
        _blast(testbed, 200)
        assert controller.poll() == []
