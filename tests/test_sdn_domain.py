"""Tests for the POX-like controller and the legacy SDN domain."""

import pytest

from repro.netem import Network
from repro.netem.packet import tcp_packet
from repro.nffg.model import InfraType
from repro.sdnnet import SDNDomain
from repro.sdnnet.pox import (
    Event,
    EventBus,
)
from repro.infra.tags import vlan_for_hop


class TestEventBus:
    def test_publish_subscribe(self):
        bus = EventBus()
        seen = []
        bus.subscribe("X", seen.append)
        bus.publish(Event("X", {"k": 1}))
        bus.publish(Event("Y"))
        assert len(seen) == 1 and seen[0].data == {"k": 1}
        assert bus.events_published == 2

    def test_multiple_subscribers(self):
        bus = EventBus()
        seen = []
        bus.subscribe("X", lambda e: seen.append("a"))
        bus.subscribe("X", lambda e: seen.append("b"))
        bus.publish(Event("X"))
        assert seen == ["a", "b"]


@pytest.fixture
def sdn():
    net = Network()
    dom = SDNDomain("sdn", net, switch_ids=["sw0", "sw1", "sw2"],
                    links=[("sw0", "sw1"), ("sw1", "sw2")])
    dom.add_sap("a", "sw0")
    dom.add_sap("b", "sw2")
    return net, dom


class TestL2Learning:
    def test_learning_enables_two_way_traffic(self):
        net = Network()
        dom = SDNDomain("sdn", net, switch_ids=["sw0"],
                        enable_l2_learning=True)
        h1 = dom.add_sap("a", "sw0")
        h2 = dom.add_sap("b", "sw0")
        packet = tcp_packet(h1.ip, h2.ip, size=100)
        packet.eth_dst = h2.mac
        h1.send(packet)
        net.run()
        # first packet flooded, reaches h2
        assert len(h2.received) == 1
        reply = tcp_packet(h2.ip, h1.ip, size=100)
        reply.eth_dst = h1.mac
        h2.send(reply)
        net.run()
        assert len(h1.received) == 1
        learner = dom.pox.components["l2_learning"]
        assert learner.installs >= 1


class TestTopologyAndPathPusher:
    def test_shortest_path(self, sdn):
        _, dom = sdn
        assert dom.topology.shortest_path("sw0", "sw2") == \
            ["sw0", "sw1", "sw2"]

    def test_push_path_installs_flows(self, sdn):
        net, dom = sdn
        path = dom.path_pusher.push_path(
            ingress_dpid="sw0", ingress_port="sap-a",
            egress_dpid="sw2", egress_port="sap-b", cookie="svc")
        assert path == ["sw0", "sw1", "sw2"]
        assert all(dom.switches[dpid].flow_count() == 1 for dpid in path)

    def test_pushed_path_carries_traffic(self, sdn):
        net, dom = sdn
        dom.path_pusher.push_path(
            ingress_dpid="sw0", ingress_port="sap-a",
            egress_dpid="sw2", egress_port="sap-b")
        h1, h2 = dom.sap_hosts["a"], dom.sap_hosts["b"]
        h1.send(tcp_packet(h1.ip, h2.ip))
        net.run()
        assert len(h2.received) == 1
        assert h2.received[0].trace[1:-1] == ["sw0", "sw1", "sw2"]

    def test_vlan_matched_path(self, sdn):
        net, dom = sdn
        vlan = vlan_for_hop("hop9")
        dom.path_pusher.push_path(
            ingress_dpid="sw0", ingress_port="sap-a",
            egress_dpid="sw2", egress_port="sap-b",
            match_vlan=vlan, strip_vlan_at_egress=True)
        h1, h2 = dom.sap_hosts["a"], dom.sap_hosts["b"]
        tagged = tcp_packet(h1.ip, h2.ip)
        tagged.vlan = vlan
        h1.send(tagged)
        untagged = tcp_packet(h1.ip, h2.ip)
        h1.send(untagged)
        net.run()
        assert len(h2.received) == 1
        assert h2.received[0].vlan is None

    def test_remove_by_cookie(self, sdn):
        net, dom = sdn
        dom.path_pusher.push_path(
            ingress_dpid="sw0", ingress_port="sap-a",
            egress_dpid="sw2", egress_port="sap-b", cookie="svc1")
        dom.path_pusher.remove_by_cookie("svc1")
        assert all(switch.flow_count() == 0
                   for switch in dom.switches.values())


class TestDomainView:
    def test_switches_are_forwarding_only(self, sdn):
        _, dom = sdn
        view = dom.domain_view()
        assert all(infra.infra_type == InfraType.SDN_SWITCH
                   for infra in view.infras)
        assert all(not infra.supports("firewall") for infra in view.infras)

    def test_view_links_and_saps(self, sdn):
        _, dom = sdn
        view = dom.domain_view()
        assert len(view.infras) == 3
        assert {sap.id for sap in view.saps} == {"a", "b"}

    def test_handoff_tags(self, sdn):
        _, dom = sdn
        dom.add_handoff("peer", "sw1")
        view = dom.domain_view()
        assert view.infra("sw1").port("sap-peer").sap_tag == "peer"
