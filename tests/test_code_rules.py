"""Tests for the code-scope (CC) lint rules and the rule-id namespace."""

import textwrap

import pytest

from repro.lint import (
    RESERVED_PREFIXES,
    LintRule,
    RuleRegistry,
    Severity,
    default_registry,
    lint_source,
    self_lint,
)


def lint(source):
    return lint_source(textwrap.dedent(source), path="synthetic.py")


def codes(diagnostics):
    return [d.rule_id for d in diagnostics]


class TestCC001BlockingUnderLock:
    def test_sleep_under_lock_flagged(self):
        diags = lint("""
            import time

            class Plan:
                def before(self):
                    with self._lock:
                        time.sleep(0.1)
            """)
        assert codes(diags) == ["CC001"]
        assert diags[0].line == 7

    def test_sleep_outside_lock_clean(self):
        diags = lint("""
            import time

            class Plan:
                def before(self):
                    with self._lock:
                        delay = 0.1
                    time.sleep(delay)
            """)
        assert codes(diags) == []

    def test_adapter_io_under_lock_flagged(self):
        diags = lint("""
            class Dispatcher:
                def push(self, adapter, nffg):
                    with self._guard:
                        adapter.install(nffg)
            """)
        assert codes(diags) == ["CC001"]

    def test_nested_function_bodies_not_attributed(self):
        # a closure defined (not called) under the lock is not a
        # blocking call at that point
        diags = lint("""
            import time

            class Plan:
                def before(self):
                    with self._lock:
                        def later():
                            time.sleep(0.1)
                        self._callback = later
            """)
        assert codes(diags) == []

    def test_nested_with_mutex_variants(self):
        diags = lint("""
            import time

            class Kernel:
                def step(self):
                    with self._schedule_mutex:
                        time.sleep(0.5)
            """)
        assert codes(diags) == ["CC001"]


class TestCC002IterateWhileMutate:
    def test_pop_during_items_flagged(self):
        # the shape of the PR 4 reconcile bug
        diags = lint("""
            class Cal:
                def reconcile(self):
                    for key, value in self._pending.items():
                        if value.done:
                            self._pending.pop(key)
            """)
        assert codes(diags) == ["CC002"]

    def test_snapshot_iteration_clean(self):
        diags = lint("""
            class Cal:
                def reconcile(self):
                    for key in list(self._pending):
                        self._pending.pop(key)
                    for key in sorted(self._queue):
                        self._queue.discard(key)
                    for key, value in self._pending.copy().items():
                        self._pending.pop(key)
            """)
        assert codes(diags) == []

    def test_set_mutation_during_iteration_flagged(self):
        diags = lint("""
            def drain(active):
                for item in active:
                    if item.stale:
                        active.remove(item)
            """)
        assert codes(diags) == ["CC002"]

    def test_del_subscript_flagged(self):
        diags = lint("""
            def drain(table):
                for key in table:
                    del table[key]
            """)
        assert codes(diags) == ["CC002"]

    def test_subscript_assign_is_warning(self):
        diags = lint("""
            def bump(table):
                for key in table:
                    table[key] = table[key] + 1
            """)
        assert codes(diags) == ["CC002"]
        assert diags[0].severity is Severity.WARNING

    def test_mutating_other_container_clean(self):
        diags = lint("""
            def copy_keys(src, dst):
                for key in src:
                    dst.add(key)
            """)
        assert codes(diags) == []


class TestCC003InconsistentLockOrder:
    def test_reversed_nesting_flagged(self):
        diags = lint("""
            class Orchestrator:
                def submit(self):
                    with self._book_lock:
                        with self._view_lock:
                            pass

                def teardown(self):
                    with self._view_lock:
                        with self._book_lock:
                            pass
            """)
        assert codes(diags) == ["CC003"]
        assert "_book_lock" in diags[0].message
        assert "_view_lock" in diags[0].message

    def test_consistent_nesting_clean(self):
        diags = lint("""
            class Orchestrator:
                def submit(self):
                    with self._book_lock:
                        with self._view_lock:
                            pass

                def teardown(self):
                    with self._book_lock:
                        with self._view_lock:
                            pass
            """)
        assert codes(diags) == []

    def test_separate_classes_not_compared(self):
        # different classes own different locks even if the attribute
        # names collide; no cross-class pairing
        diags = lint("""
            class A:
                def f(self):
                    with self._x_lock:
                        with self._y_lock:
                            pass

            class B:
                def g(self):
                    with self._y_lock:
                        with self._x_lock:
                            pass
            """)
        assert codes(diags) == []


class TestCC004MutableDefault:
    def test_literal_defaults_flagged(self):
        diags = lint("""
            def f(items=[]):
                return items

            def g(table={}, tags=set()):
                return table, tags
            """)
        assert codes(diags) == ["CC004", "CC004", "CC004"]

    def test_none_default_clean(self):
        diags = lint("""
            def f(items=None, count=0, name=""):
                return items or []
            """)
        assert codes(diags) == []

    def test_keyword_only_default_flagged(self):
        diags = lint("""
            def f(*, hooks=list()):
                return hooks
            """)
        assert codes(diags) == ["CC004"]


class TestCC005GuardedBy:
    def test_unguarded_write_flagged(self):
        diags = lint("""
            class Plan:
                def __init__(self):
                    self.specs = []  # guarded-by: _lock
                    self._lock = object()

                def add(self, spec):
                    self.specs.append(spec)
            """)
        assert codes(diags) == ["CC005"]
        assert "specs" in diags[0].message

    def test_write_under_owning_lock_clean(self):
        diags = lint("""
            class Plan:
                def __init__(self):
                    self.specs = []  # guarded-by: _lock
                    self._lock = object()

                def add(self, spec):
                    with self._lock:
                        self.specs.append(spec)
            """)
        assert codes(diags) == []

    def test_write_under_wrong_lock_flagged(self):
        diags = lint("""
            class Plan:
                def __init__(self):
                    self.specs = []  # guarded-by: _lock
                    self._lock = object()
                    self._other_lock = object()

                def add(self, spec):
                    with self._other_lock:
                        self.specs.append(spec)
            """)
        assert codes(diags) == ["CC005"]

    def test_init_writes_exempt(self):
        # construction is single-threaded; only post-init writes need
        # the lock
        diags = lint("""
            class Plan:
                def __init__(self):
                    self.specs = []  # guarded-by: _lock
                    self.specs = ["seed"]
                    self._lock = object()
            """)
        assert codes(diags) == []

    def test_augassign_and_del_flagged(self):
        diags = lint("""
            class Stats:
                def __init__(self):
                    self.total = 0  # guarded-by: _lock
                    self._lock = object()

                def bump(self):
                    self.total += 1

                def wipe(self):
                    del self.total
            """)
        assert codes(diags) == ["CC005", "CC005"]

    def test_reads_not_flagged(self):
        diags = lint("""
            class Stats:
                def __init__(self):
                    self.total = 0  # guarded-by: _lock
                    self._lock = object()

                def peek(self):
                    return self.total
            """)
        assert codes(diags) == []


class TestCC006LeakedSpans:
    def test_bare_span_call_flagged(self):
        diags = lint("""
            from repro import obs

            def deploy(self, service):
                obs.span("deploy", service=service.id)
                return self._deploy(service)
            """)
        assert codes(diags) == ["CC006"]
        assert "never closed" in diags[0].message

    def test_assigned_but_never_closed_flagged(self):
        diags = lint("""
            def deploy(tracer):
                span = tracer.start_span("deploy")
                span.set(outcome="ok")
            """)
        assert codes(diags) == ["CC006"]

    def test_with_statement_clean(self):
        diags = lint("""
            from repro import obs

            def deploy(service):
                with obs.span("deploy", service=service.id) as root:
                    root.set(outcome="ok")
            """)
        assert codes(diags) == []

    def test_assigned_then_with_clean(self):
        diags = lint("""
            def deploy(tracer):
                span = tracer.start_span("deploy")
                with span:
                    pass
            """)
        assert codes(diags) == []

    def test_assigned_then_end_in_finally_clean(self):
        diags = lint("""
            def deploy(tracer):
                span = tracer.start_span("deploy")
                try:
                    work()
                finally:
                    span.end()
            """)
        assert codes(diags) == []

    def test_returned_span_is_callers_problem(self):
        # obs.span() itself hands the span to the caller; the opener
        # is exempt when the call is returned directly
        diags = lint("""
            def span(name, **attrs):
                current = _STATE
                if current is None:
                    return NOOP_SPAN
                return current.tracer.start_span(name, attrs)
            """)
        assert codes(diags) == []

    def test_nested_function_not_credited_with_outer_close(self):
        # the inner function leaks its span even though the outer one
        # closes a same-named variable
        diags = lint("""
            def outer(tracer):
                span = tracer.start_span("outer")
                span.end()

                def inner():
                    span = tracer.start_span("inner")
            """)
        assert codes(diags) == ["CC006"]

    def test_unrelated_calls_not_flagged(self):
        diags = lint("""
            def work(nffg):
                Span(tracer, "x")
                nffg.copy()
                lifespan("x")
            """)
        assert codes(diags) == []


class TestCC007JournaledWrites:
    def test_rogue_method_write_flagged(self):
        diags = lint("""
            class Books:
                def __init__(self):
                    self._deployed = {}  # journaled: commit_mapping remove_service

                def commit_mapping(self, sid, data):
                    self._deployed[sid] = data

                def sneaky_drop(self, sid):
                    self._deployed.pop(sid, None)
            """)
        assert codes(diags) == ["CC007"]
        assert "sneaky_drop" in diags[0].message

    def test_listed_mutators_are_clean(self):
        diags = lint("""
            class Books:
                def __init__(self):
                    self._deployed = {}  # journaled: commit_mapping remove_service

                def commit_mapping(self, sid, data):
                    self._deployed[sid] = data

                def remove_service(self, sid):
                    self._deployed.pop(sid, None)
            """)
        assert codes(diags) == []

    def test_unscoped_mutator_call_flagged(self):
        diags = lint("""
            class Orchestrator:
                def teardown(self, sid):
                    self.cal.remove_service(sid)
            """)
        assert codes(diags) == ["CC007"]
        assert "remove_service" in diags[0].message

    def test_call_inside_intent_scope_clean(self):
        diags = lint("""
            class Orchestrator:
                def teardown(self, sid):
                    with self.journal.intent("teardown", sid) as intent:
                        self.cal.remove_service(sid)
                        intent.commit({sid: None})
            """)
        assert codes(diags) == []

    def test_intent_parameter_exempts_helper(self):
        # helpers receiving the open scope as a parameter are running
        # inside the caller's intent — cross-function analysis is out
        # of scope for a lexical rule, the parameter is the contract
        diags = lint("""
            class Orchestrator:
                def _rollback(self, sid, intent):
                    self.cal.remove_service(sid)
            """)
        assert codes(diags) == []

    def test_journaled_comment_exempts_call_line(self):
        diags = lint("""
            class Orchestrator:
                def emergency_purge(self, sid):
                    self.cal.remove_service(sid)  # journaled: remove_service
            """)
        assert codes(diags) == []

    def test_self_receiver_calls_are_clean(self):
        # calling the mutator on *self* is the mutator's own class —
        # part (a) already polices writes inside it
        diags = lint("""
            class Registry:
                def restore_service(self, sid, data):
                    self._apply(sid, data)

                def import_state(self, state):
                    for sid, data in state.items():
                        self.restore_service(sid, data)
            """)
        assert codes(diags) == []

    def test_call_outside_with_body_flagged(self):
        diags = lint("""
            class Orchestrator:
                def teardown(self, sid):
                    with self.journal.intent("teardown", sid):
                        pass
                    self.cal.remove_service(sid)
            """)
        assert codes(diags) == ["CC007"]


class TestSelfLint:
    def test_package_is_clean(self):
        # acceptance criterion: `repro check --self` reports zero
        # violations on HEAD
        diags = self_lint()
        assert list(diags.errors) == [], [str(d) for d in diags.errors]

    def test_syntax_error_raises(self):
        with pytest.raises(SyntaxError):
            lint_source("def broken(:\n", path="broken.py")


class TestRuleNamespace:
    def make_rule(self, rule_id, category="code", scope="code"):
        return LintRule(id=rule_id, title="test rule",
                        severity=Severity.ERROR, category=category,
                        check=lambda ctx: [], scope=scope)

    def test_duplicate_id_rejected(self):
        registry = RuleRegistry()
        registry.register(self.make_rule("CC901"))
        with pytest.raises(ValueError, match="duplicate"):
            registry.register(self.make_rule("CC901"))

    def test_bad_id_format_rejected(self):
        registry = RuleRegistry()
        for bad in ("CC1", "cc001", "C0001", "CCC01", "CC0001", ""):
            with pytest.raises(ValueError):
                registry.register(self.make_rule(bad))

    def test_mp_prefix_reserved_for_mapping_validator(self):
        registry = RuleRegistry()
        with pytest.raises(ValueError, match="MP"):
            registry.register(self.make_rule("MP001", category="mapping"))

    def test_reserved_prefix_wrong_category_rejected(self):
        registry = RuleRegistry()
        with pytest.raises(ValueError, match="reserved"):
            registry.register(self.make_rule("NF901", category="code"))

    def test_reserved_prefix_right_category_accepted(self):
        registry = RuleRegistry()
        registry.register(self.make_rule("NF901", category="graph",
                                         scope="graph"))
        assert "NF901" in registry

    def test_unreserved_prefix_accepted(self):
        registry = RuleRegistry()
        registry.register(self.make_rule("ZZ001", category="custom"))
        assert "ZZ001" in registry

    def test_invalid_scope_rejected(self):
        registry = RuleRegistry()
        with pytest.raises(ValueError, match="scope"):
            registry.register(self.make_rule("CC902", scope="bogus"))

    def test_default_registry_collision_free_and_reserved(self):
        rules = list(default_registry())
        ids = [rule.id for rule in rules]
        assert len(ids) == len(set(ids))
        for rule in rules:
            prefix = rule.id[:2]
            assert prefix in RESERVED_PREFIXES, rule.id
            assert RESERVED_PREFIXES[prefix] == rule.category, rule.id
