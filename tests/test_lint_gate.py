"""The ESCAPE orchestrator's pre-deploy static-analysis gate."""

from repro.lint import Severity
from repro.nffg import NFFGBuilder
from repro.topo import build_emulated_testbed


def service(id="svc", *, cpu=1.0):
    return (NFFGBuilder(id).sap("sap1").sap("sap2")
            .nf(f"{id}-fw", "firewall", cpu=cpu)
            .chain("sap1", f"{id}-fw", "sap2", bandwidth=1.0)
            .requirement("sap1", "sap2", max_delay=100.0).build())


def test_clean_service_passes_gate_and_deploys():
    testbed = build_emulated_testbed(switches=2)
    report = testbed.escape.deploy(service("ok"))
    assert report.success
    assert report.lint == []
    assert "ok" in testbed.escape.deployed_services()


def test_error_finding_blocks_deployment():
    testbed = build_emulated_testbed(switches=2)
    report = testbed.escape.deploy(service("bad", cpu=-3.0))
    assert not report.success
    assert "lint gate rejected service graph" in report.error
    assert "RS001" in report.error
    assert report.lint.errors
    assert "bad" not in testbed.escape.deployed_services()
    # nothing was mapped or pushed
    assert report.mapping is None
    assert report.adapters == []


def test_gate_records_warnings_without_blocking():
    testbed = build_emulated_testbed(switches=2)
    sg = service("warned")
    sg.add_sap("sap9")                 # NF003: unreachable SAP (warning)
    report = testbed.escape.deploy(sg)
    assert report.success
    assert "NF003" in report.lint.rule_ids()
    assert report.lint.worst() is Severity.WARNING


def test_warning_threshold_blocks_warned_service():
    testbed = build_emulated_testbed(switches=2)
    testbed.escape.lint_gate = Severity.WARNING
    sg = service("strict")
    sg.add_sap("sap9")
    report = testbed.escape.deploy(sg)
    assert not report.success
    assert "NF003" in report.error


def test_disabled_gate_skips_verification():
    testbed = build_emulated_testbed(switches=2)
    testbed.escape.lint_gate = None
    report = testbed.escape.deploy(service("ungated", cpu=-3.0))
    assert "lint gate" not in (report.error or "")
    assert report.lint == []


def test_update_gate_keeps_previous_version():
    testbed = build_emulated_testbed(switches=2)
    assert testbed.escape.deploy(service("app")).success
    broken = service("app", cpu=-3.0)
    report = testbed.escape.update(broken)
    assert not report.success
    assert "update rejected by lint gate" in report.error
    assert "previous version kept" in report.error
    assert "app" in testbed.escape.deployed_services()
