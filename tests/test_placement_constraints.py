"""Tests for placement constraints (domain affinity, pinning,
anti-affinity) across all embedders and end to end."""

import pytest

from repro.mapping import (
    BacktrackingEmbedder,
    DelayAwareEmbedder,
    GreedyEmbedder,
    validate_mapping,
)
from repro.nffg.builder import linear_substrate
from repro.service import ServiceRequestBuilder
from repro.topo import build_reference_multidomain
from repro.cli import ScenarioRunner

ALL_EMBEDDERS = [GreedyEmbedder, BacktrackingEmbedder, DelayAwareEmbedder]


def _substrate():
    return linear_substrate(3, id="s", supported_types=["firewall", "nat"])


class TestPinning:
    @pytest.mark.parametrize("embedder_cls", ALL_EMBEDDERS)
    def test_pin_to_specific_infra(self, embedder_cls):
        substrate = _substrate()
        request = (ServiceRequestBuilder("pin")
                   .sap("sap1").sap("sap2")
                   .nf("pin-fw", "firewall", pin_to="s-bb2")
                   .chain("sap1", "pin-fw", "sap2", bandwidth=1.0).build())
        result = embedder_cls().map(request.sg, substrate)
        assert result.success, result.failure_reason
        assert result.nf_placement["pin-fw"] == "s-bb2"

    def test_pin_to_missing_node_fails(self):
        substrate = _substrate()
        request = (ServiceRequestBuilder("pin2")
                   .sap("sap1").sap("sap2")
                   .nf("p2-fw", "firewall", pin_to="nowhere")
                   .chain("sap1", "p2-fw", "sap2").build())
        result = GreedyEmbedder().map(request.sg, substrate)
        assert not result.success


class TestAntiAffinity:
    @pytest.mark.parametrize("embedder_cls", ALL_EMBEDDERS)
    def test_two_nfs_forced_apart(self, embedder_cls):
        substrate = _substrate()
        request = (ServiceRequestBuilder("aa")
                   .sap("sap1").sap("sap2")
                   .nf("aa-fw", "firewall")
                   .nf("aa-nat", "nat", not_with=["aa-fw"])
                   .chain("sap1", "aa-fw", "aa-nat", "sap2",
                          bandwidth=1.0).build())
        result = embedder_cls().map(request.sg, substrate)
        assert result.success, result.failure_reason
        assert result.nf_placement["aa-fw"] != result.nf_placement["aa-nat"]

    def test_anti_affinity_unsatisfiable_fails(self):
        substrate = linear_substrate(1, id="one",
                                     supported_types=["firewall", "nat"])
        request = (ServiceRequestBuilder("aa2")
                   .sap("sap1").sap("sap2")
                   .nf("a-fw", "firewall")
                   .nf("a-nat", "nat", not_with=["a-fw"])
                   .chain("sap1", "a-fw", "a-nat", "sap2").build())
        result = GreedyEmbedder().map(request.sg, substrate)
        assert not result.success


class TestDomainAffinity:
    def test_nf_forced_into_cloud(self):
        testbed = build_reference_multidomain()
        runner = ScenarioRunner(testbed)
        request = (ServiceRequestBuilder("dom")
                   .sap("sap1").sap("sap3")
                   .nf("dom-fw", "firewall", domain="OPENSTACK")
                   .chain("sap1", "dom-fw", "sap3", bandwidth=1.0).build())
        report, traffic = runner.deploy_and_probe(request, "sap1", "sap3",
                                                  count=2)
        assert report.success, report.error
        assert report.mapping.nf_placement["dom-fw"] == "cloud-bisbis"
        assert report.activation_virtual_ms >= 1500.0  # VM boot paid
        assert traffic.delivered == 2

    def test_unknown_domain_fails_cleanly(self):
        testbed = build_reference_multidomain()
        request = (ServiceRequestBuilder("dom2")
                   .sap("sap1").sap("sap2")
                   .nf("d2-fw", "firewall", domain="MARS")
                   .chain("sap1", "d2-fw", "sap2").build())
        report = testbed.escape.deploy(request.sg)
        assert not report.success


class TestValidatorChecksConstraints:
    def test_validator_flags_violated_pin(self):
        substrate = _substrate()
        request = (ServiceRequestBuilder("v")
                   .sap("sap1").sap("sap2")
                   .nf("v-fw", "firewall", pin_to="s-bb2")
                   .chain("sap1", "v-fw", "sap2", bandwidth=1.0).build())
        result = GreedyEmbedder().map(request.sg, substrate)
        result.nf_placement["v-fw"] = "s-bb0"  # violate post-hoc
        problems = validate_mapping(request.sg, substrate, result)
        assert any("pinned" in p for p in problems.as_strings())

    def test_validator_flags_violated_anti_affinity(self):
        substrate = _substrate()
        request = (ServiceRequestBuilder("v2")
                   .sap("sap1").sap("sap2")
                   .nf("v2-fw", "firewall")
                   .nf("v2-nat", "nat", not_with=["v2-fw"])
                   .chain("sap1", "v2-fw", "v2-nat", "sap2",
                          bandwidth=1.0).build())
        result = GreedyEmbedder().map(request.sg, substrate)
        assert result.success
        result.nf_placement["v2-nat"] = result.nf_placement["v2-fw"]
        problems = validate_mapping(request.sg, substrate, result)
        assert any("anti-affinity" in p for p in problems.as_strings())
