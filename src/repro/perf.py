"""Lightweight control-plane instrumentation.

A process-global :class:`Counters` registry that the hot paths report
into: DoV rebuild/incremental-apply counts, NFFG clone sizes, path-cache
hits and misses.  Reading it costs nothing when nobody looks; updating
it is a dict increment — cheap enough to leave enabled everywhere.
Alongside the counters lives a :class:`MetricsRegistry` of fixed-bucket
histograms and gauges for the latency distributions the flat counters
cannot express (p50/p95/p99 in the benches and ``repro metrics``).

Counter names are dotted strings, grouped by subsystem::

    dov.rebuild              full merge_nffgs rebuilds of the global view
    dov.apply_inplace        incremental per-service applies
    dov.remove_inplace       incremental per-service removals
    dov.fallback             in-place maintenance bailed out to a rebuild
    dov.replay_skipped       booked services left out of a degraded merge
                             (their domain's substrate was unreachable)
    nffg.copy.calls          NFFG.copy() fast-path invocations
    nffg.copy.nodes          total nodes cloned by NFFG.copy()
    nffg.copy.edges          total edges cloned by NFFG.copy()
    pathcache.hit            routes served from the shared path cache
    pathcache.miss           routes that needed a fresh Dijkstra
    pathcache.invalidate     whole-cache invalidations (topology change)

Push-pipeline counters (concurrent delta-based domain programming)::

    push.delta               installs shipped as an edit-config patch
    push.full                installs shipped as a full-config replace
    push.delta_noop          installs skipped entirely (empty diff)
    push.bytes_saved         full-config bytes minus delta bytes, summed
    push.delta_fallback      delta attempts the server rejected
                             (stale base digest -> full resync)
    dispatch.parallel        dispatcher fan-outs that used worker threads
    dispatch.inline          dispatcher batches run on the caller thread
                             (single op, or serial mode)

Sharded-CAL counters (scale-aware view maintenance + push planning)::

    cal.shard.refresh        shard sub-views refetched and re-merged
                             (the shard was stale at a stitch)
    cal.shard.reuse          shard sub-views served from the cache at a
                             stitch (no member refetched)
    cal.shard.stitch         global DoV stitches from shard sub-views
    cal.push.planned         domain pushes submitted by the push planner
    cal.push.skipped         registered domains the planner did not
                             contact (their config cannot have changed)
    cal.remaining.rebuild    northbound remaining-capacity views derived
                             from scratch off the DoV
    cal.remaining.reuse      resource_view() calls served from the
                             incrementally maintained cache

Mapping-index counters (the CAL-owned :class:`SubstrateIndex` that
seeds embedding runs — candidate sets, capacity buckets, copy-on-write
ledger bases; see :mod:`repro.mapping.index`)::

    mapping.index.hit        mapping runs seeded from the substrate index
                             (shared topology tables + O(1) ledger)
    mapping.index.skip       an index was offered but covered a different
                             view object (full per-run rescan fallback)
    mapping.index.apply      deploy/teardown deltas folded into the index
                             in place (mirrors cal.remaining maintenance)
    mapping.index.rebuild    full index rebuilds from a resource view
    mapping.index.stale      inconsistencies that marked the index stale
                             (next sync rebuilds)
    mapping.index.candidates candidate-set queries served by the index
    mapping.index.fallback   pruned candidate scans that found no feasible
                             host and widened to the full supporting set
    mapping.index.verify     rebuild-and-compare verification passes
    mapping.index.verify_failed  verifications that found a divergence

Resilience counters (all zero on a fault-free run)::

    resilience.faults.injected    faults fired by a FaultPlan (+ per-kind
                                  resilience.faults.<error|drop|delay|...>)
    resilience.retry.attempts     retries scheduled after a transient failure
    resilience.retry.nonretryable failures classified as not worth retrying
    resilience.retry.deadline     retry loops stopped by the overall deadline
    resilience.retry.giveup       operations that failed after all attempts
    resilience.breaker.trip       circuit breakers tripped open
    resilience.breaker.halfopen   open -> half-open recoveries
    resilience.breaker.close      half-open probes that closed the breaker
    resilience.breaker.skip       pushes skipped because a breaker was open
    resilience.breaker.reconcile  queued configs successfully replayed
    resilience.view.quarantined   view merges that excluded an open domain
    resilience.view.unreachable   view fetches that failed after retries
    resilience.rollback.failures  rollback pushes that themselves failed
    resilience.heal.domains_lost  domains absent when heal() ran
    resilience.heal.evacuations   services evacuated off a lost domain

Recovery counters (write-ahead intent journal + crash recovery; the
``recovery.journal.*`` and ``recovery.intent.*`` names tick on every
lifecycle operation, the rest only when crashes are injected or
``recover()`` runs)::

    recovery.journal.appends      records appended to the intent journal
    recovery.journal.checkpoints  checkpoints folded into the journal
    recovery.journal.truncated    journal records dropped by checkpoints
    recovery.journal.loaded       journal files re-opened for recovery
    recovery.intent.committed     intents that reached their commit record
    recovery.intent.aborted       intents closed by an abort record
    recovery.crash.injected       seeded CrashPlan kills between appends
    recovery.runs                 recover() invocations (plus
                                  recovery.runs.dry for --dry-run passes)
    recovery.restored             services rebuilt from checkpoint+replay
    recovery.inflight.rolled_back in-flight intents discarded by replay
    recovery.pending.restored     pending-replay domains re-queued by a
                                  resilience-state import
    recovery.reconcile.<removed|replaced|kept>
                                  import_state(reconcile=True) diff fates

Observability counters (``repro.obs``; all zero unless tracing is
enabled via ``REPRO_OBS=1`` or ``obs.enable()``)::

    trace.spans              spans started by the tracer
    trace.dropped            finished spans evicted from the bounded ring
    obs.events               structured events appended to the event log
    obs.events_dropped       events evicted from the bounded event ring

Histograms and gauges live in the module-global :data:`metrics`
registry and — like the counters — stay enabled everywhere (an
``observe()`` is a bucket increment under a small lock)::

    deploy.latency_s         end-to-end deploy() wall clock (histogram)
    push.latency_s           per-domain push wall clock, labelled by
                             {domain=...} (histogram)
    retry.backoff_s          per-retry backoff delay (histogram)
    dov.rebuild_s            from-scratch DoV merge time (histogram)
    map.latency_s            RO orchestrate() wall clock, labelled by
                             {embedder=...} (histogram)
    cal.shard.stitch_s       global stitch time over shard sub-views
                             (histogram)
    recovery.latency_s       recover() end-to-end wall clock (histogram)
    cal.services_deployed    services currently booked in the CAL (gauge)
    cal.pending_reconcile    domains holding stale config (gauge)

Use :func:`snapshot` to read every counter at once (e.g. in benchmark
tables) and :func:`reset` between measurement windows; :func:`observe`
and :func:`set_gauge` are the one-line recording helpers.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, Iterable, Optional, Tuple

from repro.sanitize import make_lock


class Counters:
    """A named-counter registry with per-name totals.

    Thread-safe: the concurrent push dispatcher increments counters from
    worker threads, so every mutation takes a small lock.  Reads through
    :meth:`snapshot` copy under the same lock.
    """

    def __init__(self) -> None:
        self._counts: Dict[str, float] = {}  # guarded-by: _lock
        self._lock = make_lock("perf.counters")

    def incr(self, name: str, amount: float = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> float:
        with self._lock:
            return self._counts.get(name, 0)

    def snapshot(self, prefix: str = "") -> dict[str, float]:
        """Copy of the current counters, optionally filtered by prefix."""
        with self._lock:
            return {name: value
                    for name, value in sorted(self._counts.items())
                    if name.startswith(prefix)}

    def reset(self, prefix: str = "") -> None:
        """Zero all counters (or only those under ``prefix``)."""
        with self._lock:
            if not prefix:
                self._counts.clear()
                return
            for name in [n for n in self._counts if n.startswith(prefix)]:
                del self._counts[name]

    def __repr__(self) -> str:
        return f"<Counters {len(self._counts)} names>"


#: default histogram buckets: latency in seconds, 0.5 ms .. 10 s plus
#: an implicit overflow bucket — wide enough for a deploy, fine enough
#: for a single domain push
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: labels are stored as a sorted tuple of (key, value) pairs
Labels = Tuple[Tuple[str, str], ...]


class Histogram:
    """A fixed-bucket histogram with quantile estimation.

    Observations land in the first bucket whose upper bound is >= the
    value (plus one overflow bucket past the last bound).  Quantiles
    interpolate linearly inside the winning bucket and are clamped to
    the observed min/max, so a histogram fed a single value reports
    that value at every quantile.
    """

    def __init__(self, name: str, *,
                 buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_S,
                 labels: Labels = ()) -> None:
        self.name = name
        self.labels = tuple(labels)
        self.bounds = tuple(sorted(float(bound) for bound in buckets))
        if not self.bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self._counts = [0] * (len(self.bounds) + 1)  # guarded-by: _lock
        self._sum = 0.0  # guarded-by: _lock
        self._count = 0  # guarded-by: _lock
        self._min = math.inf  # guarded-by: _lock
        self._max = -math.inf  # guarded-by: _lock
        self._lock = make_lock(f"perf.hist.{name}")

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_right(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> dict:
        """Bucket counts plus sum/count/min/max, copied atomically."""
        with self._lock:
            return {
                "counts": list(self._counts),
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else 0.0,
                "max": self._max if self._count else 0.0,
            }

    def quantile(self, q: float) -> float:
        """The estimated q-quantile (q in [0, 1]); 0.0 when empty."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
            low, high = self._min, self._max
        if total == 0:
            return 0.0
        rank = min(1.0, max(0.0, q)) * total
        cumulative = 0
        for index, count in enumerate(counts):
            if count == 0:
                continue
            previous = cumulative
            cumulative += count
            if cumulative >= rank:
                lower = low if index == 0 else self.bounds[index - 1]
                upper = high if index >= len(self.bounds) \
                    else min(high, self.bounds[index])
                lower = min(lower, upper)
                fraction = (rank - previous) / count
                value = lower + (upper - lower) * fraction
                return min(high, max(low, value))
        return high

    def percentile(self, p: float) -> float:
        """The estimated p-th percentile (p in [0, 100])."""
        return self.quantile(p / 100.0)

    def __repr__(self) -> str:
        return f"<Histogram {self.name}{dict(self.labels) or ''}>"


class Gauge:
    """A set/add instantaneous value (services deployed, queue depth)."""

    def __init__(self, name: str, *, labels: Labels = ()) -> None:
        self.name = name
        self.labels = tuple(labels)
        self._value = 0.0  # guarded-by: _lock
        self._lock = make_lock(f"perf.gauge.{name}")

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    def get(self) -> float:
        with self._lock:
            return self._value

    def __repr__(self) -> str:
        return f"<Gauge {self.name}{dict(self.labels) or ''}>"


class MetricsRegistry:
    """Get-or-create registry of histograms and gauges, keyed by metric
    name plus sorted label pairs.  Thread-safe like :class:`Counters`."""

    def __init__(self) -> None:
        self._metrics: Dict[tuple, object] = {}  # guarded-by: _lock
        self._lock = make_lock("perf.metrics")

    @staticmethod
    def _key(kind: str, name: str, labels: Optional[dict]) -> tuple:
        pairs = tuple(sorted((str(k), str(v))
                             for k, v in (labels or {}).items()))
        return (kind, name, pairs)

    def histogram(self, name: str, *, labels: Optional[dict] = None,
                  buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_S,
                  ) -> Histogram:
        key = self._key("histogram", name, labels)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = Histogram(name, buckets=buckets, labels=key[2])
                self._metrics[key] = metric
        return metric  # type: ignore[return-value]

    def gauge(self, name: str, *, labels: Optional[dict] = None) -> Gauge:
        key = self._key("gauge", name, labels)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = Gauge(name, labels=key[2])
                self._metrics[key] = metric
        return metric  # type: ignore[return-value]

    def histograms(self) -> list[Histogram]:
        with self._lock:
            found = [m for m in self._metrics.values()
                     if isinstance(m, Histogram)]
        return sorted(found, key=lambda m: (m.name, m.labels))

    def gauges(self) -> list[Gauge]:
        with self._lock:
            found = [m for m in self._metrics.values()
                     if isinstance(m, Gauge)]
        return sorted(found, key=lambda m: (m.name, m.labels))

    def names(self) -> set[str]:
        with self._lock:
            return {key[1] for key in self._metrics}

    def reset(self, prefix: str = "") -> None:
        """Drop all metrics (or only those whose name has ``prefix``)."""
        with self._lock:
            if not prefix:
                self._metrics.clear()
                return
            for key in [k for k in self._metrics
                        if k[1].startswith(prefix)]:
                del self._metrics[key]

    def __repr__(self) -> str:
        return f"<MetricsRegistry {len(self._metrics)} metrics>"


#: the process-global registry the library reports into
counters = Counters()

#: the process-global histogram/gauge registry
metrics = MetricsRegistry()


def snapshot(prefix: str = "") -> dict[str, float]:
    return counters.snapshot(prefix)


def reset(prefix: str = "") -> None:
    """Zero counters and drop histograms/gauges (optionally by prefix)."""
    counters.reset(prefix)
    metrics.reset(prefix)


def observe(name: str, value: float, **labels: str) -> None:
    """Record one observation into the named global histogram."""
    metrics.histogram(name, labels=labels or None).observe(value)


def set_gauge(name: str, value: float, **labels: str) -> None:
    """Set the named global gauge to an instantaneous value."""
    metrics.gauge(name, labels=labels or None).set(value)
