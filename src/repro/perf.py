"""Lightweight control-plane instrumentation.

A process-global :class:`Counters` registry that the hot paths report
into: DoV rebuild/incremental-apply counts, NFFG clone sizes, path-cache
hits and misses.  Reading it costs nothing when nobody looks; updating
it is a dict increment — cheap enough to leave enabled everywhere.

Counter names are dotted strings, grouped by subsystem::

    dov.rebuild              full merge_nffgs rebuilds of the global view
    dov.apply_inplace        incremental per-service applies
    dov.remove_inplace       incremental per-service removals
    dov.fallback             in-place maintenance bailed out to a rebuild
    dov.replay_skipped       booked services left out of a degraded merge
                             (their domain's substrate was unreachable)
    nffg.copy.calls          NFFG.copy() fast-path invocations
    nffg.copy.nodes          total nodes cloned by NFFG.copy()
    nffg.copy.edges          total edges cloned by NFFG.copy()
    pathcache.hit            routes served from the shared path cache
    pathcache.miss           routes that needed a fresh Dijkstra
    pathcache.invalidate     whole-cache invalidations (topology change)

Push-pipeline counters (concurrent delta-based domain programming)::

    push.delta               installs shipped as an edit-config patch
    push.full                installs shipped as a full-config replace
    push.delta_noop          installs skipped entirely (empty diff)
    push.bytes_saved         full-config bytes minus delta bytes, summed
    push.delta_fallback      delta attempts the server rejected
                             (stale base digest -> full resync)
    dispatch.parallel        dispatcher fan-outs that used worker threads
    dispatch.inline          dispatcher batches run on the caller thread
                             (single op, or serial mode)

Resilience counters (all zero on a fault-free run)::

    resilience.faults.injected    faults fired by a FaultPlan (+ per-kind
                                  resilience.faults.<error|drop|delay|...>)
    resilience.retry.attempts     retries scheduled after a transient failure
    resilience.retry.nonretryable failures classified as not worth retrying
    resilience.retry.deadline     retry loops stopped by the overall deadline
    resilience.retry.giveup       operations that failed after all attempts
    resilience.breaker.trip       circuit breakers tripped open
    resilience.breaker.halfopen   open -> half-open recoveries
    resilience.breaker.close      half-open probes that closed the breaker
    resilience.breaker.skip       pushes skipped because a breaker was open
    resilience.breaker.reconcile  queued configs successfully replayed
    resilience.view.quarantined   view merges that excluded an open domain
    resilience.view.unreachable   view fetches that failed after retries
    resilience.rollback.failures  rollback pushes that themselves failed
    resilience.heal.domains_lost  domains absent when heal() ran
    resilience.heal.evacuations   services evacuated off a lost domain

Use :func:`snapshot` to read everything at once (e.g. in benchmark
tables) and :func:`reset` between measurement windows.
"""

from __future__ import annotations

from typing import Dict

from repro.sanitize import make_lock


class Counters:
    """A named-counter registry with per-name totals.

    Thread-safe: the concurrent push dispatcher increments counters from
    worker threads, so every mutation takes a small lock.  Reads through
    :meth:`snapshot` copy under the same lock.
    """

    def __init__(self) -> None:
        self._counts: Dict[str, float] = {}  # guarded-by: _lock
        self._lock = make_lock("perf.counters")

    def incr(self, name: str, amount: float = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> float:
        with self._lock:
            return self._counts.get(name, 0)

    def snapshot(self, prefix: str = "") -> dict[str, float]:
        """Copy of the current counters, optionally filtered by prefix."""
        with self._lock:
            return {name: value
                    for name, value in sorted(self._counts.items())
                    if name.startswith(prefix)}

    def reset(self, prefix: str = "") -> None:
        """Zero all counters (or only those under ``prefix``)."""
        with self._lock:
            if not prefix:
                self._counts.clear()
                return
            for name in [n for n in self._counts if n.startswith(prefix)]:
                del self._counts[name]

    def __repr__(self) -> str:
        return f"<Counters {len(self._counts)} names>"


#: the process-global registry the library reports into
counters = Counters()


def snapshot(prefix: str = "") -> dict[str, float]:
    return counters.snapshot(prefix)


def reset(prefix: str = "") -> None:
    counters.reset(prefix)
