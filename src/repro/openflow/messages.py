"""OpenFlow-like message and match/action structures.

Messages serialize to JSON for the channel byte counters; the field set
follows OpenFlow 1.0 with a VLAN push/pop extension (enough for chain
tagging across BiS-BiS boundaries).
"""

from __future__ import annotations

import enum
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.netem.packet import Packet

#: reserved port numbers (string-typed like all port ids in this repo)
OFPP_CONTROLLER = "controller"
OFPP_FLOOD = "flood"
OFPP_IN_PORT = "in_port"

_XID = itertools.count(1)


@dataclass(frozen=True)
class Match:
    """OF 1.0-style match; ``None`` fields are wildcards."""

    in_port: Optional[str] = None
    dl_src: Optional[str] = None
    dl_dst: Optional[str] = None
    dl_type: Optional[int] = None
    dl_vlan: Optional[int] = None
    nw_src: Optional[str] = None
    nw_dst: Optional[str] = None
    nw_proto: Optional[int] = None
    tp_src: Optional[int] = None
    tp_dst: Optional[int] = None

    def matches(self, packet: Packet, in_port: str) -> bool:
        if self.in_port is not None and self.in_port != in_port:
            return False
        checks = (
            (self.dl_src, packet.eth_src), (self.dl_dst, packet.eth_dst),
            (self.dl_type, int(packet.eth_type)), (self.dl_vlan, packet.vlan),
            (self.nw_src, packet.ip_src), (self.nw_dst, packet.ip_dst),
            (self.nw_proto, int(packet.ip_proto)),
            (self.tp_src, packet.tp_src), (self.tp_dst, packet.tp_dst),
        )
        return all(wanted is None or wanted == actual
                   for wanted, actual in checks)

    def specificity(self) -> int:
        """How many fields are exact (used for debug, not priority)."""
        return sum(value is not None for value in (
            self.in_port, self.dl_src, self.dl_dst, self.dl_type,
            self.dl_vlan, self.nw_src, self.nw_dst, self.nw_proto,
            self.tp_src, self.tp_dst))

    def to_dict(self) -> dict[str, Any]:
        return {key: value for key, value in self.__dict__.items()
                if value is not None}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Match":
        return cls(**data)

    @classmethod
    def from_flowclass(cls, flowclass: str, in_port: Optional[str] = None) -> "Match":
        """Build a match from an NFFG flowclass spec string."""
        fields: dict[str, Any] = {}
        if in_port is not None:
            fields["in_port"] = in_port
        for token in flowclass.split(","):
            token = token.strip()
            if not token or "=" not in token:
                continue
            key, _, value = token.partition("=")
            key = key.strip()
            if key in ("dl_type", "dl_vlan", "nw_proto", "tp_src", "tp_dst"):
                fields[key] = int(value, 0)
            elif key in ("dl_src", "dl_dst", "nw_src", "nw_dst"):
                fields[key] = value.strip()
        return cls(**fields)


class Action:
    """Base action."""

    kind = "base"

    def apply(self, packet: Packet) -> Optional[str]:
        """Mutate packet; return an output port or None."""
        return None

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind}

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "Action":
        kind = data.get("kind")
        if kind == "output":
            return ActionOutput(data["port"])
        if kind == "push_vlan":
            return ActionPushVlan(data["vlan"])
        if kind == "pop_vlan":
            return ActionPopVlan()
        if kind == "set_field":
            return ActionSetField(data["field"], data["value"])
        raise ValueError(f"unknown action kind {kind!r}")

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Action) and self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash(json.dumps(self.to_dict(), sort_keys=True))


class ActionOutput(Action):
    kind = "output"

    def __init__(self, port: str):
        self.port = str(port)

    def apply(self, packet: Packet) -> Optional[str]:
        return self.port

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "port": self.port}

    def __repr__(self) -> str:
        return f"<Output {self.port}>"


class ActionPushVlan(Action):
    kind = "push_vlan"

    def __init__(self, vlan: int):
        self.vlan = int(vlan)

    def apply(self, packet: Packet) -> Optional[str]:
        packet.vlan = self.vlan
        return None

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "vlan": self.vlan}


class ActionPopVlan(Action):
    kind = "pop_vlan"

    def apply(self, packet: Packet) -> Optional[str]:
        packet.vlan = None
        return None


class ActionSetField(Action):
    kind = "set_field"

    _SETTERS = {
        "dl_src": "eth_src", "dl_dst": "eth_dst",
        "nw_src": "ip_src", "nw_dst": "ip_dst",
        "tp_src": "tp_src", "tp_dst": "tp_dst",
    }

    def __init__(self, fieldname: str, value: Any):
        if fieldname not in self._SETTERS:
            raise ValueError(f"cannot set field {fieldname!r}")
        self.field = fieldname
        self.value = value

    def apply(self, packet: Packet) -> Optional[str]:
        setattr(packet, self._SETTERS[self.field], self.value)
        return None

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "field": self.field, "value": self.value}


class FlowModCommand(str, enum.Enum):
    ADD = "add"
    MODIFY = "modify"
    DELETE = "delete"
    DELETE_STRICT = "delete_strict"


@dataclass
class OFMessage:
    """Base message; subclasses add payload fields."""

    xid: int = field(default_factory=lambda: next(_XID))

    @property
    def msg_type(self) -> str:
        return type(self).__name__

    def to_wire(self) -> str:
        payload = {"type": self.msg_type}
        payload.update(self._payload())
        return json.dumps(payload, sort_keys=True, default=_default_json)

    def _payload(self) -> dict[str, Any]:
        return {"xid": self.xid}


def _default_json(value: Any) -> Any:
    if hasattr(value, "to_dict"):
        return value.to_dict()
    if isinstance(value, Packet):
        return {"uid": value.uid, "size": value.size_bytes}
    return str(value)


@dataclass
class FeaturesRequest(OFMessage):
    pass


@dataclass
class FeaturesReply(OFMessage):
    dpid: str = ""
    ports: list[str] = field(default_factory=list)
    n_tables: int = 1

    def _payload(self) -> dict[str, Any]:
        return {"xid": self.xid, "dpid": self.dpid, "ports": self.ports}


@dataclass
class EchoRequest(OFMessage):
    data: str = ""


@dataclass
class EchoReply(OFMessage):
    data: str = ""


@dataclass
class FlowMod(OFMessage):
    command: FlowModCommand = FlowModCommand.ADD
    match: Match = field(default_factory=Match)
    actions: list[Action] = field(default_factory=list)
    priority: int = 100
    idle_timeout: float = 0.0
    hard_timeout: float = 0.0
    cookie: str = ""

    def _payload(self) -> dict[str, Any]:
        return {"xid": self.xid, "command": self.command.value,
                "match": self.match.to_dict(),
                "actions": [a.to_dict() for a in self.actions],
                "priority": self.priority, "cookie": self.cookie,
                "idle_timeout": self.idle_timeout,
                "hard_timeout": self.hard_timeout}


@dataclass
class PacketIn(OFMessage):
    dpid: str = ""
    in_port: str = ""
    packet: Optional[Packet] = None
    reason: str = "no_match"

    def _payload(self) -> dict[str, Any]:
        return {"xid": self.xid, "dpid": self.dpid, "in_port": self.in_port,
                "reason": self.reason,
                "packet": self.packet.uid if self.packet else None}


@dataclass
class PacketOut(OFMessage):
    packet: Optional[Packet] = None
    in_port: str = ""
    actions: list[Action] = field(default_factory=list)

    def _payload(self) -> dict[str, Any]:
        return {"xid": self.xid, "in_port": self.in_port,
                "actions": [a.to_dict() for a in self.actions],
                "packet": self.packet.uid if self.packet else None}


@dataclass
class BarrierRequest(OFMessage):
    pass


@dataclass
class BarrierReply(OFMessage):
    pass


@dataclass
class FlowRemoved(OFMessage):
    dpid: str = ""
    cookie: str = ""
    reason: str = "idle_timeout"


@dataclass
class PortStatus(OFMessage):
    dpid: str = ""
    port: str = ""
    status: str = "up"


@dataclass
class FlowStatsRequest(OFMessage):
    pass


@dataclass
class FlowStatsReply(OFMessage):
    dpid: str = ""
    entries: list[dict[str, Any]] = field(default_factory=list)

    def _payload(self) -> dict[str, Any]:
        return {"xid": self.xid, "dpid": self.dpid, "entries": self.entries}
