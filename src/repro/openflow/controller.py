"""Controller-side endpoint: manages switch connections, sends
flow-mods, dispatches packet-ins to registered handlers."""

from __future__ import annotations

from typing import Callable, Optional

from repro.openflow.channel import ChannelStats, ControlChannel
from repro.openflow.messages import (
    Action,
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowModCommand,
    FlowRemoved,
    FlowStatsReply,
    FlowStatsRequest,
    Match,
    OFMessage,
    PacketIn,
    PacketOut,
)
from repro.openflow.switch import OpenFlowSwitch
from repro.sim.kernel import Simulator

PacketInHandler = Callable[[str, PacketIn], None]


class ControllerEndpoint:
    """The controller side of N OpenFlow control channels."""

    def __init__(self, name: str, simulator: Optional[Simulator] = None,
                 channel_latency_ms: float = 0.0):
        self.name = name
        self.simulator = simulator
        self.channel_latency_ms = channel_latency_ms
        self._channels: dict[str, ControlChannel] = {}
        self._features: dict[str, FeaturesReply] = {}
        self._packet_in_handlers: list[PacketInHandler] = []
        self._flow_removed_handlers: list[Callable[[str, "FlowRemoved"], None]] = []
        self._stats_replies: dict[str, FlowStatsReply] = {}
        self._pending_barriers: set[int] = set()
        self._pending_echoes: dict[int, float] = {}
        #: dpid -> last echo round-trip in virtual ms
        self.echo_rtt_ms: dict[str, float] = {}
        self.flow_mods_sent = 0

    # -- connection management ------------------------------------------------

    def connect_switch(self, switch: OpenFlowSwitch) -> ControlChannel:
        """Create and wire a channel to a switch; handshakes features."""
        if switch.dpid in self._channels:
            raise ValueError(f"switch {switch.dpid!r} already connected")
        channel = ControlChannel(f"{self.name}<->{switch.dpid}",
                                 simulator=self.simulator,
                                 latency_ms=self.channel_latency_ms)
        channel.bind_a(lambda msg, dpid=switch.dpid: self._on_message(dpid, msg))
        switch.connect_controller(channel)
        self._channels[switch.dpid] = channel
        channel.send_to_b(FeaturesRequest())
        return channel

    def connected_dpids(self) -> list[str]:
        return list(self._channels)

    def channel_stats(self, dpid: str) -> ChannelStats:
        return self._channels[dpid].stats

    def total_stats(self) -> ChannelStats:
        total = ChannelStats()
        for channel in self._channels.values():
            total.messages_to_a += channel.stats.messages_to_a
            total.messages_to_b += channel.stats.messages_to_b
            total.bytes_to_a += channel.stats.bytes_to_a
            total.bytes_to_b += channel.stats.bytes_to_b
        return total

    # -- message handling ------------------------------------------------------

    def _on_message(self, dpid: str, message: OFMessage) -> None:
        if isinstance(message, FeaturesReply):
            self._features[dpid] = message
        elif isinstance(message, PacketIn):
            for handler in self._packet_in_handlers:
                handler(dpid, message)
        elif isinstance(message, BarrierReply):
            self._pending_barriers.discard(message.xid)
        elif isinstance(message, FlowStatsReply):
            self._stats_replies[dpid] = message
        elif isinstance(message, FlowRemoved):
            for handler in self._flow_removed_handlers:
                handler(dpid, message)
        elif isinstance(message, EchoReply):
            sent_at = self._pending_echoes.pop(message.xid, None)
            if sent_at is not None and self.simulator is not None:
                self.echo_rtt_ms[dpid] = self.simulator.now - sent_at

    def on_packet_in(self, handler: PacketInHandler) -> None:
        self._packet_in_handlers.append(handler)

    def on_flow_removed(self,
                        handler: Callable[[str, "FlowRemoved"], None]) -> None:
        self._flow_removed_handlers.append(handler)

    def ping(self, dpid: str, data: str = "keepalive") -> int:
        """Send an echo request; RTT lands in :attr:`echo_rtt_ms`."""
        message = EchoRequest(data=data)
        self._pending_echoes[message.xid] = (
            self.simulator.now if self.simulator is not None else 0.0)
        self._channels[dpid].send_to_b(message)
        return message.xid

    def features(self, dpid: str) -> Optional[FeaturesReply]:
        return self._features.get(dpid)

    # -- control actions -------------------------------------------------------

    def send_flow_mod(self, dpid: str, *, match: Match, actions: list[Action],
                      priority: int = 100,
                      command: FlowModCommand = FlowModCommand.ADD,
                      idle_timeout: float = 0.0, hard_timeout: float = 0.0,
                      cookie: str = "") -> None:
        message = FlowMod(command=command, match=match, actions=actions,
                          priority=priority, idle_timeout=idle_timeout,
                          hard_timeout=hard_timeout, cookie=cookie)
        self.flow_mods_sent += 1
        self._channels[dpid].send_to_b(message)

    def delete_flows(self, dpid: str, *, match: Optional[Match] = None,
                     cookie: str = "") -> None:
        self.send_flow_mod(dpid, match=match or Match(), actions=[],
                           command=FlowModCommand.DELETE, cookie=cookie)

    def send_packet_out(self, dpid: str, packet, in_port: str,
                        actions: list[Action]) -> None:
        self._channels[dpid].send_to_b(
            PacketOut(packet=packet, in_port=in_port, actions=actions))

    def barrier(self, dpid: str) -> int:
        message = BarrierRequest()
        self._pending_barriers.add(message.xid)
        self._channels[dpid].send_to_b(message)
        return message.xid

    def barrier_pending(self, xid: int) -> bool:
        return xid in self._pending_barriers

    def request_flow_stats(self, dpid: str) -> None:
        self._channels[dpid].send_to_b(FlowStatsRequest())

    def flow_stats(self, dpid: str) -> Optional[FlowStatsReply]:
        return self._stats_replies.get(dpid)

    def __repr__(self) -> str:
        return f"<ControllerEndpoint {self.name}: {len(self._channels)} switches>"
