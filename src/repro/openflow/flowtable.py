"""Priority-ordered flow table with stats and timeouts."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.netem.packet import Packet
from repro.openflow.messages import Action, FlowModCommand, FlowMod, Match


@dataclass
class FlowEntry:
    match: Match
    actions: list[Action]
    priority: int = 100
    idle_timeout: float = 0.0
    hard_timeout: float = 0.0
    cookie: str = ""
    installed_at: float = 0.0
    last_hit: float = 0.0
    packets: int = 0
    bytes: int = 0

    def expired(self, now: float) -> bool:
        if self.hard_timeout and now - self.installed_at >= self.hard_timeout:
            return True
        if self.idle_timeout and now - self.last_hit >= self.idle_timeout:
            return True
        return False

    def to_stats(self) -> dict:
        return {"match": self.match.to_dict(), "priority": self.priority,
                "cookie": self.cookie, "packets": self.packets,
                "bytes": self.bytes}


class FlowTable:
    """A single OpenFlow table: highest priority match wins; ties are
    broken by install order (older first), like most real switches."""

    def __init__(self) -> None:
        self._entries: list[FlowEntry] = []
        self.lookups = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[FlowEntry]:
        return list(self._entries)

    def apply_flow_mod(self, msg: FlowMod, now: float = 0.0) -> None:
        if msg.command == FlowModCommand.ADD:
            entry = FlowEntry(match=msg.match, actions=list(msg.actions),
                              priority=msg.priority,
                              idle_timeout=msg.idle_timeout,
                              hard_timeout=msg.hard_timeout,
                              cookie=msg.cookie, installed_at=now,
                              last_hit=now)
            # ADD with identical match+priority replaces (OF semantics)
            self._entries = [e for e in self._entries
                             if not (e.match == msg.match
                                     and e.priority == msg.priority)]
            self._entries.append(entry)
            self._entries.sort(key=lambda e: (-e.priority, e.installed_at))
        elif msg.command == FlowModCommand.MODIFY:
            for entry in self._entries:
                if entry.match == msg.match:
                    entry.actions = list(msg.actions)
        elif msg.command == FlowModCommand.DELETE:
            self._entries = [e for e in self._entries
                             if not _subsumed(e.match, msg.match)
                             or (msg.cookie and e.cookie != msg.cookie)]
        elif msg.command == FlowModCommand.DELETE_STRICT:
            self._entries = [e for e in self._entries
                             if not (e.match == msg.match
                                     and e.priority == msg.priority)]

    def delete_by_cookie(self, cookie: str) -> int:
        before = len(self._entries)
        self._entries = [e for e in self._entries if e.cookie != cookie]
        return before - len(self._entries)

    def lookup(self, packet: Packet, in_port: str,
               now: float = 0.0) -> Optional[FlowEntry]:
        self.lookups += 1
        self.expire(now)
        for entry in self._entries:
            if entry.match.matches(packet, in_port):
                entry.packets += 1
                entry.bytes += packet.size_bytes
                entry.last_hit = now
                return entry
        self.misses += 1
        return None

    def expire(self, now: float) -> list[FlowEntry]:
        expired = [e for e in self._entries if e.expired(now)]
        if expired:
            self._entries = [e for e in self._entries if not e.expired(now)]
        return expired

    def stats(self) -> list[dict]:
        return [entry.to_stats() for entry in self._entries]


def _subsumed(specific: Match, general: Match) -> bool:
    """True if ``general`` wildcards-match everything ``specific`` does
    (OF DELETE semantics: delete all entries matched by the pattern)."""
    for fieldname, general_value in general.__dict__.items():
        if general_value is None:
            continue
        if getattr(specific, fieldname) != general_value:
            return False
    return True
