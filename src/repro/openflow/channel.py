"""In-memory control channels with wire accounting.

Control-plane benchmarks need message/byte counts per deploy; every
controller<->switch and orchestrator<->agent exchange flows through a
:class:`ControlChannel`, which serializes messages (JSON), counts bytes
in both directions and optionally delivers with latency on the shared
simulator (synchronous delivery by default keeps unit tests simple).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.sim.kernel import Simulator


@dataclass
class ChannelStats:
    messages_to_b: int = 0
    messages_to_a: int = 0
    bytes_to_b: int = 0
    bytes_to_a: int = 0

    @property
    def messages(self) -> int:
        return self.messages_to_a + self.messages_to_b

    @property
    def bytes(self) -> int:
        return self.bytes_to_a + self.bytes_to_b

    def reset(self) -> None:
        self.messages_to_a = self.messages_to_b = 0
        self.bytes_to_a = self.bytes_to_b = 0


class ControlChannel:
    """A bidirectional message pipe between endpoint "a" and "b".

    Endpoints register handlers; :meth:`send_to_b` / :meth:`send_to_a`
    measure the message's wire form and deliver it (immediately, or
    after ``latency_ms`` on the simulator when one is supplied).
    """

    def __init__(self, name: str, simulator: Optional[Simulator] = None,
                 latency_ms: float = 0.0):
        self.name = name
        self.simulator = simulator
        self.latency_ms = latency_ms
        self.stats = ChannelStats()
        self._handler_a: Optional[Callable[[Any], None]] = None
        self._handler_b: Optional[Callable[[Any], None]] = None

    def bind_a(self, handler: Callable[[Any], None]) -> None:
        self._handler_a = handler

    def bind_b(self, handler: Callable[[Any], None]) -> None:
        self._handler_b = handler

    def send_to_b(self, message: Any) -> None:
        self.stats.messages_to_b += 1
        self.stats.bytes_to_b += _wire_size(message)
        self._deliver(self._handler_b, message)

    def send_to_a(self, message: Any) -> None:
        self.stats.messages_to_a += 1
        self.stats.bytes_to_a += _wire_size(message)
        self._deliver(self._handler_a, message)

    def _deliver(self, handler: Optional[Callable[[Any], None]],
                 message: Any) -> None:
        if handler is None:
            raise RuntimeError(f"channel {self.name!r}: endpoint not bound")
        if self.simulator is not None and self.latency_ms > 0:
            self.simulator.schedule(self.latency_ms, handler, message)
        else:
            handler(message)

    def __repr__(self) -> str:
        return (f"<ControlChannel {self.name}: {self.stats.messages} msgs, "
                f"{self.stats.bytes} B>")


def _wire_size(message: Any) -> int:
    if hasattr(message, "to_wire"):
        return len(message.to_wire().encode())
    if isinstance(message, (bytes, bytearray)):
        return len(message)
    if isinstance(message, str):
        return len(message.encode())
    import json
    try:
        return len(json.dumps(message, default=str).encode())
    except TypeError:
        return 256  # conservative default for exotic payloads
