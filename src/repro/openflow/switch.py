"""OpenFlow switch: a netem node forwarding by flow table, punting
misses to its controller over a control channel."""

from __future__ import annotations

from typing import Optional

from repro.netem.node import NetworkNode
from repro.netem.packet import Packet
from repro.openflow.channel import ControlChannel
from repro.openflow.flowtable import FlowTable
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowRemoved,
    FlowStatsReply,
    FlowStatsRequest,
    OFMessage,
    OFPP_CONTROLLER,
    OFPP_FLOOD,
    OFPP_IN_PORT,
    PacketIn,
    PacketOut,
)
from repro.sim.kernel import Simulator


class OpenFlowSwitch(NetworkNode):
    """A software switch with one flow table and an OF agent."""

    def __init__(self, dpid: str, simulator: Simulator,
                 forwarding_delay_ms: float = 0.01,
                 buffer_packets: int = 512):
        super().__init__(dpid, simulator)
        self.dpid = dpid
        self.table = FlowTable()
        self.forwarding_delay_ms = forwarding_delay_ms
        self.channel: Optional[ControlChannel] = None
        self._buffered: dict[int, tuple[Packet, str]] = {}
        self._buffer_limit = buffer_packets
        self.packet_ins_sent = 0

    # -- control side ---------------------------------------------------------

    def connect_controller(self, channel: ControlChannel) -> None:
        """Attach the switch as endpoint "b" of a control channel."""
        self.channel = channel
        channel.bind_b(self.handle_of_message)

    def handle_of_message(self, message: OFMessage) -> None:
        if isinstance(message, FeaturesRequest):
            self._reply(FeaturesReply(xid=message.xid, dpid=self.dpid,
                                      ports=self.ports()))
        elif isinstance(message, EchoRequest):
            self._reply(EchoReply(xid=message.xid, data=message.data))
        elif isinstance(message, FlowMod):
            self.table.apply_flow_mod(message, now=self.simulator.now)
        elif isinstance(message, BarrierRequest):
            self._reply(BarrierReply(xid=message.xid))
        elif isinstance(message, FlowStatsRequest):
            self._reply(FlowStatsReply(xid=message.xid, dpid=self.dpid,
                                       entries=self.table.stats()))
        elif isinstance(message, PacketOut):
            self._handle_packet_out(message)

    def _reply(self, message: OFMessage) -> None:
        if self.channel is not None:
            self.channel.send_to_a(message)

    def _handle_packet_out(self, message: PacketOut) -> None:
        packet = message.packet
        if packet is None and message.in_port:
            buffered = self._buffered.pop(int(message.xid), None)
            if buffered is not None:
                packet = buffered[0]
        if packet is None:
            return
        in_port = message.in_port
        for action in message.actions:
            port = action.apply(packet)
            if port is not None:
                self._output(packet, port, in_port)

    # -- data side --------------------------------------------------------------

    def receive(self, packet: Packet, in_port: str) -> None:
        self.rx_packets += 1
        packet.record(self.id)
        expired = self.table.expire(self.simulator.now)
        for entry in expired:
            if self.channel is not None:
                self.channel.send_to_a(FlowRemoved(
                    dpid=self.dpid, cookie=entry.cookie,
                    reason=("hard_timeout" if entry.hard_timeout
                            and self.simulator.now - entry.installed_at
                            >= entry.hard_timeout else "idle_timeout")))
        entry = self.table.lookup(packet, in_port, now=self.simulator.now)
        if entry is None:
            self._punt(packet, in_port)
            return
        self.simulator.schedule(self.forwarding_delay_ms,
                                self._apply_actions, packet, in_port,
                                list(entry.actions))

    def _apply_actions(self, packet: Packet, in_port: str, actions: list) -> None:
        for action in actions:
            port = action.apply(packet)
            if port is not None:
                self._output(packet, port, in_port)

    def _output(self, packet: Packet, port: str, in_port: str) -> None:
        if port == OFPP_CONTROLLER:
            self._punt(packet, in_port, reason="action")
        elif port == OFPP_FLOOD:
            for out_port in self.ports():
                if out_port != in_port:
                    self.transmit(packet.copy(), out_port)
        elif port == OFPP_IN_PORT:
            self.transmit(packet, in_port)
        else:
            self.transmit(packet, port)

    def _punt(self, packet: Packet, in_port: str,
              reason: str = "no_match") -> None:
        if self.channel is None:
            self.drops += 1
            return
        if len(self._buffered) >= self._buffer_limit:
            self.drops += 1
            return
        message = PacketIn(dpid=self.dpid, in_port=in_port, packet=packet,
                           reason=reason)
        self._buffered[message.xid] = (packet, in_port)
        self.packet_ins_sent += 1
        self.channel.send_to_a(message)

    def release_buffer(self, xid: int) -> Optional[tuple[Packet, str]]:
        return self._buffered.pop(xid, None)

    def flow_count(self) -> int:
        return len(self.table)
