"""OpenFlow-like control channel.

Reproduces the OpenFlow 1.x control discipline the prototype uses for
its SDN and Mininet domains: a controller endpoint and switch agents
exchange typed messages (features, flow-mods, packet-in/out, barriers,
stats) over byte-counted in-memory channels; switches keep priority-
ordered flow tables and punt table misses to their controller.
"""

from repro.openflow.messages import (
    Action,
    ActionOutput,
    ActionPopVlan,
    ActionPushVlan,
    ActionSetField,
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowModCommand,
    FlowRemoved,
    FlowStatsReply,
    FlowStatsRequest,
    Match,
    OFMessage,
    PacketIn,
    PacketOut,
    PortStatus,
    OFPP_CONTROLLER,
    OFPP_FLOOD,
)
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.channel import ControlChannel, ChannelStats
from repro.openflow.switch import OpenFlowSwitch
from repro.openflow.controller import ControllerEndpoint

__all__ = [
    "Action",
    "ActionOutput",
    "ActionPopVlan",
    "ActionPushVlan",
    "ActionSetField",
    "BarrierReply",
    "BarrierRequest",
    "EchoReply",
    "EchoRequest",
    "FeaturesReply",
    "FeaturesRequest",
    "FlowMod",
    "FlowModCommand",
    "FlowRemoved",
    "FlowStatsReply",
    "FlowStatsRequest",
    "Match",
    "OFMessage",
    "PacketIn",
    "PacketOut",
    "PortStatus",
    "OFPP_CONTROLLER",
    "OFPP_FLOOD",
    "FlowEntry",
    "FlowTable",
    "ControlChannel",
    "ChannelStats",
    "OpenFlowSwitch",
    "ControllerEndpoint",
]
