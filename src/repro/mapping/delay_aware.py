"""Delay- and cost-aware embedder in the style of Sahhaf et al. [2].

Reference [2] of the paper maps service chains with "efficient network
function mapping based on service decompositions": candidate hosts are
scored by a combined objective

    score = alpha * resource_cost + beta * marginal_delay

where marginal delay is measured against the *tightest requirement
path* through the NF, and decomposition options of a high-level NF are
explored cheapest-first (see :mod:`repro.mapping.decomposition`; the
option loop lives in the orchestrator so the embedder stays pluggable).
"""

from __future__ import annotations

from typing import Optional

from repro.mapping.base import (Embedder, MappingContext, MappingError,
                                placement_allowed)
from repro.mapping.greedy import hop_delay_budget, service_order
from repro.nffg.model import NodeNF
from repro.perf import counters


class DelayAwareEmbedder(Embedder):
    """Two-sided delay-aware placement.

    For each NF the algorithm considers the substrate delay both from
    the upstream anchor *and* toward the downstream anchor (when already
    resolved), so it avoids the greedy pathology of drifting away from
    the egress SAP and then failing the end-to-end delay requirement.
    """

    name = "delay-aware"

    def __init__(self, alpha: float = 1.0, beta: float = 2.0,
                 candidates_per_nf: int = 24):
        self.alpha = alpha
        self.beta = beta
        self.candidates_per_nf = candidates_per_nf

    def _run(self, ctx: MappingContext) -> None:
        routed: set[str] = set()
        for nf_id in service_order(ctx.service):
            nf = ctx.service.nf(nf_id)
            upstream = self._neighbour_infra(ctx, nf_id, incoming=True)
            downstream = self._neighbour_infra(ctx, nf_id, incoming=False)
            pruned = ctx.candidates(nf, self.candidates_per_nf,
                                    anchor=upstream or downstream)
            best = self._best_host(ctx, nf, upstream, downstream, pruned)
            if best is None and ctx.index is not None:
                counters.incr("mapping.index.fallback")
                best = self._best_host(ctx, nf, upstream, downstream,
                                       ctx.candidates(nf))
            if best is None:
                raise MappingError(
                    f"delay-aware: no feasible host for {nf_id!r} "
                    f"(type {nf.functional_type!r})")
            ctx.place(nf_id, best)
            self._route_ready(ctx, routed)
        self._route_ready(ctx, routed)
        missing = [hop.id for hop in ctx.sg_hop_list()
                   if hop.id not in routed]
        if missing:
            raise MappingError(f"delay-aware: unrouted hops {missing}")

    def _best_host(self, ctx: MappingContext, nf: NodeNF,
                   upstream: Optional[str], downstream: Optional[str],
                   candidate_ids: list[str]) -> Optional[str]:
        best = None
        best_score = float("inf")
        examined = 0
        for infra_id in candidate_ids:
            if examined >= self.candidates_per_nf and best is not None:
                break
            infra = ctx.resource.infra(infra_id)
            ctx.nodes_examined += 1
            if not ctx.ledger.can_host(nf, infra):
                continue
            if not placement_allowed(ctx, nf, infra):
                continue
            examined += 1
            delay_term = 0.0
            reachable = True
            for anchor in (upstream, downstream):
                if anchor is None:
                    continue
                detour = ctx.delay_estimate(anchor, infra.id)
                if detour == float("inf"):
                    reachable = False
                    break
                delay_term += detour
            if not reachable:
                continue
            resource_term = nf.resources.cpu * infra.cost_per_cpu
            score = self.alpha * resource_term + self.beta * delay_term
            if score < best_score:
                best_score = score
                best = infra.id
        return best

    def _neighbour_infra(self, ctx: MappingContext, nf_id: str,
                         incoming: bool):
        if incoming:
            for hop in ctx.in_hops(nf_id):
                infra = ctx.endpoint_infra(hop.src_node)
                if infra is not None:
                    return infra
            return None
        for hop in ctx.out_hops(nf_id):
            other = ctx.service.node(hop.dst_node)
            if not isinstance(other, NodeNF):
                return ctx.endpoint_infra(hop.dst_node)
            infra = ctx.placement.get(hop.dst_node)
            if infra is not None:
                return infra
        return None

    def _route_ready(self, ctx: MappingContext, routed: set[str]) -> None:
        for hop in ctx.sg_hop_list():
            if hop.id in routed:
                continue
            src = ctx.endpoint_infra(hop.src_node)
            dst = ctx.endpoint_infra(hop.dst_node)
            if src is None or dst is None:
                continue
            budget = hop_delay_budget(ctx.service, ctx, hop.id)
            route = ctx.route_or_none(hop.id, src, dst,
                                      bandwidth=hop.bandwidth,
                                      max_delay=budget)
            if route is None:
                raise MappingError(
                    f"delay-aware: cannot route hop {hop.id!r} "
                    f"({src!r}->{dst!r}, budget {budget})")
            ctx.record_route(route)
            routed.add(hop.id)
