"""Greedy chain-order embedder.

Walks the service graph from its SAPs in topological (chain) order and
places each NF on the feasible BiS-BiS that minimizes a local score
(placement cost + delay detour from the previous element), routing each
SG hop as soon as both endpoints are fixed.  Fast, no backtracking —
the default ESCAPE-style baseline.

With a :class:`~repro.mapping.index.SubstrateIndex` attached to the
context the per-NF host scan runs over a pruned candidate set instead
of the whole substrate; when the pruned set yields no feasible host the
scan widens to the full supporting set, so pruning never costs
acceptance.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from repro.mapping.base import (Embedder, MappingContext, MappingError,
                                placement_allowed)
from repro.nffg.graph import NFFG
from repro.nffg.model import NodeNF
from repro.perf import counters


def service_order(service: NFFG) -> list[str]:
    """NF ids in chain-traversal order starting from SAP-adjacent hops.

    Falls back to insertion order for NFs unreachable from any SAP
    (isolated fragments still get mapped).
    """
    out_hops: dict[str, list] = {}
    for hop in service.sg_hops:
        out_hops.setdefault(hop.src_node, []).append(hop)
    order: list[str] = []
    seen: set[str] = set()
    frontier: deque[str] = deque(sap.id for sap in service.saps)
    visited_nodes: set[str] = set(frontier)
    while frontier:
        current = frontier.popleft()
        for hop in out_hops.get(current, ()):
            dst = hop.dst_node
            if dst in visited_nodes:
                continue
            visited_nodes.add(dst)
            node = service.node(dst)
            if isinstance(node, NodeNF) and dst not in seen:
                seen.add(dst)
                order.append(dst)
            frontier.append(dst)
    for nf in service.nfs:
        if nf.id not in seen:
            order.append(nf.id)
    return order


def hops_ready(service: NFFG, ctx: MappingContext,
               routed: set[str]) -> Iterable:
    """SG hops whose both endpoints are resolvable and not yet routed."""
    for hop in ctx.sg_hop_list():
        if hop.id in routed:
            continue
        src = ctx.endpoint_infra(hop.src_node)
        dst = ctx.endpoint_infra(hop.dst_node)
        if src is not None and dst is not None:
            yield hop, src, dst


def hop_delay_budget(service: NFFG, ctx: MappingContext, hop_id: str) -> float:
    """Remaining delay budget for a hop from its tightest requirement."""
    budget = float("inf")
    for req in service.requirements:
        if hop_id not in req.sg_path or req.max_delay == float("inf"):
            continue
        spent = ctx.partial_delay(req.sg_path)
        remaining_hops = sum(1 for h in req.sg_path if h not in ctx.routes)
        slack = req.max_delay - spent
        if remaining_hops > 0:
            budget = min(budget, slack)
    hop = service.edge(hop_id)
    if getattr(hop, "delay", 0.0):
        budget = min(budget, hop.delay)
    return budget


def anchor_infra(ctx: MappingContext, nf_id: str) -> Optional[str]:
    """Infra of the closest already-resolved neighbour in the SG."""
    for hop in ctx.in_hops(nf_id):
        infra = ctx.endpoint_infra(hop.src_node)
        if infra is not None:
            return infra
    for hop in ctx.out_hops(nf_id):
        infra = ctx.endpoint_infra(hop.dst_node)
        if infra is not None:
            return infra
    return None


def route_ready_hops(ctx: MappingContext, routed: set[str],
                     around: Optional[str] = None) -> None:
    """Route every not-yet-routed hop whose endpoints are resolved.

    A hop only becomes ready when its last unresolved endpoint is
    placed, so after placing one NF only the hops touching it
    (``around``) need checking — O(degree), not O(hops)."""
    hops = ctx.hops_touching(around) if around is not None \
        else ctx.sg_hop_list()
    for hop in hops:
        if hop.id in routed:
            continue
        src = ctx.endpoint_infra(hop.src_node)
        dst = ctx.endpoint_infra(hop.dst_node)
        if src is None or dst is None:
            continue
        budget = hop_delay_budget(ctx.service, ctx, hop.id)
        route = ctx.find_route(hop.id, src, dst,
                               bandwidth=hop.bandwidth, max_delay=budget)
        ctx.record_route(route)
        routed.add(hop.id)


class GreedyEmbedder(Embedder):
    """Place NFs chain-first on locally cheapest feasible hosts."""

    name = "greedy"

    def __init__(self, bandwidth_weight: float = 0.01,
                 delay_weight: float = 1.0, cost_weight: float = 1.0,
                 candidate_k: int = 32):
        self.bandwidth_weight = bandwidth_weight
        self.delay_weight = delay_weight
        self.cost_weight = cost_weight
        #: pruned candidate-set size per NF when an index is attached
        self.candidate_k = candidate_k

    def _run(self, ctx: MappingContext) -> None:
        service = ctx.service
        routed: set[str] = set()
        for nf_id in service_order(service):
            nf = service.nf(nf_id)
            anchor = self._anchor_infra(ctx, nf_id)
            pruned = ctx.candidates(nf, self.candidate_k, anchor=anchor)
            best_host = self._best_host(ctx, nf, anchor, pruned)
            if best_host is None and ctx.index is not None:
                # pruned set infeasible: widen to the full supporting set
                counters.incr("mapping.index.fallback")
                best_host = self._best_host(ctx, nf, anchor,
                                            ctx.candidates(nf))
            if best_host is None:
                raise MappingError(
                    f"no feasible host for NF {nf_id!r} "
                    f"(type {nf.functional_type!r})")
            ctx.place(nf_id, best_host)
            self._route_ready_hops(ctx, routed, around=nf_id)
        self._route_ready_hops(ctx, routed)
        unrouted = [hop.id for hop in ctx.sg_hop_list()
                    if hop.id not in routed]
        if unrouted:
            raise MappingError(f"unrouted SG hops: {unrouted}")

    def _best_host(self, ctx: MappingContext, nf: NodeNF,
                   anchor: Optional[str],
                   candidate_ids: list[str]) -> Optional[str]:
        resource = ctx.resource
        best_host = None
        best_score = float("inf")
        for infra_id in candidate_ids:
            infra = resource.infra(infra_id)
            ctx.nodes_examined += 1
            if not ctx.ledger.can_host(nf, infra):
                continue
            if not placement_allowed(ctx, nf, infra):
                continue
            score = self.cost_weight * nf.resources.cpu * infra.cost_per_cpu
            if anchor is not None:
                detour = ctx.delay_estimate(anchor, infra.id)
                if detour == float("inf"):
                    continue
                score += self.delay_weight * detour
            if score < best_score:
                best_score = score
                best_host = infra.id
        return best_host

    def _anchor_infra(self, ctx: MappingContext, nf_id: str):
        return anchor_infra(ctx, nf_id)

    def _route_ready_hops(self, ctx: MappingContext, routed: set[str],
                          around: Optional[str] = None) -> None:
        route_ready_hops(ctx, routed, around=around)
