"""Embedding (mapping) algorithms and NF decomposition.

"The task of the resource orchestrator is to map the configurations of
different client virtualizations to a configuration at the underlying
domain virtualizer."  Concretely: given a *service graph* (NFs, SAPs,
SG hops, requirements) and a *resource view* (BiS-BiS topology), decide

1. which BiS-BiS hosts each NF (respecting capacities and supported NF
   types), and
2. which substrate path realizes each SG hop (respecting link
   bandwidths and end-to-end delay requirements),

then express the decision as NF placements + flow rules.  ESCAPEv2
treats the algorithm as a plugin; three are provided here, plus the
NF-decomposition machinery of ref [2] (Sahhaf et al.).
"""

from repro.mapping.base import (
    Embedder,
    MappingContext,
    MappingError,
    MappingResult,
    ResourceLedger,
)
from repro.mapping.greedy import GreedyEmbedder
from repro.mapping.backtrack import BacktrackingEmbedder
from repro.mapping.delay_aware import DelayAwareEmbedder
from repro.mapping.allocators import (
    BalancedAllocator,
    HybridAllocator,
    WeightedAllocator,
)
from repro.mapping.index import SubstrateIndex
from repro.mapping.registry import (
    EMBEDDERS,
    embedder_names,
    make_embedder,
    register_embedder,
)
from repro.mapping.decomposition import (
    Decomposition,
    DecompositionLibrary,
    DecompositionRule,
    default_decomposition_library,
    expand_service,
)
from repro.mapping.validate import validate_mapping

__all__ = [
    "Embedder",
    "MappingContext",
    "MappingError",
    "MappingResult",
    "ResourceLedger",
    "GreedyEmbedder",
    "BacktrackingEmbedder",
    "DelayAwareEmbedder",
    "BalancedAllocator",
    "WeightedAllocator",
    "HybridAllocator",
    "SubstrateIndex",
    "EMBEDDERS",
    "embedder_names",
    "make_embedder",
    "register_embedder",
    "Decomposition",
    "DecompositionLibrary",
    "DecompositionRule",
    "default_decomposition_library",
    "expand_service",
    "validate_mapping",
]
