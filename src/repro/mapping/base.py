"""Shared machinery of the embedding algorithms.

:class:`ResourceLedger` tracks tentative allocations against a resource
view without mutating it — embedders allocate/release while searching
and only :meth:`MappingContext.commit` materializes the winning solution
(NF placements, link reservations, flow rules) into a mapped NFFG copy.
"""

from __future__ import annotations

import abc
import itertools
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mapping.index import SubstrateIndex
    from repro.mapping.pathcache import PathCache

from repro.perf import counters

from repro.nffg.graph import NFFG
from repro.nffg.model import (
    EdgeLink,
    EdgeSGHop,
    NodeInfra,
    NodeNF,
    ResourceVector,
)


class MappingError(RuntimeError):
    """Raised when a service graph cannot be embedded."""


@dataclass
class HopRoute:
    """The substrate realization of one SG hop."""

    hop_id: str
    #: infra node ids in traversal order (length >= 1)
    infra_path: list[str]
    #: static link ids between consecutive infras (length = len(path)-1)
    link_ids: list[str]
    #: accumulated delay: links + infra internal forwarding
    delay: float
    bandwidth: float


@dataclass
class MappingResult:
    """Outcome of an embedding run."""

    success: bool
    mapped: Optional[NFFG] = None
    #: the mapped graph restricted to the infras this mapping writes to
    #: (NF hosts + routed BiS-BiSes): what the validator checks flow
    #: rules against, at O(service) instead of O(substrate) cost
    touched: Optional[NFFG] = None
    #: the (possibly decomposition-expanded) service graph that was mapped
    service: Optional[NFFG] = None
    nf_placement: dict[str, str] = field(default_factory=dict)
    hop_routes: dict[str, HopRoute] = field(default_factory=dict)
    #: which decomposition option was chosen per original NF (if any)
    decompositions: dict[str, str] = field(default_factory=dict)
    cost: float = 0.0
    runtime_s: float = 0.0
    failure_reason: str = ""
    #: search effort metrics
    nodes_examined: int = 0
    backtracks: int = 0
    #: name of the embedder that produced this result
    embedder: str = ""

    def __bool__(self) -> bool:
        return self.success


class _LazyMappedResult(MappingResult):
    """A successful result whose full ``mapped`` graph is materialized
    on first access.

    The orchestration hot loop only reads ``touched`` (flow-rule
    validation) and the placement/route tables, so the O(substrate)
    copy behind ``mapped`` is usually never paid — callers that do ask
    (renderers, virtualizer exports, tests) get the same graph the
    eager commit used to produce.  Materialize promptly: the factory
    reads the context's resource view, which the orchestrator mutates
    between deployments."""

    def __init__(self, *args, **kwargs):
        self._mapped_factory = None
        super().__init__(*args, **kwargs)

    @property
    def mapped(self) -> Optional[NFFG]:
        if self._mapped is None and self._mapped_factory is not None:
            self._mapped = self._mapped_factory()
            self._mapped_factory = None
        return self._mapped

    @mapped.setter
    def mapped(self, value: Optional[NFFG]) -> None:
        self._mapped = value

    def __repr__(self) -> str:  # the dataclass repr would materialize
        return (f"<MappingResult success={self.success} "
                f"nfs={len(self.nf_placement)} hops={len(self.hop_routes)}>")


#: NF metadata keys understood by the placement machinery
CONSTRAINT_DOMAIN = "constraint:domain"          #: DomainType value string
CONSTRAINT_INFRA = "constraint:infra"            #: pin to a specific node
CONSTRAINT_ANTI_AFFINITY = "constraint:anti_affinity"  #: list of NF ids


def placement_allowed(ctx: "MappingContext", nf: NodeNF,
                      infra: NodeInfra) -> bool:
    """Evaluate the NF's placement constraints against a candidate.

    Constraints ride in ``NodeNF.metadata`` (set via the service
    builder's ``domain=``/``pin_to=``/``not_with=`` arguments):

    - ``constraint:domain`` — host must belong to this technology
      domain;
    - ``constraint:infra`` — host must be exactly this node;
    - ``constraint:anti_affinity`` — host must not already hold any of
      the listed NFs (of the same service).
    """
    wanted_domain = nf.metadata.get(CONSTRAINT_DOMAIN)
    if wanted_domain is not None and infra.domain.value != wanted_domain:
        return False
    pinned = nf.metadata.get(CONSTRAINT_INFRA)
    if pinned is not None and infra.id != pinned:
        return False
    rivals = nf.metadata.get(CONSTRAINT_ANTI_AFFINITY, ())
    for rival in rivals:
        if ctx.placement.get(rival) == infra.id:
            return False
    return True


class _CowMap:
    """Copy-on-write overlay over a shared base dict.

    A seeded :class:`ResourceLedger` reads through to the substrate
    index's free maps and keeps its tentative allocations in a small
    private overlay — O(service) memory, O(1) construction, and the
    shared base is never written."""

    __slots__ = ("_base", "_over")

    def __init__(self, base: dict):
        self._base = base
        self._over: dict = {}

    def __getitem__(self, key):
        over = self._over
        if key in over:
            return over[key]
        return self._base[key]

    def get(self, key, default=None):
        over = self._over
        if key in over:
            return over[key]
        return self._base.get(key, default)

    def __setitem__(self, key, value) -> None:
        self._over[key] = value

    def __contains__(self, key) -> bool:
        return key in self._over or key in self._base


class ResourceLedger:
    """Tentative compute + bandwidth accounting over a resource view.

    ``generation`` counts bandwidth-affecting mutations (link alloc /
    release); together with a per-instance sequence number it forms
    ``token``, the staleness tag of path-cache entries computed against
    this ledger state.
    """

    #: atomic under the GIL — ledgers may be built off the orchestrator
    #: thread (dispatcher workers, tests), so no read-modify-write races
    _seq = itertools.count(1)

    def __init__(self, resource: NFFG, seed: Optional[tuple] = None):
        self.resource = resource
        self._instance = next(ResourceLedger._seq)
        self.generation = 0
        if seed is not None:
            # free maps provided by the substrate index: overlay them
            # copy-on-write instead of rescanning the whole view
            free_base, link_base = seed
            self._free = _CowMap(free_base)
            self._link_free = _CowMap(link_base)
            return
        self._free: dict[str, ResourceVector] = {}
        self._link_free: dict[str, float] = {}
        # one pass over the edge table for all placements instead of a
        # per-infra nfs_on scan (a ledger is built for every mapping run)
        consumed: dict[str, ResourceVector] = {}
        for infra_id, nf in resource.placed_nfs():
            total = consumed.get(infra_id)
            consumed[infra_id] = (nf.resources if total is None
                                  else total + nf.resources)
        for infra in resource.infras:
            used = consumed.get(infra.id)
            self._free[infra.id] = (infra.resources if used is None
                                    else infra.resources - used)
        for link in resource.links:
            self._link_free[link.id] = link.available_bandwidth

    @property
    def token(self) -> tuple[int, int]:
        """Globally unique tag of this exact allocation state."""
        return (self._instance, self.generation)

    # -- compute ---------------------------------------------------------

    def free(self, infra_id: str) -> ResourceVector:
        return self._free[infra_id]

    def can_host(self, nf: NodeNF, infra: NodeInfra) -> bool:
        if not infra.supports(nf.functional_type):
            return False
        return nf.resources.fits_within(self._free[infra.id])

    def alloc_nf(self, nf: NodeNF, infra_id: str) -> None:
        free = self._free[infra_id]
        if not nf.resources.fits_within(free):
            raise MappingError(
                f"infra {infra_id!r} cannot host {nf.id!r}: "
                f"need {nf.resources}, free {free}")
        self._free[infra_id] = free - nf.resources

    def release_nf(self, nf: NodeNF, infra_id: str) -> None:
        self._free[infra_id] = self._free[infra_id] + nf.resources

    # -- bandwidth ----------------------------------------------------------

    def link_free(self, link_id: str) -> float:
        return self._link_free[link_id]

    def can_route(self, link: EdgeLink, bandwidth: float) -> bool:
        return self._link_free[link.id] + 1e-9 >= bandwidth

    def can_route_ids(self, link_ids: list[str], bandwidth: float) -> bool:
        """Like :meth:`can_route` but over link *ids* (path-cache entries
        store ids, which stay valid across NFFG copies)."""
        for link_id in link_ids:
            free = self._link_free.get(link_id)
            if free is None or free + 1e-9 < bandwidth:
                return False
        return True

    def alloc_links(self, link_ids: list[str], bandwidth: float) -> None:
        for link_id in link_ids:
            if self._link_free[link_id] + 1e-9 < bandwidth:
                raise MappingError(f"link {link_id!r} lacks bandwidth")
        for link_id in link_ids:
            self._link_free[link_id] -= bandwidth
        if link_ids:
            self.generation += 1

    def release_links(self, link_ids: list[str], bandwidth: float) -> None:
        for link_id in link_ids:
            self._link_free[link_id] += bandwidth
        if link_ids:
            self.generation += 1


def build_sap_attachments(resource: NFFG) -> dict[str, tuple[str, str]]:
    """SAP id -> (infra_id, infra_port_id) attachment map of a view.

    Primary source is sap-tagged infra ports (``sap_bindings``); SAP
    nodes directly linked to an infra are accepted as a fallback.
    Shared by :class:`MappingContext` and the CAL's in-place DoV apply.
    """
    attach: dict[str, tuple[str, str]] = dict(resource.sap_bindings())
    for sap in resource.saps:
        if sap.id in attach:
            continue
        for edge in resource.edges_of(sap.id):
            if not isinstance(edge, EdgeLink):
                continue
            other = (edge.dst_node if edge.src_node == sap.id else edge.src_node)
            other_port = (edge.dst_port if edge.src_node == sap.id
                          else edge.src_port)
            node = resource.node(other)
            if isinstance(node, NodeInfra):
                attach[sap.id] = (other, other_port)
                break
    return attach


def install_hop_flowrules(mapped: NFFG, hop: EdgeSGHop, route: HopRoute,
                          in_port: str,
                          out_port_final: str) -> list[tuple[str, str]]:
    """Install one flow rule per traversed BiS-BiS for one SG hop.

    ``in_port`` is the infra-side ingress port on the first infra of the
    route, ``out_port_final`` the egress port on the last.  Returns the
    ``(infra_id, port_id)`` pairs that received a rule so callers can
    later remove exactly those (incremental DoV teardown).  Shared by
    :meth:`MappingContext.commit` and the CAL's in-place DoV apply.
    """
    touched: list[tuple[str, str]] = []
    path = route.infra_path
    needs_tag = len(path) > 1
    for index, infra_id in enumerate(path):
        infra = mapped.infra(infra_id)
        if index < len(path) - 1:
            link = mapped.edge(route.link_ids[index])
            assert isinstance(link, EdgeLink)
            out_port = link.src_port
        else:
            out_port = out_port_final
        match = f"in_port={in_port}"
        if hop.flowclass:
            match += f";flowclass={hop.flowclass}"
        if needs_tag and index > 0:
            match += f";tag={hop.id}"
        action = f"output={out_port}"
        if needs_tag and index == 0:
            action += f";tag={hop.id}"
        if needs_tag and index == len(path) - 1:
            action += ";untag"
        infra.port(in_port).add_flowrule(
            match=match, action=action, bandwidth=route.bandwidth,
            delay=hop.delay, hop_id=hop.id)
        touched.append((infra_id, in_port))
        if index < len(path) - 1:
            link = mapped.edge(route.link_ids[index])
            assert isinstance(link, EdgeLink)
            in_port = link.dst_port
    return touched


class MappingContext:
    """Mutable state of one embedding run.

    Holds the service graph, the pristine resource view, a ledger, the
    placements/routes decided so far, and materializes everything into a
    mapped NFFG on :meth:`commit`.
    """

    def __init__(self, service: NFFG, resource: NFFG,
                 path_cache: Optional["PathCache"] = None,
                 index: Optional["SubstrateIndex"] = None):
        self.service = service
        self.resource = resource
        if index is not None and not index.covers(resource):
            # offered an index built over a different view object (a
            # copy, or a stale one): fall back to the full rescan path
            counters.incr("mapping.index.skip")
            index = None
        self.index = index
        self.path_cache = path_cache
        self.placement: dict[str, str] = {}
        self.routes: dict[str, HopRoute] = {}
        self.decompositions: dict[str, str] = {}
        self.nodes_examined = 0
        self.backtracks = 0
        self._sg_hops: Optional[list[EdgeSGHop]] = None
        self._hops_in: Optional[dict[str, list[EdgeSGHop]]] = None
        self._hops_out: Optional[dict[str, list[EdgeSGHop]]] = None
        if index is not None:
            counters.incr("mapping.index.hit")
            self.ledger = ResourceLedger(resource, seed=index.ledger_seed())
            self._sap_attach = index.sap_attachments()
            self._adjacency = index.adjacency()
            self._node_delays = index.node_delays()
            # topology-only Dijkstra memo shared across runs
            self._delay_from = index.delay_memo
        else:
            self.ledger = ResourceLedger(resource)
            self._sap_attach = self._build_sap_attachments()
            self._adjacency: Optional[dict[str, list[EdgeLink]]] = None
            self._node_delays: Optional[dict[str, float]] = None
            self._delay_from: dict[str, dict[str, float]] = {}

    # -- service-graph hop index (built once per run) ---------------------

    def sg_hop_list(self) -> list[EdgeSGHop]:
        """The service's SG hops as a cached list (the ``sg_hops``
        property rebuilds it on every access)."""
        if self._sg_hops is None:
            self._sg_hops = list(self.service.sg_hops)
        return self._sg_hops

    def _build_hop_index(self) -> None:
        hops_in: dict[str, list[EdgeSGHop]] = {}
        hops_out: dict[str, list[EdgeSGHop]] = {}
        for hop in self.sg_hop_list():
            hops_out.setdefault(hop.src_node, []).append(hop)
            hops_in.setdefault(hop.dst_node, []).append(hop)
        self._hops_in = hops_in
        self._hops_out = hops_out

    def in_hops(self, node_id: str) -> list[EdgeSGHop]:
        """SG hops entering a service node (indexed once per run)."""
        if self._hops_in is None:
            self._build_hop_index()
        return self._hops_in.get(node_id, [])

    def out_hops(self, node_id: str) -> list[EdgeSGHop]:
        """SG hops leaving a service node (indexed once per run)."""
        if self._hops_out is None:
            self._build_hop_index()
        return self._hops_out.get(node_id, [])

    def hops_touching(self, node_id: str) -> list[EdgeSGHop]:
        """SG hops with this service node as either endpoint."""
        return self.in_hops(node_id) + self.out_hops(node_id)

    # -- candidate selection (index-backed front door) --------------------

    def candidates(self, nf: NodeNF, k: Optional[int] = None, *,
                   anchor: Optional[str] = None) -> list[str]:
        """Candidate host ids for an NF.

        With a substrate index attached this is a pruned top-K query
        (capacity buckets + anchor neighbourhood); without one it
        returns every infra id, preserving the full-scan behaviour.
        A pinned NF always resolves to exactly its pinned host."""
        pinned = nf.metadata.get(CONSTRAINT_INFRA)
        if pinned is not None:
            if (self.resource.has_node(pinned)
                    and isinstance(self.resource.node(pinned), NodeInfra)):
                return [pinned]
            return []
        if self.index is not None:
            return self.index.candidate_ids(
                nf.functional_type,
                domain=nf.metadata.get(CONSTRAINT_DOMAIN),
                k=k, min_cpu=nf.resources.cpu, near=anchor)
        return [infra.id for infra in self.resource.infras]

    # -- cached topology helpers (hot path of every embedder) -----------

    def adjacency(self) -> dict[str, list[EdgeLink]]:
        """Static infra-infra adjacency of the resource view (cached —
        topology does not change during one mapping run)."""
        if self._adjacency is None:
            from repro.mapping.paths import build_infra_adjacency
            self._adjacency = build_infra_adjacency(self.resource)
        return self._adjacency

    def node_delays(self) -> dict[str, float]:
        if self._node_delays is None:
            from repro.mapping.paths import build_node_delays
            self._node_delays = build_node_delays(self.resource)
        return self._node_delays

    # -- routing (path-cache-aware front door for embedders) -------------

    def find_route(self, hop_id: str, src_infra: str, dst_infra: str,
                   bandwidth: float,
                   max_delay: float = float("inf")) -> HopRoute:
        """Route one hop, through the shared path cache when one is
        attached; raises :class:`MappingError` when infeasible."""
        if self.path_cache is not None:
            return self.path_cache.find_route(
                self, hop_id, src_infra, dst_infra, bandwidth, max_delay)
        from repro.mapping.paths import find_route
        return find_route(self.resource, self.ledger, hop_id, src_infra,
                          dst_infra, bandwidth, max_delay,
                          adjacency=self.adjacency(),
                          node_delay=self.node_delays())

    def route_or_none(self, hop_id: str, src_infra: str, dst_infra: str,
                      bandwidth: float,
                      max_delay: float = float("inf")) -> Optional[HopRoute]:
        try:
            return self.find_route(hop_id, src_infra, dst_infra,
                                   bandwidth, max_delay)
        except MappingError:
            return None

    def delay_estimate(self, src_infra: str, dst_infra: str) -> float:
        """Unconstrained shortest-path delay between two infras, with
        per-source caching (used as heuristic guidance only)."""
        cached = self._delay_from.get(src_infra)
        if cached is None:
            cached = self._single_source_delays(src_infra)
            self._delay_from[src_infra] = cached
        return cached.get(dst_infra, float("inf"))

    def _single_source_delays(self, source: str) -> dict[str, float]:
        import heapq

        node_delay = self.node_delays()
        adjacency = self.adjacency()
        best = {source: node_delay.get(source, 0.0)}
        heap = [(best[source], source)]
        visited: set[str] = set()
        while heap:
            delay, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            for link in adjacency.get(node, ()):
                neighbour = link.dst_node
                candidate = delay + link.delay + node_delay.get(neighbour, 0.0)
                if candidate < best.get(neighbour, float("inf")) - 1e-12:
                    best[neighbour] = candidate
                    heapq.heappush(heap, (candidate, neighbour))
        return best

    # -- sap handling -----------------------------------------------------

    def _build_sap_attachments(self) -> dict[str, tuple[str, str]]:
        """SAP id -> (infra_id, infra_port_id) in the resource view."""
        return build_sap_attachments(self.resource)

    def sap_attachment(self, sap_id: str) -> tuple[str, str]:
        try:
            return self._sap_attach[sap_id]
        except KeyError:
            raise MappingError(
                f"service SAP {sap_id!r} has no attachment point in "
                f"resource view {self.resource.id!r}") from None

    # -- endpoint resolution ------------------------------------------------

    def endpoint_infra(self, node_id: str) -> Optional[str]:
        """Infra hosting a service-graph endpoint (SAP or placed NF)."""
        node = self.service.node(node_id)
        if isinstance(node, NodeNF):
            return self.placement.get(node_id)
        return self.sap_attachment(node_id)[0]

    # -- placement / routing records -----------------------------------------

    def place(self, nf_id: str, infra_id: str) -> None:
        nf = self.service.nf(nf_id)
        self.ledger.alloc_nf(nf, infra_id)
        self.placement[nf_id] = infra_id

    def unplace(self, nf_id: str) -> None:
        infra_id = self.placement.pop(nf_id)
        self.ledger.release_nf(self.service.nf(nf_id), infra_id)

    def record_route(self, route: HopRoute) -> None:
        self.ledger.alloc_links(route.link_ids, route.bandwidth)
        self.routes[route.hop_id] = route

    def drop_route(self, hop_id: str) -> None:
        route = self.routes.pop(hop_id)
        self.ledger.release_links(route.link_ids, route.bandwidth)

    # -- requirement checking ---------------------------------------------------

    def requirement_violations(self) -> list[str]:
        """Check every requirement edge against the recorded routes."""
        problems: list[str] = []
        for req in self.service.requirements:
            total_delay = 0.0
            incomplete = False
            for hop_id in req.sg_path:
                route = self.routes.get(hop_id)
                if route is None:
                    incomplete = True
                    break
                total_delay += route.delay
            if incomplete:
                continue
            if total_delay > req.max_delay + 1e-9:
                problems.append(
                    f"requirement {req.id}: delay {total_delay:.3f} > "
                    f"max {req.max_delay:.3f}")
        return problems

    def partial_delay(self, req_sg_path: list[str]) -> float:
        return sum(self.routes[h].delay for h in req_sg_path if h in self.routes)

    # -- solution materialization --------------------------------------------------

    def total_cost(self) -> float:
        """Cost = weighted CPU placement cost + bandwidth-hops."""
        cost = 0.0
        for nf_id, infra_id in self.placement.items():
            nf = self.service.nf(nf_id)
            infra = self.resource.infra(infra_id)
            cost += nf.resources.cpu * infra.cost_per_cpu
        for route in self.routes.values():
            cost += route.bandwidth * len(route.link_ids) * 0.01
        return cost

    def touched_infra_ids(self) -> set[str]:
        """The substrate infras this mapping writes to: NF hosts plus
        every BiS-BiS traversed by a route."""
        ids = set(self.placement.values())
        for route in self.routes.values():
            ids.update(route.infra_path)
        return ids

    def commit(self, mapped_id: Optional[str] = None, *,
               touched_only: bool = False) -> NFFG:
        """Write placements, reservations and flow rules into a copy of
        the resource view and return it.

        With ``touched_only`` the copy is restricted to the infras the
        mapping actually writes to (O(service), not O(substrate)) — the
        validator checks flow rules against it, and the full mapped
        graph is only materialized if someone asks for it."""
        if touched_only:
            mapped = self.resource.copy_subgraph(
                mapped_id or f"{self.resource.id}-mapped",
                self.touched_infra_ids())
        else:
            mapped = self.resource.copy(
                mapped_id or f"{self.resource.id}-mapped")
        for nf_id, infra_id in self.placement.items():
            nf = self.service.nf(nf_id)
            if not mapped.has_node(nf_id):
                mapped.add_node_copy(nf)
            mapped.place_nf(nf_id, infra_id)
            mapped.nf(nf_id).status = "deployed"
        for link in mapped.links:
            free_now = self.ledger.link_free(link.id)
            original = self.resource.edge(link.id)
            assert isinstance(original, EdgeLink)
            newly_reserved = original.available_bandwidth - free_now
            if newly_reserved > 1e-9:
                link.reserved += newly_reserved
        for hop in self.service.sg_hops:
            route = self.routes.get(hop.id)
            if route is not None:
                self._install_flowrules(mapped, hop, route)
        # carry the SG hops and requirements for later teardown/audit
        for node in self.service.saps:
            if not mapped.has_node(node.id):
                mapped.add_node_copy(node)
        for hop in self.service.sg_hops:
            if not mapped.has_edge(hop.id):
                mapped.add_edge_copy(hop)
        for req in self.service.requirements:
            if not mapped.has_edge(req.id):
                mapped.add_edge_copy(req)
        return mapped

    def _endpoint_ports(self, mapped: NFFG, node_id: str, port_id: str,
                        infra_id: str) -> str:
        """The infra-side port where a service endpoint attaches."""
        node = self.service.node(node_id)
        if isinstance(node, NodeNF):
            bound = mapped.infra_port_of_nf(node_id, port_id)
            if bound is None:
                raise MappingError(f"NF {node_id!r} not bound on {infra_id!r}")
            return bound[1]
        return self.sap_attachment(node_id)[1]

    def _install_flowrules(self, mapped: NFFG, hop: EdgeSGHop,
                           route: HopRoute) -> None:
        """Install one flow rule per traversed BiS-BiS for this hop."""
        path = route.infra_path
        in_port = self._endpoint_ports(mapped, hop.src_node, hop.src_port, path[0])
        out_port_final = self._endpoint_ports(mapped, hop.dst_node, hop.dst_port,
                                              path[-1])
        install_hop_flowrules(mapped, hop, route, in_port, out_port_final)

    def to_result(self, success: bool, runtime_s: float,
                  failure_reason: str = "",
                  mapped_id: Optional[str] = None) -> MappingResult:
        if not success:
            return MappingResult(success=False, failure_reason=failure_reason,
                                 runtime_s=runtime_s, service=self.service,
                                 nodes_examined=self.nodes_examined,
                                 backtracks=self.backtracks)
        result = _LazyMappedResult(
            success=True, service=self.service,
            touched=self.commit(mapped_id, touched_only=True),
            nf_placement=dict(self.placement),
            hop_routes=dict(self.routes), decompositions=dict(self.decompositions),
            cost=self.total_cost(), runtime_s=runtime_s,
            nodes_examined=self.nodes_examined, backtracks=self.backtracks)
        result._mapped_factory = lambda: self.commit(mapped_id)
        return result


class Embedder(abc.ABC):
    """Base class of pluggable embedding algorithms."""

    name: str = "abstract"

    @abc.abstractmethod
    def _run(self, ctx: MappingContext) -> None:
        """Fill ``ctx.placement`` and ``ctx.routes`` or raise MappingError."""

    def map(self, service: NFFG, resource: NFFG,
            mapped_id: Optional[str] = None,
            path_cache: Optional["PathCache"] = None,
            index: Optional["SubstrateIndex"] = None) -> MappingResult:
        """Embed ``service`` into ``resource``; never raises on mapping
        failure — inspect :attr:`MappingResult.success`.  ``path_cache``
        (shared across requests by the orchestrator) memoizes substrate
        path searches; ``index`` (the CAL's :class:`SubstrateIndex`)
        seeds the run's ledger and candidate sets when it covers
        ``resource``."""
        result = self._map(service, resource, mapped_id=mapped_id,
                           path_cache=path_cache, index=index)
        result.embedder = self.name
        return result

    def _map(self, service: NFFG, resource: NFFG,
             mapped_id: Optional[str],
             path_cache: Optional["PathCache"],
             index: Optional["SubstrateIndex"]) -> MappingResult:
        started = time.perf_counter()
        ctx = MappingContext(service, resource, path_cache=path_cache,
                             index=index)
        try:
            self._run(ctx)
            violations = ctx.requirement_violations()
            if violations:
                raise MappingError("; ".join(violations))
        except MappingError as exc:
            return ctx.to_result(False, time.perf_counter() - started,
                                 failure_reason=str(exc))
        except ValueError as exc:  # NFFGError and port/graph conflicts
            return ctx.to_result(False, time.perf_counter() - started,
                                 failure_reason=f"graph error: {exc}")
        try:
            return ctx.to_result(True, time.perf_counter() - started,
                                 mapped_id=mapped_id)
        except ValueError as exc:
            # materialization can still fail (e.g. port-name conflicts
            # with foreign state in the resource view)
            return MappingResult(
                success=False, service=ctx.service,
                failure_reason=f"commit error: {exc}",
                runtime_s=time.perf_counter() - started,
                nodes_examined=ctx.nodes_examined,
                backtracks=ctx.backtracks)

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"
