"""Shared substrate path cache.

Every embedder hop used to run Dijkstra from scratch, even though the
substrate topology is identical across the hops of one request *and*
across consecutive requests hitting the same DoV.  :class:`PathCache`
memoizes two kinds of results:

- **min-delay paths** per ``(src, dst)`` pair, computed ignoring
  bandwidth.  On a route query the cached path is validated against the
  live ledger: if every link still has enough free bandwidth and the
  delay fits the hop's budget, the path is *provably optimal* (any
  bandwidth-feasible path is also delay-feasible in the unconstrained
  relaxation, so the unconstrained minimum wins) and is returned
  without any graph search;
- **constrained results** per ``(src, dst, bandwidth-class)``, tagged
  with the owning ledger's generation token.  These only replay while
  the ledger has seen no allocation/release since — any bandwidth
  change invalidates them, preserving exact min-delay semantics.

The cache is owned *outside* the mapping run (the orchestrator), shared
across hops and requests, and invalidated wholesale when the substrate
topology changes (``sync(topology_generation)``).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.mapping.base import HopRoute, MappingError, MappingContext
from repro.mapping.paths import dijkstra_route
from repro.perf import counters

_UNSEEN = object()


def bandwidth_class(bandwidth: float) -> int:
    """Bucket a bandwidth demand by power of two (class 0 = no demand)."""
    if bandwidth <= 0.0:
        return 0
    return max(1, math.frexp(bandwidth)[1])


class PathCache:
    """Memoized substrate paths shared across hops and requests."""

    def __init__(self) -> None:
        #: (src, dst) -> (infra_path, link_ids, delay) | None (unreachable)
        self._min_delay: dict[tuple[str, str],
                              Optional[tuple[list[str], list[str], float]]] = {}
        #: (src, dst, bw_class) -> (ledger_token, result | None)
        self._constrained: dict[tuple[str, str, int], tuple] = {}
        self._epoch: Optional[int] = None
        self.hits = 0
        self.misses = 0

    # -- lifecycle ---------------------------------------------------------

    def sync(self, topology_epoch: int) -> "PathCache":
        """Drop everything when the substrate topology generation moved."""
        if topology_epoch != self._epoch:
            if self._epoch is not None:
                self.invalidate()
            self._epoch = topology_epoch
        return self

    def invalidate(self) -> None:
        self._min_delay.clear()
        self._constrained.clear()
        counters.incr("pathcache.invalidate")

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._min_delay) + len(self._constrained)}

    def _count(self, computed: bool) -> None:
        if computed:
            counters.incr("pathcache.miss")
            self.misses += 1
        else:
            counters.incr("pathcache.hit")
            self.hits += 1

    # -- route lookup ------------------------------------------------------

    def find_route(self, ctx: MappingContext, hop_id: str,
                   src_infra: str, dst_infra: str, bandwidth: float,
                   max_delay: float = float("inf")) -> HopRoute:
        """Drop-in replacement for :func:`repro.mapping.paths.find_route`
        backed by the memo; raises :class:`MappingError` when no feasible
        path exists."""
        node_delay = ctx.node_delays()
        if src_infra == dst_infra:
            delay = node_delay.get(src_infra, 0.0)
            if delay > max_delay + 1e-9:
                raise MappingError(
                    f"hop {hop_id!r}: internal delay {delay} "
                    f"exceeds {max_delay}")
            return HopRoute(hop_id=hop_id, infra_path=[src_infra],
                            link_ids=[], delay=delay, bandwidth=bandwidth)

        # 1. the unconstrained minimum, validated against the live ledger
        # ("miss" means this call ran a fresh Dijkstra; replaying a
        # memoized verdict — even a negative one — is a hit)
        key = (src_infra, dst_infra)
        entry = self._min_delay.get(key, _UNSEEN)
        computed = entry is _UNSEEN
        if computed:
            entry = dijkstra_route(ctx.adjacency(), node_delay,
                                   src_infra, dst_infra)
            self._min_delay[key] = entry
        if entry is None:
            self._count(computed)
            raise MappingError(
                f"hop {hop_id!r}: no path {src_infra!r}->{dst_infra!r} "
                "in the substrate topology")
        infra_path, link_ids, delay = entry
        if (delay <= max_delay + 1e-9
                and ctx.ledger.can_route_ids(link_ids, bandwidth)):
            self._count(computed)
            return HopRoute(hop_id=hop_id, infra_path=list(infra_path),
                            link_ids=list(link_ids), delay=delay,
                            bandwidth=bandwidth)

        if delay > max_delay + 1e-9:
            # the unconstrained minimum already blows the budget, so no
            # bandwidth-feasible path (a superset constraint) can fit it
            self._count(computed)
            raise MappingError(
                f"hop {hop_id!r}: minimum substrate delay {delay} between "
                f"{src_infra!r} and {dst_infra!r} exceeds {max_delay}")

        # 2. constrained memo, valid only while the ledger is unchanged
        token = ctx.ledger.token
        ckey = (src_infra, dst_infra, bandwidth_class(bandwidth))
        stored = self._constrained.get(ckey)
        if stored is not None and stored[0] == token:
            result = stored[1]
            if result is not None and result[2] <= max_delay + 1e-9:
                self._count(computed=False)
                return HopRoute(hop_id=hop_id, infra_path=list(result[0]),
                                link_ids=list(result[1]), delay=result[2],
                                bandwidth=bandwidth)
            # replayed failure, or the feasible minimum blows the budget
            self._count(computed=False)
            raise MappingError(
                f"hop {hop_id!r}: no path {src_infra!r}->{dst_infra!r} "
                f"with {bandwidth} Mbps free (max delay {max_delay})")

        self._count(computed=True)
        ledger = ctx.ledger
        found = dijkstra_route(
            ctx.adjacency(), node_delay, src_infra, dst_infra,
            link_usable=lambda link: ledger.can_route(link, bandwidth))
        # store the *unclipped* minimum so a later query with a larger
        # budget can still replay it; apply this hop's budget afterwards
        self._constrained[ckey] = (token, found)
        if found is None or found[2] > max_delay + 1e-9:
            raise MappingError(
                f"hop {hop_id!r}: no path {src_infra!r}->{dst_infra!r} "
                f"with {bandwidth} Mbps free (max delay {max_delay})")
        return HopRoute(hop_id=hop_id, infra_path=list(found[0]),
                        link_ids=list(found[1]), delay=found[2],
                        bandwidth=bandwidth)
