"""Constrained substrate path finding.

Hops must be routed over static links with enough *free* bandwidth; the
objective is minimum delay (link propagation + per-node internal
forwarding delay of each traversed BiS-BiS).  A small label-setting
Dijkstra over the infra topology, parameterized by the ledger so
tentative allocations are respected.
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.mapping.base import HopRoute, MappingError, ResourceLedger
from repro.nffg.graph import NFFG
from repro.nffg.model import EdgeLink, NodeInfra


def find_route(resource: NFFG, ledger: ResourceLedger, hop_id: str,
               src_infra: str, dst_infra: str, bandwidth: float,
               max_delay: float = float("inf"),
               adjacency: Optional[dict[str, list[EdgeLink]]] = None,
               node_delay: Optional[dict[str, float]] = None) -> HopRoute:
    """Cheapest-delay route between two infra nodes with free bandwidth.

    Returns a :class:`HopRoute`; raises :class:`MappingError` when no
    feasible path exists.  A same-node "path" is valid and costs only
    the node's internal delay.  ``adjacency``/``node_delay`` may be
    supplied by the caller (e.g. a MappingContext cache) to avoid
    rebuilding them per call.
    """
    if node_delay is None:
        node_delay = {infra.id: infra.resources.delay
                      for infra in resource.infras}
    if src_infra == dst_infra:
        delay = node_delay.get(src_infra, 0.0)
        if delay > max_delay + 1e-9:
            raise MappingError(
                f"hop {hop_id!r}: internal delay {delay} exceeds {max_delay}")
        return HopRoute(hop_id=hop_id, infra_path=[src_infra], link_ids=[],
                        delay=delay, bandwidth=bandwidth)

    if adjacency is None:
        adjacency = {}
        for link in resource.links:
            src_node = resource.node(link.src_node)
            dst_node = resource.node(link.dst_node)
            if isinstance(src_node, NodeInfra) and isinstance(dst_node, NodeInfra):
                adjacency.setdefault(link.src_node, []).append(link)

    best: dict[str, float] = {src_infra: node_delay.get(src_infra, 0.0)}
    heap: list[tuple[float, str]] = [(best[src_infra], src_infra)]
    parent: dict[str, tuple[str, EdgeLink]] = {}
    visited: set[str] = set()
    while heap:
        delay, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node == dst_infra:
            break
        for link in adjacency.get(node, ()):
            if not ledger.can_route(link, bandwidth):
                continue
            neighbour = link.dst_node
            candidate = delay + link.delay + node_delay.get(neighbour, 0.0)
            if candidate > max_delay + 1e-9:
                continue
            if candidate < best.get(neighbour, float("inf")) - 1e-12:
                best[neighbour] = candidate
                parent[neighbour] = (node, link)
                heapq.heappush(heap, (candidate, neighbour))
    if dst_infra not in visited:
        raise MappingError(
            f"hop {hop_id!r}: no path {src_infra!r}->{dst_infra!r} with "
            f"{bandwidth} Mbps free (max delay {max_delay})")
    infra_path = [dst_infra]
    link_ids: list[str] = []
    node = dst_infra
    while node != src_infra:
        prev, link = parent[node]
        link_ids.append(link.id)
        infra_path.append(prev)
        node = prev
    infra_path.reverse()
    link_ids.reverse()
    return HopRoute(hop_id=hop_id, infra_path=infra_path, link_ids=link_ids,
                    delay=best[dst_infra], bandwidth=bandwidth)


def route_or_none(resource: NFFG, ledger: ResourceLedger, hop_id: str,
                  src_infra: str, dst_infra: str, bandwidth: float,
                  max_delay: float = float("inf"),
                  adjacency: Optional[dict[str, list[EdgeLink]]] = None,
                  node_delay: Optional[dict[str, float]] = None
                  ) -> Optional[HopRoute]:
    try:
        return find_route(resource, ledger, hop_id, src_infra, dst_infra,
                          bandwidth, max_delay, adjacency=adjacency,
                          node_delay=node_delay)
    except MappingError:
        return None


def path_delay_estimate(resource: NFFG, src_infra: str, dst_infra: str) -> float:
    """Delay of the unconstrained shortest path (heuristic guidance)."""
    ledger = ResourceLedger(resource)
    route = route_or_none(resource, ledger, "estimate", src_infra, dst_infra,
                          bandwidth=0.0)
    return route.delay if route is not None else float("inf")
