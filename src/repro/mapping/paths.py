"""Constrained substrate path finding.

Hops must be routed over static links with enough *free* bandwidth; the
objective is minimum delay (link propagation + per-node internal
forwarding delay of each traversed BiS-BiS).  A small label-setting
Dijkstra over the infra topology, parameterized by the ledger so
tentative allocations are respected.

:func:`build_infra_adjacency` is the single adjacency builder shared by
:class:`~repro.mapping.base.MappingContext` and the standalone
:func:`find_route` fallback, so both always see the same topology.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.mapping.base import HopRoute, MappingError, ResourceLedger
from repro.nffg.graph import NFFG
from repro.nffg.model import EdgeLink


def build_infra_adjacency(resource: NFFG) -> dict[str, list[EdgeLink]]:
    """Outgoing static infra-infra links, keyed by source infra id.

    Directedness: NFFG static links are *directed* edges; symmetric
    substrates carry one link per direction (``NFFG.add_link`` creates
    the reverse twin by default).  A link therefore appears only under
    its ``src_node`` and path finding never traverses it backwards — a
    one-way link models a genuinely asymmetric substrate.

    The infra id set is collected once up front so the per-link check is
    two set lookups instead of two ``resource.node()`` round-trips.
    """
    infra_ids = {infra.id for infra in resource.infras}
    adjacency: dict[str, list[EdgeLink]] = {}
    for link in resource.links:
        if link.src_node in infra_ids and link.dst_node in infra_ids:
            adjacency.setdefault(link.src_node, []).append(link)
    return adjacency


def build_node_delays(resource: NFFG) -> dict[str, float]:
    """Internal forwarding delay per infra node."""
    return {infra.id: infra.resources.delay for infra in resource.infras}


def dijkstra_route(adjacency: dict[str, list[EdgeLink]],
                   node_delay: dict[str, float],
                   src_infra: str, dst_infra: str,
                   max_delay: float = float("inf"),
                   link_usable: Optional[Callable[[EdgeLink], bool]] = None,
                   ) -> Optional[tuple[list[str], list[str], float]]:
    """Minimum-delay route core shared by the constrained and
    unconstrained (cache-warming) searches.

    Returns ``(infra_path, link_ids, delay)`` or ``None`` when the
    destination is unreachable under the constraints.  ``link_usable``
    filters candidate links (e.g. by free bandwidth); ``None`` admits
    every link.
    """
    best: dict[str, float] = {src_infra: node_delay.get(src_infra, 0.0)}
    heap: list[tuple[float, str]] = [(best[src_infra], src_infra)]
    parent: dict[str, tuple[str, EdgeLink]] = {}
    visited: set[str] = set()
    while heap:
        delay, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node == dst_infra:
            break
        for link in adjacency.get(node, ()):
            if link_usable is not None and not link_usable(link):
                continue
            neighbour = link.dst_node
            candidate = delay + link.delay + node_delay.get(neighbour, 0.0)
            if candidate > max_delay + 1e-9:
                continue
            if candidate < best.get(neighbour, float("inf")) - 1e-12:
                best[neighbour] = candidate
                parent[neighbour] = (node, link)
                heapq.heappush(heap, (candidate, neighbour))
    if dst_infra not in visited:
        return None
    infra_path = [dst_infra]
    link_ids: list[str] = []
    node = dst_infra
    while node != src_infra:
        prev, link = parent[node]
        link_ids.append(link.id)
        infra_path.append(prev)
        node = prev
    infra_path.reverse()
    link_ids.reverse()
    return infra_path, link_ids, best[dst_infra]


def find_route(resource: NFFG, ledger: ResourceLedger, hop_id: str,
               src_infra: str, dst_infra: str, bandwidth: float,
               max_delay: float = float("inf"),
               adjacency: Optional[dict[str, list[EdgeLink]]] = None,
               node_delay: Optional[dict[str, float]] = None) -> HopRoute:
    """Cheapest-delay route between two infra nodes with free bandwidth.

    Returns a :class:`HopRoute`; raises :class:`MappingError` when no
    feasible path exists.  A same-node "path" is valid and costs only
    the node's internal delay.  ``adjacency``/``node_delay`` may be
    supplied by the caller (e.g. a MappingContext cache) to avoid
    rebuilding them per call; the fallback uses the same
    :func:`build_infra_adjacency` code path as the context cache.
    """
    if node_delay is None:
        node_delay = build_node_delays(resource)
    if src_infra == dst_infra:
        delay = node_delay.get(src_infra, 0.0)
        if delay > max_delay + 1e-9:
            raise MappingError(
                f"hop {hop_id!r}: internal delay {delay} exceeds {max_delay}")
        return HopRoute(hop_id=hop_id, infra_path=[src_infra], link_ids=[],
                        delay=delay, bandwidth=bandwidth)

    if adjacency is None:
        adjacency = build_infra_adjacency(resource)

    found = dijkstra_route(
        adjacency, node_delay, src_infra, dst_infra, max_delay,
        link_usable=lambda link: ledger.can_route(link, bandwidth))
    if found is None:
        raise MappingError(
            f"hop {hop_id!r}: no path {src_infra!r}->{dst_infra!r} with "
            f"{bandwidth} Mbps free (max delay {max_delay})")
    infra_path, link_ids, delay = found
    return HopRoute(hop_id=hop_id, infra_path=infra_path, link_ids=link_ids,
                    delay=delay, bandwidth=bandwidth)


def route_or_none(resource: NFFG, ledger: ResourceLedger, hop_id: str,
                  src_infra: str, dst_infra: str, bandwidth: float,
                  max_delay: float = float("inf"),
                  adjacency: Optional[dict[str, list[EdgeLink]]] = None,
                  node_delay: Optional[dict[str, float]] = None
                  ) -> Optional[HopRoute]:
    try:
        return find_route(resource, ledger, hop_id, src_infra, dst_infra,
                          bandwidth, max_delay, adjacency=adjacency,
                          node_delay=node_delay)
    except MappingError:
        return None


def path_delay_estimate(resource: NFFG, src_infra: str, dst_infra: str) -> float:
    """Delay of the unconstrained shortest path (heuristic guidance)."""
    ledger = ResourceLedger(resource)
    route = route_or_none(resource, ledger, "estimate", src_infra, dst_infra,
                          bandwidth=0.0)
    return route.delay if route is not None else float("inf")
