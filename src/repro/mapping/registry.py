"""Embedder registry: name -> class, for the RO and the CLI.

ESCAPEv2 treats the embedding algorithm as a plugin selected by name;
this registry is that seam.  Out-of-tree embedders register with
:func:`register_embedder` and become constructible everywhere an
embedder name is accepted (``ResourceOrchestrator(embedder="greedy")``,
``repro perf --embedder hybrid``, ...).
"""

from __future__ import annotations

from typing import Type

from repro.mapping.allocators import (BalancedAllocator, HybridAllocator,
                                      WeightedAllocator)
from repro.mapping.backtrack import BacktrackingEmbedder
from repro.mapping.base import Embedder
from repro.mapping.delay_aware import DelayAwareEmbedder
from repro.mapping.greedy import GreedyEmbedder

EMBEDDERS: dict[str, Type[Embedder]] = {
    GreedyEmbedder.name: GreedyEmbedder,
    BacktrackingEmbedder.name: BacktrackingEmbedder,
    DelayAwareEmbedder.name: DelayAwareEmbedder,
    BalancedAllocator.name: BalancedAllocator,
    WeightedAllocator.name: WeightedAllocator,
    HybridAllocator.name: HybridAllocator,
}


def register_embedder(cls: Type[Embedder]) -> Type[Embedder]:
    """Register an embedder class under its ``name`` (usable as a
    decorator); re-registration of the same name must be deliberate."""
    if not cls.name or cls.name == "abstract":
        raise ValueError(f"embedder {cls!r} needs a concrete name")
    EMBEDDERS[cls.name] = cls
    return cls


def embedder_names() -> list[str]:
    return sorted(EMBEDDERS)


def make_embedder(name: str, **kwargs) -> Embedder:
    """Construct a registered embedder by name."""
    try:
        cls = EMBEDDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown embedder {name!r}; registered: "
            f"{', '.join(embedder_names())}") from None
    return cls(**kwargs)
