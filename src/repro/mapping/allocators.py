"""Index-backed allocators ported from the AccaSim designs.

AccaSim's advanced allocators improve on first-come/cheapest-first
dispatching with two ideas this module transplants to NF embedding:

- **balanced** — protect scarce capabilities.  Hosts that only offer
  common functional types are consumed first; hosts specialized in a
  *scarce* type (few supporters substrate-wide) are grouped by their
  scarcest specialization and interleaved last, so a firewall never
  burns the last DPI-capable box while plain boxes sit idle.
- **weighted** — best-fit on a weighted residual.  Each consumable
  dimension gets a weight from the service's average demand and the
  substrate's current load; the chosen host minimizes the
  post-allocation weighted residual, packing small NFs onto small
  hosts and preserving large hosts for large NFs.
- **hybrid** — balanced grouping with weighted ordering inside each
  group: scarce pools are protected first, and within a pool the
  best-fitting host wins.

All three reuse the greedy chain-order walk (place in SG order, route
each hop as soon as both endpoints resolve) and the
:meth:`MappingContext.candidates` front door, so they are pruned by the
substrate index when one is attached and fall back to full scans —
never losing acceptance to pruning — when it is not.
"""

from __future__ import annotations

from typing import Optional

from repro.mapping.base import (Embedder, MappingContext, MappingError,
                                placement_allowed)
from repro.mapping.greedy import anchor_infra, route_ready_hops, service_order
from repro.nffg.model import InfraType, NodeNF
from repro.perf import counters

#: consumable dimensions considered by the weighted residual
_DIMS = ("cpu", "mem", "storage")


class _SubstrateProfile:
    """Per-run snapshot of substrate-wide facts the allocators score
    against: which functional types are scarce, which hosts specialize
    in them, and per-dimension capacity/load totals."""

    def __init__(self, scarce: frozenset[str],
                 specializations: dict[str, frozenset[str]],
                 capacity: dict[str, float], free: dict[str, float]):
        self.scarce = scarce
        self._specializations = specializations
        self.capacity = capacity
        self.free = free

    def specializations_of(self, infra_id: str) -> frozenset[str]:
        return self._specializations.get(infra_id, frozenset())


def _profile_from_index(ctx: MappingContext,
                        scarce_ratio: float) -> _SubstrateProfile:
    index = ctx.index
    hosts, explicit_counts, wildcard = index.support_census()
    hosts = max(1, hosts)
    scarce = frozenset(
        functional_type for functional_type, count in explicit_counts.items()
        if count + wildcard <= scarce_ratio * hosts)
    specializations: dict[str, frozenset[str]] = {}
    for functional_type in scarce:
        for infra_id in index.explicit_members(functional_type):
            merged = specializations.get(infra_id, frozenset())
            specializations[infra_id] = merged | {functional_type}
    return _SubstrateProfile(scarce, specializations,
                             dict(index.capacity_totals),
                             dict(index.free_totals))


def _profile_from_scan(ctx: MappingContext,
                       scarce_ratio: float) -> _SubstrateProfile:
    supporters: dict[str, int] = {}
    explicit: dict[str, frozenset[str]] = {}
    capacity = {dim: 0.0 for dim in _DIMS}
    free = {dim: 0.0 for dim in _DIMS}
    hosts = 0
    for infra in ctx.resource.infras:
        if infra.infra_type == InfraType.SDN_SWITCH:
            continue
        hosts += 1
        for dim in _DIMS:
            capacity[dim] += getattr(infra.resources, dim)
            free[dim] += getattr(ctx.ledger.free(infra.id), dim)
        if infra.supported_types:
            explicit[infra.id] = frozenset(infra.supported_types)
        for functional_type in infra.supported_types:
            supporters[functional_type] = \
                supporters.get(functional_type, 0) + 1
    wildcard = hosts - len(explicit)
    scarce = frozenset(
        functional_type for functional_type, count in supporters.items()
        if count + wildcard <= scarce_ratio * max(1, hosts))
    specializations = {infra_id: types & scarce
                       for infra_id, types in explicit.items()
                       if types & scarce}
    return _SubstrateProfile(scarce, specializations, capacity, free)


class _ChainAllocator(Embedder):
    """Shared chain-order skeleton: the subclasses only decide the
    candidate *ordering/choice* for one NF."""

    #: pruned candidate-set size per NF when an index is attached
    candidate_k = 48
    #: a functional type is scarce when its supporter share is below this
    scarce_ratio = 0.25

    def _run(self, ctx: MappingContext) -> None:
        profile = self._profile(ctx)
        routed: set[str] = set()
        for nf_id in service_order(ctx.service):
            nf = ctx.service.nf(nf_id)
            anchor = anchor_infra(ctx, nf_id)
            host = self._choose(
                ctx, nf, anchor,
                ctx.candidates(nf, self.candidate_k, anchor=anchor), profile)
            if host is None and ctx.index is not None:
                counters.incr("mapping.index.fallback")
                host = self._choose(ctx, nf, anchor, ctx.candidates(nf),
                                    profile)
            if host is None:
                raise MappingError(
                    f"{self.name}: no feasible host for NF {nf_id!r} "
                    f"(type {nf.functional_type!r})")
            ctx.place(nf_id, host)
            route_ready_hops(ctx, routed, around=nf_id)
        route_ready_hops(ctx, routed)
        unrouted = [hop.id for hop in ctx.sg_hop_list()
                    if hop.id not in routed]
        if unrouted:
            raise MappingError(f"{self.name}: unrouted SG hops {unrouted}")

    def _profile(self, ctx: MappingContext) -> _SubstrateProfile:
        if ctx.index is not None:
            return _profile_from_index(ctx, self.scarce_ratio)
        return _profile_from_scan(ctx, self.scarce_ratio)

    def _feasible(self, ctx: MappingContext, nf: NodeNF, infra_id: str,
                  anchor: Optional[str]) -> bool:
        infra = ctx.resource.infra(infra_id)
        ctx.nodes_examined += 1
        if not ctx.ledger.can_host(nf, infra):
            return False
        if not placement_allowed(ctx, nf, infra):
            return False
        if anchor is not None \
                and ctx.delay_estimate(anchor, infra_id) == float("inf"):
            return False
        return True

    def _choose(self, ctx: MappingContext, nf: NodeNF,
                anchor: Optional[str], candidate_ids: list[str],
                profile: _SubstrateProfile) -> Optional[str]:
        raise NotImplementedError

    # -- shared scoring/grouping helpers ----------------------------------

    def _weights(self, ctx: MappingContext,
                 profile: _SubstrateProfile) -> dict[str, float]:
        """Per-dimension criticality: how much of the substrate an
        average NF of this service consumes, amplified by current
        load.  Dimensions the service never asks for weigh nothing."""
        nfs = list(ctx.service.nfs)
        count = max(1, len(nfs))
        weights: dict[str, float] = {}
        for dim in _DIMS:
            requested = sum(getattr(nf.resources, dim) for nf in nfs) / count
            total = profile.capacity.get(dim, 0.0)
            if requested <= 0.0 or total <= 0.0:
                weights[dim] = 0.0
                continue
            load = 1.0 - profile.free.get(dim, total) / total
            weights[dim] = (requested / total) * (1.0 + load)
        return weights

    def _residual_score(self, ctx: MappingContext, nf: NodeNF,
                        infra_id: str, weights: dict[str, float]) -> float:
        free = ctx.ledger.free(infra_id)
        score = 0.0
        for dim, weight in weights.items():
            if weight:
                score += weight * (getattr(free, dim)
                                   - getattr(nf.resources, dim))
        return score

    def _grouped(self, nf: NodeNF, candidate_ids: list[str],
                 profile: _SubstrateProfile
                 ) -> tuple[list[str], list[list[str]]]:
        """Split candidates into a generic pool and one pool per scarce
        specialization (a host burning other scarce types than the NF's
        own is deferred), keyed deterministically."""
        own = {nf.functional_type}
        generic: list[str] = []
        pools: dict[str, list[str]] = {}
        for infra_id in candidate_ids:
            burns = profile.specializations_of(infra_id) - own
            if not burns:
                generic.append(infra_id)
            else:
                pools.setdefault(min(burns), []).append(infra_id)
        return generic, [pools[key] for key in sorted(pools)]

    @staticmethod
    def _interleave(pools: list[list[str]]) -> list[str]:
        """Round-robin across pools so no single scarce capability is
        exhausted before its peers."""
        out: list[str] = []
        depth = 0
        while True:
            emitted = False
            for pool in pools:
                if depth < len(pool):
                    out.append(pool[depth])
                    emitted = True
            if not emitted:
                return out
            depth += 1


class BalancedAllocator(_ChainAllocator):
    """First fit over scarce-aware ordering: generic hosts first, then
    scarce pools interleaved (the AccaSim ``balanced`` dispatcher)."""

    name = "balanced"

    def _choose(self, ctx: MappingContext, nf: NodeNF,
                anchor: Optional[str], candidate_ids: list[str],
                profile: _SubstrateProfile) -> Optional[str]:
        generic, pools = self._grouped(nf, candidate_ids, profile)
        for infra_id in generic + self._interleave(pools):
            if self._feasible(ctx, nf, infra_id, anchor):
                return infra_id
        return None


class WeightedAllocator(_ChainAllocator):
    """Best fit on the weighted post-allocation residual (the AccaSim
    ``weighted`` dispatcher): smallest leftover wins, preserving big
    hosts for big NFs."""

    name = "weighted"

    def _choose(self, ctx: MappingContext, nf: NodeNF,
                anchor: Optional[str], candidate_ids: list[str],
                profile: _SubstrateProfile) -> Optional[str]:
        weights = self._weights(ctx, profile)
        best = None
        best_key: Optional[tuple[float, str]] = None
        for infra_id in candidate_ids:
            if not self._feasible(ctx, nf, infra_id, anchor):
                continue
            key = (self._residual_score(ctx, nf, infra_id, weights),
                   infra_id)
            if best_key is None or key < best_key:
                best_key = key
                best = infra_id
        return best


class HybridAllocator(_ChainAllocator):
    """Balanced grouping, weighted ordering within each group: protect
    scarce pools first, best-fit inside a pool."""

    name = "hybrid"

    def _choose(self, ctx: MappingContext, nf: NodeNF,
                anchor: Optional[str], candidate_ids: list[str],
                profile: _SubstrateProfile) -> Optional[str]:
        weights = self._weights(ctx, profile)

        def by_residual(pool: list[str]) -> list[str]:
            return sorted(pool, key=lambda infra_id: (
                self._residual_score(ctx, nf, infra_id, weights), infra_id))

        generic, pools = self._grouped(nf, candidate_ids, profile)
        ordered = by_residual(generic) + self._interleave(
            [by_residual(pool) for pool in pools])
        for infra_id in ordered:
            if self._feasible(ctx, nf, infra_id, anchor):
                return infra_id
        return None
