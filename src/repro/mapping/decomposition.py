"""NF decomposition (paper §2, ref [2]).

"An NF mapped to a BiS-BiS in the client virtualization can be replaced
with an interconnection of NFs (components) during the mapping
process."  A :class:`DecompositionRule` rewrites one abstract NF type
into a chain of concrete component NFs; the library may hold several
alternative rules per type, and decomposition-aware mapping tries the
alternatives cheapest-first until one embeds.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.mapping.base import Embedder, MappingResult
from repro.nffg.graph import NFFG
from repro.nffg.model import ResourceVector


@dataclass(frozen=True)
class ComponentSpec:
    """One component NF inside a decomposition rule."""

    suffix: str
    functional_type: str
    resources: ResourceVector
    deployment_type: str = ""


@dataclass(frozen=True)
class DecompositionRule:
    """Rewrite ``target_type`` into a chain of components.

    The identity rule (empty ``components``) keeps the NF as-is — it is
    always implicitly available unless ``abstract_only`` marks the type
    as non-deployable (it *must* decompose).
    """

    name: str
    target_type: str
    components: tuple[ComponentSpec, ...]
    #: bandwidth of the internal hops stitching the components
    internal_bandwidth: float = 0.0

    @property
    def is_identity(self) -> bool:
        return not self.components

    def total_cpu(self) -> float:
        return sum(component.resources.cpu for component in self.components)


class DecompositionLibrary:
    """Alternative decomposition rules per NF functional type."""

    def __init__(self) -> None:
        self._rules: dict[str, list[DecompositionRule]] = {}
        self._abstract: set[str] = set()

    def add_rule(self, rule: DecompositionRule) -> None:
        self._rules.setdefault(rule.target_type, []).append(rule)

    def mark_abstract(self, functional_type: str) -> None:
        """Abstract types cannot be deployed directly; they must expand."""
        self._abstract.add(functional_type)

    def is_abstract(self, functional_type: str) -> bool:
        return functional_type in self._abstract

    def options_for(self, functional_type: str) -> list[DecompositionRule]:
        """Rules for a type, cheapest first; identity appended for
        deployable types."""
        options = sorted(self._rules.get(functional_type, ()),
                         key=lambda rule: rule.total_cpu())
        if functional_type not in self._abstract:
            options = options + [DecompositionRule(
                name=f"identity-{functional_type}",
                target_type=functional_type, components=())]
        return options

    def decomposable_types(self) -> list[str]:
        return sorted(self._rules)


@dataclass
class Decomposition:
    """A concrete choice of rule per decomposed NF id."""

    choices: dict[str, DecompositionRule] = field(default_factory=dict)

    def describe(self) -> dict[str, str]:
        return {nf_id: rule.name for nf_id, rule in self.choices.items()}

    def total_cpu(self) -> float:
        return sum(rule.total_cpu() for rule in self.choices.values())


def expand_service(service: NFFG, decomposition: Decomposition,
                   expanded_id: Optional[str] = None) -> NFFG:
    """Apply a decomposition: replace chosen NFs by component chains.

    Incoming SG hops of a replaced NF are re-targeted at the first
    component, outgoing hops re-sourced from the last; fresh internal
    hops stitch consecutive components.
    """
    expanded = service.copy(expanded_id or f"{service.id}-decomposed")
    for nf_id, rule in decomposition.choices.items():
        if rule.is_identity:
            continue
        _replace_nf(expanded, nf_id, rule)
    return expanded


def _replace_nf(graph: NFFG, nf_id: str, rule: DecompositionRule) -> None:
    original = graph.nf(nf_id)
    component_ids: list[str] = []
    for component in rule.components:
        comp_id = f"{nf_id}.{component.suffix}"
        graph.add_nf(comp_id, component.functional_type,
                     deployment_type=component.deployment_type,
                     resources=component.resources, num_ports=2)
        component_ids.append(comp_id)
    first, last = component_ids[0], component_ids[-1]
    incoming = [hop for hop in graph.sg_hops if hop.dst_node == nf_id]
    outgoing = [hop for hop in graph.sg_hops if hop.src_node == nf_id]
    rewired: list[tuple] = []
    for hop in incoming:
        rewired.append((hop.id, hop.src_node, hop.src_port, first, "1",
                        hop.flowclass, hop.bandwidth, hop.delay))
    for hop in outgoing:
        rewired.append((hop.id, last, "2", hop.dst_node, hop.dst_port,
                        hop.flowclass, hop.bandwidth, hop.delay))
    for hop in incoming + outgoing:
        if graph.has_edge(hop.id):
            graph.remove_edge(hop.id)
    internal_hops: list[str] = []
    for src, dst in zip(component_ids, component_ids[1:]):
        hop = graph.add_sg_hop(src, "2", dst, "1",
                               id=f"{nf_id}-int-{src.rsplit('.', 1)[1]}",
                               bandwidth=rule.internal_bandwidth)
        internal_hops.append(hop.id)
    for (hop_id, src, src_port, dst, dst_port,
         flowclass, bandwidth, delay) in rewired:
        graph.add_sg_hop(src, src_port, dst, dst_port, id=hop_id,
                         flowclass=flowclass, bandwidth=bandwidth, delay=delay)
    # splice internal hops into requirement paths traversing the NF
    for req in graph.requirements:
        new_path: list[str] = []
        for hop_id in req.sg_path:
            new_path.append(hop_id)
            hop = graph.edge(hop_id)
            if hop.dst_node == first:
                new_path.extend(internal_hops)
        req.sg_path = new_path
    graph.remove_node(nf_id)


def iter_decompositions(service: NFFG,
                        library: DecompositionLibrary) -> Iterator[Decomposition]:
    """All rule combinations for the service's NFs, cheapest-total first."""
    nf_options: list[tuple[str, list[DecompositionRule]]] = []
    for nf in service.nfs:
        options = library.options_for(nf.functional_type)
        if not options:
            options = [DecompositionRule(
                name=f"identity-{nf.functional_type}",
                target_type=nf.functional_type, components=())]
        nf_options.append((nf.id, options))
    combos = []
    for combo in itertools.product(*(options for _, options in nf_options)):
        decomposition = Decomposition(choices={
            nf_id: rule for (nf_id, _), rule in zip(nf_options, combo)})
        combos.append(decomposition)
    combos.sort(key=lambda d: d.total_cpu())
    return iter(combos)


def map_with_decomposition(embedder: Embedder, service: NFFG, resource: NFFG,
                           library: DecompositionLibrary,
                           max_options: int = 16,
                           path_cache=None, index=None) -> MappingResult:
    """Try decomposition options cheapest-first until one embeds.

    Returns the first successful :class:`MappingResult` with
    ``decompositions`` describing the winning choice, or the last
    failure when no option embeds.  ``path_cache`` is forwarded to every
    embedding attempt (option candidates share the substrate, so memoized
    paths carry across attempts), as is ``index`` (the CAL's
    :class:`~repro.mapping.index.SubstrateIndex`).
    """
    last: Optional[MappingResult] = None
    for option, decomposition in enumerate(iter_decompositions(service, library)):
        if option >= max_options:
            break
        candidate = expand_service(service, decomposition)
        result = embedder.map(candidate, resource, path_cache=path_cache,
                              index=index)
        if result.success:
            result.decompositions = decomposition.describe()
            return result
        last = result
    if last is None:
        return MappingResult(success=False,
                             failure_reason="no decomposition options")
    return last


def default_decomposition_library() -> DecompositionLibrary:
    """A realistic default rule set used by examples and benchmarks.

    Mirrors the paper's demo NFs: an abstract ``vCPE`` decomposes into
    firewall+NAT or a consolidated bundle; ``dpi`` optionally splits
    into a classifier + analyzer pipeline; ``lb-web`` is an abstract
    load-balanced web service.
    """
    library = DecompositionLibrary()
    library.mark_abstract("vCPE")
    library.add_rule(DecompositionRule(
        name="vcpe-split", target_type="vCPE",
        components=(
            ComponentSpec("fw", "firewall",
                          ResourceVector(cpu=1.0, mem=128.0, storage=1.0), "click"),
            ComponentSpec("nat", "nat",
                          ResourceVector(cpu=1.0, mem=128.0, storage=1.0), "click"),
        ),
        internal_bandwidth=0.0))
    library.add_rule(DecompositionRule(
        name="vcpe-consolidated", target_type="vCPE",
        components=(
            ComponentSpec("combo", "fw-nat-combo",
                          ResourceVector(cpu=1.5, mem=192.0, storage=2.0), "docker"),
        )))
    library.add_rule(DecompositionRule(
        name="dpi-pipeline", target_type="dpi",
        components=(
            ComponentSpec("cls", "classifier",
                          ResourceVector(cpu=0.5, mem=64.0, storage=1.0), "click"),
            ComponentSpec("an", "analyzer",
                          ResourceVector(cpu=2.0, mem=512.0, storage=4.0), "vm"),
        )))
    library.mark_abstract("lb-web")
    library.add_rule(DecompositionRule(
        name="lb-web-pair", target_type="lb-web",
        components=(
            ComponentSpec("lb", "loadbalancer",
                          ResourceVector(cpu=1.0, mem=128.0, storage=1.0), "docker"),
            ComponentSpec("web", "webserver",
                          ResourceVector(cpu=2.0, mem=1024.0, storage=8.0), "vm"),
        )))
    return library
