"""Backtracking embedder.

Depth-first search over NF placements in chain order.  When a hop
cannot be routed (bandwidth exhausted or delay budget blown) the search
un-places the most recent NF and tries its next candidate host — up to
``max_backtracks`` steps, after which the embedding fails.  Finds
solutions the greedy embedder misses at the price of a larger search.
"""

from __future__ import annotations

from repro.mapping.base import (Embedder, MappingContext, MappingError,
                                placement_allowed)
from repro.mapping.greedy import hop_delay_budget, service_order
from repro.nffg.model import NodeNF
from repro.perf import counters


class BacktrackingEmbedder(Embedder):
    """DFS with bounded backtracking over candidate hosts."""

    name = "backtrack"

    def __init__(self, max_backtracks: int = 10_000,
                 candidates_per_nf: int = 12):
        self.max_backtracks = max_backtracks
        self.candidates_per_nf = candidates_per_nf

    def _run(self, ctx: MappingContext) -> None:
        order = service_order(ctx.service)
        self._blocked_nf: str = ""
        if not self._search(ctx, order, 0):
            detail = (f"; no feasible host for NF {self._blocked_nf!r}"
                      if self._blocked_nf else "")
            raise MappingError(
                f"backtracking exhausted after {ctx.backtracks} "
                f"backtracks{detail}")
        # route any hop not adjacent to an NF (e.g. SAP->SAP passthrough)
        self._route_remaining(ctx)

    # -- search -----------------------------------------------------------

    def _search(self, ctx: MappingContext, order: list[str], index: int) -> bool:
        if index >= len(order):
            return not ctx.requirement_violations()
        nf_id = order[index]
        nf = ctx.service.nf(nf_id)
        candidates = self._candidates(ctx, nf)
        if not candidates:
            self._blocked_nf = nf_id
        for infra_id in candidates:
            ctx.nodes_examined += 1
            ctx.place(nf_id, infra_id)
            routed_now = self._route_adjacent(ctx, nf_id)
            if routed_now is not None:
                if self._search(ctx, order, index + 1):
                    return True
                for hop_id in routed_now:
                    ctx.drop_route(hop_id)
            ctx.unplace(nf_id)
            ctx.backtracks += 1
            if ctx.backtracks > self.max_backtracks:
                return False
        return False

    def _candidates(self, ctx: MappingContext, nf: NodeNF) -> list[str]:
        anchor = None
        for hop in ctx.in_hops(nf.id):
            anchor = ctx.endpoint_infra(hop.src_node)
            if anchor:
                break
        # with an index, score a pruned pool a few times the branching
        # factor wide; widen to the full supporting set if it's barren
        pool = ctx.candidates(nf, 4 * self.candidates_per_nf, anchor=anchor)
        ranked = self._rank(ctx, nf, anchor, pool)
        if not ranked and ctx.index is not None:
            counters.incr("mapping.index.fallback")
            ranked = self._rank(ctx, nf, anchor, ctx.candidates(nf))
        return ranked[:self.candidates_per_nf]

    def _rank(self, ctx: MappingContext, nf: NodeNF,
              anchor, candidate_ids: list[str]) -> list[str]:
        scored: list[tuple[float, str]] = []
        for infra_id in candidate_ids:
            infra = ctx.resource.infra(infra_id)
            if not ctx.ledger.can_host(nf, infra):
                continue
            if not placement_allowed(ctx, nf, infra):
                continue
            score = nf.resources.cpu * infra.cost_per_cpu
            if anchor is not None:
                detour = ctx.delay_estimate(anchor, infra.id)
                if detour == float("inf"):
                    continue
                score += detour
            scored.append((score, infra.id))
        scored.sort()
        return [infra_id for _, infra_id in scored]

    # -- routing ------------------------------------------------------------

    def _route_adjacent(self, ctx: MappingContext, nf_id: str):
        """Route every hop that just became routable; None on failure
        (with everything rolled back)."""
        routed_now: list[str] = []
        for hop in ctx.hops_touching(nf_id):
            if hop.id in ctx.routes:
                continue
            src = ctx.endpoint_infra(hop.src_node)
            dst = ctx.endpoint_infra(hop.dst_node)
            if src is None or dst is None:
                continue
            budget = hop_delay_budget(ctx.service, ctx, hop.id)
            route = ctx.route_or_none(hop.id, src, dst,
                                      bandwidth=hop.bandwidth,
                                      max_delay=budget)
            if route is None:
                for done in routed_now:
                    ctx.drop_route(done)
                return None
            ctx.record_route(route)
            routed_now.append(hop.id)
        return routed_now

    def _route_remaining(self, ctx: MappingContext) -> None:
        for hop in ctx.sg_hop_list():
            if hop.id in ctx.routes:
                continue
            src = ctx.endpoint_infra(hop.src_node)
            dst = ctx.endpoint_infra(hop.dst_node)
            if src is None or dst is None:
                raise MappingError(f"hop {hop.id!r} endpoints unresolved")
            budget = hop_delay_budget(ctx.service, ctx, hop.id)
            route = ctx.route_or_none(hop.id, src, dst,
                                      bandwidth=hop.bandwidth,
                                      max_delay=budget)
            if route is None:
                raise MappingError(f"cannot route residual hop {hop.id!r}")
            ctx.record_route(route)
