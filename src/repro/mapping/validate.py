"""Independent validation of a mapping result.

Used by tests, property-based checks and the orchestrator's "verify
before deploy" step: re-derives every constraint from scratch instead of
trusting the embedder's own bookkeeping.

Violations are reported as structured
:class:`~repro.lint.diagnostics.Diagnostic` objects (rule ids ``MP0xx``,
category ``mapping``) so they compose with the static-analysis
subsystem; :meth:`~repro.lint.diagnostics.DiagnosticList.as_strings`
recovers the bare messages for callers that only want text.
"""

from __future__ import annotations

from typing import Optional

from repro.lint.diagnostics import Diagnostic, DiagnosticList, Severity
from repro.mapping.base import MappingResult
from repro.nffg.graph import NFFG
from repro.nffg.model import EdgeLink, NodeInfra, ResourceVector

#: rule ids of the post-mapping validator
MP_FAILED = "MP001"          #: embedder itself reported failure
MP_PLACEMENT = "MP010"       #: NF placement missing/invalid/constrained
MP_CAPACITY = "MP020"        #: infra capacity overcommitted
MP_ROUTE = "MP030"           #: hop route missing or disconnected
MP_BANDWIDTH = "MP040"       #: link bandwidth oversubscribed
MP_REQUIREMENT = "MP050"     #: end-to-end delay requirement violated
MP_FLOWRULES = "MP060"       #: installed flow rules inconsistent


def _diag(rule_id: str, message: str, *, node: Optional[str] = None,
          edge: Optional[str] = None) -> Diagnostic:
    return Diagnostic(rule_id=rule_id, severity=Severity.ERROR,
                      category="mapping", message=message,
                      node=node, edge=edge)


def validate_mapping(service: NFFG, resource: NFFG,
                     result: MappingResult) -> DiagnosticList:
    """Return the violations of a mapping (empty = mapping is sound)."""
    if not result.success:
        return DiagnosticList([_diag(
            MP_FAILED, f"mapping failed: {result.failure_reason}")])
    problems = DiagnosticList()
    problems += _check_placements(service, resource, result)
    problems += _check_capacities(service, resource, result)
    problems += _check_routes(service, resource, result)
    problems += _check_bandwidth(service, resource, result)
    problems += _check_requirements(service, result)
    problems += _check_flowrules(service, result)
    return problems


def _check_placements(service: NFFG, resource: NFFG,
                      result: MappingResult) -> list[Diagnostic]:
    problems = []
    for nf in service.nfs:
        host = result.nf_placement.get(nf.id)
        if host is None:
            problems.append(_diag(MP_PLACEMENT, f"NF {nf.id!r} unplaced",
                                  node=nf.id))
            continue
        if not resource.has_node(host):
            problems.append(_diag(
                MP_PLACEMENT,
                f"NF {nf.id!r} placed on unknown infra {host!r}",
                node=nf.id))
            continue
        infra = resource.infra(host)
        if not infra.supports(nf.functional_type):
            problems.append(_diag(
                MP_PLACEMENT,
                f"NF {nf.id!r} ({nf.functional_type}) on unsupporting "
                f"infra {host!r}", node=nf.id))
        wanted_domain = nf.metadata.get("constraint:domain")
        if wanted_domain is not None and infra.domain.value != wanted_domain:
            problems.append(_diag(
                MP_PLACEMENT,
                f"NF {nf.id!r}: domain constraint {wanted_domain!r} "
                f"violated by host {host!r} ({infra.domain.value})",
                node=nf.id))
        pinned = nf.metadata.get("constraint:infra")
        if pinned is not None and host != pinned:
            problems.append(_diag(
                MP_PLACEMENT,
                f"NF {nf.id!r}: pinned to {pinned!r}, placed on {host!r}",
                node=nf.id))
        for rival in nf.metadata.get("constraint:anti_affinity", ()):
            if result.nf_placement.get(rival) == host:
                problems.append(_diag(
                    MP_PLACEMENT,
                    f"NF {nf.id!r}: anti-affinity with {rival!r} violated "
                    f"on {host!r}", node=nf.id))
    for nf_id in result.nf_placement:
        if not service.has_node(nf_id):
            problems.append(_diag(
                MP_PLACEMENT,
                f"placement contains non-service NF {nf_id!r}",
                node=nf_id))
    return problems


def _check_capacities(service: NFFG, resource: NFFG,
                      result: MappingResult) -> list[Diagnostic]:
    problems = []
    demand: dict[str, ResourceVector] = {}
    for nf_id, host in result.nf_placement.items():
        if not service.has_node(nf_id) or not resource.has_node(host):
            continue
        nf = service.nf(nf_id)
        demand[host] = demand.get(host, ResourceVector()) + nf.resources
    from repro.nffg.ops import available_resources
    for host, total in demand.items():
        free = available_resources(resource, host)
        if not total.fits_within(free):
            problems.append(_diag(
                MP_CAPACITY,
                f"infra {host!r} over-committed: demand {total}, free {free}",
                node=host))
    return problems


def _check_routes(service: NFFG, resource: NFFG,
                  result: MappingResult) -> list[Diagnostic]:
    problems = []
    for hop in service.sg_hops:
        route = result.hop_routes.get(hop.id)
        if route is None:
            problems.append(_diag(MP_ROUTE, f"hop {hop.id!r} unrouted",
                                  edge=hop.id))
            continue
        expected_src = _endpoint_infra(service, resource, result, hop.src_node)
        expected_dst = _endpoint_infra(service, resource, result, hop.dst_node)
        if expected_src is not None and route.infra_path[0] != expected_src:
            problems.append(_diag(
                MP_ROUTE,
                f"hop {hop.id!r}: path starts at {route.infra_path[0]!r}, "
                f"endpoint on {expected_src!r}", edge=hop.id))
        if expected_dst is not None and route.infra_path[-1] != expected_dst:
            problems.append(_diag(
                MP_ROUTE,
                f"hop {hop.id!r}: path ends at {route.infra_path[-1]!r}, "
                f"endpoint on {expected_dst!r}", edge=hop.id))
        # link ids must form a connected chain along infra_path
        for index, link_id in enumerate(route.link_ids):
            if not resource.has_edge(link_id):
                problems.append(_diag(
                    MP_ROUTE, f"hop {hop.id!r}: unknown link {link_id!r}",
                    edge=hop.id))
                continue
            link = resource.edge(link_id)
            assert isinstance(link, EdgeLink)
            if (link.src_node != route.infra_path[index]
                    or link.dst_node != route.infra_path[index + 1]):
                problems.append(_diag(
                    MP_ROUTE,
                    f"hop {hop.id!r}: link {link_id!r} does not connect "
                    f"{route.infra_path[index]!r}->"
                    f"{route.infra_path[index + 1]!r}", edge=hop.id))
    return problems


def _check_bandwidth(service: NFFG, resource: NFFG,
                     result: MappingResult) -> list[Diagnostic]:
    problems = []
    load: dict[str, float] = {}
    for route in result.hop_routes.values():
        for link_id in route.link_ids:
            load[link_id] = load.get(link_id, 0.0) + route.bandwidth
    for link_id, used in load.items():
        if not resource.has_edge(link_id):
            continue
        link = resource.edge(link_id)
        assert isinstance(link, EdgeLink)
        if used - link.available_bandwidth > 1e-9:
            problems.append(_diag(
                MP_BANDWIDTH,
                f"link {link_id!r} over-subscribed: {used} of "
                f"{link.available_bandwidth} Mbps free", edge=link_id))
    return problems


def _check_requirements(service: NFFG,
                        result: MappingResult) -> list[Diagnostic]:
    problems = []
    for req in service.requirements:
        total = 0.0
        complete = True
        for hop_id in req.sg_path:
            route = result.hop_routes.get(hop_id)
            if route is None:
                complete = False
                break
            total += route.delay
        if complete and total > req.max_delay + 1e-9:
            problems.append(_diag(
                MP_REQUIREMENT,
                f"requirement {req.id!r}: delay {total:.3f} > "
                f"{req.max_delay:.3f}", edge=req.id))
    return problems


def _check_flowrules(service: NFFG,
                     result: MappingResult) -> list[Diagnostic]:
    """Every routed hop must have one flow rule per traversed BiS-BiS."""
    problems = []
    # the touched-subgraph commit carries every installed flow rule
    # (rules only land on touched infras) at O(service) size; fall
    # back to the full mapped graph for hand-built results
    mapped = result.touched if result.touched is not None else result.mapped
    if mapped is None:
        return [_diag(MP_FLOWRULES, "mapped NFFG missing")]
    rules_per_hop: dict[str, int] = {}
    for infra in mapped.infras:
        for _, flowrule in infra.iter_flowrules():
            if flowrule.hop_id:
                rules_per_hop[flowrule.hop_id] = \
                    rules_per_hop.get(flowrule.hop_id, 0) + 1
    for hop in service.sg_hops:
        route = result.hop_routes.get(hop.id)
        if route is None:
            continue
        expected = len(route.infra_path)
        actual = rules_per_hop.get(hop.id, 0)
        if actual != expected:
            problems.append(_diag(
                MP_FLOWRULES,
                f"hop {hop.id!r}: {actual} flow rules installed, "
                f"expected {expected}", edge=hop.id))
    return problems


def _endpoint_infra(service: NFFG, resource: NFFG, result: MappingResult,
                    node_id: str):
    node = service.node(node_id)
    if node.type.value == "NF":
        return result.nf_placement.get(node_id)
    bindings = resource.sap_bindings()
    if node_id in bindings:
        return bindings[node_id][0]
    for edge in resource.edges_of(node_id):
        if isinstance(edge, EdgeLink):
            other = edge.dst_node if edge.src_node == node_id else edge.src_node
            if resource.has_node(other) and isinstance(resource.node(other), NodeInfra):
                return other
    return None
