"""Persistent substrate index over a resource view.

Every mapping run used to redo O(substrate) work from scratch: a fresh
:class:`~repro.mapping.base.ResourceLedger` scan, a fresh SAP-attachment
walk, a fresh adjacency/node-delay build, and a full `resource.infras`
scan *per NF* inside every embedder.  :class:`SubstrateIndex` hoists all
of that out of the run and keeps it alive across requests:

- **candidate sets** per functional type (explicitly supporting infras
  plus the wildcard pool) and per technology domain, so embedders ask
  for the top-K feasible hosts instead of scanning the substrate;
- **residual-capacity buckets** (power-of-two CPU classes, mirroring
  :func:`repro.mapping.pathcache.bandwidth_class`) ordered
  cheapest-first within a class, walked largest-class-first for top-K
  host selection;
- **ledger seed maps** (free compute per infra, free bandwidth per
  link) handed to :class:`ResourceLedger` as copy-on-write bases — a
  ledger becomes O(1) to build instead of O(substrate);
- **cached topology tables**: infra adjacency, node delays, SAP
  attachments, and a shared single-source delay memo that persists
  across mapping runs (it depends on topology only, never on the
  ledger).

The index is owned by the CAL next to its incremental remaining-capacity
view and follows the same lifecycle: :meth:`sync` is called with the
current view and ``topology_generation`` exactly like
``PathCache.sync()`` (any epoch or identity change triggers a full
:meth:`rebuild`), and :meth:`apply_mapping` folds deploy/teardown/heal
deltas in place using the *same clamped arithmetic* as the CAL's
``_update_remaining`` so the two never drift.  :meth:`verify` is the
rebuild-and-compare escape hatch; any detected inconsistency marks the
index stale and the next sync rebuilds it.

Thread-safety: like the CAL's cached remaining view, the index is only
mutated on the orchestrator thread (commits/removals/rebuilds happen
before any push fan-out starts), so it takes no locks.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from collections import deque
from typing import Optional

from repro.mapping.base import build_sap_attachments
from repro.nffg.graph import NFFG, NFFGError
from repro.nffg.model import EdgeLink, InfraType, ResourceVector
from repro.perf import counters

_EMPTY_SET: frozenset[str] = frozenset()

#: consumable ResourceVector dimensions tracked in the totals (node
#: bandwidth and delay are capabilities, not allocations)
_DIMS = ("cpu", "mem", "storage")


def cpu_class(cpu: float) -> int:
    """Bucket a free-CPU amount by power of two (class 0 = exhausted)."""
    if cpu <= 0.0:
        return 0
    return max(1, math.frexp(cpu)[1])


class SubstrateIndex:
    """Incrementally-maintained candidate/capacity index over one view."""

    def __init__(self) -> None:
        #: the exact view object this index describes (identity-checked)
        self.resource: Optional[NFFG] = None
        self._epoch: Optional[int] = None
        self._stale = False
        #: ledger seed: infra id -> free compute (every infra, switches too)
        self.free: dict[str, ResourceVector] = {}
        #: ledger seed: link id -> free bandwidth
        self.link_free: dict[str, float] = {}
        #: functional type -> infras listing it in ``supported_types``
        self._by_type: dict[str, set[str]] = {}
        #: NF-capable infras with an empty (wildcard) supported set
        self._wildcard: set[str] = set()
        #: infra id -> DomainType value string
        self._domain_of: dict[str, str] = {}
        self._cost_of: dict[str, float] = {}
        #: capacity buckets over NF-capable infras: class -> sorted
        #: [(cost_per_cpu, infra_id)]; walked high class -> low for top-K
        self._buckets: dict[int, list[tuple[float, str]]] = {}
        self._bucket_of: dict[str, int] = {}
        #: per-dimension totals over NF-capable infras: snapshot at
        #: rebuild time (``capacity_totals``) vs live (``free_totals``)
        self.capacity_totals: dict[str, float] = {}
        self.free_totals: dict[str, float] = {}
        #: lazily built topology tables, dropped on rebuild
        self._adjacency: Optional[dict[str, list[EdgeLink]]] = None
        self._node_delays: Optional[dict[str, float]] = None
        self._sap_attach: Optional[dict[str, tuple[str, str]]] = None
        #: shared single-source delay memo (topology-only, so it is
        #: valid across mapping runs until the next rebuild)
        self.delay_memo: dict[str, dict[str, float]] = {}
        self.applies = 0
        self.rebuilds = 0

    # -- lifecycle ---------------------------------------------------------

    def sync(self, resource: NFFG, epoch: Optional[int] = None
             ) -> "SubstrateIndex":
        """Bind the index to the current view, rebuilding when the view
        object, the topology epoch, or a detected inconsistency moved —
        the :meth:`PathCache.sync` idiom."""
        if (self.resource is resource and not self._stale
                and (epoch is None or epoch == self._epoch)):
            return self
        self.rebuild(resource, epoch=epoch)
        return self

    def covers(self, resource: NFFG) -> bool:
        """True when the index describes exactly this view object."""
        return self.resource is resource and not self._stale

    def mark_stale(self) -> None:
        self._stale = True

    def rebuild(self, resource: NFFG, epoch: Optional[int] = None) -> None:
        """Full re-derivation from a view (the escape hatch everything
        falls back to)."""
        self.resource = resource
        self._epoch = epoch
        self._stale = False
        self.free = {}
        self.link_free = {}
        self._by_type = {}
        self._wildcard = set()
        self._domain_of = {}
        self._cost_of = {}
        self._buckets = {}
        self._bucket_of = {}
        self.capacity_totals = {dim: 0.0 for dim in _DIMS}
        self._adjacency = None
        self._node_delays = None
        self._sap_attach = None
        self.delay_memo = {}
        # net out placed NFs in one edge-table pass (ledger idiom);
        # remaining-capacity views carry none, raw DoVs may
        consumed: dict[str, ResourceVector] = {}
        for infra_id, nf in resource.placed_nfs():
            total = consumed.get(infra_id)
            consumed[infra_id] = (nf.resources if total is None
                                  else total + nf.resources)
        for infra in resource.infras:
            used = consumed.get(infra.id)
            free = (infra.resources if used is None
                    else infra.resources - used)
            self.free[infra.id] = free
            self._domain_of[infra.id] = infra.domain.value
            self._cost_of[infra.id] = infra.cost_per_cpu
            if infra.infra_type == InfraType.SDN_SWITCH:
                continue
            if infra.supported_types:
                for functional_type in infra.supported_types:
                    self._by_type.setdefault(functional_type,
                                             set()).add(infra.id)
            else:
                self._wildcard.add(infra.id)
            self._bucket_add(infra.id)
            for dim in _DIMS:
                self.capacity_totals[dim] += getattr(free, dim)
        for link in resource.links:
            self.link_free[link.id] = link.available_bandwidth
        self.free_totals = dict(self.capacity_totals)
        self.rebuilds += 1
        counters.incr("mapping.index.rebuild")

    # -- capacity buckets --------------------------------------------------

    def _bucket_add(self, infra_id: str) -> None:
        cls = cpu_class(self.free[infra_id].cpu)
        self._bucket_of[infra_id] = cls
        insort(self._buckets.setdefault(cls, []),
               (self._cost_of[infra_id], infra_id))

    def _bucket_remove(self, infra_id: str) -> None:
        cls = self._bucket_of.pop(infra_id)
        bucket = self._buckets[cls]
        entry = (self._cost_of[infra_id], infra_id)
        pos = bisect_left(bucket, entry)
        if pos >= len(bucket) or bucket[pos] != entry:
            raise KeyError(infra_id)
        del bucket[pos]
        if not bucket:
            del self._buckets[cls]

    # -- incremental maintenance -------------------------------------------

    def apply_mapping(self, service: NFFG, result, sign: float) -> None:
        """Fold a mapping deployed to (``sign=1``) or removed from
        (``sign=-1``) the view into the index, mirroring the CAL's
        ``_update_remaining`` clamped arithmetic exactly.  Any id that
        no longer resolves marks the index stale (next sync rebuilds)."""
        if self.resource is None or self._stale:
            return
        try:
            for nf_id, infra_id in result.nf_placement.items():
                demand = service.nf(nf_id).resources
                free = self.free[infra_id]
                updated = ResourceVector(
                    cpu=max(free.cpu - sign * demand.cpu, 0.0),
                    mem=max(free.mem - sign * demand.mem, 0.0),
                    storage=max(free.storage - sign * demand.storage, 0.0),
                    bandwidth=free.bandwidth, delay=free.delay)
                self.free[infra_id] = updated
                if infra_id in self._bucket_of:
                    for dim in _DIMS:
                        self.free_totals[dim] += (getattr(updated, dim)
                                                  - getattr(free, dim))
                    if cpu_class(updated.cpu) != self._bucket_of[infra_id]:
                        self._bucket_remove(infra_id)
                        self._bucket_add(infra_id)
            for route in result.hop_routes.values():
                for link_id in route.link_ids:
                    self.link_free[link_id] = max(
                        self.link_free[link_id] - sign * route.bandwidth, 0.0)
        except (KeyError, NFFGError):
            self.mark_stale()
            counters.incr("mapping.index.stale")
            return
        self.applies += 1
        counters.incr("mapping.index.apply")

    # -- ledger seeding ----------------------------------------------------

    def ledger_seed(self) -> tuple[dict[str, ResourceVector],
                                   dict[str, float]]:
        """Base maps for a copy-on-write :class:`ResourceLedger` — the
        ledger overlays its tentative allocations without mutating
        these."""
        return self.free, self.link_free

    # -- topology tables ---------------------------------------------------

    def adjacency(self) -> dict[str, list[EdgeLink]]:
        if self._adjacency is None:
            from repro.mapping.paths import build_infra_adjacency
            self._adjacency = build_infra_adjacency(self.resource)
        return self._adjacency

    def node_delays(self) -> dict[str, float]:
        if self._node_delays is None:
            from repro.mapping.paths import build_node_delays
            self._node_delays = build_node_delays(self.resource)
        return self._node_delays

    def sap_attachments(self) -> dict[str, tuple[str, str]]:
        if self._sap_attach is None:
            self._sap_attach = build_sap_attachments(self.resource)
        return self._sap_attach

    # -- candidate queries -------------------------------------------------

    def supporters(self, functional_type: str) -> int:
        """How many NF-capable infras can run this type."""
        return (len(self._by_type.get(functional_type, _EMPTY_SET))
                + len(self._wildcard))

    def support_census(self) -> tuple[int, dict[str, int], int]:
        """(NF-capable host count, explicit supporters per type,
        wildcard host count) — the scarcity facts the balanced/hybrid
        allocators group by."""
        return (len(self._bucket_of),
                {functional_type: len(members)
                 for functional_type, members in self._by_type.items()},
                len(self._wildcard))

    def explicit_members(self, functional_type: str) -> frozenset[str]:
        """Infras that list this type in ``supported_types``."""
        return frozenset(self._by_type.get(functional_type, _EMPTY_SET))

    def candidate_ids(self, functional_type: str, *,
                      domain: Optional[str] = None,
                      k: Optional[int] = None,
                      min_cpu: float = 0.0,
                      near: Optional[str] = None) -> list[str]:
        """Candidate host ids for one NF.

        With ``k`` the result is a pruned top-K: up to half the slots go
        to hosts found by a bounded BFS around ``near`` (the embedder's
        anchor — keeps delay detours small), the rest come from the
        capacity buckets, largest free-CPU class first and cheapest
        first within a class.  Without ``k`` the *full* supporting set
        is returned (buckets below ``min_cpu``'s class are skipped —
        they provably cannot host the demand)."""
        counters.incr("mapping.index.candidates")
        typed = self._by_type.get(functional_type, _EMPTY_SET)
        wild = self._wildcard
        out: list[str] = []
        seen: set[str] = set()

        def admit(infra_id: str) -> None:
            if infra_id in seen:
                return
            seen.add(infra_id)
            if infra_id not in typed and infra_id not in wild:
                return
            if domain is not None and self._domain_of.get(infra_id) != domain:
                return
            out.append(infra_id)

        if k is not None and near is not None:
            self._admit_near(admit, near, min_cpu,
                             quota=max(1, k // 2), out=out)
        floor_cls = cpu_class(min_cpu) if min_cpu > 0.0 else 0
        for cls in sorted(self._buckets, reverse=True):
            if cls < floor_cls:
                break
            if k is not None and len(out) >= k:
                break
            for _cost, infra_id in self._buckets[cls]:
                if k is not None and len(out) >= k:
                    break
                admit(infra_id)
        return out

    def _admit_near(self, admit, near: str, min_cpu: float, *,
                    quota: int, out: list[str]) -> None:
        """Breadth-first walk of the substrate around an anchor,
        admitting up to ``quota`` capacity-plausible hosts.  The visit
        budget bounds the walk so an anchor stranded far from any
        supporter cannot degenerate into a full scan."""
        adjacency = self.adjacency()
        budget = max(32, 8 * quota)
        frontier: deque[str] = deque((near,))
        visited = {near}
        while frontier and budget > 0 and len(out) < quota:
            current = frontier.popleft()
            budget -= 1
            free = self.free.get(current)
            if free is not None and free.cpu >= min_cpu:
                admit(current)
            for link in adjacency.get(current, ()):
                neighbour = link.dst_node
                if neighbour not in visited:
                    visited.add(neighbour)
                    frontier.append(neighbour)

    # -- escape hatch ------------------------------------------------------

    def verify(self, resource: NFFG) -> list[str]:
        """Rebuild-and-compare: derive a fresh index from the view and
        diff it against the live one.  Any mismatch marks this index
        stale (forcing a rebuild on the next sync) and is returned for
        the caller to log/assert on."""
        counters.incr("mapping.index.verify")
        fresh = SubstrateIndex()
        fresh.rebuild(resource)
        problems: list[str] = []
        for infra_id, expected in fresh.free.items():
            got = self.free.get(infra_id)
            if got is None:
                problems.append(f"missing infra {infra_id!r}")
            elif any(abs(getattr(got, dim) - getattr(expected, dim)) > 1e-6
                     for dim in ("cpu", "mem", "storage")):
                problems.append(
                    f"free drift on {infra_id!r}: {got} != {expected}")
        for infra_id in self.free:
            if infra_id not in fresh.free:
                problems.append(f"ghost infra {infra_id!r}")
        for link_id, expected_bw in fresh.link_free.items():
            got_bw = self.link_free.get(link_id)
            if got_bw is None or abs(got_bw - expected_bw) > 1e-6:
                problems.append(
                    f"link drift on {link_id!r}: {got_bw} != {expected_bw}")
        for link_id in self.link_free:
            if link_id not in fresh.link_free:
                problems.append(f"ghost link {link_id!r}")
        if (self._by_type != fresh._by_type
                or self._wildcard != fresh._wildcard):
            problems.append("candidate type sets drifted")
        if problems:
            self.mark_stale()
            counters.incr("mapping.index.verify_failed")
        return problems

    def stats(self) -> dict[str, int]:
        return {"infras": len(self.free), "links": len(self.link_free),
                "types": len(self._by_type), "wildcard": len(self._wildcard),
                "applies": self.applies, "rebuilds": self.rebuilds}

    def __repr__(self) -> str:
        view = self.resource.id if self.resource is not None else None
        return (f"<SubstrateIndex view={view!r} infras={len(self.free)} "
                f"stale={self._stale}>")
