"""The resource orchestration layer.

"The task of the resource orchestrator is to map the configurations of
different client virtualizations to a configuration at the underlying
domain virtualizer."  The RO wraps a pluggable embedder and (optionally)
the NF decomposition library, and validates every mapping independently
before it is allowed to reach any domain.
"""

from __future__ import annotations

from typing import Optional, Union

from repro import obs
from repro.mapping.base import Embedder, MappingResult
from repro.mapping.decomposition import (
    DecompositionLibrary,
    map_with_decomposition,
)
from repro.mapping.greedy import GreedyEmbedder
from repro.mapping.registry import make_embedder
from repro.mapping.validate import validate_mapping
from repro.nffg.graph import NFFG
from repro.perf import observe


class ResourceOrchestrator:
    """Embedding + decomposition + verification, behind one call."""

    def __init__(self, embedder: Optional[Union[Embedder, str]] = None,
                 decomposition_library: Optional[DecompositionLibrary] = None,
                 max_decomposition_options: int = 16,
                 verify: bool = True):
        if isinstance(embedder, str):
            embedder = make_embedder(embedder)
        self.embedder = embedder or GreedyEmbedder()
        self.decomposition_library = decomposition_library
        self.max_decomposition_options = max_decomposition_options
        self.verify = verify
        self.mappings_attempted = 0
        self.mappings_succeeded = 0

    def orchestrate(self, service: NFFG, resource_view: NFFG,
                    path_cache=None, index=None) -> MappingResult:
        """Map a service graph onto a resource view.

        When a decomposition library is configured, abstract NFs are
        expanded and alternatives tried cheapest-first.  The winning
        mapping is re-validated from scratch (defense against embedder
        bugs) before being returned as successful.  ``path_cache`` — a
        :class:`repro.mapping.pathcache.PathCache` owned by the caller —
        is shared across requests hitting the same substrate, and
        ``index`` — the CAL's :class:`repro.mapping.index.SubstrateIndex`
        — seeds each run's ledger and candidate sets when it covers
        ``resource_view``.
        """
        self.mappings_attempted += 1
        with obs.span("map/embed", embedder=self.embedder.name):
            if self.decomposition_library is not None:
                result = map_with_decomposition(
                    self.embedder, service, resource_view,
                    self.decomposition_library,
                    max_options=self.max_decomposition_options,
                    path_cache=path_cache, index=index)
            else:
                # only forward set kwargs — embedder subclasses
                # predating the path cache / index keep working
                kwargs = {}
                if path_cache is not None:
                    kwargs["path_cache"] = path_cache
                if index is not None:
                    kwargs["index"] = index
                result = self.embedder.map(service, resource_view, **kwargs)
        if result.success and self.verify:
            effective_service = result.service if result.service is not None \
                else service
            with obs.span("map/validate"):
                problems = validate_mapping(effective_service,
                                            resource_view, result)
            if problems:
                result.success = False
                result.failure_reason = ("mapping verification failed: "
                                         + "; ".join(problems.as_strings()))
        if result.success:
            self.mappings_succeeded += 1
        observe("map.latency_s", result.runtime_s,
                embedder=self.embedder.name)
        return result

    @property
    def acceptance_ratio(self) -> float:
        if self.mappings_attempted == 0:
            return 0.0
        return self.mappings_succeeded / self.mappings_attempted

    def __repr__(self) -> str:
        return (f"<ResourceOrchestrator embedder={self.embedder.name} "
                f"decomposition={'on' if self.decomposition_library else 'off'}>")
