"""ESCAPEv2-style layered orchestration framework.

The paper's architecture (Fig. 1) stacks three layers:

1. **Service layer** — user-facing; turns service requests into service
   graphs (see :mod:`repro.service`);
2. **Resource orchestration layer** — the resource orchestrator (RO)
   maps client configurations onto the underlying virtualizer's view
   (:class:`ResourceOrchestrator`);
3. **Controller adaptation layer** — domain managers/adapters that
   translate the mapped configuration into each technology domain's
   native control protocol (:mod:`repro.orchestration.adapters`).

:class:`EscapeOrchestrator` composes the three and implements the
recursive **Unify interface** at its north and south boundaries, so a
whole orchestrator can serve as a single domain of a parent
orchestrator (:class:`UnifyDomainAdapter`) — the paper's "multi-level
control hierarchy".
"""

from repro.orchestration.report import AdapterReport, DeployReport
from repro.orchestration.adapters import (
    CloudDomainAdapter,
    DirectDomainAdapter,
    DomainAdapter,
    DomainUnreachable,
    EmuDomainAdapter,
    SdnDomainAdapter,
    UNDomainAdapter,
)
from repro.orchestration.ro import ResourceOrchestrator
from repro.orchestration.cal import ControllerAdaptationLayer
from repro.orchestration.escape import EscapeOrchestrator
from repro.orchestration.unify import (
    UnifyAgent,
    UnifyDomainAdapter,
    service_from_virtual_install,
)

__all__ = [
    "AdapterReport",
    "DeployReport",
    "DomainAdapter",
    "DomainUnreachable",
    "DirectDomainAdapter",
    "EmuDomainAdapter",
    "SdnDomainAdapter",
    "CloudDomainAdapter",
    "UNDomainAdapter",
    "ResourceOrchestrator",
    "ControllerAdaptationLayer",
    "EscapeOrchestrator",
    "UnifyAgent",
    "UnifyDomainAdapter",
    "service_from_virtual_install",
]
