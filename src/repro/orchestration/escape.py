"""The ESCAPEv2 facade: service deployment over registered domains.

An :class:`EscapeOrchestrator` is the complete stack of Fig. 1's red
boxes for one administrative level: it accepts service graphs, maps
them with its RO onto the CAL's global view, pushes the result to every
technology domain and tracks lifecycle.  Its north side speaks the
Unify interface (see :mod:`repro.orchestration.unify`), so instances
stack recursively.
"""

from __future__ import annotations

import os
import time
from typing import Optional, Union

from repro import obs
from repro.lint import DiagnosticList, Severity, lint_nffg
from repro.mapping.base import Embedder
from repro.mapping.decomposition import DecompositionLibrary
from repro.mapping.pathcache import PathCache
from repro.nffg.graph import NFFG
from repro.orchestration.cal import ControllerAdaptationLayer
from repro.orchestration.adapters import DomainAdapter
from repro.orchestration.report import DeployReport
from repro.orchestration.ro import ResourceOrchestrator
from repro.perf import counters, observe
from repro.recovery.journal import IntentJournal, IntentScope
from repro.sim.kernel import Simulator


class EscapeOrchestrator:
    """Service layer entry point + RO + CAL, composed."""

    def __init__(self, name: str = "escape", *,
                 embedder: Optional[Union[Embedder, str]] = None,
                 decomposition_library: Optional[DecompositionLibrary] = None,
                 simulator: Optional[Simulator] = None,
                 lint_gate: Optional[Severity] = Severity.ERROR,
                 push_workers: Optional[int] = None,
                 cal_shards: Optional[int] = None,
                 cal_shard_map: Optional[dict[str, int]] = None,
                 journal: Optional[IntentJournal] = None,
                 journal_path: Optional[str] = None):
        self.name = name
        self.ro = ResourceOrchestrator(
            embedder=embedder, decomposition_library=decomposition_library)
        # push_workers bounds the CAL's concurrent domain fan-out;
        # 1 (or 0) forces strictly serial pushes on the caller's thread.
        # cal_shards/cal_shard_map partition the adapter registry so
        # view refreshes touch only the shards something invalidated.
        cal_kwargs: dict = {}
        if push_workers is not None:
            cal_kwargs["push_workers"] = push_workers
        if cal_shards is not None:
            cal_kwargs["shards"] = cal_shards
        if cal_shard_map is not None:
            cal_kwargs["shard_map"] = cal_shard_map
        self.cal = ControllerAdaptationLayer(**cal_kwargs)
        #: substrate path memo shared across all mapping requests;
        #: invalidated whenever the CAL's topology generation moves
        self.path_cache = PathCache()
        self.simulator = simulator
        #: severity at/above which the pre-deploy static-analysis gate
        #: refuses a service graph; None disables the gate entirely
        self.lint_gate = lint_gate
        self.reports: dict[str, DeployReport] = {}
        #: write-ahead intent journal (see :mod:`repro.recovery`):
        #: every lifecycle operation books two-phase records here, and
        #: checkpoints fold our export_state() back into the log
        if journal is None:
            journal = IntentJournal(
                journal_path or os.environ.get("REPRO_JOURNAL") or None)
        self.journal = journal
        self.journal.state_provider = self.export_state

    # -- domain management ---------------------------------------------------

    def add_domain(self, adapter: DomainAdapter) -> DomainAdapter:
        return self.cal.register(adapter)

    def global_view(self) -> NFFG:
        return self.cal.dov

    def resource_view(self) -> NFFG:
        return self.cal.resource_view()

    def _orchestrate(self, service: NFFG, view: NFFG):
        """Run the RO with the shared path cache and the CAL's
        substrate index, both synced to the current substrate topology
        generation (the index ignores itself when ``view`` is a copy
        it does not cover)."""
        cache = self.path_cache.sync(self.cal.topology_generation)
        return self.ro.orchestrate(service, view, path_cache=cache,
                                   index=self.cal.substrate_index)

    # -- service lifecycle -----------------------------------------------------

    def deploy(self, service: NFFG, *,
               wait_activation: bool = True,
               max_activation_ms: float = 60_000.0) -> DeployReport:
        """Map + deploy a service graph across all domains.

        Runs the shared simulator (when present) until every NF
        reported up, so callers can inject traffic right away.

        With tracing on the whole request runs inside a root ``deploy``
        span (stage spans nested under it) and lands one ``deploy``
        event; end-to-end latency always feeds the ``deploy.latency_s``
        histogram.
        """
        with obs.span("deploy", service=service.id) as root:
            report = self._deploy(service, wait_activation=wait_activation,
                                  max_activation_ms=max_activation_ms)
            root.set(outcome=report.resolved_outcome())
            obs.event("deploy", service=service.id,
                      outcome=report.resolved_outcome(), error=report.error,
                      duration_ms=round(report.total_time_s * 1e3, 3))
        observe("deploy.latency_s", report.total_time_s)
        return report

    def _deploy(self, service: NFFG, *, wait_activation: bool,
                max_activation_ms: float) -> DeployReport:
        started = time.perf_counter()
        report = DeployReport(service_id=service.id, success=False)
        if service.id in self.cal.deployed_services():
            report.error = f"service {service.id!r} already deployed"
            report.total_time_s = time.perf_counter() - started
            self.reports[service.id] = report
            return report

        lint_started = time.perf_counter()
        with obs.span("deploy/lint"):
            blocking = self._verify_service(service, report)
        report.lint_time_s = time.perf_counter() - lint_started
        if blocking:
            report.error = ("lint gate rejected service graph: "
                           + "; ".join(f"{d.rule_id}: {d.message}"
                                       for d in blocking))
            report.total_time_s = time.perf_counter() - started
            self.reports[service.id] = report
            return report

        conflicts = ([nf.id for nf in service.nfs
                      if self.cal.dov.has_node(nf.id)]
                     + [edge.id for edge in service.edges
                        if self.cal.dov.has_edge(edge.id)])
        if conflicts:
            report.error = ("service element ids collide with deployed "
                            f"state: {sorted(set(conflicts))} — NF and edge "
                            "ids must be unique across services")
            report.total_time_s = time.perf_counter() - started
            self.reports[service.id] = report
            return report

        view_started = time.perf_counter()
        with obs.span("deploy/view"):
            # the live cached view: embedders never mutate their input
            view = self.cal.resource_view(copy=False)
        report.view_time_s = time.perf_counter() - view_started

        from repro.nffg.serialize import nffg_to_dict

        with self.journal.intent(
                "deploy", service.id,
                payload={"service": nffg_to_dict(service)}) as intent:
            with obs.span("deploy/map"):
                result = self._orchestrate(service, view)
            report.mapping = result
            report.mapping_time_s = result.runtime_s
            if not result.success:
                report.error = f"mapping failed: {result.failure_reason}"
                intent.abort(report.error)
                report.total_time_s = time.perf_counter() - started
                self.reports[service.id] = report
                return report

            effective_service = result.service if result.service is not None \
                else service
            self.cal.commit_mapping(service.id, effective_service, result)
            push_started = time.perf_counter()
            # planned push: only the domains the mapping touched (plus
            # any queued reconciliations) are contacted
            with obs.span("deploy/push"):
                adapter_reports = self.cal.push_planned()
            report.push_time_s = time.perf_counter() - push_started
            report.adapters = adapter_reports
            intent.record_pushes(adapter_reports)
            report.domains_touched = len(
                {self.cal.dov.infra(infra_id).domain
                 for infra_id in result.nf_placement.values()})
            failures = [r for r in adapter_reports
                        if not r.success and not r.skipped]
            if failures:
                self._rollback(service.id, report, intent)
                report.error = "; ".join(f"{r.domain}: {r.error}"
                                         for r in failures)
                rollback_failed = report.rollback_failures()
                if rollback_failed:
                    report.error += ("; rollback incomplete: "
                                     + "; ".join(f"{r.domain}: {r.error}"
                                                 for r in rollback_failed))
                intent.abort(report.error)
                report.total_time_s = time.perf_counter() - started
                self.reports[service.id] = report
                return report

            if wait_activation:
                activation_started = time.perf_counter()
                with obs.span("deploy/activate"):
                    report.activation_virtual_ms = self._wait_activation(
                        max_activation_ms)
                report.activation_time_s = (time.perf_counter()
                                            - activation_started)
            report.success = True
            report.outcome = self._classify_push(result, adapter_reports)
            intent.commit({service.id: self._service_record(service.id)})
        report.total_time_s = time.perf_counter() - started
        self.reports[service.id] = report
        return report

    def _rollback(self, service_id: str, report: DeployReport,
                  intent: Optional[IntentScope] = None) -> None:
        """Undo a half-deployed service and record how the
        reconciliation pushes went (satellite of the failure model:
        silently diverging rollbacks are themselves failures)."""
        rollback_started = time.perf_counter()
        with obs.span("deploy/rollback", service=service_id):
            self.cal.remove_service(service_id)
            report.rollback = self.cal.push_all()
        if intent is not None:
            intent.record_pushes(report.rollback, stage="rollback")
        report.rollback_time_s = time.perf_counter() - rollback_started
        report.outcome = "failed"
        failed = report.rollback_failures()
        if failed:
            counters.incr("resilience.rollback.failures", len(failed))
        obs.event("rollback", service=service_id,
                  pushes=len(report.rollback), failures=len(failed))

    def _classify_push(self, result, adapter_reports) -> str:
        """``success`` when every domain the service touches took its
        push; ``degraded`` when a touched domain was skipped (breaker
        open) and awaits reconciliation."""
        not_pushed = {r.domain for r in adapter_reports if not r.success}
        if not not_pushed:
            return "success"
        relevant = self.cal.adapter_names_for(result)
        return "degraded" if not_pushed & relevant else "success"

    def _verify_service(self, service: NFFG,
                        report: DeployReport) -> DiagnosticList:
        """Run the static-analysis gate over an incoming service graph.

        All findings are recorded on the report; the returned list holds
        only those at/above the configured gate severity — a non-empty
        result means the deployment must be refused.
        """
        if self.lint_gate is None:
            return DiagnosticList()
        diagnostics = lint_nffg(
            service,
            decomposition_library=self.ro.decomposition_library)
        report.lint = diagnostics
        return diagnostics.at_least(self.lint_gate)

    def _wait_activation(self, max_ms: float) -> float:
        if self.simulator is None:
            return 0.0
        start = self.simulator.now
        deadline = start + max_ms
        while not self.cal.ready():
            next_time = self.simulator.peek_time()
            if next_time is None or next_time > deadline:
                break
            self.simulator.step()
        # let in-flight dataplane/control events settle
        self.simulator.run()
        return self.simulator.now - start

    def teardown(self, service_id: str) -> DeployReport:
        """Remove a deployed service and reconcile every domain.

        Returns a report (truthy on success, so boolean callers keep
        working): a failed or skipped reconciliation push means a
        domain still holds the service's stale state — the report says
        which, instead of pretending the teardown completed.
        """
        with obs.span("teardown", service=service_id) as root:
            report = self._teardown(service_id)
            root.set(outcome=report.resolved_outcome())
            obs.event("teardown", service=service_id,
                      outcome=report.resolved_outcome(), error=report.error)
        return report

    def _teardown(self, service_id: str) -> DeployReport:
        report = DeployReport(service_id=service_id, success=False)
        if service_id not in self.cal.deployed_services():
            report.error = f"unknown service {service_id!r}"
            return report
        with self.journal.intent("teardown", service_id) as intent:
            self.cal.remove_service(service_id)
            adapter_reports = self.cal.push_planned()
            report.adapters = adapter_reports
            intent.record_pushes(adapter_reports)
            failures = [r for r in adapter_reports
                        if not r.success and not r.skipped]
            skipped = [r for r in adapter_reports if r.skipped]
            report.success = not failures
            if failures:
                report.outcome = "failed"
                report.error = ("stale state left in: "
                                + "; ".join(f"{r.domain}: {r.error}"
                                            for r in failures))
            elif skipped:
                report.outcome = "degraded"
            else:
                report.outcome = "success"
            # the books say removed even when a domain kept stale state
            # (it stays pending for replay): commit the removal
            intent.commit({service_id: None})
        if self.simulator is not None:
            self.simulator.run()
        self.reports.pop(service_id, None)
        return report

    def deployed_services(self) -> list[str]:
        return self.cal.deployed_services()

    # -- dynamic operation -----------------------------------------------

    def update(self, service: NFFG) -> DeployReport:
        """Replace a deployed service with a new version, atomically
        from the tenant's perspective.

        The new version is mapped against a view *without* the old one;
        if mapping fails the old version keeps running untouched and
        the failure is reported.  On success one reconciliation push
        swaps the versions — domain orchestrators keep NFs whose ids
        did not change running across the swap.
        """
        if service.id not in self.cal.deployed_services():
            return self.deploy(service)
        with obs.span("update", service=service.id) as root:
            report = self._update(service)
            root.set(outcome=report.resolved_outcome())
            obs.event("update", service=service.id,
                      outcome=report.resolved_outcome(), error=report.error)
        return report

    def _update(self, service: NFFG) -> DeployReport:
        report = DeployReport(service_id=service.id, success=False)
        blocking = self._verify_service(service, report)
        if blocking:
            report.error = ("update rejected by lint gate, previous "
                            "version kept: "
                            + "; ".join(f"{d.rule_id}: {d.message}"
                                        for d in blocking))
            self.reports[service.id] = report
            return report
        from repro.nffg.serialize import nffg_to_dict

        with self.journal.intent(
                "update", service.id,
                payload={"service": nffg_to_dict(service)}) as intent:
            snapshot = self.cal.snapshot_service(service.id)
            # an update is a reconciliation point: re-fetch the domain
            # views (capacity may have drifted) instead of trusting the
            # live DoV
            self.cal.mark_stale()
            self.cal.remove_service(service.id)
            view = self.cal.resource_view(copy=False)
            result = self._orchestrate(service, view)
            if not result.success:
                self.cal.restore_service(service.id, snapshot)
                report = DeployReport(
                    service_id=service.id, success=False,
                    mapping=result,
                    error=(f"update rejected, previous version kept: "
                           f"{result.failure_reason}"))
                intent.abort(report.error)
                return report
            effective = (result.service if result.service is not None
                         else service)
            self.cal.commit_mapping(service.id, effective, result)
            adapter_reports = self.cal.push_planned()
            intent.record_pushes(adapter_reports)
            failures = [r for r in adapter_reports
                        if not r.success and not r.skipped]
            if failures:
                # swap back to the previous version and reconcile
                rollback_started = time.perf_counter()
                report = DeployReport(
                    service_id=service.id, success=False, outcome="failed",
                    mapping=result, adapters=adapter_reports,
                    error=("update push failed, previous version restored: "
                           + "; ".join(f"{r.domain}: {r.error}"
                                       for r in failures)))
                with obs.span("deploy/rollback", service=service.id):
                    self.cal.remove_service(service.id)
                    self.cal.restore_service(service.id, snapshot)
                    report.rollback = self.cal.push_all()
                intent.record_pushes(report.rollback, stage="rollback")
                report.rollback_time_s = (time.perf_counter()
                                          - rollback_started)
                failed_rollback = report.rollback_failures()
                if failed_rollback:
                    counters.incr("resilience.rollback.failures",
                                  len(failed_rollback))
                    report.error += ("; rollback incomplete: "
                                     + "; ".join(f"{r.domain}: {r.error}"
                                                 for r in failed_rollback))
                obs.event("rollback", service=service.id,
                          pushes=len(report.rollback),
                          failures=len(failed_rollback))
                intent.abort(report.error)
                self.reports[service.id] = report
                return report
            if self.simulator is not None:
                self._wait_activation(60_000.0)
            report = DeployReport(service_id=service.id, success=True,
                                  mapping=result, adapters=adapter_reports)
            report.outcome = self._classify_push(result, adapter_reports)
            intent.commit({service.id: self._service_record(service.id)})
        self.reports[service.id] = report
        return report

    def heal(self) -> dict[str, DeployReport]:
        """Re-map services broken by topology changes or domain
        outages against the current (possibly degraded) domain views.

        Domain views are re-fetched; a quarantined or unreachable
        domain (open circuit breaker, view fetch failing after
        retries) is excluded from the merge, so its substrate simply
        disappears.  Any deployed service whose routes use a link that
        no longer exists, *or whose placements/routes sit on a vanished
        domain*, is re-embedded onto the surviving substrate — the
        domain-outage case is an evacuation.  Returns per-service
        reports for everything re-mapped; a service whose relevant
        reconciliation push could not complete is marked ``degraded``.
        """
        with obs.span("heal") as root:
            reports = self._heal()
            root.set(services=len(reports))
        return reports

    def _heal(self) -> dict[str, DeployReport]:
        fresh = self.cal.pristine_view()
        lost_domains = self.cal.quarantined_domains()
        if lost_domains:
            counters.incr("resilience.heal.domains_lost",
                          len(lost_domains))
            obs.event("heal.domains_lost", domains=sorted(lost_domains))
        broken: list[str] = []
        for service_id in self.cal.deployed_services():
            _, result = self.cal.snapshot_service(service_id)
            uses_missing = any(
                not fresh.has_edge(link_id)
                for route in result.hop_routes.values()
                for link_id in route.link_ids)
            stranded = any(
                not fresh.has_node(infra_id)
                for infra_id in result.nf_placement.values()) or any(
                not fresh.has_node(node_id)
                for route in result.hop_routes.values()
                for node_id in route.infra_path)
            if uses_missing or stranded:
                broken.append(service_id)
                if stranded:
                    counters.incr("resilience.heal.evacuations")
                    obs.event("heal.evacuation", service=service_id)
        reports: dict[str, DeployReport] = {}
        if not broken:
            return reports
        with self.journal.intent(
                "heal", None, payload={"services": sorted(broken)}) as intent:
            snapshots = {service_id: self.cal.snapshot_service(service_id)
                         for service_id in broken}
            # the substrate topology changed under us: invalidate the
            # live DoV (and, via topology generation, the path cache)
            # *before* removing services.  The pristine_view() above
            # already refetched every shard, so only the derived state
            # must go — domains=() keeps the fresh sub-views instead of
            # fetching the whole substrate a second time.
            self.cal.mark_stale(domains=())
            for service_id in broken:
                self.cal.remove_service(service_id)
            for service_id in broken:
                original_service, _ = snapshots[service_id]
                with obs.span("heal/evacuate", service=service_id):
                    view = self.cal.resource_view(copy=False)
                    result = self._orchestrate(original_service, view)
                if result.success:
                    effective = (result.service if result.service is not None
                                 else original_service)
                    self.cal.commit_mapping(service_id, effective, result)
                    reports[service_id] = DeployReport(
                        service_id=service_id, success=True, mapping=result)
                else:
                    reports[service_id] = DeployReport(
                        service_id=service_id, success=False, mapping=result,
                        error=f"heal failed: {result.failure_reason}")
            adapter_reports = self.cal.push_planned()
            intent.record_pushes(adapter_reports)
            by_domain = {r.domain: r for r in adapter_reports}
            for report in reports.values():
                if not report.success:
                    continue  # never pushed: no adapter reports apply
                relevant = self.cal.adapter_names_for(report.mapping)
                report.adapters = [by_domain[name]
                                   for name in sorted(relevant)
                                   if name in by_domain]
                report.outcome = self._classify_push(report.mapping,
                                                     report.adapters)
            # one commit settles every broken service: re-embedded ones
            # carry their new records, failed evacuations are removals
            intent.commit({
                service_id: (self._service_record(service_id)
                             if reports[service_id].success else None)
                for service_id in broken})
        if self.simulator is not None:
            self._wait_activation(60_000.0)
        return reports

    # -- state persistence (controller restart / failover) -----------------

    def _service_record(self, service_id: str) -> dict:
        """Export-schema record of one deployed service — the shape
        journal commits and ``export_state()`` share."""
        from repro.nffg.serialize import nffg_to_dict

        service, result = self.cal.snapshot_service(service_id)
        return {
            "service": nffg_to_dict(service),
            "placement": dict(result.nf_placement),
            "routes": {hop_id: {
                "infra_path": list(route.infra_path),
                "link_ids": list(route.link_ids),
                "delay": route.delay,
                "bandwidth": route.bandwidth,
            } for hop_id, route in result.hop_routes.items()},
            "decompositions": dict(result.decompositions),
        }

    def export_state(self) -> dict:
        """Serialize deployed-service state (JSON-compatible).

        Captures each service's graph, NF placements and hop routes —
        everything a fresh controller instance needs to resume
        ownership of the same domains without re-planning — plus the
        CAL's resilience state (circuit breakers, domains with queued
        replays), so a snapshot taken mid-storm does not lose the
        pending reconciliation work.
        """
        services = {service_id: self._service_record(service_id)
                    for service_id in self.cal.deployed_services()}
        return {"orchestrator": self.name, "services": services,
                "resilience": self.cal.export_resilience()}

    def import_state(self, state: dict, *, push: bool = True,
                     reconcile: bool = False) -> list[str]:
        """Restore exported state into this orchestrator.

        Placements and routes are replayed verbatim (no re-mapping);
        with ``push`` the domains are reconciled immediately, which is
        a no-op on domains that still hold the configuration.  Breaker
        and pending-replay state ride along under ``"resilience"``.

        By default the orchestrator must be empty.  With
        ``reconcile=True`` a non-empty orchestrator diffs instead of
        refusing: services absent from ``state`` are removed,
        identical ones are kept untouched, and changed or new ones are
        (re)committed — the same anti-entropy shape ``recover()`` uses.
        """
        from repro.mapping.base import HopRoute, MappingResult
        from repro.nffg.serialize import nffg_from_dict

        current = set(self.cal.deployed_services())
        if current and not reconcile:
            raise RuntimeError(
                "import_state requires an empty orchestrator "
                "(pass reconcile=True to diff against the running state)")
        incoming: dict = state.get("services", {})
        with self.journal.intent(
                "import", None,
                payload={"services": sorted(incoming)}) as intent:
            removed = sorted(current - set(incoming))
            for service_id in removed:
                self.cal.remove_service(service_id)
            restored: list[str] = []
            kept = 0
            for service_id, data in incoming.items():
                if service_id in current:
                    if self._service_record(service_id) == data:
                        kept += 1
                        continue
                    self.cal.remove_service(service_id)
                service = nffg_from_dict(data["service"])
                routes = {hop_id: HopRoute(hop_id=hop_id,
                                           infra_path=list(r["infra_path"]),
                                           link_ids=list(r["link_ids"]),
                                           delay=float(r["delay"]),
                                           bandwidth=float(r["bandwidth"]))
                          for hop_id, r in data.get("routes", {}).items()}
                result = MappingResult(
                    success=True, service=service,
                    nf_placement=dict(data.get("placement", {})),
                    hop_routes=routes,
                    decompositions=dict(data.get("decompositions", {})))
                self.cal.commit_mapping(service_id, service, result)
                restored.append(service_id)
            if reconcile:
                counters.incr("recovery.reconcile.removed", len(removed))
                counters.incr("recovery.reconcile.replaced",
                              sum(1 for s in restored if s in current))
                counters.incr("recovery.reconcile.kept", kept)
            self.cal.import_resilience(state.get("resilience", {}))
            if push and (restored or removed):
                pushes = self.cal.push_all()
                intent.record_pushes(pushes)
                if self.simulator is not None:
                    self._wait_activation(60_000.0)
            # books == desired state regardless of push outcomes (a
            # failed domain stays pending for replay): commit
            intent.commit(
                {service_id: incoming[service_id] for service_id in restored}
                | {service_id: None for service_id in removed})
        return restored

    def service_flow_stats(self, service_id: str) -> dict[str, dict[str, int]]:
        """Per-SG-hop dataplane counters for a deployed service.

        Polls every domain's switches for flow statistics and keys them
        by the hop id carried in the flow cookies.  For a hop traversing
        several switches, the maximum per-switch counter is reported
        (the ingress sees every packet of the hop).
        """
        if service_id not in self.cal.deployed_services():
            return {}
        _, result = self.cal.snapshot_service(service_id)
        wanted = set(result.hop_routes)
        totals: dict[str, dict[str, int]] = {
            hop_id: {"packets": 0, "bytes": 0} for hop_id in wanted}
        for adapter in self.cal.adapters.values():
            for cookie, (packets, octets) in adapter.flow_stats().items():
                if cookie in wanted:
                    entry = totals[cookie]
                    entry["packets"] = max(entry["packets"], packets)
                    entry["bytes"] = max(entry["bytes"], octets)
        return totals

    def __repr__(self) -> str:
        return (f"<EscapeOrchestrator {self.name}: "
                f"{len(self.cal.adapters)} domains, "
                f"{len(self.cal.deployed_services())} services>")
