"""Controller adaptation layer (CAL).

Owns the registered domain adapters, builds the **Domain Virtualizer's
global view (DoV)** by merging the per-domain views (inter-domain
sap-tagged ports become stitched links), keeps the DoV up to date as
services are deployed/torn down, and fans mapped configurations out to
the adapters.

DoV maintenance is **incremental**: the merged view is kept alive and
per-service mapping deltas are applied/removed in place instead of
re-merging every domain view on each change.  Each apply records a
:class:`_ServiceDelta` — the exact set of nodes, ports, edges, flow
rules and bandwidth reservations it introduced — so teardown is the
exact inverse.  ``generation`` counts DoV content versions;
``topology_generation`` counts substrate topology versions (adapter
registration, :meth:`mark_stale` after link failures) and drives
path-cache invalidation upstream.  :meth:`rebuild` is the explicit
escape hatch back to a from-scratch merge.

The registry is **sharded**: adapters are partitioned into
:class:`CALShard` buckets (explicit shard map, else a stable hash of
the adapter name), each shard caches its own merged sub-view with a
per-shard generation counter, and the global DoV is a lazy stitched
view — a rebuild refetches only the shards marked stale and re-merges
the cached sub-views of the rest, so view maintenance is proportional
to what actually changed, not to the number of registered domains.
Sub-views are merged *unstitched*; sap-tag pairs are only fused at the
final shard-of-shards stitch (a pair may span two shards).

Push fan-out is **planned**: ``commit_mapping``/``remove_service``/
``restore_service`` record the touched-domain set of the mapping they
applied, and :meth:`push_planned` submits dispatcher ops only for
those domains (plus any queued reconciliations whose breaker admits a
push again) — per-deploy push work is proportional to the domains a
service touches.  :meth:`push_all` keeps the full fan-out for
operator-driven reconciliation and remains the idempotent baseline.

Adapter fan-out is **concurrent**: ``push_all``/``push_planned``/
``reconcile``/``pristine_view`` hand their per-adapter operations to a
:class:`~repro.orchestration.dispatch.DomainDispatcher`, which runs
distinct domains in parallel while keeping per-domain operations
strictly serial (one in-flight op per adapter).  Shared bookkeeping
(the per-shard reconciliation queues, perf counters, fault plans) is
locked; breakers and adapter delta state are only ever touched by
their own domain's single in-flight operation.
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro import obs
from repro.mapping.base import (
    MappingResult,
    build_sap_attachments,
    install_hop_flowrules,
)
from repro.mapping.index import SubstrateIndex
from repro.nffg.graph import NFFG, NFFGError
from repro.nffg.model import DomainType, NodeNF, NodeSAP, ResourceVector
from repro.orchestration.adapters import DomainAdapter
from repro.nffg.ops import merge_nffgs, remaining_nffg
from repro.orchestration.dispatch import DEFAULT_MAX_WORKERS, DomainDispatcher
from repro.orchestration.report import AdapterReport
from repro.perf import counters, observe, set_gauge
from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.sanitize import make_lock

#: debug escape hatch: rebuild-and-compare the substrate index against
#: the remaining view on every resource_view() call
_INDEX_VERIFY = bool(os.environ.get("REPRO_INDEX_VERIFY"))


@dataclass
class _ServiceDelta:
    """Everything one service's apply added to the DoV (for exact undo)."""

    #: NF node ids added (removal also drops their dynamic links)
    nf_ids: list[str] = field(default_factory=list)
    #: infra-side ports created by ``place_nf``: (infra_id, port_id)
    nf_ports: list[tuple[str, str]] = field(default_factory=list)
    #: SAP nodes this apply introduced (shared SAPs are only removed
    #: once no other service's edges still touch them)
    sap_ids: list[str] = field(default_factory=list)
    #: SG hop + requirement edge ids added
    edge_ids: list[str] = field(default_factory=list)
    #: bandwidth reservations: (link_ids, bandwidth)
    reservations: list[tuple[tuple[str, ...], float]] = field(default_factory=list)
    #: ports that received flow rules: (infra_id, port_id)
    flow_ports: list[tuple[str, str]] = field(default_factory=list)
    #: hop ids whose flow rules must go on removal
    hop_ids: set[str] = field(default_factory=set)


class CALShard:
    """One partition of the adapter registry.

    Holds the shard's member adapters (registration order), its cached
    merged sub-view (*unstitched*: sap-tag pairs stay open until the
    global stitch — a pair may span two shards) and the per-shard
    resilience bookkeeping.  ``generation`` counts sub-view refreshes;
    ``stale`` marks the sub-view for a refetch at the next stitch.
    Only complete sub-views are cached: a shard whose fetch lost a
    member stays stale so every later stitch retries the domain.
    """

    def __init__(self, index: int) -> None:
        self.index = index
        #: member adapter names in registration order
        self.adapter_names: list[str] = []
        #: cached merged sub-view (None until first refresh, or when
        #: every member view was unavailable)
        self.view: Optional[NFFG] = None
        #: sub-view version: bumped on every refresh
        self.generation = 0
        #: the cached sub-view no longer reflects the member domains
        self.stale = True
        #: members excluded from the cached sub-view (breaker open, or
        #: fetch failed after retries)
        self.view_failures: set[str] = set()
        #: infra id -> owning member adapter, from the latest refresh
        self.owners: dict[str, str] = {}
        #: members holding stale configuration (push skipped/failed),
        #: replayed by reconcile; mutated by concurrent ``_push_one``
        #: calls on dispatcher workers, hence the per-shard lock
        self.pending: set[str] = set()  # guarded-by: lock
        self.lock = make_lock(f"cal.shard{index}.pending")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"<CALShard {self.index}: {len(self.adapter_names)} "
                f"adapters{' stale' if self.stale else ''}>")


class ControllerAdaptationLayer:
    """Adapter registry + incremental DoV maintenance + install fan-out."""

    def __init__(self, *, breaker_failure_threshold: int = 3,
                 breaker_recovery_s: float = 30.0,
                 breaker_clock: Callable[[], float] = time.monotonic,
                 push_workers: int = DEFAULT_MAX_WORKERS,
                 shards: int = 1,
                 shard_map: Optional[dict[str, int]] = None) -> None:
        self.adapters: dict[str, DomainAdapter] = {}
        #: concurrent per-domain fan-out; ``push_workers <= 1`` degrades
        #: to strictly serial pushes on the caller's thread
        self.dispatcher = DomainDispatcher(push_workers,
                                           serial=push_workers <= 1)
        #: adapter partition; ``shard_map`` pins adapter names to shard
        #: indexes, everything else hashes on the name (stable across
        #: runs and registration orders)
        count = max(1, int(shards))
        if shard_map:
            count = max(count, max(shard_map.values()) + 1)
        self.shards: list[CALShard] = [CALShard(i) for i in range(count)]
        self._shard_map = dict(shard_map or {})
        self._shard_of: dict[str, CALShard] = {}
        #: adapters grouped by DomainType, maintained at register time
        #: so ``adapters_for`` never scans the registry
        self._adapters_by_type: dict[DomainType, list[DomainAdapter]] = {}
        self._dov: Optional[NFFG] = None
        #: deployed services: service id -> (service graph, mapping
        #: result).  This map IS the desired state the write-ahead
        #: intent journal protects — only the annotated mutators may
        #: write it, and their callers must hold an open intent scope
        #: (lint rule CC007).
        self._deployed: dict[str, tuple[NFFG, MappingResult]] = (
            {}  # journaled: commit_mapping remove_service restore_service
        )
        #: per-service inverse records, valid for the *live* ``_dov`` only
        self._deltas: dict[str, _ServiceDelta] = {}
        #: cached northbound remaining-capacity view, maintained
        #: incrementally by commit/remove; generation-tagged so any
        #: unmaintained DoV mutation forces a re-derivation
        self._remaining: Optional[NFFG] = None
        self._remaining_generation = -1
        #: persistent mapping-layer index over the remaining view:
        #: candidate sets, capacity buckets, ledger seed maps and
        #: topology tables, kept in lock-step with ``_remaining`` (see
        #: :class:`repro.mapping.index.SubstrateIndex`); handed to the
        #: RO so embedders skip their per-run O(substrate) rescans
        self.substrate_index = SubstrateIndex()
        #: DoV content version: bumped on every apply/remove/rebuild
        self.generation = 0
        #: substrate topology version: bumped when domain views change
        self.topology_generation = 0
        #: per-adapter circuit breakers (created on register)
        self.breakers: dict[str, CircuitBreaker] = {}
        self.breaker_failure_threshold = breaker_failure_threshold
        self.breaker_recovery_s = breaker_recovery_s
        self.breaker_clock = breaker_clock
        #: domains whose cumulative configuration changed since the
        #: last planned push; consumed by :meth:`push_planned`.  Only
        #: mutated on the orchestrator's thread (commit/remove/restore
        #: and rebuilds happen before any fan-out starts).
        self._dirty: set[str] = set()
        #: per-adapter own-infra-id cache for ``_install_for``, valid
        #: for one substrate topology generation
        self._own_infra_cache: dict[str, tuple[int, frozenset[str]]] = {}
        #: domains whose view could not enter the latest pristine merge
        #: (breaker open, or fetch failed after retries)
        self.last_view_failures: set[str] = set()
        #: the live DoV was rebuilt while some domain view was missing;
        #: push_all/reconcile re-merge before fanning out so a returned
        #: domain's substrate (and stranded services) re-enter the view
        self._degraded_view = False
        #: infra id -> owning adapter name, from the latest merge
        self._infra_owner: dict[str, str] = {}

    # -- adapter registry ---------------------------------------------------

    def register(self, adapter: DomainAdapter) -> DomainAdapter:
        if adapter.name in self.adapters:
            raise ValueError(f"duplicate adapter {adapter.name!r}")
        self.adapters[adapter.name] = adapter
        self._adapters_by_type.setdefault(
            adapter.domain_type, []).append(adapter)
        shard = self.shards[self._shard_index(adapter.name)]
        shard.adapter_names.append(adapter.name)
        self._shard_of[adapter.name] = shard
        self.breakers[adapter.name] = CircuitBreaker(
            adapter.name,
            failure_threshold=self.breaker_failure_threshold,
            recovery_time_s=self.breaker_recovery_s,
            clock=self.breaker_clock)
        # topology changed, but only the new adapter's shard needs a
        # refetch — the other sub-views are still current
        self.mark_stale(domains=(adapter.name,))
        return adapter

    def _shard_index(self, name: str) -> int:
        explicit = self._shard_map.get(name)
        if explicit is not None:
            if not 0 <= explicit < len(self.shards):
                raise ValueError(
                    f"shard_map pins {name!r} to shard {explicit}, but "
                    f"only shards 0..{len(self.shards) - 1} exist")
            return explicit
        return zlib.crc32(name.encode("utf-8")) % len(self.shards)

    def shard_of(self, name: str) -> int:
        """The shard index an adapter name lives in (registered or not)."""
        shard = self._shard_of.get(name)
        return shard.index if shard is not None else self._shard_index(name)

    def adapters_for(self, domain_type: DomainType) -> list[DomainAdapter]:
        return list(self._adapters_by_type.get(domain_type, ()))

    # -- global view --------------------------------------------------------------

    def pristine_view(self, *, refresh: bool = True) -> NFFG:
        """Merge of all current adapter views (no deployment state).

        The merge is shard-wise: every *stale* shard refetches its
        member views (one concurrent dispatcher batch across all stale
        shards) and re-merges its cached sub-view; fresh shards are
        reused as-is.  The global view is then stitched from the
        sub-views (sap-tag pairs fused here, and only here).

        With ``refresh`` (the default) every shard is marked stale
        first: callers asking for the pristine view directly —
        ``heal()`` probing for outages — expect current domain truth,
        not caches.  The incremental-DoV rebuild path passes
        ``refresh=False`` and pays only for shards something
        invalidated.

        Degrades gracefully: a domain whose breaker is open is not even
        asked (it is quarantined), and a domain whose view fetch fails
        after retries is excluded from the merge.  Both are recorded in
        :attr:`last_view_failures` so ``heal()`` can evacuate their
        services.
        """
        if refresh:
            for shard in self.shards:
                shard.stale = True
        populated = [shard for shard in self.shards if shard.adapter_names]
        stale = [shard for shard in populated if shard.stale]
        if stale:
            counters.incr("cal.shard.refresh", len(stale))
        if len(populated) > len(stale):
            counters.incr("cal.shard.reuse", len(populated) - len(stale))
        self._refresh_shards(stale)
        views: list[NFFG] = []
        owners: dict[str, str] = {}
        failures: set[str] = set()
        for shard in populated:
            if shard.view is not None:
                views.append(shard.view)
            owners.update(shard.owners)
            failures |= shard.view_failures
        self.last_view_failures = failures
        self._infra_owner = owners
        if not views:
            return NFFG(id="dov-empty")
        started = time.perf_counter()
        counters.incr("cal.shard.stitch")
        merged = merge_nffgs(views, merged_id="dov")
        observe("cal.shard.stitch_s", time.perf_counter() - started)
        return merged

    def _fetch_view(self, adapter: DomainAdapter) -> Optional[NFFG]:
        """One domain's view fetch with breaker quarantine/probing."""
        with obs.span(f"view/{adapter.name}", domain=adapter.name):
            breaker = self.breakers.get(adapter.name)
            if breaker is not None and \
                    breaker.state is BreakerState.OPEN:
                counters.incr("resilience.view.quarantined")
                return None
            try:
                view = adapter.fetch_view()
            except Exception:  # noqa: BLE001 - degrade, don't abort
                counters.incr("resilience.view.unreachable")
                if breaker is not None:
                    breaker.record_failure()
                return None
            if breaker is not None and \
                    breaker.state is BreakerState.HALF_OPEN:
                # the fetch was the probe: the domain answered
                breaker.record_success()
            return view

    def _refresh_shards(self, shards: list[CALShard]) -> None:
        """Refetch the member views of the given shards (one dispatcher
        batch spanning all of them, so distinct domains still fan out
        in parallel) and re-merge each sub-view.  A shard that lost a
        member stays stale — only complete sub-views are cached, so
        the next stitch retries the missing domain."""
        pairs = [(shard, self.adapters[name])
                 for shard in shards for name in shard.adapter_names]
        if not pairs:
            for shard in shards:
                shard.stale = False  # nothing to fetch
            return
        fetched = self.dispatcher.run(
            (adapter.name,
             lambda adapter=adapter: self._fetch_view(adapter))
            for _, adapter in pairs)
        by_shard: dict[int, list[tuple[DomainAdapter, Optional[NFFG]]]] = {}
        for (shard, adapter), view in zip(pairs, fetched):
            by_shard.setdefault(shard.index, []).append((adapter, view))
        for shard in shards:
            with obs.span(f"merge/shard{shard.index}", shard=shard.index):
                views: list[NFFG] = []
                shard.owners = {}
                shard.view_failures = set()
                for adapter, view in by_shard.get(shard.index, []):
                    if view is None:
                        shard.view_failures.add(adapter.name)
                        continue
                    for infra in view.infras:
                        shard.owners[infra.id] = adapter.name
                    views.append(view)
                # unstitched: tag pairs may span shards, the global
                # stitch in pristine_view fuses them exactly once
                shard.view = merge_nffgs(
                    views, merged_id=f"dov-shard{shard.index}",
                    stitch=False) if views else None
            shard.generation += 1
            shard.stale = bool(shard.view_failures)

    @property
    def dov(self) -> NFFG:
        """The global view including everything deployed so far."""
        if self._dov is None:
            self._dov = self._rebuild_dov()
        return self._dov

    def mark_stale(self, domains: Optional[Iterable[str]] = None) -> None:
        """Declare the substrate topology changed (adapter added, link
        failure observed): drop the live DoV and its deltas so the next
        access re-merges fresh domain views.

        ``domains`` narrows the refetch to the shards owning the named
        domains — the other shards' cached sub-views are reused at the
        next stitch.  ``None`` (the location of the change is unknown)
        stales every shard.  An *empty* iterable invalidates the DoV,
        deltas and path caches without staling any shard: used when
        the domain views were just refetched and only the derived
        state must go.
        """
        if domains is None:
            for shard in self.shards:
                shard.stale = True
        else:
            for name in domains:
                shard = self._shard_of.get(name)
                if shard is not None:
                    shard.stale = True
        self._dov = None
        self._deltas.clear()
        self._remaining = None
        self.generation += 1
        self.topology_generation += 1

    def rebuild(self) -> NFFG:
        """Explicit escape hatch: force a from-scratch re-merge now."""
        for shard in self.shards:
            shard.stale = True
        self._dov = None
        self._deltas.clear()
        self._remaining = None
        self.generation += 1
        return self.dov

    def _rebuild_dov(self) -> NFFG:
        counters.incr("dov.rebuild")
        started = time.perf_counter()
        with obs.span("dov/rebuild"):
            dov = self.pristine_view(refresh=False)
            self._degraded_view = bool(self.last_view_failures)
            self._deltas = {}
            for service_id, (service, result) in self._deployed.items():
                if not _replayable(dov, result):
                    # its substrate vanished from the merge (domain
                    # quarantined or unreachable): keep the booking but
                    # leave the service out of the degraded view —
                    # heal() evacuates it, or a later refresh
                    # re-applies it
                    self._deltas[service_id] = None
                    counters.incr("dov.replay_skipped")
                    continue
                self._deltas[service_id] = _apply_inplace(
                    dov, service, result)
        # after a rebuild the per-domain desired configs may all have
        # shifted (deferred replays re-entered, substrate came back):
        # the planner falls back to a full fan-out once
        self._dirty.update(self.adapters)
        observe("dov.rebuild_s", time.perf_counter() - started)
        return dov

    def _needs_refresh(self) -> bool:
        """The live DoV is known to under-represent reality (degraded
        merge, or bookings whose replay was skipped) and a re-merge
        could improve it."""
        return self._dov is not None and (
            self._degraded_view
            or any(delta is None for delta in self._deltas.values()))

    def resource_view(self, *, copy: bool = True) -> NFFG:
        """What the RO should map against: the substrate with remaining
        resources.  Deployed NFs are netted out of the capacities but
        not advertised themselves — the northbound view stays
        substrate-sized no matter how much is deployed.

        The view is cached between calls and maintained incrementally:
        commits and removals adjust only the touched infras and route
        links (O(service), not O(substrate)); every other DoV mutation
        falls back to a full re-derivation via the generation tag.
        ``copy=False`` hands out the live cached view — the deploy hot
        loop uses it to stay O(touched); such callers must treat the
        graph as read-only (embedders do: reservations live in the
        mapping ledger, never in the input view)."""
        dov = self.dov   # may rebuild and bump the generation: read first
        if self._remaining is None \
                or self._remaining_generation != self.generation:
            self._remaining = remaining_nffg(dov, new_id="dov-remaining",
                                             include_deployed=False)
            self._remaining_generation = self.generation
            counters.incr("cal.remaining.rebuild")
        else:
            counters.incr("cal.remaining.reuse")
        # keep the mapping index bound to the live remaining view;
        # identity/epoch drift triggers its full rebuild (PathCache
        # sync idiom), everything else is a no-op
        self.substrate_index.sync(self._remaining,
                                  epoch=self.topology_generation)
        if _INDEX_VERIFY:
            problems = self.substrate_index.verify(self._remaining)
            assert not problems, f"substrate index drifted: {problems}"
        if copy:
            return self._remaining.copy("dov-remaining")
        return self._remaining

    def _update_remaining(self, service: NFFG, result: MappingResult,
                          sign: float) -> None:
        """Fold a mapping just applied to (``sign=1``) or removed from
        (``sign=-1``) the DoV into the cached remaining view, touching
        only the placed infras and routed links.  Call *after* bumping
        ``generation``; any inconsistency drops the cache instead of
        serving a wrong capacity."""
        remaining = self._remaining
        if remaining is None:
            return
        try:
            for nf_id, infra_id in result.nf_placement.items():
                infra = remaining.infra(infra_id)
                demand = service.nf(nf_id).resources
                free = infra.resources
                infra.resources = ResourceVector(
                    cpu=max(free.cpu - sign * demand.cpu, 0.0),
                    mem=max(free.mem - sign * demand.mem, 0.0),
                    storage=max(free.storage - sign * demand.storage, 0.0),
                    bandwidth=free.bandwidth, delay=free.delay)
            for route in result.hop_routes.values():
                for link_id in route.link_ids:
                    link = remaining.edge(link_id)
                    link.bandwidth = max(
                        link.bandwidth - sign * route.bandwidth, 0.0)
        except (KeyError, NFFGError):
            # a placement or route no longer resolves in the cached
            # substrate (topology moved underneath): re-derive lazily
            self._remaining = None
            return
        self._remaining_generation = self.generation
        # mirror the delta into the mapping index (same clamped
        # arithmetic); it marks itself stale on any inconsistency
        self.substrate_index.apply_mapping(service, result, sign)

    # -- deployment ---------------------------------------------------------------------

    def _mark_dirty(self, result: MappingResult) -> None:
        """Record a mapping's touched domains for the push planner; a
        mapping whose owners cannot be resolved (ownership map not
        built yet, foreign replay) dirties everything — correctness
        over planning."""
        touched = self.adapter_names_for(result)
        self._dirty.update(touched if touched else self.adapters)

    def commit_mapping(self, service_id: str, service: NFFG,
                       result: MappingResult) -> None:
        """Record a successful mapping into the DoV (in place)."""
        dov = self.dov
        self._deltas[service_id] = _apply_inplace(dov, service, result)
        self._deployed[service_id] = (service, result)
        self._mark_dirty(result)
        self.generation += 1
        self._update_remaining(service, result, 1.0)
        counters.incr("dov.apply_inplace")
        set_gauge("cal.services_deployed", len(self._deployed))

    def remove_service(self, service_id: str) -> bool:
        if service_id not in self._deployed:
            return False
        removed_service, removed_result = self._deployed[service_id]
        self._mark_dirty(removed_result)
        del self._deployed[service_id]
        had_delta = service_id in self._deltas
        delta = self._deltas.pop(service_id, None)
        self.generation += 1
        if had_delta and delta is None:
            # replay was skipped: never entered the live view, so the
            # cached remaining capacities are untouched
            if self._remaining is not None:
                self._remaining_generation = self.generation
        elif self._dov is not None and delta is not None:
            _remove_inplace(self._dov, delta)
            self._update_remaining(removed_service, removed_result, -1.0)
            counters.incr("dov.remove_inplace")
        else:
            # no live view (or no delta for it): fall back to a lazy
            # from-scratch rebuild on next access
            self._dov = None
            self._deltas.clear()
            self._remaining = None
            counters.incr("dov.fallback")
        set_gauge("cal.services_deployed", len(self._deployed))
        return True

    def snapshot_service(self, service_id: str) -> tuple[NFFG, MappingResult]:
        """The (service graph, mapping) pair recorded for a service."""
        return self._deployed[service_id]

    def restore_service(self, service_id: str,
                        snapshot: tuple[NFFG, MappingResult]) -> None:
        """Put a previously snapshotted service back (rollback path)."""
        self._deployed[service_id] = snapshot
        self._mark_dirty(snapshot[1])
        self.generation += 1
        if self._dov is not None:
            service, result = snapshot
            if _replayable(self._dov, result):
                self._deltas[service_id] = _apply_inplace(
                    self._dov, service, result)
                self._update_remaining(service, result, 1.0)
                counters.incr("dov.apply_inplace")
            else:
                # restoring onto a degraded view whose substrate is
                # gone: book it, defer the replay to the next refresh
                # (the cached remaining capacities are untouched)
                self._deltas[service_id] = None
                if self._remaining is not None:
                    self._remaining_generation = self.generation
                counters.incr("dov.replay_skipped")
        set_gauge("cal.services_deployed", len(self._deployed))

    def deployed_services(self) -> list[str]:
        return list(self._deployed)

    def push_all(self) -> list[AdapterReport]:
        """Push the cumulative per-domain configuration to every domain.

        Domain orchestrators reconcile against the full config, so the
        push is idempotent and also serves teardown (a domain that no
        longer appears gets an empty graph).

        A domain whose circuit breaker is open is skipped — its report
        carries ``skipped=True`` and its configuration joins the
        reconciliation queue, replayed by :meth:`reconcile` (or by the
        next :meth:`push_all` once the breaker half-opens).

        Pushes toward distinct domains run concurrently through the
        dispatcher; the report list keeps registration order.  The
        service lifecycle uses the planned variant
        (:meth:`push_planned`); the full fan-out stays the baseline for
        operator-driven reconciliation, rollback and state import.
        """
        self._prepare_push()
        self._dirty.clear()  # the full fan-out covers every planned target
        return self.dispatcher.run(
            (adapter.name, lambda adapter=adapter: self._push_one(adapter))
            for adapter in self.adapters.values())

    def push_planned(self) -> list[AdapterReport]:
        """Push only the domains whose configuration may have changed.

        The planner unions the touched-domain sets recorded by
        ``commit_mapping``/``remove_service``/``restore_service`` since
        the last push with the queued reconciliations whose breaker
        admits a push again, and submits dispatcher ops for exactly
        those domains — per-deploy push work is proportional to the
        domains a service touches, not to the number registered.  An
        untouched domain is not contacted at all: its cumulative
        configuration cannot have changed, so a push could only confirm
        a no-op.

        Reports come back in registration order, like :meth:`push_all`,
        but cover only the planned domains.
        """
        self._prepare_push()  # a forced rebuild marks every domain dirty
        targets = set(self._dirty)
        for shard in self.shards:
            with shard.lock:
                queued = set(shard.pending)
            for name in queued:
                breaker = self.breakers.get(name)
                if breaker is None or breaker.allow():
                    targets.add(name)
        planned = [adapter for name, adapter in self.adapters.items()
                   if name in targets]
        counters.incr("cal.push.planned", len(planned))
        skipped = len(self.adapters) - len(planned)
        if skipped:
            counters.incr("cal.push.skipped", skipped)
        self._dirty.difference_update(adapter.name for adapter in planned)
        if not planned:
            return []
        return self.dispatcher.run(
            (adapter.name, lambda adapter=adapter: self._push_one(adapter))
            for adapter in planned)

    def _prepare_push(self) -> None:
        """Materialize (and, when degraded, refresh) the DoV on the
        caller's thread before any fan-out: ``_install_for`` runs on
        dispatcher workers and must only *read* the live view — a lazy
        rebuild there would re-enter the dispatcher while the worker
        holds its domain's FIFO mutex."""
        if self._needs_refresh():
            self.rebuild()
        elif self._dov is None:
            self._dov = self._rebuild_dov()

    def _push_one(self, adapter: DomainAdapter, *,
                  force_full: bool = False) -> AdapterReport:
        """One domain's push, traced: the ``push/<domain>`` span covers
        the whole attempt *including* the breaker bookkeeping, so a
        ``breaker.trip`` event carries the span id of the push that
        tripped it.  Runs on a dispatcher worker thread under the
        domain's FIFO mutex (context copied over when tracing is on)."""
        with obs.span(f"push/{adapter.name}",
                      domain=adapter.name) as span:
            report = self._push_one_traced(adapter, force_full=force_full)
            span.set(outcome=("skipped" if report.skipped
                              else "ok" if report.success else "failed"),
                     delta=report.delta, attempts=report.attempts)
            obs.event("push", domain=adapter.name, success=report.success,
                      skipped=report.skipped, delta=report.delta,
                      attempts=report.attempts, error=report.error,
                      push_ms=round(report.push_time_s * 1e3, 3))
        if not report.skipped:
            observe("push.latency_s", report.push_time_s,
                    domain=adapter.name)
        return report

    def _push_one_traced(self, adapter: DomainAdapter, *,
                         force_full: bool = False) -> AdapterReport:
        shard = self._shard_of[adapter.name]
        breaker = self.breakers.get(adapter.name)
        if breaker is not None and not breaker.allow():
            counters.incr("resilience.breaker.skip")
            with shard.lock:
                shard.pending.add(adapter.name)
            set_gauge("cal.pending_reconcile", self._pending_total())
            return AdapterReport(
                domain=adapter.name, success=False, skipped=True,
                error=(f"circuit open after "
                       f"{breaker.consecutive_failures} consecutive "
                       "failures; push queued for reconciliation"))
        with shard.lock:
            was_pending = adapter.name in shard.pending
        # delta pushes need an agreed base: after a skipped/failed push
        # or on a breaker's half-open probe the domain's state is not
        # trusted, so the cumulative config goes out in full
        force_full = (force_full or was_pending
                      or (breaker is not None
                          and breaker.state is BreakerState.HALF_OPEN))
        try:
            install = self._install_for(adapter)
        except Exception as exc:  # noqa: BLE001 - slicing needs the view
            report = AdapterReport(
                domain=adapter.name, success=False,
                error=f"{type(exc).__name__}: {exc}")
        else:
            report = adapter.install(install, force_full=force_full)
        if breaker is not None:
            breaker.record(report.success)
        with shard.lock:
            if report.success:
                shard.pending.discard(adapter.name)
                if was_pending:
                    counters.incr("resilience.breaker.reconcile")
            else:
                shard.pending.add(adapter.name)
        set_gauge("cal.pending_reconcile", self._pending_total())
        if not report.success:
            # server state unknown: never diff against it again until a
            # full push re-establishes the base
            adapter.reset_delta_state()
        return report

    def _pending_total(self) -> int:
        """Advisory queue depth for the gauge; per-shard sizes are read
        without the shard locks (a len() is atomic, and the gauge may
        lag a concurrent settle by one push anyway)."""
        return sum(len(shard.pending) for shard in self.shards)

    def reconcile(self, *, force_probe: bool = False) -> list[AdapterReport]:
        """Replay the cumulative configuration to every domain whose
        last push was skipped or failed.

        With ``force_probe`` an open breaker is advanced to half-open
        first (operator signal: "the domain is back, try it"); without
        it only domains whose breaker already admits a push are tried.

        Reconciliation is also the convergence point for a degraded
        DoV: if the live view was last merged while some domain was
        unreachable, it is re-merged first — so a returned domain's
        substrate and any deferred service replays are back in the
        view before its cumulative configuration is re-pushed.
        """
        if force_probe:
            # a breaker can be open purely from view-fetch failures
            # (nothing pending), so probe every open breaker, not just
            # the queued domains — the refresh below is the probe
            for breaker in self.breakers.values():
                breaker.force_half_open()
        self._prepare_push()
        # snapshot the queues before iterating: _push_one (possibly on
        # a dispatcher worker) mutates the live sets as pushes settle
        pending = sorted(self.pending_reconciliation())
        if not pending:
            return []
        ops = []
        for name in pending:
            adapter = self.adapters.get(name)
            if adapter is None:
                for shard in self.shards:
                    with shard.lock:
                        shard.pending.discard(name)
                continue
            breaker = self.breakers.get(name)
            if breaker is not None and not breaker.allow():
                continue
            # replays re-establish the delta base with a full push
            ops.append((name, lambda adapter=adapter: self._push_one(
                adapter, force_full=True)))
        return self.dispatcher.run(ops)

    def pending_reconciliation(self) -> set[str]:
        """Domains holding stale configuration (push skipped/failed)."""
        queued: set[str] = set()
        for shard in self.shards:
            with shard.lock:
                queued |= shard.pending
        return queued

    def quarantined_domains(self) -> set[str]:
        """Domains currently unusable: breaker open, or excluded from
        the latest pristine merge because their view was unreachable."""
        quarantined = {name for name, breaker in self.breakers.items()
                       if breaker.state is BreakerState.OPEN}
        return quarantined | set(self.last_view_failures)

    # -- resilience state persistence ---------------------------------------

    def export_resilience(self) -> dict:
        """Serializable breaker + pending-replay state.

        A snapshot taken mid-storm must not forget which domains hold
        stale configuration awaiting replay, nor reset tripped
        breakers — an importer would otherwise hammer a domain the
        exporter had already quarantined.
        """
        return {
            "breakers": {name: breaker.export_state()
                         for name, breaker in self.breakers.items()},
            "pending": sorted(self.pending_reconciliation()),
        }

    def import_resilience(self, data: dict) -> None:
        """Restore :meth:`export_resilience` state onto the registered
        adapters.  Entries naming adapters this CAL does not have are
        skipped — a failover successor may front a subset (or renamed
        set) of the exporter's domains."""
        if not data:
            return
        for name, record in (data.get("breakers") or {}).items():
            breaker = self.breakers.get(name)
            if breaker is not None:
                breaker.import_state(record)
        restored = 0
        for name in data.get("pending") or ():
            shard = self._shard_of.get(name)
            if shard is None:
                continue
            with shard.lock:
                shard.pending.add(name)
            restored += 1
        if restored:
            counters.incr("recovery.pending.restored", restored)
        set_gauge("cal.pending_reconcile", self._pending_total())

    def adapter_names_for(self, result: MappingResult) -> set[str]:
        """The adapters whose substrate a mapping actually touches
        (placements + route hops), per the latest merged ownership."""
        infras = set(result.nf_placement.values())
        for route in result.hop_routes.values():
            infras.update(route.infra_path)
        return {self._infra_owner[infra_id] for infra_id in infras
                if infra_id in self._infra_owner}

    def _own_infra_ids(self, adapter: DomainAdapter) -> frozenset[str]:
        """The adapter's own infra ids, cached per substrate topology
        generation — ``_install_for`` runs on every push and must not
        pay for a full ``get_view()`` copy each time."""
        cached = self._own_infra_cache.get(adapter.name)
        if cached is not None and cached[0] == self.topology_generation:
            return cached[1]
        ids = adapter.own_infra_ids()
        self._own_infra_cache[adapter.name] = (self.topology_generation, ids)
        return ids

    def _install_for(self, adapter: DomainAdapter) -> NFFG:
        """The adapter's install slice, computed directly from the DoV.

        Members are the adapter's own infras, the NFs placed on them
        and the SAPs attached via its own sap-tagged ports; links
        survive exactly when both endpoints are members, so
        inter-domain stitches, SG hops and requirements never enter an
        install view.  Unlike a whole-view ``split_per_domain`` pass
        this costs one id-membership sweep plus O(domain) node copies
        per push — not a full per-type materialization of the global
        view on every fan-out.

        The install graph id is deterministic per adapter so the delta
        machinery diffs against a stable base: ``<dov>@<type>`` for a
        DomainType with one adapter, suffixed ``@<name>`` when the type
        is shared.
        """
        dov = self.dov
        own_nodes = self._own_infra_ids(adapter)
        own_present = [infra.id for infra in dov.infras
                       if infra.id in own_nodes]
        if not own_present:
            return NFFG(id=f"{adapter.name}-empty")
        members: list[str] = list(own_present)
        for infra_id in own_present:
            for nf in dov.nfs_on(infra_id):
                members.append(nf.id)
        seen_tags: set[str] = set()
        for infra_id in own_present:
            infra = dov.infra(infra_id)
            for port in infra.ports.values():
                tag = port.sap_tag
                if (tag is not None and tag not in seen_tags
                        and dov.has_node(tag)
                        and isinstance(dov.node(tag), NodeSAP)):
                    seen_tags.add(tag)
                    members.append(tag)
        domain = adapter.domain_type.value
        shared_type = len(self._adapters_by_type.get(
            adapter.domain_type, ())) > 1
        install_id = (f"{dov.id}@{domain}@{adapter.name}" if shared_type
                      else f"{dov.id}@{domain}")
        return dov.copy_subgraph(install_id, members,
                                 name=f"install view for {domain}")

    def ready(self) -> bool:
        return all(adapter.ready() for adapter in self.adapters.values())

    def control_totals(self) -> tuple[int, int]:
        messages = octets = 0
        for adapter in self.adapters.values():
            m, b = adapter.control_stats()
            messages += m
            octets += b
        return messages, octets


def _endpoint_port(dov: NFFG, service: NFFG,
                   attach: dict[str, tuple[str, str]],
                   node_id: str, port_id: str) -> str:
    """The infra-side port where a service endpoint attaches in the DoV."""
    node = service.node(node_id)
    if isinstance(node, NodeNF):
        bound = dov.infra_port_of_nf(node_id, port_id)
        if bound is None:
            raise KeyError(f"NF {node_id!r} not bound in the DoV")
        return bound[1]
    try:
        return attach[node_id][1]
    except KeyError:
        raise KeyError(f"service SAP {node_id!r} has no attachment point "
                       f"in the DoV") from None


def _replayable(dov: NFFG, result: MappingResult) -> bool:
    """Is all the substrate a mapping references present in ``dov``?

    False means the owning domain is missing from a degraded merge —
    applying the mapping would reference vanished nodes/links.
    """
    if any(not dov.has_node(infra_id)
           for infra_id in result.nf_placement.values()):
        return False
    for route in result.hop_routes.values():
        if any(not dov.has_node(node_id) for node_id in route.infra_path):
            return False
        if any(not dov.has_edge(link_id) for link_id in route.link_ids):
            return False
    return True


def _apply_inplace(dov: NFFG, service: NFFG,
                   result: MappingResult) -> _ServiceDelta:
    """Apply a mapping's placements/routes/flowrules to the DoV in place.

    Mirrors :meth:`MappingContext.commit` minus the full-view copy and
    returns the delta needed to undo it exactly.
    """
    delta = _ServiceDelta()
    for nf_id, infra_id in result.nf_placement.items():
        if not dov.has_node(nf_id):
            dov.add_node_copy(service.nf(nf_id))
            delta.nf_ids.append(nf_id)
        created = dov.place_nf(nf_id, infra_id)
        for link in created:
            delta.nf_ports.append((link.dst_node, link.dst_port))
        dov.nf(nf_id).status = "deployed"
    for route in result.hop_routes.values():
        if route.bandwidth > 1e-9 and route.link_ids:
            for link_id in route.link_ids:
                dov.edge(link_id).reserved += route.bandwidth
            delta.reservations.append(
                (tuple(route.link_ids), route.bandwidth))
    attach = build_sap_attachments(dov)
    for hop in service.sg_hops:
        route = result.hop_routes.get(hop.id)
        if route is None:
            continue
        in_port = _endpoint_port(dov, service, attach,
                                 hop.src_node, hop.src_port)
        out_port = _endpoint_port(dov, service, attach,
                                  hop.dst_node, hop.dst_port)
        delta.flow_ports.extend(
            install_hop_flowrules(dov, hop, route, in_port, out_port))
        delta.hop_ids.add(hop.id)
    # carry the SG hops and requirements for later teardown/audit
    for sap in service.saps:
        if not dov.has_node(sap.id):
            dov.add_node_copy(sap)
            delta.sap_ids.append(sap.id)
    for hop in service.sg_hops:
        if not dov.has_edge(hop.id):
            dov.add_edge_copy(hop)
            delta.edge_ids.append(hop.id)
    for req in service.requirements:
        if not dov.has_edge(req.id):
            dov.add_edge_copy(req)
            delta.edge_ids.append(req.id)
    return delta


def _remove_inplace(dov: NFFG, delta: _ServiceDelta) -> None:
    """Undo exactly what :func:`_apply_inplace` recorded in ``delta``."""
    for infra_id, port_id in set(delta.flow_ports):
        if not dov.has_node(infra_id):
            continue
        port = dov.infra(infra_id).ports.get(port_id)
        if port is not None:
            port.flowrules = [rule for rule in port.flowrules
                              if rule.hop_id not in delta.hop_ids]
    for link_ids, bandwidth in delta.reservations:
        for link_id in link_ids:
            if dov.has_edge(link_id):
                link = dov.edge(link_id)
                link.reserved = max(0.0, link.reserved - bandwidth)
    for edge_id in delta.edge_ids:
        if dov.has_edge(edge_id):
            dov.remove_edge(edge_id)
    for nf_id in delta.nf_ids:
        if dov.has_node(nf_id):
            dov.remove_node(nf_id)  # also drops its dynamic links
    for infra_id, port_id in delta.nf_ports:
        if dov.has_node(infra_id):
            dov.infra(infra_id).ports.pop(port_id, None)
    for sap_id in delta.sap_ids:
        if dov.has_node(sap_id) and not dov.edges_of(sap_id):
            dov.remove_node(sap_id)
