"""Controller adaptation layer (CAL).

Owns the registered domain adapters, builds the **Domain Virtualizer's
global view (DoV)** by merging the per-domain views (inter-domain
sap-tagged ports become stitched links), keeps the DoV up to date as
services are deployed/torn down, and fans mapped configurations out to
the adapters.
"""

from __future__ import annotations

from typing import Optional

from repro.mapping.base import MappingContext, MappingResult
from repro.nffg.graph import NFFG
from repro.nffg.model import DomainType
from repro.nffg.ops import merge_nffgs, remaining_nffg, split_per_domain
from repro.orchestration.adapters import DomainAdapter
from repro.orchestration.report import AdapterReport


class ControllerAdaptationLayer:
    """Adapter registry + DoV maintenance + install fan-out."""

    def __init__(self) -> None:
        self.adapters: dict[str, DomainAdapter] = {}
        self._dov: Optional[NFFG] = None
        #: deployed services: service id -> (service graph, mapping result)
        self._deployed: dict[str, tuple[NFFG, MappingResult]] = {}

    # -- adapter registry ---------------------------------------------------

    def register(self, adapter: DomainAdapter) -> DomainAdapter:
        if adapter.name in self.adapters:
            raise ValueError(f"duplicate adapter {adapter.name!r}")
        self.adapters[adapter.name] = adapter
        self._dov = None  # topology changed, rebuild lazily
        return adapter

    def adapters_for(self, domain_type: DomainType) -> list[DomainAdapter]:
        return [adapter for adapter in self.adapters.values()
                if adapter.domain_type == domain_type]

    # -- global view --------------------------------------------------------------

    def pristine_view(self) -> NFFG:
        """Merge of all current adapter views (no deployment state)."""
        views = [adapter.get_view() for adapter in self.adapters.values()]
        if not views:
            return NFFG(id="dov-empty")
        return merge_nffgs(views, merged_id="dov")

    @property
    def dov(self) -> NFFG:
        """The global view including everything deployed so far."""
        if self._dov is None:
            self._dov = self._rebuild_dov()
        return self._dov

    def _rebuild_dov(self) -> NFFG:
        dov = self.pristine_view()
        for service, result in self._deployed.values():
            dov = _apply_mapping(dov, service, result)
        return dov

    def resource_view(self) -> NFFG:
        """What the RO should map against: remaining resources."""
        return remaining_nffg(self.dov, new_id="dov-remaining")

    # -- deployment ---------------------------------------------------------------------

    def commit_mapping(self, service_id: str, service: NFFG,
                       result: MappingResult) -> None:
        """Record a successful mapping into the DoV."""
        self._dov = _apply_mapping(self.dov, service, result)
        self._deployed[service_id] = (service, result)

    def remove_service(self, service_id: str) -> bool:
        if service_id not in self._deployed:
            return False
        del self._deployed[service_id]
        self._dov = None
        return True

    def snapshot_service(self, service_id: str) -> tuple[NFFG, MappingResult]:
        """The (service graph, mapping) pair recorded for a service."""
        return self._deployed[service_id]

    def restore_service(self, service_id: str,
                        snapshot: tuple[NFFG, MappingResult]) -> None:
        """Put a previously snapshotted service back (rollback path)."""
        self._deployed[service_id] = snapshot
        self._dov = None

    def deployed_services(self) -> list[str]:
        return list(self._deployed)

    def push_all(self) -> list[AdapterReport]:
        """Push the cumulative per-domain configuration to every domain.

        Domain orchestrators reconcile against the full config, so the
        push is idempotent and also serves teardown (a domain that no
        longer appears gets an empty graph).
        """
        per_domain = split_per_domain(self.dov)
        reports: list[AdapterReport] = []
        for adapter in self.adapters.values():
            install = per_domain.get(adapter.domain_type)
            install = self._slice_for(adapter, install)
            reports.append(adapter.install(install))
        return reports

    def _slice_for(self, adapter: DomainAdapter,
                   install: Optional[NFFG]) -> NFFG:
        """Restrict a domain-type slice to the adapter's own nodes
        (two adapters may share a DomainType)."""
        if install is None:
            return NFFG(id=f"{adapter.name}-empty")
        own_nodes = {infra.id for infra in adapter.get_view().infras}
        foreign = [infra.id for infra in install.infras
                   if infra.id not in own_nodes]
        if not foreign:
            return install
        sliced = install.copy(f"{install.id}@{adapter.name}")
        for infra_id in foreign:
            for nf in sliced.nfs_on(infra_id):
                sliced.remove_node(nf.id)
            sliced.remove_node(infra_id)
        return sliced

    def ready(self) -> bool:
        return all(adapter.ready() for adapter in self.adapters.values())

    def control_totals(self) -> tuple[int, int]:
        messages = octets = 0
        for adapter in self.adapters.values():
            m, b = adapter.control_stats()
            messages += m
            octets += b
        return messages, octets


def _apply_mapping(dov: NFFG, service: NFFG, result: MappingResult) -> NFFG:
    """Replay a mapping's placements/routes/flowrules onto the DoV."""
    ctx = MappingContext(service, dov)
    for nf_id, infra_id in result.nf_placement.items():
        ctx.place(nf_id, infra_id)
    for route in result.hop_routes.values():
        ctx.record_route(route)
    return ctx.commit(mapped_id=dov.id)
