"""Controller adaptation layer (CAL).

Owns the registered domain adapters, builds the **Domain Virtualizer's
global view (DoV)** by merging the per-domain views (inter-domain
sap-tagged ports become stitched links), keeps the DoV up to date as
services are deployed/torn down, and fans mapped configurations out to
the adapters.

DoV maintenance is **incremental**: the merged view is kept alive and
per-service mapping deltas are applied/removed in place instead of
re-merging every domain view on each change.  Each apply records a
:class:`_ServiceDelta` — the exact set of nodes, ports, edges, flow
rules and bandwidth reservations it introduced — so teardown is the
exact inverse.  ``generation`` counts DoV content versions;
``topology_generation`` counts substrate topology versions (adapter
registration, :meth:`mark_stale` after link failures) and drives
path-cache invalidation upstream.  :meth:`rebuild` is the explicit
escape hatch back to a from-scratch merge.

Adapter fan-out is **concurrent**: ``push_all``/``reconcile``/
``pristine_view`` hand their per-adapter operations to a
:class:`~repro.orchestration.dispatch.DomainDispatcher`, which runs
distinct domains in parallel while keeping per-domain operations
strictly serial (one in-flight op per adapter).  Shared bookkeeping
(the reconciliation queue, perf counters, fault plans) is locked;
breakers and adapter delta state are only ever touched by their own
domain's single in-flight operation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import obs
from repro.mapping.base import (
    MappingResult,
    build_sap_attachments,
    install_hop_flowrules,
)
from repro.nffg.graph import NFFG
from repro.nffg.model import DomainType, NodeNF
from repro.orchestration.adapters import DomainAdapter
from repro.nffg.ops import merge_nffgs, remaining_nffg, split_per_domain
from repro.orchestration.dispatch import DEFAULT_MAX_WORKERS, DomainDispatcher
from repro.orchestration.report import AdapterReport
from repro.perf import counters, observe, set_gauge
from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.sanitize import make_lock


@dataclass
class _ServiceDelta:
    """Everything one service's apply added to the DoV (for exact undo)."""

    #: NF node ids added (removal also drops their dynamic links)
    nf_ids: list[str] = field(default_factory=list)
    #: infra-side ports created by ``place_nf``: (infra_id, port_id)
    nf_ports: list[tuple[str, str]] = field(default_factory=list)
    #: SAP nodes this apply introduced (shared SAPs are only removed
    #: once no other service's edges still touch them)
    sap_ids: list[str] = field(default_factory=list)
    #: SG hop + requirement edge ids added
    edge_ids: list[str] = field(default_factory=list)
    #: bandwidth reservations: (link_ids, bandwidth)
    reservations: list[tuple[tuple[str, ...], float]] = field(default_factory=list)
    #: ports that received flow rules: (infra_id, port_id)
    flow_ports: list[tuple[str, str]] = field(default_factory=list)
    #: hop ids whose flow rules must go on removal
    hop_ids: set[str] = field(default_factory=set)


class ControllerAdaptationLayer:
    """Adapter registry + incremental DoV maintenance + install fan-out."""

    def __init__(self, *, breaker_failure_threshold: int = 3,
                 breaker_recovery_s: float = 30.0,
                 breaker_clock: Callable[[], float] = time.monotonic,
                 push_workers: int = DEFAULT_MAX_WORKERS) -> None:
        self.adapters: dict[str, DomainAdapter] = {}
        #: concurrent per-domain fan-out; ``push_workers <= 1`` degrades
        #: to strictly serial pushes on the caller's thread
        self.dispatcher = DomainDispatcher(push_workers,
                                           serial=push_workers <= 1)
        self._dov: Optional[NFFG] = None
        #: deployed services: service id -> (service graph, mapping result)
        self._deployed: dict[str, tuple[NFFG, MappingResult]] = {}
        #: per-service inverse records, valid for the *live* ``_dov`` only
        self._deltas: dict[str, _ServiceDelta] = {}
        #: DoV content version: bumped on every apply/remove/rebuild
        self.generation = 0
        #: substrate topology version: bumped when domain views change
        self.topology_generation = 0
        #: per-adapter circuit breakers (created on register)
        self.breakers: dict[str, CircuitBreaker] = {}
        self.breaker_failure_threshold = breaker_failure_threshold
        self.breaker_recovery_s = breaker_recovery_s
        self.breaker_clock = breaker_clock
        #: domains whose cumulative config is stale (push skipped or
        #: failed) and must be replayed once they accept pushes again;
        #: mutated by concurrent ``_push_one`` calls, hence the lock
        self._pending_reconcile: set[str] = set()  # guarded-by: _pending_lock
        self._pending_lock = make_lock("cal.pending")
        #: per-adapter own-infra-id cache for ``_slice_for``, valid for
        #: one substrate topology generation
        self._own_infra_cache: dict[str, tuple[int, frozenset[str]]] = {}
        #: domains whose view could not enter the latest pristine merge
        #: (breaker open, or fetch failed after retries)
        self.last_view_failures: set[str] = set()
        #: the live DoV was rebuilt while some domain view was missing;
        #: push_all/reconcile re-merge before fanning out so a returned
        #: domain's substrate (and stranded services) re-enter the view
        self._degraded_view = False
        #: infra id -> owning adapter name, from the latest merge
        self._infra_owner: dict[str, str] = {}

    # -- adapter registry ---------------------------------------------------

    def register(self, adapter: DomainAdapter) -> DomainAdapter:
        if adapter.name in self.adapters:
            raise ValueError(f"duplicate adapter {adapter.name!r}")
        self.adapters[adapter.name] = adapter
        self.breakers[adapter.name] = CircuitBreaker(
            adapter.name,
            failure_threshold=self.breaker_failure_threshold,
            recovery_time_s=self.breaker_recovery_s,
            clock=self.breaker_clock)
        self.mark_stale()  # topology changed, rebuild lazily
        return adapter

    def adapters_for(self, domain_type: DomainType) -> list[DomainAdapter]:
        return [adapter for adapter in self.adapters.values()
                if adapter.domain_type == domain_type]

    # -- global view --------------------------------------------------------------

    def pristine_view(self) -> NFFG:
        """Merge of all current adapter views (no deployment state).

        Degrades gracefully: a domain whose breaker is open is not even
        asked (it is quarantined), and a domain whose view fetch fails
        after retries is excluded from the merge.  Both are recorded in
        :attr:`last_view_failures` so ``heal()`` can evacuate their
        services.
        """
        def fetch(adapter: DomainAdapter) -> Optional[NFFG]:
            with obs.span(f"view/{adapter.name}", domain=adapter.name):
                breaker = self.breakers.get(adapter.name)
                if breaker is not None and \
                        breaker.state is BreakerState.OPEN:
                    counters.incr("resilience.view.quarantined")
                    return None
                try:
                    view = adapter.fetch_view()
                except Exception:  # noqa: BLE001 - degrade, don't abort
                    counters.incr("resilience.view.unreachable")
                    if breaker is not None:
                        breaker.record_failure()
                    return None
                if breaker is not None and \
                        breaker.state is BreakerState.HALF_OPEN:
                    # the fetch was the probe: the domain answered
                    breaker.record_success()
                return view

        adapters = list(self.adapters.values())
        fetched = self.dispatcher.run(
            (adapter.name, lambda adapter=adapter: fetch(adapter))
            for adapter in adapters)
        views: list[NFFG] = []
        owners: dict[str, str] = {}
        failures: set[str] = set()
        for adapter, view in zip(adapters, fetched):
            if view is None:
                failures.add(adapter.name)
                continue
            for infra in view.infras:
                owners[infra.id] = adapter.name
            views.append(view)
        self.last_view_failures = failures
        self._infra_owner = owners
        if not views:
            return NFFG(id="dov-empty")
        return merge_nffgs(views, merged_id="dov")

    @property
    def dov(self) -> NFFG:
        """The global view including everything deployed so far."""
        if self._dov is None:
            self._dov = self._rebuild_dov()
        return self._dov

    def mark_stale(self) -> None:
        """Declare the substrate topology changed (adapter added, link
        failure observed): drop the live DoV and its deltas so the next
        access re-merges fresh domain views."""
        self._dov = None
        self._deltas.clear()
        self.generation += 1
        self.topology_generation += 1

    def rebuild(self) -> NFFG:
        """Explicit escape hatch: force a from-scratch re-merge now."""
        self._dov = None
        self._deltas.clear()
        self.generation += 1
        return self.dov

    def _rebuild_dov(self) -> NFFG:
        counters.incr("dov.rebuild")
        started = time.perf_counter()
        with obs.span("dov/rebuild"):
            dov = self.pristine_view()
            self._degraded_view = bool(self.last_view_failures)
            self._deltas = {}
            for service_id, (service, result) in self._deployed.items():
                if not _replayable(dov, result):
                    # its substrate vanished from the merge (domain
                    # quarantined or unreachable): keep the booking but
                    # leave the service out of the degraded view —
                    # heal() evacuates it, or a later refresh
                    # re-applies it
                    self._deltas[service_id] = None
                    counters.incr("dov.replay_skipped")
                    continue
                self._deltas[service_id] = _apply_inplace(
                    dov, service, result)
        observe("dov.rebuild_s", time.perf_counter() - started)
        return dov

    def _needs_refresh(self) -> bool:
        """The live DoV is known to under-represent reality (degraded
        merge, or bookings whose replay was skipped) and a re-merge
        could improve it."""
        return self._dov is not None and (
            self._degraded_view
            or any(delta is None for delta in self._deltas.values()))

    def resource_view(self) -> NFFG:
        """What the RO should map against: the substrate with remaining
        resources.  Deployed NFs are netted out of the capacities but
        not advertised themselves — the northbound view stays
        substrate-sized no matter how much is deployed."""
        return remaining_nffg(self.dov, new_id="dov-remaining",
                              include_deployed=False)

    # -- deployment ---------------------------------------------------------------------

    def commit_mapping(self, service_id: str, service: NFFG,
                       result: MappingResult) -> None:
        """Record a successful mapping into the DoV (in place)."""
        dov = self.dov
        self._deltas[service_id] = _apply_inplace(dov, service, result)
        self._deployed[service_id] = (service, result)
        self.generation += 1
        counters.incr("dov.apply_inplace")
        set_gauge("cal.services_deployed", len(self._deployed))

    def remove_service(self, service_id: str) -> bool:
        if service_id not in self._deployed:
            return False
        del self._deployed[service_id]
        had_delta = service_id in self._deltas
        delta = self._deltas.pop(service_id, None)
        if had_delta and delta is None:
            pass  # replay was skipped: never entered the live view
        elif self._dov is not None and delta is not None:
            _remove_inplace(self._dov, delta)
            counters.incr("dov.remove_inplace")
        else:
            # no live view (or no delta for it): fall back to a lazy
            # from-scratch rebuild on next access
            self._dov = None
            self._deltas.clear()
            counters.incr("dov.fallback")
        self.generation += 1
        set_gauge("cal.services_deployed", len(self._deployed))
        return True

    def snapshot_service(self, service_id: str) -> tuple[NFFG, MappingResult]:
        """The (service graph, mapping) pair recorded for a service."""
        return self._deployed[service_id]

    def restore_service(self, service_id: str,
                        snapshot: tuple[NFFG, MappingResult]) -> None:
        """Put a previously snapshotted service back (rollback path)."""
        self._deployed[service_id] = snapshot
        if self._dov is not None:
            service, result = snapshot
            if _replayable(self._dov, result):
                self._deltas[service_id] = _apply_inplace(
                    self._dov, service, result)
                counters.incr("dov.apply_inplace")
            else:
                # restoring onto a degraded view whose substrate is
                # gone: book it, defer the replay to the next refresh
                self._deltas[service_id] = None
                counters.incr("dov.replay_skipped")
        self.generation += 1
        set_gauge("cal.services_deployed", len(self._deployed))

    def deployed_services(self) -> list[str]:
        return list(self._deployed)

    def push_all(self) -> list[AdapterReport]:
        """Push the cumulative per-domain configuration to every domain.

        Domain orchestrators reconcile against the full config, so the
        push is idempotent and also serves teardown (a domain that no
        longer appears gets an empty graph).

        A domain whose circuit breaker is open is skipped — its report
        carries ``skipped=True`` and its configuration joins the
        reconciliation queue, replayed by :meth:`reconcile` (or by the
        next :meth:`push_all` once the breaker half-opens).

        Pushes toward distinct domains run concurrently through the
        dispatcher; the report list keeps registration order.
        """
        if self._needs_refresh():
            self.rebuild()
        per_domain = split_per_domain(self.dov)
        return self.dispatcher.run(
            (adapter.name,
             lambda adapter=adapter: self._push_one(adapter, per_domain))
            for adapter in self.adapters.values())

    def _push_one(self, adapter: DomainAdapter,
                  per_domain: dict[DomainType, NFFG], *,
                  force_full: bool = False) -> AdapterReport:
        """One domain's push, traced: the ``push/<domain>`` span covers
        the whole attempt *including* the breaker bookkeeping, so a
        ``breaker.trip`` event carries the span id of the push that
        tripped it.  Runs on a dispatcher worker thread under the
        domain's FIFO mutex (context copied over when tracing is on)."""
        with obs.span(f"push/{adapter.name}",
                      domain=adapter.name) as span:
            report = self._push_one_traced(adapter, per_domain,
                                           force_full=force_full)
            span.set(outcome=("skipped" if report.skipped
                              else "ok" if report.success else "failed"),
                     delta=report.delta, attempts=report.attempts)
            obs.event("push", domain=adapter.name, success=report.success,
                      skipped=report.skipped, delta=report.delta,
                      attempts=report.attempts, error=report.error,
                      push_ms=round(report.push_time_s * 1e3, 3))
        if not report.skipped:
            observe("push.latency_s", report.push_time_s,
                    domain=adapter.name)
        return report

    def _push_one_traced(self, adapter: DomainAdapter,
                         per_domain: dict[DomainType, NFFG], *,
                         force_full: bool = False) -> AdapterReport:
        breaker = self.breakers.get(adapter.name)
        if breaker is not None and not breaker.allow():
            counters.incr("resilience.breaker.skip")
            with self._pending_lock:
                self._pending_reconcile.add(adapter.name)
                pending_count = len(self._pending_reconcile)
            set_gauge("cal.pending_reconcile", pending_count)
            return AdapterReport(
                domain=adapter.name, success=False, skipped=True,
                error=(f"circuit open after "
                       f"{breaker.consecutive_failures} consecutive "
                       "failures; push queued for reconciliation"))
        with self._pending_lock:
            was_pending = adapter.name in self._pending_reconcile
        # delta pushes need an agreed base: after a skipped/failed push
        # or on a breaker's half-open probe the domain's state is not
        # trusted, so the cumulative config goes out in full
        force_full = (force_full or was_pending
                      or (breaker is not None
                          and breaker.state is BreakerState.HALF_OPEN))
        install = per_domain.get(adapter.domain_type)
        try:
            install = self._slice_for(adapter, install)
        except Exception as exc:  # noqa: BLE001 - slicing needs the view
            report = AdapterReport(
                domain=adapter.name, success=False,
                error=f"{type(exc).__name__}: {exc}")
        else:
            report = adapter.install(install, force_full=force_full)
        if breaker is not None:
            breaker.record(report.success)
        with self._pending_lock:
            if report.success:
                self._pending_reconcile.discard(adapter.name)
                if was_pending:
                    counters.incr("resilience.breaker.reconcile")
            else:
                self._pending_reconcile.add(adapter.name)
            pending_count = len(self._pending_reconcile)
        set_gauge("cal.pending_reconcile", pending_count)
        if not report.success:
            # server state unknown: never diff against it again until a
            # full push re-establishes the base
            adapter.reset_delta_state()
        return report

    def reconcile(self, *, force_probe: bool = False) -> list[AdapterReport]:
        """Replay the cumulative configuration to every domain whose
        last push was skipped or failed.

        With ``force_probe`` an open breaker is advanced to half-open
        first (operator signal: "the domain is back, try it"); without
        it only domains whose breaker already admits a push are tried.

        Reconciliation is also the convergence point for a degraded
        DoV: if the live view was last merged while some domain was
        unreachable, it is re-merged first — so a returned domain's
        substrate and any deferred service replays are back in the
        view before its cumulative configuration is re-pushed.
        """
        if force_probe:
            # a breaker can be open purely from view-fetch failures
            # (nothing pending), so probe every open breaker, not just
            # the queued domains — the refresh below is the probe
            for breaker in self.breakers.values():
                breaker.force_half_open()
        if self._needs_refresh():
            self.rebuild()
        # snapshot the queue before iterating: _push_one (possibly on a
        # dispatcher worker) mutates the live set as pushes settle
        pending = sorted(self.pending_reconciliation())
        if not pending:
            return []
        per_domain = split_per_domain(self.dov)
        ops = []
        for name in pending:
            adapter = self.adapters.get(name)
            if adapter is None:
                with self._pending_lock:
                    self._pending_reconcile.discard(name)
                continue
            breaker = self.breakers.get(name)
            if breaker is not None and not breaker.allow():
                continue
            # replays re-establish the delta base with a full push
            ops.append((name, lambda adapter=adapter: self._push_one(
                adapter, per_domain, force_full=True)))
        return self.dispatcher.run(ops)

    def pending_reconciliation(self) -> set[str]:
        """Domains holding stale configuration (push skipped/failed)."""
        with self._pending_lock:
            return set(self._pending_reconcile)

    def quarantined_domains(self) -> set[str]:
        """Domains currently unusable: breaker open, or excluded from
        the latest pristine merge because their view was unreachable."""
        quarantined = {name for name, breaker in self.breakers.items()
                       if breaker.state is BreakerState.OPEN}
        return quarantined | set(self.last_view_failures)

    def adapter_names_for(self, result: MappingResult) -> set[str]:
        """The adapters whose substrate a mapping actually touches
        (placements + route hops), per the latest merged ownership."""
        infras = set(result.nf_placement.values())
        for route in result.hop_routes.values():
            infras.update(route.infra_path)
        return {self._infra_owner[infra_id] for infra_id in infras
                if infra_id in self._infra_owner}

    def _own_infra_ids(self, adapter: DomainAdapter) -> frozenset[str]:
        """The adapter's own infra ids, cached per substrate topology
        generation — ``_slice_for`` runs on every push and must not pay
        for a full ``get_view()`` copy each time."""
        cached = self._own_infra_cache.get(adapter.name)
        if cached is not None and cached[0] == self.topology_generation:
            return cached[1]
        ids = frozenset(infra.id for infra in adapter.get_view().infras)
        self._own_infra_cache[adapter.name] = (self.topology_generation, ids)
        return ids

    def _slice_for(self, adapter: DomainAdapter,
                   install: Optional[NFFG]) -> NFFG:
        """Restrict a domain-type slice to the adapter's own nodes
        (two adapters may share a DomainType)."""
        if install is None:
            return NFFG(id=f"{adapter.name}-empty")
        own_nodes = self._own_infra_ids(adapter)
        foreign = [infra.id for infra in install.infras
                   if infra.id not in own_nodes]
        if not foreign:
            return install
        sliced = install.copy(f"{install.id}@{adapter.name}")
        for infra_id in foreign:
            for nf in sliced.nfs_on(infra_id):
                sliced.remove_node(nf.id)
            sliced.remove_node(infra_id)
        return sliced

    def ready(self) -> bool:
        return all(adapter.ready() for adapter in self.adapters.values())

    def control_totals(self) -> tuple[int, int]:
        messages = octets = 0
        for adapter in self.adapters.values():
            m, b = adapter.control_stats()
            messages += m
            octets += b
        return messages, octets


def _endpoint_port(dov: NFFG, service: NFFG,
                   attach: dict[str, tuple[str, str]],
                   node_id: str, port_id: str) -> str:
    """The infra-side port where a service endpoint attaches in the DoV."""
    node = service.node(node_id)
    if isinstance(node, NodeNF):
        bound = dov.infra_port_of_nf(node_id, port_id)
        if bound is None:
            raise KeyError(f"NF {node_id!r} not bound in the DoV")
        return bound[1]
    try:
        return attach[node_id][1]
    except KeyError:
        raise KeyError(f"service SAP {node_id!r} has no attachment point "
                       f"in the DoV") from None


def _replayable(dov: NFFG, result: MappingResult) -> bool:
    """Is all the substrate a mapping references present in ``dov``?

    False means the owning domain is missing from a degraded merge —
    applying the mapping would reference vanished nodes/links.
    """
    if any(not dov.has_node(infra_id)
           for infra_id in result.nf_placement.values()):
        return False
    for route in result.hop_routes.values():
        if any(not dov.has_node(node_id) for node_id in route.infra_path):
            return False
        if any(not dov.has_edge(link_id) for link_id in route.link_ids):
            return False
    return True


def _apply_inplace(dov: NFFG, service: NFFG,
                   result: MappingResult) -> _ServiceDelta:
    """Apply a mapping's placements/routes/flowrules to the DoV in place.

    Mirrors :meth:`MappingContext.commit` minus the full-view copy and
    returns the delta needed to undo it exactly.
    """
    delta = _ServiceDelta()
    for nf_id, infra_id in result.nf_placement.items():
        if not dov.has_node(nf_id):
            dov.add_node_copy(service.nf(nf_id))
            delta.nf_ids.append(nf_id)
        created = dov.place_nf(nf_id, infra_id)
        for link in created:
            delta.nf_ports.append((link.dst_node, link.dst_port))
        dov.nf(nf_id).status = "deployed"
    for route in result.hop_routes.values():
        if route.bandwidth > 1e-9 and route.link_ids:
            for link_id in route.link_ids:
                dov.edge(link_id).reserved += route.bandwidth
            delta.reservations.append(
                (tuple(route.link_ids), route.bandwidth))
    attach = build_sap_attachments(dov)
    for hop in service.sg_hops:
        route = result.hop_routes.get(hop.id)
        if route is None:
            continue
        in_port = _endpoint_port(dov, service, attach,
                                 hop.src_node, hop.src_port)
        out_port = _endpoint_port(dov, service, attach,
                                  hop.dst_node, hop.dst_port)
        delta.flow_ports.extend(
            install_hop_flowrules(dov, hop, route, in_port, out_port))
        delta.hop_ids.add(hop.id)
    # carry the SG hops and requirements for later teardown/audit
    for sap in service.saps:
        if not dov.has_node(sap.id):
            dov.add_node_copy(sap)
            delta.sap_ids.append(sap.id)
    for hop in service.sg_hops:
        if not dov.has_edge(hop.id):
            dov.add_edge_copy(hop)
            delta.edge_ids.append(hop.id)
    for req in service.requirements:
        if not dov.has_edge(req.id):
            dov.add_edge_copy(req)
            delta.edge_ids.append(req.id)
    return delta


def _remove_inplace(dov: NFFG, delta: _ServiceDelta) -> None:
    """Undo exactly what :func:`_apply_inplace` recorded in ``delta``."""
    for infra_id, port_id in set(delta.flow_ports):
        if not dov.has_node(infra_id):
            continue
        port = dov.infra(infra_id).ports.get(port_id)
        if port is not None:
            port.flowrules = [rule for rule in port.flowrules
                              if rule.hop_id not in delta.hop_ids]
    for link_ids, bandwidth in delta.reservations:
        for link_id in link_ids:
            if dov.has_edge(link_id):
                link = dov.edge(link_id)
                link.reserved = max(0.0, link.reserved - bandwidth)
    for edge_id in delta.edge_ids:
        if dov.has_edge(edge_id):
            dov.remove_edge(edge_id)
    for nf_id in delta.nf_ids:
        if dov.has_node(nf_id):
            dov.remove_node(nf_id)  # also drops its dynamic links
    for infra_id, port_id in delta.nf_ports:
        if dov.has_node(infra_id):
            dov.infra(infra_id).ports.pop(port_id, None)
    for sap_id in delta.sap_ids:
        if dov.has_node(sap_id) and not dov.edges_of(sap_id):
            dov.remove_node(sap_id)
