"""Controller adaptation layer (CAL).

Owns the registered domain adapters, builds the **Domain Virtualizer's
global view (DoV)** by merging the per-domain views (inter-domain
sap-tagged ports become stitched links), keeps the DoV up to date as
services are deployed/torn down, and fans mapped configurations out to
the adapters.

DoV maintenance is **incremental**: the merged view is kept alive and
per-service mapping deltas are applied/removed in place instead of
re-merging every domain view on each change.  Each apply records a
:class:`_ServiceDelta` — the exact set of nodes, ports, edges, flow
rules and bandwidth reservations it introduced — so teardown is the
exact inverse.  ``generation`` counts DoV content versions;
``topology_generation`` counts substrate topology versions (adapter
registration, :meth:`mark_stale` after link failures) and drives
path-cache invalidation upstream.  :meth:`rebuild` is the explicit
escape hatch back to a from-scratch merge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.mapping.base import (
    MappingResult,
    build_sap_attachments,
    install_hop_flowrules,
)
from repro.nffg.graph import NFFG
from repro.nffg.model import DomainType, NodeNF
from repro.orchestration.adapters import DomainAdapter
from repro.nffg.ops import merge_nffgs, remaining_nffg, split_per_domain
from repro.orchestration.report import AdapterReport
from repro.perf import counters


@dataclass
class _ServiceDelta:
    """Everything one service's apply added to the DoV (for exact undo)."""

    #: NF node ids added (removal also drops their dynamic links)
    nf_ids: list[str] = field(default_factory=list)
    #: infra-side ports created by ``place_nf``: (infra_id, port_id)
    nf_ports: list[tuple[str, str]] = field(default_factory=list)
    #: SAP nodes this apply introduced (shared SAPs are only removed
    #: once no other service's edges still touch them)
    sap_ids: list[str] = field(default_factory=list)
    #: SG hop + requirement edge ids added
    edge_ids: list[str] = field(default_factory=list)
    #: bandwidth reservations: (link_ids, bandwidth)
    reservations: list[tuple[tuple[str, ...], float]] = field(default_factory=list)
    #: ports that received flow rules: (infra_id, port_id)
    flow_ports: list[tuple[str, str]] = field(default_factory=list)
    #: hop ids whose flow rules must go on removal
    hop_ids: set[str] = field(default_factory=set)


class ControllerAdaptationLayer:
    """Adapter registry + incremental DoV maintenance + install fan-out."""

    def __init__(self) -> None:
        self.adapters: dict[str, DomainAdapter] = {}
        self._dov: Optional[NFFG] = None
        #: deployed services: service id -> (service graph, mapping result)
        self._deployed: dict[str, tuple[NFFG, MappingResult]] = {}
        #: per-service inverse records, valid for the *live* ``_dov`` only
        self._deltas: dict[str, _ServiceDelta] = {}
        #: DoV content version: bumped on every apply/remove/rebuild
        self.generation = 0
        #: substrate topology version: bumped when domain views change
        self.topology_generation = 0

    # -- adapter registry ---------------------------------------------------

    def register(self, adapter: DomainAdapter) -> DomainAdapter:
        if adapter.name in self.adapters:
            raise ValueError(f"duplicate adapter {adapter.name!r}")
        self.adapters[adapter.name] = adapter
        self.mark_stale()  # topology changed, rebuild lazily
        return adapter

    def adapters_for(self, domain_type: DomainType) -> list[DomainAdapter]:
        return [adapter for adapter in self.adapters.values()
                if adapter.domain_type == domain_type]

    # -- global view --------------------------------------------------------------

    def pristine_view(self) -> NFFG:
        """Merge of all current adapter views (no deployment state)."""
        views = [adapter.get_view() for adapter in self.adapters.values()]
        if not views:
            return NFFG(id="dov-empty")
        return merge_nffgs(views, merged_id="dov")

    @property
    def dov(self) -> NFFG:
        """The global view including everything deployed so far."""
        if self._dov is None:
            self._dov = self._rebuild_dov()
        return self._dov

    def mark_stale(self) -> None:
        """Declare the substrate topology changed (adapter added, link
        failure observed): drop the live DoV and its deltas so the next
        access re-merges fresh domain views."""
        self._dov = None
        self._deltas.clear()
        self.generation += 1
        self.topology_generation += 1

    def rebuild(self) -> NFFG:
        """Explicit escape hatch: force a from-scratch re-merge now."""
        self._dov = None
        self._deltas.clear()
        self.generation += 1
        return self.dov

    def _rebuild_dov(self) -> NFFG:
        counters.incr("dov.rebuild")
        dov = self.pristine_view()
        self._deltas = {}
        for service_id, (service, result) in self._deployed.items():
            self._deltas[service_id] = _apply_inplace(dov, service, result)
        return dov

    def resource_view(self) -> NFFG:
        """What the RO should map against: remaining resources."""
        return remaining_nffg(self.dov, new_id="dov-remaining")

    # -- deployment ---------------------------------------------------------------------

    def commit_mapping(self, service_id: str, service: NFFG,
                       result: MappingResult) -> None:
        """Record a successful mapping into the DoV (in place)."""
        dov = self.dov
        self._deltas[service_id] = _apply_inplace(dov, service, result)
        self._deployed[service_id] = (service, result)
        self.generation += 1
        counters.incr("dov.apply_inplace")

    def remove_service(self, service_id: str) -> bool:
        if service_id not in self._deployed:
            return False
        del self._deployed[service_id]
        delta = self._deltas.pop(service_id, None)
        if self._dov is not None and delta is not None:
            _remove_inplace(self._dov, delta)
            counters.incr("dov.remove_inplace")
        else:
            # no live view (or no delta for it): fall back to a lazy
            # from-scratch rebuild on next access
            self._dov = None
            self._deltas.clear()
            counters.incr("dov.fallback")
        self.generation += 1
        return True

    def snapshot_service(self, service_id: str) -> tuple[NFFG, MappingResult]:
        """The (service graph, mapping) pair recorded for a service."""
        return self._deployed[service_id]

    def restore_service(self, service_id: str,
                        snapshot: tuple[NFFG, MappingResult]) -> None:
        """Put a previously snapshotted service back (rollback path)."""
        self._deployed[service_id] = snapshot
        if self._dov is not None:
            service, result = snapshot
            self._deltas[service_id] = _apply_inplace(
                self._dov, service, result)
            counters.incr("dov.apply_inplace")
        self.generation += 1

    def deployed_services(self) -> list[str]:
        return list(self._deployed)

    def push_all(self) -> list[AdapterReport]:
        """Push the cumulative per-domain configuration to every domain.

        Domain orchestrators reconcile against the full config, so the
        push is idempotent and also serves teardown (a domain that no
        longer appears gets an empty graph).
        """
        per_domain = split_per_domain(self.dov)
        reports: list[AdapterReport] = []
        for adapter in self.adapters.values():
            install = per_domain.get(adapter.domain_type)
            install = self._slice_for(adapter, install)
            reports.append(adapter.install(install))
        return reports

    def _slice_for(self, adapter: DomainAdapter,
                   install: Optional[NFFG]) -> NFFG:
        """Restrict a domain-type slice to the adapter's own nodes
        (two adapters may share a DomainType)."""
        if install is None:
            return NFFG(id=f"{adapter.name}-empty")
        own_nodes = {infra.id for infra in adapter.get_view().infras}
        foreign = [infra.id for infra in install.infras
                   if infra.id not in own_nodes]
        if not foreign:
            return install
        sliced = install.copy(f"{install.id}@{adapter.name}")
        for infra_id in foreign:
            for nf in sliced.nfs_on(infra_id):
                sliced.remove_node(nf.id)
            sliced.remove_node(infra_id)
        return sliced

    def ready(self) -> bool:
        return all(adapter.ready() for adapter in self.adapters.values())

    def control_totals(self) -> tuple[int, int]:
        messages = octets = 0
        for adapter in self.adapters.values():
            m, b = adapter.control_stats()
            messages += m
            octets += b
        return messages, octets


def _endpoint_port(dov: NFFG, service: NFFG,
                   attach: dict[str, tuple[str, str]],
                   node_id: str, port_id: str) -> str:
    """The infra-side port where a service endpoint attaches in the DoV."""
    node = service.node(node_id)
    if isinstance(node, NodeNF):
        bound = dov.infra_port_of_nf(node_id, port_id)
        if bound is None:
            raise KeyError(f"NF {node_id!r} not bound in the DoV")
        return bound[1]
    try:
        return attach[node_id][1]
    except KeyError:
        raise KeyError(f"service SAP {node_id!r} has no attachment point "
                       f"in the DoV") from None


def _apply_inplace(dov: NFFG, service: NFFG,
                   result: MappingResult) -> _ServiceDelta:
    """Apply a mapping's placements/routes/flowrules to the DoV in place.

    Mirrors :meth:`MappingContext.commit` minus the full-view copy and
    returns the delta needed to undo it exactly.
    """
    delta = _ServiceDelta()
    for nf_id, infra_id in result.nf_placement.items():
        if not dov.has_node(nf_id):
            dov.add_node_copy(service.nf(nf_id))
            delta.nf_ids.append(nf_id)
        created = dov.place_nf(nf_id, infra_id)
        for link in created:
            delta.nf_ports.append((link.dst_node, link.dst_port))
        dov.nf(nf_id).status = "deployed"
    for route in result.hop_routes.values():
        if route.bandwidth > 1e-9 and route.link_ids:
            for link_id in route.link_ids:
                dov.edge(link_id).reserved += route.bandwidth
            delta.reservations.append(
                (tuple(route.link_ids), route.bandwidth))
    attach = build_sap_attachments(dov)
    for hop in service.sg_hops:
        route = result.hop_routes.get(hop.id)
        if route is None:
            continue
        in_port = _endpoint_port(dov, service, attach,
                                 hop.src_node, hop.src_port)
        out_port = _endpoint_port(dov, service, attach,
                                  hop.dst_node, hop.dst_port)
        delta.flow_ports.extend(
            install_hop_flowrules(dov, hop, route, in_port, out_port))
        delta.hop_ids.add(hop.id)
    # carry the SG hops and requirements for later teardown/audit
    for sap in service.saps:
        if not dov.has_node(sap.id):
            dov.add_node_copy(sap)
            delta.sap_ids.append(sap.id)
    for hop in service.sg_hops:
        if not dov.has_edge(hop.id):
            dov.add_edge_copy(hop)
            delta.edge_ids.append(hop.id)
    for req in service.requirements:
        if not dov.has_edge(req.id):
            dov.add_edge_copy(req)
            delta.edge_ids.append(req.id)
    return delta


def _remove_inplace(dov: NFFG, delta: _ServiceDelta) -> None:
    """Undo exactly what :func:`_apply_inplace` recorded in ``delta``."""
    for infra_id, port_id in set(delta.flow_ports):
        if not dov.has_node(infra_id):
            continue
        port = dov.infra(infra_id).ports.get(port_id)
        if port is not None:
            port.flowrules = [rule for rule in port.flowrules
                              if rule.hop_id not in delta.hop_ids]
    for link_ids, bandwidth in delta.reservations:
        for link_id in link_ids:
            if dov.has_edge(link_id):
                link = dov.edge(link_id)
                link.reserved = max(0.0, link.reserved - bandwidth)
    for edge_id in delta.edge_ids:
        if dov.has_edge(edge_id):
            dov.remove_edge(edge_id)
    for nf_id in delta.nf_ids:
        if dov.has_node(nf_id):
            dov.remove_node(nf_id)  # also drops its dynamic links
    for infra_id, port_id in delta.nf_ports:
        if dov.has_node(infra_id):
            dov.infra(infra_id).ports.pop(port_id, None)
    for sap_id in delta.sap_ids:
        if dov.has_node(sap_id) and not dov.edges_of(sap_id):
            dov.remove_node(sap_id)
