"""Controller adaptation layer: domain adapters.

"At the infrastructure level, different technologies are supported and
integrated with the framework" — each adapter translates the abstract
install-NFFG of its domain into native control operations:

- :class:`EmuDomainAdapter` — NETCONF edit-config/commit toward the
  Mininet-like domain's local orchestrator;
- :class:`SdnDomainAdapter` — "a POX controller and a corresponding
  adapter module": programs legacy switches through POX;
- :class:`CloudDomainAdapter` — NETCONF toward the UNIFY-conform local
  orchestrator running on top of OpenStack+ODL;
- :class:`UNDomainAdapter` — NETCONF toward the UN local orchestrator.

(The recursion adapter, :class:`~repro.orchestration.unify.UnifyDomainAdapter`,
lives in :mod:`repro.orchestration.unify`.)
"""

from __future__ import annotations

import abc
import json
import time
from dataclasses import dataclass
from typing import Any, Optional

from repro.cloud.domain import CloudDomain, CloudLocalOrchestrator
from repro.emu.domain import EmulatedDomain
from repro.emu.orchestrator import EmuDomainOrchestrator
from repro.infra.flowprog import program_infra_flows
from repro.netconf.client import NetconfClient, NetconfError
from repro.netconf.messages import DELTA_CAPABILITY
from repro.netconf.server import NetconfServer
from repro.nffg.graph import NFFG
from repro.nffg.model import DomainType
from repro.nffg.serialize import nffg_to_dict
from repro.openflow.channel import ControlChannel
from repro.orchestration.report import AdapterReport
from repro.perf import counters
from repro.resilience.retry import RetryPolicy
from repro import obs, sanitize
from repro.sdnnet.domain import SDNDomain
from repro.un.domain import UniversalNodeDomain, UNLocalOrchestrator
from repro.yang.config import config_digest, config_to_tree
from repro.yang.data import DataNode
from repro.yang.diff import diff_trees, patch_size_bytes

#: library-default retry budget applied when an adapter has no policy
#: of its own: 3 attempts, exponential seeded-jitter backoff, transient
#: failures only (``is_transient``) — a deterministic semantic error is
#: still reported after a single attempt
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass
class PushProfile:
    """How one successful push went out on the wire.

    ``messages``/``bytes`` count only the config exchange itself (the
    edit/validate/commit RPCs and the config payload), not channel-level
    framing; ``delta`` marks an edit-config patch, ``noop`` an install
    whose diff against the acknowledged config was empty and that was
    therefore skipped entirely."""

    messages: int = 0
    bytes: int = 0
    delta: bool = False
    noop: bool = False
    bytes_saved: int = 0


class DomainUnreachable(RuntimeError):
    """A domain's view could not be fetched, even after retries."""

    def __init__(self, domain: str, cause: BaseException):
        super().__init__(f"{domain}: view fetch failed after retries "
                         f"({type(cause).__name__}: {cause})")
        self.domain = domain
        self.cause = cause


class DomainAdapter(abc.ABC):
    """One managed technology domain, as seen by the adaptation layer."""

    #: retry budget for pushes/view fetches; None = DEFAULT_RETRY_POLICY
    retry_policy: Optional[RetryPolicy] = None

    def __init__(self, name: str, domain_type: DomainType):
        self.name = name
        self.domain_type = domain_type
        self.installs = 0
        #: operational escape hatch (A/B benchmarks, distrusted
        #: domains): every install goes out as a full-config replace
        #: even when a delta patch would be legal
        self.force_full_push = False

    @abc.abstractmethod
    def get_view(self) -> NFFG:
        """The domain's pristine resource view (capacity, topology)."""

    def own_infra_ids(self) -> frozenset[str]:
        """The ids of the infras this adapter owns.

        The CAL asks for this on every install slice; the default
        derives it from :meth:`get_view`, adapters that hold a live
        view override it to skip the full-graph copy ``get_view``
        usually implies.
        """
        return frozenset(infra.id for infra in self.get_view().infras)

    @abc.abstractmethod
    def _push(self, install: NFFG) -> None:
        """Push a (cumulative) install graph in full; raise on failure."""

    def _do_push(self, install: NFFG,
                 force_full: bool = False) -> Optional[PushProfile]:
        """One push attempt; delta-capable adapters override this to
        pick between a full replace and an edit-config patch.  Returning
        ``None`` means the adapter keeps no wire-level accounting."""
        self._push(install)
        return None

    def reset_delta_state(self) -> None:
        """Forget the acknowledged config; the next push goes out full.
        No-op for adapters without a delta path."""

    def _effective_policy(self) -> RetryPolicy:
        return self.retry_policy if self.retry_policy is not None \
            else DEFAULT_RETRY_POLICY

    def install(self, install: NFFG, *,
                force_full: bool = False) -> AdapterReport:
        # adapter I/O may block on the domain; it must never run while
        # the caller holds a shared-state lock
        sanitize.note_blocking(f"adapter.install({self.name})")
        started = time.perf_counter()
        baseline_msgs, baseline_bytes = self.control_stats()
        report = AdapterReport(
            domain=self.name, success=True,
            nfs_requested=len(install.nfs),
            flowrules_requested=install.summary()["flowrules"])
        outcome = self._effective_policy().run(
            lambda: self._do_push(install,
                                  force_full or self.force_full_push))
        report.attempts = outcome.attempts
        report.backoff_s = outcome.backoff_s
        if outcome.success:
            self.installs += 1
            profile = outcome.value if outcome.value is not None \
                else PushProfile()
            report.messages = profile.messages
            report.bytes = profile.bytes
            report.delta = profile.delta
            counters.incr("push.delta" if profile.delta else "push.full")
            if profile.noop:
                counters.incr("push.delta_noop")
            if profile.bytes_saved:
                counters.incr("push.bytes_saved", profile.bytes_saved)
            obs.event("push.mode", domain=self.name,
                      mode=("noop" if profile.noop
                            else "delta" if profile.delta else "full"),
                      bytes=profile.bytes)
        else:
            exc = outcome.error
            report.success = False
            report.error = f"{type(exc).__name__}: {exc}"
        report.push_time_s = time.perf_counter() - started
        msgs, octets = self.control_stats()
        report.control_messages = msgs - baseline_msgs
        report.control_bytes = octets - baseline_bytes
        return report

    def fetch_view(self) -> NFFG:
        """:meth:`get_view` under the retry policy; raises
        :class:`DomainUnreachable` once the budget is exhausted."""
        sanitize.note_blocking(f"adapter.fetch_view({self.name})")
        outcome = self._effective_policy().run(self.get_view)
        if outcome.success:
            return outcome.value
        raise DomainUnreachable(self.name, outcome.error)

    def teardown(self) -> None:
        """Remove everything this adapter deployed (default: push empty)."""
        empty = NFFG(id=f"{self.name}-empty")
        self._push(empty)

    def control_stats(self) -> tuple[int, int]:
        """(total control messages, total control bytes) so far."""
        return 0, 0

    def ready(self) -> bool:
        """True when all requested NFs are up."""
        return True

    def flow_stats(self) -> dict[str, tuple[int, int]]:
        """Dataplane counters keyed by flow cookie (hop id):
        ``{cookie: (packets, bytes)}``.  Default: none."""
        return {}

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} ({self.domain_type.value})>"


def _collect_endpoint_stats(endpoint) -> dict[str, tuple[int, int]]:
    """Poll every switch of a controller endpoint for flow stats and
    fold them per cookie (max across switches: the ingress switch of a
    hop sees every packet of that hop)."""
    stats: dict[str, tuple[int, int]] = {}
    for dpid in endpoint.connected_dpids():
        endpoint.request_flow_stats(dpid)
        reply = endpoint.flow_stats(dpid)
        if reply is None:
            continue
        for entry in reply.entries:
            cookie = entry.get("cookie")
            if not cookie:
                continue
            packets, octets = stats.get(cookie, (0, 0))
            stats[cookie] = (max(packets, entry.get("packets", 0)),
                             max(octets, entry.get("bytes", 0)))
    return stats


def _payload_bytes(config: Any) -> int:
    """Wire size of a config payload (mirrors RpcRequest.to_wire)."""
    return len(json.dumps(config, sort_keys=True, default=str).encode())


class _NetconfAdapter(DomainAdapter):
    """Shared NETCONF client plumbing for NETCONF-managed domains.

    Delta pushes: the adapter remembers the last *acknowledged* config
    (the install that made it through commit) as an install-config tree
    plus digest, tagged with a monotonically increasing
    ``delta_generation``.  Subsequent installs diff against that tree
    and ship a digest-guarded edit-config patch; a full replace goes out
    on first contact, when the caller forces it (reconcile, half-open
    probes, pushes after a failure), or when the server rejects the
    patch base.  Any exception mid-push leaves the server state unknown,
    so the acknowledged config is dropped and the next attempt is full.
    """

    def __init__(self, name: str, domain_type: DomainType,
                 server: NetconfServer):
        super().__init__(name, domain_type)
        self.channel = ControlChannel(f"{name}-mgmt")
        server.bind(self.channel)
        self.client = NetconfClient(f"{name}-client", self.channel)
        self.client.hello()
        self._acked_tree: Optional[DataNode] = None
        self._acked_digest: Optional[str] = None
        #: bumped on every acknowledged push; the generation the acked
        #: config belongs to (0 = never pushed / state forgotten)
        self.delta_generation = 0
        #: payload bytes of the most recent full push (accounting only)
        self._last_push_bytes = 0

    def reset_delta_state(self) -> None:
        self._acked_tree = None
        self._acked_digest = None

    def _ack(self, config: Any, tree: Optional[DataNode]) -> None:
        self._acked_tree = tree if tree is not None else config_to_tree(config)
        self._acked_digest = config_digest(config)
        self.delta_generation += 1

    def _push_full(self, config: Any) -> None:
        self._last_push_bytes = _payload_bytes(config)
        try:
            self.client.edit_config(config, target="candidate",
                                    operation="replace")
            self.client.validate("candidate")
            self.client.commit()
        except BaseException:
            self.reset_delta_state()
            raise
        self._ack(config, tree=None)

    def _push(self, install: NFFG) -> None:
        """Full-config replace; re-establishes the delta base.  Also the
        override point for tests/subclasses — the delta path falls back
        here whenever a patch cannot go out."""
        self._push_full({"nffg": nffg_to_dict(install)})

    def _do_push(self, install: NFFG,
                 force_full: bool = False) -> Optional[PushProfile]:
        use_delta = (not force_full and self._acked_tree is not None
                     and self.client.has_capability(DELTA_CAPABILITY))
        if not use_delta:
            self._last_push_bytes = 0
            self._push(install)
            return PushProfile(messages=3, bytes=self._last_push_bytes)
        config = {"nffg": nffg_to_dict(install)}
        new_tree = config_to_tree(config)
        entries = diff_trees(self._acked_tree, new_tree)
        if not entries:
            # already acknowledged: the domain runs this exact config
            return PushProfile(delta=True, noop=True,
                               bytes_saved=_payload_bytes(config))
        delta_bytes = patch_size_bytes(entries)
        try:
            try:
                self.client.edit_config_delta(
                    self._acked_digest,
                    [entry.to_dict() for entry in entries])
            except NetconfError as exc:
                if exc.tag != "delta-mismatch":
                    raise
                # base drifted (server restart, foreign writer): resync
                counters.incr("push.delta_fallback")
                obs.event("push.fallback", domain=self.name)
                self.reset_delta_state()
                self._last_push_bytes = 0
                self._push(install)
                return PushProfile(messages=4, bytes=self._last_push_bytes)
            self.client.validate("candidate")
            self.client.commit()
        except BaseException:
            self.reset_delta_state()
            raise
        self._ack(config, tree=new_tree)
        return PushProfile(messages=3, bytes=delta_bytes, delta=True,
                           bytes_saved=max(0, _payload_bytes(config)
                                           - delta_bytes))

    def control_stats(self) -> tuple[int, int]:
        return self.channel.stats.messages, self.channel.stats.bytes


class EmuDomainAdapter(_NetconfAdapter):
    """Mininet-like domain over NETCONF (+ the domain's own OF channels)."""

    def __init__(self, name: str, domain: EmulatedDomain,
                 orchestrator: Optional[EmuDomainOrchestrator] = None):
        self.domain = domain
        self.orchestrator = orchestrator or EmuDomainOrchestrator(domain)
        super().__init__(name, DomainType.INTERNAL, self.orchestrator)

    def get_view(self) -> NFFG:
        return self.domain.domain_view()

    def control_stats(self) -> tuple[int, int]:
        of_stats = self.orchestrator.controller.total_stats()
        return (self.channel.stats.messages + of_stats.messages,
                self.channel.stats.bytes + of_stats.bytes)

    def ready(self) -> bool:
        return True  # Click processes attach synchronously on commit

    def flow_stats(self) -> dict[str, tuple[int, int]]:
        return _collect_endpoint_stats(self.orchestrator.controller)


class SdnDomainAdapter(DomainAdapter):
    """POX adapter for the legacy OpenFlow network.

    The mapped NFFG contains per-switch flow rules; the adapter programs
    them through the POX controller endpoint, one FlowMod per rule, and
    keeps l2-style defaults out of the way with higher priorities.
    """

    def __init__(self, name: str, domain: SDNDomain):
        super().__init__(name, DomainType.SDN)
        self.domain = domain
        self._installed_dpids: set[str] = set()

    def get_view(self) -> NFFG:
        return self.domain.domain_view()

    def _push(self, install: NFFG) -> None:
        endpoint = self.domain.pox.endpoint
        for dpid in self._installed_dpids:
            endpoint.delete_flows(dpid)
        self._installed_dpids.clear()
        for infra in install.infras:
            if infra.id not in self.domain.switches:
                raise KeyError(f"unknown SDN switch {infra.id!r}")
            program_infra_flows(endpoint, infra.id, infra)
            endpoint.barrier(infra.id)
            self._installed_dpids.add(infra.id)

    def control_stats(self) -> tuple[int, int]:
        stats = self.domain.pox.endpoint.total_stats()
        return stats.messages, stats.bytes

    def flow_stats(self) -> dict[str, tuple[int, int]]:
        return _collect_endpoint_stats(self.domain.pox.endpoint)


class CloudDomainAdapter(_NetconfAdapter):
    """OpenStack+ODL domain via its UNIFY-conform local orchestrator."""

    def __init__(self, name: str, domain: CloudDomain,
                 orchestrator: Optional[CloudLocalOrchestrator] = None):
        self.domain = domain
        self.orchestrator = orchestrator or CloudLocalOrchestrator(domain)
        super().__init__(name, DomainType.OPENSTACK, self.orchestrator)

    def get_view(self) -> NFFG:
        return self.domain.domain_view()

    def control_stats(self) -> tuple[int, int]:
        odl_stats = self.domain.odl.endpoint.total_stats()
        return (self.channel.stats.messages + odl_stats.messages,
                self.channel.stats.bytes + odl_stats.bytes)

    def ready(self) -> bool:
        return self.orchestrator.all_vms_active()

    def flow_stats(self) -> dict[str, tuple[int, int]]:
        return _collect_endpoint_stats(self.domain.odl.endpoint)


class UNDomainAdapter(_NetconfAdapter):
    """Universal Node via its local orchestrator."""

    def __init__(self, name: str, domain: UniversalNodeDomain,
                 orchestrator: Optional[UNLocalOrchestrator] = None):
        self.domain = domain
        self.orchestrator = orchestrator or UNLocalOrchestrator(domain)
        super().__init__(name, DomainType.UN, self.orchestrator)

    def get_view(self) -> NFFG:
        return self.domain.domain_view()

    def control_stats(self) -> tuple[int, int]:
        of_stats = self.orchestrator.controller.total_stats()
        return (self.channel.stats.messages + of_stats.messages,
                self.channel.stats.bytes + of_stats.bytes)

    def ready(self) -> bool:
        return self.orchestrator.all_containers_running()

    def flow_stats(self) -> dict[str, tuple[int, int]]:
        return _collect_endpoint_stats(self.orchestrator.controller)


class DirectDomainAdapter(DomainAdapter):
    """Adapter over a static NFFG view with no dataplane behind it.

    Used in unit tests and pure-mapping benchmarks where only the
    orchestration logic is under study.
    """

    def __init__(self, name: str, view: NFFG,
                 domain_type: DomainType = DomainType.INTERNAL):
        super().__init__(name, domain_type)
        self._view = view
        self.installed: list[NFFG] = []

    def get_view(self) -> NFFG:
        return self._view.copy()

    def own_infra_ids(self) -> frozenset[str]:
        # the live view is at hand: no need for the get_view() copy
        return frozenset(infra.id for infra in self._view.infras)

    def _push(self, install: NFFG) -> None:
        self.installed.append(install)
