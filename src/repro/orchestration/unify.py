"""The recursive Unify interface.

"The manager - virtualizer relationship is recursive, thus Unify
domains can be stacked into a multi-level control hierarchy similar to
ONF's SDN architecture.  The recursive interface is the Unify
interface."

North side (:class:`UnifyAgent`): a NETCONF server in front of an
:class:`~repro.orchestration.escape.EscapeOrchestrator`.  It advertises
a virtual view (by default a single BiS-BiS) as a virtualizer tree and
accepts edited virtualizer configurations, which it re-maps onto its
own domains.

South side (:class:`UnifyDomainAdapter`): makes a whole child
orchestrator look like one more technology domain to its parent — the
parent places NFs on the child's advertised BiS-BiS and edits its
flowtable exactly as it would for any other domain.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.netconf.client import NetconfClient
from repro.netconf.messages import UNIFY_CAPABILITY
from repro.netconf.server import NetconfServer
from repro.nffg.graph import NFFG
from repro.nffg.model import DomainType
from repro.openflow.channel import ControlChannel
from repro.orchestration.adapters import DomainAdapter
from repro.orchestration.escape import EscapeOrchestrator
from repro.virtualizer.convert import nffg_to_virtualizer, virtualizer_to_nffg
from repro.virtualizer.model import Virtualizer
from repro.virtualizer.views import SingleBiSBiSView, ViewPolicy


def service_from_virtual_install(install: NFFG,
                                 service_id: str = "unify-client") -> NFFG:
    """Reconstruct a service graph from an edited virtual view.

    The parent expressed the service as (i) NF instances on virtual
    BiS-BiS nodes and (ii) flow entries steering between SAP ports and
    NF ports.  Flow rules carry their SG hop id, bandwidth and delay
    budget, which is exactly enough to rebuild the SAP/NF-level service
    graph the child can re-map freely onto its own resources.
    """
    service = NFFG(id=service_id, name=f"reconstructed from {install.id}")
    for nf in install.nfs:
        service.add_node_copy(nf)
    # hop id -> ordered flowrule endpoints
    sap_tags: set[str] = set()
    for infra in install.infras:
        for port in infra.ports.values():
            if port.sap_tag is not None:
                sap_tags.add(port.sap_tag)

    def classify(port_id: str) -> Optional[tuple[str, str]]:
        """Virtual BiS-BiS port -> (service node, service port) for SAP
        and NF attachment ports; None for transit/unknown ports."""
        if port_id.startswith("sap-"):
            tag = port_id[len("sap-"):]
            if not service.has_node(tag):
                service.add_sap(tag)
            return tag, list(service.sap(tag).ports)[0]
        nf_id, _, nf_port = port_id.rpartition("-")
        if service.has_node(nf_id):
            return nf_id, nf_port
        return None

    # A hop routed across several virtual nodes leaves one rule per
    # node; its service-level endpoints are the edge (SAP/NF) ports of
    # its first and last rule.  Collect per hop id, then rebuild.
    hops: dict[str, dict[str, Any]] = {}
    for infra in install.infras:
        for port, rule in infra.iter_flowrules():
            match_fields = rule.match_fields()
            action_fields = rule.action_fields()
            in_port = match_fields.get("in_port", port.id)
            out_port = action_fields.get("output", "")
            hop_id = rule.hop_id or f"{service_id}-{in_port}-{out_port}"
            record = hops.setdefault(hop_id, {
                "src": None, "dst": None, "flowclass": "",
                "bandwidth": 0.0, "delay": 0.0})
            src = classify(in_port)
            if src is not None and record["src"] is None:
                record["src"] = src
            dst = classify(out_port)
            if dst is not None:
                record["dst"] = dst
            if match_fields.get("flowclass"):
                record["flowclass"] = match_fields["flowclass"]
            record["bandwidth"] = max(record["bandwidth"], rule.bandwidth)
            record["delay"] = max(record["delay"], rule.delay)
    for hop_id, record in sorted(hops.items()):
        if record["src"] is None or record["dst"] is None:
            continue  # pure transit of a hop terminating elsewhere
        src_node, src_port = record["src"]
        dst_node, dst_port = record["dst"]
        service.add_sg_hop(src_node, src_port, dst_node, dst_port,
                           id=hop_id, flowclass=record["flowclass"],
                           bandwidth=record["bandwidth"],
                           delay=record["delay"])
    return service


class UnifyAgent(NetconfServer):
    """North-side Unify interface of an orchestrator."""

    def __init__(self, orchestrator: EscapeOrchestrator, *,
                 view_policy: Optional[ViewPolicy] = None):
        super().__init__(f"{orchestrator.name}-unify",
                         capabilities=[UNIFY_CAPABILITY])
        self.orchestrator = orchestrator
        self.view_policy = view_policy or SingleBiSBiSView(
            bisbis_id=f"{orchestrator.name}-bisbis")
        self._client_service_id = f"{orchestrator.name}-client-svc"
        self.edits_applied = 0
        self.on_apply(self._apply_config)
        self.register_rpc("get-virtualizer",
                          lambda params: self.current_virtualizer().to_dict())

    # -- view generation ------------------------------------------------------

    def current_view(self) -> NFFG:
        remaining = self.orchestrator.resource_view()
        view = self.view_policy.build_view(
            remaining, view_id=f"{self.orchestrator.name}-virtual-view")
        # Advertise decomposable abstract NF types: "an NF mapped to a
        # BiS-BiS in the client virtualization can be replaced with an
        # interconnection of NFs during the mapping process" — clients
        # may place e.g. a vCPE here and this level will decompose it.
        library = self.orchestrator.ro.decomposition_library
        if library is not None:
            abstract_types = set(library.decomposable_types())
            for infra in view.infras:
                if infra.supported_types:
                    infra.supported_types |= abstract_types
        return view

    def current_virtualizer(self) -> Virtualizer:
        return nffg_to_virtualizer(self.current_view(),
                                   virtualizer_id=self.orchestrator.name)

    # -- configuration hooks ------------------------------------------------------

    def validate_config(self, config: Any) -> list[str]:
        if config is None:
            return []
        try:
            Virtualizer.from_dict(config["virtualizer"])
        except Exception as exc:  # noqa: BLE001
            return [f"config is not a valid virtualizer: {exc}"]
        return []

    def state_data(self) -> dict[str, Any]:
        return {"deployed_services": self.orchestrator.deployed_services(),
                "edits": self.edits_applied}

    def _apply_config(self, config: Any) -> None:
        if config is None:
            self.orchestrator.teardown(self._client_service_id)
            return
        virt = Virtualizer.from_dict(config["virtualizer"])
        install = virtualizer_to_nffg(virt)
        service = service_from_virtual_install(install,
                                               service_id=self._client_service_id)
        self.edits_applied += 1
        # reconciliation at client-service granularity: replace the
        # previous client configuration with the new one
        if self._client_service_id in self.orchestrator.deployed_services():
            self.orchestrator.teardown(self._client_service_id)
        if not service.nfs and not service.sg_hops:
            self.notify("deploy-finished", {"service": service.id,
                                            "empty": True})
            return
        report = self.orchestrator.deploy(service)
        if not report.success:
            raise RuntimeError(f"child mapping failed: {report.error}")
        self.notify("deploy-finished", {"service": service.id})


class UnifyDomainAdapter(DomainAdapter):
    """South-side: a child Unify domain as seen by the parent."""

    def __init__(self, name: str, agent: UnifyAgent):
        super().__init__(name, DomainType.UNIFY)
        self.agent = agent
        self.channel = ControlChannel(f"{name}-unify")
        agent.bind(self.channel)
        self.client = NetconfClient(f"{name}-parent", self.channel)
        self.client.hello()
        if UNIFY_CAPABILITY not in self.client.server_capabilities:
            raise RuntimeError(f"{name}: peer does not speak Unify")

    def get_view(self) -> NFFG:
        data = self.client.rpc("get-virtualizer")
        view = virtualizer_to_nffg(Virtualizer.from_dict(data))
        for infra in view.infras:
            infra.domain = DomainType.UNIFY
        return view

    def _push(self, install: NFFG) -> None:
        virt = nffg_to_virtualizer(install, virtualizer_id=install.id)
        self.client.edit_config({"virtualizer": virt.to_dict()},
                                target="candidate", operation="replace")
        self.client.validate("candidate")
        self.client.commit()

    def control_stats(self) -> tuple[int, int]:
        return self.channel.stats.messages, self.channel.stats.bytes

    def ready(self) -> bool:
        return self.agent.orchestrator.cal.ready()
