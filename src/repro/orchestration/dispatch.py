"""Concurrent domain fan-out for the controller adaptation layer.

The CAL talks to independent technology domains; nothing orders a push
toward ``emu`` against a push toward ``cloud``, so the dispatcher runs
per-domain operations on a small, persistent thread pool and the
wall-clock cost of a multi-domain ``push_all``/``reconcile``/
``pristine_view`` becomes max-over-domains instead of sum-over-domains.

Ordering guarantees:

- **per-domain FIFO**: operations naming the same domain never overlap
  and run in submission order (a per-domain mutex plus per-batch
  grouping enforces one in-flight op per adapter);
- **deterministic results**: :meth:`DomainDispatcher.run` returns
  results in submission order regardless of completion order, so report
  lists and CLI output are stable;
- **inline fast path**: batches of one operation (the common
  single-domain deploy) and ``serial=True`` dispatchers run on the
  caller's thread — no pool, no handoff latency.

Thunks are expected to do their own error handling and return a value
(adapter ``install`` already catches and reports).  If one does raise,
the dispatcher still waits for the whole batch, then re-raises the
first failure in submission order.
"""

from __future__ import annotations

import contextvars
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Iterable, Optional, Sequence

from repro import obs
from repro.perf import counters
from repro.sanitize import make_lock

#: default pool width; domains beyond this queue behind free workers
DEFAULT_MAX_WORKERS = 8

DomainOp = tuple[str, Callable[[], Any]]


class DomainDispatcher:
    """Bounded thread-pool dispatcher with per-domain serial FIFO order."""

    def __init__(self, max_workers: int = DEFAULT_MAX_WORKERS, *,
                 serial: bool = False):
        self.max_workers = max(1, int(max_workers))
        #: serial dispatchers run every batch inline on the caller's
        #: thread, in submission order — used for A/B benchmarks and as
        #: an escape hatch for adapters that are not thread-safe
        self.serial = serial
        self._executor: Optional[ThreadPoolExecutor] = None  # guarded-by: _guard
        self._domain_locks: dict[str, object] = {}  # guarded-by: _guard
        self._closed = False  # guarded-by: _guard
        self._guard = make_lock("dispatch.guard")

    # -- plumbing ----------------------------------------------------------

    def _lock_for(self, domain: str):
        with self._guard:
            lock = self._domain_locks.get(domain)
            if lock is None:
                # per-domain serialization mutex: holding it across the
                # adapter push *is* the FIFO contract, so blocking I/O
                # under it is by design (blocking_ok)
                lock = self._domain_locks[domain] = make_lock(
                    f"dispatch.domain.{domain}", blocking_ok=True)
            return lock

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._guard:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="domain-push")
            return self._executor

    def shutdown(self) -> None:
        """Tear the worker pool down.  Idempotent — calling it again
        (or on a dispatcher that never ran anything) is a no-op.  A
        shut-down dispatcher is terminal: later :meth:`run` calls raise
        :class:`RuntimeError` instead of silently rebuilding a pool the
        caller believed was gone."""
        with self._guard:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    # -- execution ---------------------------------------------------------

    def run(self, ops: Iterable[DomainOp]) -> list[Any]:
        """Run ``(domain, thunk)`` pairs; results in submission order."""
        with self._guard:
            if self._closed:
                raise RuntimeError(
                    "DomainDispatcher.run() called after shutdown(); "
                    "shutdown is terminal — create a new dispatcher")
        ops = list(ops)
        if not ops:
            return []
        if self.serial or len(ops) == 1:
            counters.incr("dispatch.inline")
            return [self._run_op(domain, thunk) for domain, thunk in ops]
        counters.incr("dispatch.parallel")
        executor = self._ensure_executor()
        # group by domain, keeping submission order inside each group:
        # one future per domain runs its ops back to back (FIFO), while
        # distinct domains fan out across the pool
        groups: dict[str, list[tuple[int, Callable[[], Any]]]] = {}
        for index, (domain, thunk) in enumerate(ops):
            groups.setdefault(domain, []).append((index, thunk))
        futures: list[tuple[str, Future]] = []
        for domain, group in groups.items():
            if obs.enabled():
                # carry the caller's span context onto the worker so a
                # push/<domain> span parents under the deploy that
                # submitted it; one fresh Context per future (a Context
                # cannot be entered concurrently)
                context = contextvars.copy_context()
                futures.append((domain, executor.submit(
                    context.run, self._run_group, domain, group)))
            else:
                futures.append((domain, executor.submit(
                    self._run_group, domain, group)))
        results: list[Any] = [None] * len(ops)
        errors: list[tuple[int, BaseException]] = []
        for domain, future in futures:
            for index, outcome, error in future.result():
                if error is not None:
                    errors.append((index, error))
                else:
                    results[index] = outcome
        if errors:
            errors.sort(key=lambda pair: pair[0])
            raise errors[0][1]
        return results

    def _run_op(self, domain: str, thunk: Callable[[], Any]) -> Any:
        with self._lock_for(domain):
            return thunk()

    def _run_group(self, domain: str,
                   group: Sequence[tuple[int, Callable[[], Any]]],
                   ) -> list[tuple[int, Any, Optional[BaseException]]]:
        outcomes: list[tuple[int, Any, Optional[BaseException]]] = []
        for index, thunk in group:
            try:
                outcomes.append((index, self._run_op(domain, thunk), None))
            except BaseException as exc:  # noqa: BLE001 - reraised by run()
                outcomes.append((index, None, exc))
        return outcomes

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        mode = "serial" if self.serial else f"workers={self.max_workers}"
        return f"<DomainDispatcher {mode}>"
