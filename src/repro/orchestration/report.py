"""Deployment reports: what happened, where the time went, what it cost
on the control plane.  These are the primary measurement artifacts of
the DEMO-ii benchmark."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.mapping.base import MappingResult


@dataclass
class AdapterReport:
    """Result of pushing one domain's install graph."""

    domain: str
    success: bool
    error: str = ""
    #: wall-clock seconds spent in the adapter call
    push_time_s: float = 0.0
    control_messages: int = 0
    control_bytes: int = 0
    nfs_requested: int = 0
    flowrules_requested: int = 0
    #: push attempts made (1 = first try succeeded; >1 = retried)
    attempts: int = 1
    #: total retry backoff charged between attempts (seconds)
    backoff_s: float = 0.0
    #: True when the push was never attempted because the domain's
    #: circuit breaker is open (the config is queued for reconciliation)
    skipped: bool = False
    #: config payload accounting for *this* push (messages sent and
    #: payload bytes on the wire), independent of the channel-level
    #: ``control_*`` deltas which also count hellos/notifications
    messages: int = 0
    bytes: int = 0
    #: True when the install went out as an edit-config delta patch
    #: rather than a full-config replace
    delta: bool = False


@dataclass
class DeployReport:
    """End-to-end outcome of one service deployment."""

    service_id: str
    success: bool
    error: str = ""
    #: partial-failure classification: "" (derive from ``success``),
    #: "success", "degraded" (deployed, but at least one involved
    #: domain is awaiting reconciliation) or "failed"
    outcome: str = ""
    mapping: Optional[MappingResult] = None
    adapters: list[AdapterReport] = field(default_factory=list)
    #: reports of the reconciliation pushes made while rolling back a
    #: failed deploy/update (empty when no rollback happened)
    rollback: list[AdapterReport] = field(default_factory=list)
    #: static-analysis findings from the pre-deploy verification gate
    #: (repro.lint Diagnostic objects; populated even on success)
    lint: list = field(default_factory=list)
    #: wall-clock phase timings (seconds)
    lint_time_s: float = 0.0
    view_time_s: float = 0.0
    mapping_time_s: float = 0.0
    push_time_s: float = 0.0
    activation_time_s: float = 0.0
    #: wall-clock seconds spent undoing a half-deployed service on the
    #: failed path (remove + reconciliation pushes); 0.0 when no
    #: rollback ran
    rollback_time_s: float = 0.0
    total_time_s: float = 0.0
    #: virtual milliseconds until all NFs were up (boot latency)
    activation_virtual_ms: float = 0.0
    domains_touched: int = 0

    def stage_timings(self) -> dict[str, float]:
        """Per-stage wall-clock seconds, in pipeline order (rollback
        last: it only runs on the failed path, after the push)."""
        return {
            "lint": self.lint_time_s,
            "view": self.view_time_s,
            "map": self.mapping_time_s,
            "push": self.push_time_s,
            "activate": self.activation_time_s,
            "rollback": self.rollback_time_s,
        }

    @property
    def control_messages(self) -> int:
        return sum(report.control_messages for report in self.adapters)

    @property
    def control_bytes(self) -> int:
        return sum(report.control_bytes for report in self.adapters)

    def __bool__(self) -> bool:
        return self.success

    def resolved_outcome(self) -> str:
        """The partial-failure outcome, derived from ``success`` when
        no explicit classification was recorded."""
        if self.outcome:
            return self.outcome
        return "success" if self.success else "failed"

    def rollback_failures(self) -> list[AdapterReport]:
        """Rollback pushes that themselves failed (domains that may
        still hold state of the rolled-back service)."""
        return [report for report in self.rollback if not report.success]

    def summary_line(self) -> str:
        if not self.success:
            return f"{self.service_id}: FAILED ({self.error})"
        if self.resolved_outcome() == "degraded":
            return (f"{self.service_id}: DEGRADED — deployed, but "
                    "domains await reconciliation: "
                    + ", ".join(sorted(r.domain for r in self.adapters
                                       if not r.success)))
        placement = (len(self.mapping.nf_placement)
                     if self.mapping is not None else 0)
        return (f"{self.service_id}: OK — {placement} NFs over "
                f"{self.domains_touched} domains, map {self.mapping_time_s * 1e3:.1f} ms, "
                f"push {self.push_time_s * 1e3:.1f} ms, "
                f"{self.control_messages} ctrl msgs / {self.control_bytes} B, "
                f"activation {self.activation_virtual_ms:.0f} vms")
