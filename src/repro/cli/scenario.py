"""Scenario runner: deploy a request, drive traffic, report.

Wraps the recurring example/benchmark pattern — submit a request,
run the simulator, inject probe packets, collect delivery stats — into
one reusable object so examples stay short and uniform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.netem.packet import tcp_packet
from repro.orchestration.report import DeployReport
from repro.service.request import ServiceRequest
from repro.topo import MultiDomainTestbed


@dataclass
class TrafficResult:
    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    latencies_ms: list[float] = field(default_factory=list)
    traces: list[list[str]] = field(default_factory=list)

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.sent if self.sent else 0.0

    @property
    def mean_latency_ms(self) -> float:
        if not self.latencies_ms:
            return 0.0
        return sum(self.latencies_ms) / len(self.latencies_ms)


class ScenarioRunner:
    """Deploy + probe harness over a :class:`MultiDomainTestbed`."""

    def __init__(self, testbed: MultiDomainTestbed):
        self.testbed = testbed

    def deploy(self, request: ServiceRequest) -> DeployReport:
        report = self.testbed.service_layer.submit(request)
        self.testbed.run()
        return report

    def probe(self, src_sap: str, dst_sap: str, *, count: int = 5,
              tp_dst: int = 80, payload: str = "",
              interval_ms: float = 1.0,
              packet_factory: Optional[callable] = None) -> TrafficResult:
        """Send ``count`` packets from one SAP host to another and
        report deliveries at the destination."""
        src = self.testbed.host(src_sap)
        dst = self.testbed.host(dst_sap)
        baseline = len(dst.received)
        baseline_latency = len(dst.latencies)
        packets = []
        for index in range(count):
            if packet_factory is not None:
                packet = packet_factory(index)
            else:
                packet = tcp_packet(src.ip, dst.ip, tp_dst=tp_dst,
                                    payload=payload,
                                    tp_src=20000 + index)
            packets.append(packet)
        src.send_burst(packets, interval=interval_ms)
        self.testbed.run()
        delivered = dst.received[baseline:]
        result = TrafficResult(
            sent=count,
            delivered=len(delivered),
            dropped=count - len(delivered),
            latencies_ms=list(dst.latencies[baseline_latency:]),
            traces=[list(p.trace) for p in delivered])
        return result

    def deploy_and_probe(self, request: ServiceRequest, src_sap: str,
                         dst_sap: str, **probe_kwargs
                         ) -> tuple[DeployReport, TrafficResult]:
        report = self.deploy(request)
        if not report.success:
            return report, TrafficResult()
        return report, self.probe(src_sap, dst_sap, **probe_kwargs)
